/**
 * @file
 * FIP hot-path microbenchmark: ns/forecast and allocations/forecast
 * for the predict-per-interval loop, across a functions x intervals
 * grid, against a frozen copy of the pre-optimisation predictor.
 *
 * Three measured modes:
 *   legacy       the predictor as it stood before the plan-cached
 *                rewrite (vector-erase window, per-call Bluestein
 *                FFT, Matrix-based least squares) -- frozen below so
 *                the speedup baseline cannot drift as src/ evolves;
 *   plan         today's default path (plan-cached FFT, ring buffer,
 *                reused workspaces). The complex FFT plans are
 *                bit-identical to the legacy code; the real-input
 *                packing reorders roundoff, so end-to-end forecasts
 *                match legacy to ~1e-12 (figure outputs stay
 *                byte-identical);
 *   incremental  the opt-in sliding-DFT spectrum
 *                (FftPredictorConfig::incremental_spectrum), within
 *                1e-6 of the default path.
 *
 * Also times the raw non-power-of-two real FFT (legacy per-call
 * Bluestein vs cached plan) since that is the single hottest kernel.
 *
 * A fourth, many-function *batch* section times the ForecastPool's
 * SoA block engine against a fleet of scalar FftPredictor instances:
 * ns/forecast and forecasts/sec for scalar vs pool-exact
 * (bit-identical mode) vs pool-fast (rotation-recurrence trig,
 * <= 1e-9), at --batch-functions scale (default 10000, accepted up to
 * 1M synthetic histories).
 *
 * Flags:
 *   --functions N / --intervals N   grid size (default 64 x 400)
 *   --window N                      FIP window (default 120, non-pow2)
 *   --threads N                     shard functions across N threads
 *   --batch-functions N             batch-section fleet size
 *                                   (default 10000, up to 1M)
 *   --batch-intervals N             timed rounds per batch mode
 *                                   (default 3)
 *   --json PATH                     output path (default BENCH_fip.json)
 *   --smoke                         tiny grid + correctness gates:
 *                                   exits non-zero if the plan path
 *                                   allocates in steady state, drifts
 *                                   from legacy, incremental mode
 *                                   leaves the 1e-6 envelope, the
 *                                   batch pool diverges (exact must be
 *                                   bit-identical, fast <= 1e-9), or
 *                                   the pool allocates in steady
 *                                   state. Absolute timings are NOT
 *                                   gated (CI noise).
 *   --baseline PATH                 gate the batch fast-vs-scalar
 *                                   speedup against a committed
 *                                   BENCH_fip.json: re-runs at the
 *                                   committed batch scale (best of 5
 *                                   rounds) and fails if more than 2%
 *                                   below it. Refuses loudly if the
 *                                   committed config digest does not
 *                                   match its recorded window/horizon/
 *                                   batch geometry (stale baseline) or
 *                                   does not match this run's window
 *                                   and horizon.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "math/fft.hh"
#include "math/harmonics.hh"
#include "math/matrix.hh"
#include "math/polyfit.hh"
#include "math/stats.hh"
#include "predictors/fft_predictor.hh"
#include "predictors/forecast_pool.hh"

// ---------------------------------------------------------------------------
// Global allocation counter. Counts every operator new in the
// process, so the per-mode deltas are taken around single-threaded
// measurement regions only.
// ---------------------------------------------------------------------------

namespace
{
std::atomic<long long> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace legacy
{

// ---------------------------------------------------------------------------
// Frozen pre-optimisation implementation (the seed's src/math FFT +
// least-squares path and the vector-erase predictor window). Kept
// verbatim so `speedup_vs_legacy` always compares against the same
// baseline, independent of future src/ changes. Do not "fix" or
// modernise this code.
// ---------------------------------------------------------------------------

using iceb::math::Complex;

std::size_t
bitReverse(std::size_t i, int log2n)
{
    std::size_t out = 0;
    for (int b = 0; b < log2n; ++b) {
        out = (out << 1) | (i & 1);
        i >>= 1;
    }
    return out;
}

void
fftPow2Impl(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    int log2n = 0;
    while ((std::size_t{1} << log2n) < n)
        ++log2n;

    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = bitReverse(i, log2n);
        if (j > i)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const Complex w_len(std::cos(angle), std::sin(angle));
        for (std::size_t start = 0; start < n; start += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex even = data[start + k];
                const Complex odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w *= w_len;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &value : data)
            value *= scale;
    }
}

std::vector<Complex>
bluestein(const std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    std::size_t m = 1;
    while (m < 2 * n + 1)
        m <<= 1;

    const double sign = inverse ? 1.0 : -1.0;
    std::vector<Complex> chirp(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double angle = sign * M_PI *
            static_cast<double>(i) * static_cast<double>(i) /
            static_cast<double>(n);
        chirp[i] = Complex(std::cos(angle), std::sin(angle));
    }

    std::vector<Complex> a(m, Complex(0.0, 0.0));
    std::vector<Complex> b(m, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        a[i] = data[i] * chirp[i];
    b[0] = std::conj(chirp[0]);
    for (std::size_t i = 1; i < n; ++i)
        b[i] = b[m - i] = std::conj(chirp[i]);

    fftPow2Impl(a, false);
    fftPow2Impl(b, false);
    for (std::size_t i = 0; i < m; ++i)
        a[i] *= b[i];
    fftPow2Impl(a, true);

    std::vector<Complex> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] * chirp[i];
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &value : out)
            value *= scale;
    }
    return out;
}

std::vector<Complex>
fft(const std::vector<Complex> &data)
{
    if (iceb::math::isPowerOfTwo(data.size())) {
        std::vector<Complex> copy = data;
        fftPow2Impl(copy, false);
        return copy;
    }
    return bluestein(data, false);
}

std::vector<Complex>
fftReal(const std::vector<double> &data)
{
    std::vector<Complex> complex_data;
    complex_data.reserve(data.size());
    for (double value : data)
        complex_data.emplace_back(value, 0.0);
    return fft(complex_data);
}

std::vector<double>
solveLinearSystem(const iceb::math::Matrix &a,
                  const std::vector<double> &b, bool *singular)
{
    const std::size_t n = a.rows();
    if (singular)
        *singular = false;

    std::vector<std::vector<double>> work(n, std::vector<double>(n + 1));
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            work[r][c] = a.at(r, c);
        work[r][n] = b[r];
    }

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(work[r][col]) > std::fabs(work[pivot][col]))
                pivot = r;
        if (std::fabs(work[pivot][col]) < 1e-12) {
            if (singular) {
                *singular = true;
                return std::vector<double>(n, 0.0);
            }
            std::abort();
        }
        std::swap(work[col], work[pivot]);

        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = work[r][col] / work[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c <= n; ++c)
                work[r][c] -= factor * work[col][c];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t r = n; r-- > 0;) {
        double acc = work[r][n];
        for (std::size_t c = r + 1; c < n; ++c)
            acc -= work[r][c] * x[c];
        x[r] = acc / work[r][r];
    }
    return x;
}

iceb::math::Polynomial
polyfitSeries(const std::vector<double> &y, std::size_t degree)
{
    const std::size_t terms = degree + 1;
    std::vector<double> x(y.size());
    std::iota(x.begin(), x.end(), 0.0);

    iceb::math::Matrix ata(terms, terms);
    std::vector<double> aty(terms, 0.0);
    std::vector<double> powers(2 * degree + 1, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        double xk = 1.0;
        for (std::size_t k = 0; k < powers.size(); ++k) {
            powers[k] += xk;
            if (k < terms)
                aty[k] += xk * y[i];
            xk *= x[i];
        }
    }
    for (std::size_t r = 0; r < terms; ++r)
        for (std::size_t c = 0; c < terms; ++c)
            ata.at(r, c) = powers[r + c];

    bool singular = false;
    std::vector<double> coeffs =
        legacy::solveLinearSystem(ata, aty, &singular);
    if (singular) {
        const double mean = std::accumulate(y.begin(), y.end(), 0.0) /
            static_cast<double>(y.size());
        std::vector<double> fallback(terms, 0.0);
        fallback[0] = mean;
        return iceb::math::Polynomial(std::move(fallback));
    }
    return iceb::math::Polynomial(std::move(coeffs));
}

std::vector<double>
detrend(const std::vector<double> &y, const iceb::math::Polynomial &trend)
{
    std::vector<double> out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        out[i] = y[i] - trend.evaluate(static_cast<double>(i));
    return out;
}

std::vector<iceb::math::Harmonic>
decompose(const std::vector<double> &series, std::size_t max_components)
{
    const std::size_t n = series.size();
    if (n < 2)
        return {};

    const std::vector<Complex> spectrum = fftReal(series);
    std::vector<iceb::math::Harmonic> harmonics;
    harmonics.reserve(n / 2);

    const double scale = 2.0 / static_cast<double>(n);
    for (std::size_t k = 1; k <= n / 2; ++k) {
        const bool nyquist = (n % 2 == 0) && (k == n / 2);
        const double amp =
            std::abs(spectrum[k]) * (nyquist ? 0.5 * scale : scale);
        if (amp < 1e-12)
            continue;
        iceb::math::Harmonic h;
        h.amplitude = amp;
        h.frequency = static_cast<double>(k) / static_cast<double>(n);
        h.phase = std::arg(spectrum[k]);
        harmonics.push_back(h);
    }

    std::sort(harmonics.begin(), harmonics.end(),
              [](const iceb::math::Harmonic &a,
                 const iceb::math::Harmonic &b) {
                  return a.amplitude > b.amplitude;
              });
    if (max_components > 0 && harmonics.size() > max_components)
        harmonics.resize(max_components);
    return harmonics;
}

std::vector<iceb::math::Harmonic>
decomposeForExtrapolation(const std::vector<double> &series,
                          std::size_t max_components)
{
    const std::size_t n = series.size();
    if (n < 8 || max_components == 0)
        return decompose(series, max_components);

    const std::vector<Complex> spectrum = fftReal(series);
    const std::size_t half = n / 2;

    std::vector<double> magnitude(half + 1, 0.0);
    for (std::size_t k = 1; k <= half; ++k)
        magnitude[k] = std::abs(spectrum[k]);

    struct Peak
    {
        std::size_t bin;
        double magnitude;
    };
    std::vector<Peak> peaks;
    for (std::size_t k = 1; k <= half; ++k) {
        const double left = k > 1 ? magnitude[k - 1] : 0.0;
        const double right = k < half ? magnitude[k + 1] : 0.0;
        if (magnitude[k] >= left && magnitude[k] >= right &&
            magnitude[k] > 1e-12) {
            peaks.push_back(Peak{k, magnitude[k]});
        }
    }
    if (peaks.empty())
        return {};
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak &a, const Peak &b) {
                  return a.magnitude > b.magnitude;
              });
    if (peaks.size() > max_components)
        peaks.resize(max_components);

    std::vector<double> frequencies;
    for (const Peak &peak : peaks) {
        double delta = 0.0;
        const std::size_t k = peak.bin;
        if (k > 1 && k < half) {
            const double lm = std::log(magnitude[k - 1] + 1e-12);
            const double cm = std::log(magnitude[k] + 1e-12);
            const double rm = std::log(magnitude[k + 1] + 1e-12);
            const double denom = lm - 2.0 * cm + rm;
            if (std::fabs(denom) > 1e-12)
                delta = std::clamp(0.5 * (lm - rm) / denom, -0.5, 0.5);
        }
        frequencies.push_back(
            (static_cast<double>(k) + delta) / static_cast<double>(n));
    }

    const std::size_t terms = 2 * frequencies.size();
    iceb::math::Matrix xtx(terms, terms);
    std::vector<double> xty(terms, 0.0);
    std::vector<double> row(terms, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t i = 0; i < frequencies.size(); ++i) {
            const double angle = 2.0 * M_PI * frequencies[i] *
                static_cast<double>(t);
            row[2 * i] = std::cos(angle);
            row[2 * i + 1] = std::sin(angle);
        }
        for (std::size_t a = 0; a < terms; ++a) {
            xty[a] += row[a] * series[t];
            for (std::size_t b = 0; b < terms; ++b)
                xtx.at(a, b) += row[a] * row[b];
        }
    }
    for (std::size_t a = 0; a < terms; ++a)
        xtx.at(a, a) += 1e-9;
    bool singular = false;
    const std::vector<double> coeffs =
        legacy::solveLinearSystem(xtx, xty, &singular);
    if (singular)
        return decompose(series, max_components);

    std::vector<iceb::math::Harmonic> harmonics;
    harmonics.reserve(frequencies.size());
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
        const double a = coeffs[2 * i];
        const double b = coeffs[2 * i + 1];
        iceb::math::Harmonic h;
        h.amplitude = std::sqrt(a * a + b * b);
        h.frequency = frequencies[i];
        h.phase = std::atan2(-b, a);
        harmonics.push_back(h);
    }
    std::sort(harmonics.begin(), harmonics.end(),
              [](const iceb::math::Harmonic &x,
                 const iceb::math::Harmonic &y) {
                  return x.amplitude > y.amplitude;
              });
    return harmonics;
}

/** The pre-rewrite FftPredictor: erase-from-front window, fresh
 * allocations on every forecast. */
class Predictor
{
  public:
    explicit Predictor(iceb::predictors::FftPredictorConfig config)
        : config_(config)
    {
        window_.reserve(config_.window);
    }

    void
    observe(double concurrency)
    {
        if (window_.size() == config_.window)
            window_.erase(window_.begin());
        window_.push_back(std::max(0.0, concurrency));
    }

    std::vector<double>
    forecastHorizon(std::size_t horizon)
    {
        std::vector<double> out(horizon, 0.0);
        if (window_.empty())
            return out;
        const bool all_zero = std::all_of(
            window_.begin(), window_.end(),
            [](double v) { return v == 0.0; });
        if (all_zero)
            return out;
        if (window_.size() < config_.min_samples) {
            std::fill(out.begin(), out.end(),
                      std::max(0.0, iceb::math::mean(window_)));
            return out;
        }

        const iceb::math::Polynomial trend =
            polyfitSeries(window_, config_.poly_degree);
        const std::vector<double> residual =
            legacy::detrend(window_, trend);
        const std::vector<iceb::math::Harmonic> harmonics =
            decomposeForExtrapolation(residual, config_.harmonics);

        for (std::size_t step = 0; step < horizon; ++step) {
            const double t =
                static_cast<double>(window_.size() + step);
            const double forecast = trend.evaluate(t) +
                iceb::math::evaluateHarmonics(harmonics, t);
            out[step] = std::max(0.0, forecast);
        }
        return out;
    }

  private:
    iceb::predictors::FftPredictorConfig config_;
    std::vector<double> window_;
};

} // namespace legacy

namespace
{

// ---------------------------------------------------------------------------
// Workload: deterministic per-function concurrency signals (mixed
// periods, trends and phases -- enough spectral content to keep the
// harmonic path hot, like the active functions of an Azure trace).
// ---------------------------------------------------------------------------

struct BenchConfig
{
    std::size_t functions = 64;
    std::size_t intervals = 400;
    std::size_t window = 120;
    std::size_t horizon = 11;
    std::size_t threads = 1;
    std::size_t batch_functions = 10000;
    std::size_t batch_intervals = 3;
    std::string json_path = "BENCH_fip.json";
    std::string baseline_path;
    bool smoke = false;
};

double
signalAt(std::size_t fn, std::size_t t)
{
    const double ft = static_cast<double>(t);
    const double base = 4.0 + static_cast<double>(fn % 7);
    const double p1 = 12.0 + static_cast<double>(fn % 5) * 7.0;
    const double p2 = 4.7 + static_cast<double>(fn % 3) * 1.9;
    const double phase = 0.37 * static_cast<double>(fn);
    const double trend = 0.004 * static_cast<double>((fn % 4)) * ft;
    const double value = base +
        3.0 * std::cos(2.0 * M_PI * ft / p1 + phase) +
        1.5 * std::cos(2.0 * M_PI * ft / p2) + trend;
    return std::max(0.0, value);
}

struct ModeResult
{
    double ns_per_forecast = 0.0;
    double allocs_per_forecast = 0.0;
    double checksum = 0.0;
};

using Clock = std::chrono::steady_clock;

/**
 * Run the grid for one mode. The callback owns per-function predictor
 * state; it is handed (function, interval) and returns the first
 * horizon step so the checksum defends against dead-code elimination.
 *
 * The warm-up pass (window fill + first forecasts) runs untimed so
 * the timed region is the steady state the simulator actually spends
 * its intervals in.
 */
template <typename MakeState, typename Step>
ModeResult
runGrid(const BenchConfig &cfg, MakeState make_state, Step step)
{
    const std::size_t warmup = cfg.window + 8;
    std::vector<decltype(make_state(std::size_t{0}))> states;
    states.reserve(cfg.functions);
    for (std::size_t fn = 0; fn < cfg.functions; ++fn)
        states.push_back(make_state(fn));

    for (std::size_t fn = 0; fn < cfg.functions; ++fn)
        for (std::size_t t = 0; t < warmup; ++t)
            step(states[fn], fn, t);

    const std::size_t total =
        cfg.functions * cfg.intervals;
    std::vector<double> checksums(std::max<std::size_t>(1, cfg.threads),
                                  0.0);

    const long long allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto start = Clock::now();

    if (cfg.threads <= 1) {
        double acc = 0.0;
        for (std::size_t t = 0; t < cfg.intervals; ++t)
            for (std::size_t fn = 0; fn < cfg.functions; ++fn)
                acc += step(states[fn], fn, warmup + t);
        checksums[0] = acc;
    } else {
        // Shard functions across threads; each thread walks its own
        // predictors through every interval (the parallel-runner
        // geometry: functions are independent, intervals are not).
        std::vector<std::thread> workers;
        workers.reserve(cfg.threads);
        for (std::size_t w = 0; w < cfg.threads; ++w) {
            workers.emplace_back([&, w]() {
                double acc = 0.0;
                for (std::size_t fn = w; fn < cfg.functions;
                     fn += cfg.threads) {
                    for (std::size_t t = 0; t < cfg.intervals; ++t)
                        acc += step(states[fn], fn, warmup + t);
                }
                checksums[w] = acc;
            });
        }
        for (auto &worker : workers)
            worker.join();
    }

    const auto stop = Clock::now();
    const long long allocs_after =
        g_alloc_count.load(std::memory_order_relaxed);

    ModeResult result;
    result.ns_per_forecast =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(total);
    result.allocs_per_forecast =
        static_cast<double>(allocs_after - allocs_before) /
        static_cast<double>(total);
    result.checksum =
        std::accumulate(checksums.begin(), checksums.end(), 0.0);
    return result;
}

/**
 * Steady-state allocation probe: one predictor on a fixed-spectrum
 * stream, counted after every workspace capacity has converged. This
 * is the zero-allocation claim the smoke gate enforces; the grid's
 * allocs/forecast column additionally amortises one-off capacity
 * growth (new peak-count maxima) over the run.
 */
double
steadyStateAllocs(const BenchConfig &cfg, bool incremental)
{
    iceb::predictors::FftPredictorConfig fip;
    fip.window = cfg.window;
    fip.incremental_spectrum = incremental;
    iceb::predictors::FftPredictor predictor(fip);
    std::vector<double> out;
    for (std::size_t t = 0; t < cfg.window + 128; ++t) {
        predictor.observe(signalAt(3, t));
        predictor.forecastHorizon(cfg.horizon, out);
    }
    const int iters = 512;
    const long long before =
        g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < iters; ++i) {
        predictor.observe(
            signalAt(3, cfg.window + 128 + static_cast<std::size_t>(i)));
        predictor.forecastHorizon(cfg.horizon, out);
    }
    const long long after =
        g_alloc_count.load(std::memory_order_relaxed);
    return static_cast<double>(after - before) / iters;
}

/** Raw non-power-of-two real-FFT kernel: per-call Bluestein vs plan. */
void
benchFftKernel(const BenchConfig &cfg, double &legacy_ns, double &plan_ns)
{
    std::vector<double> series(cfg.window);
    for (std::size_t t = 0; t < cfg.window; ++t)
        series[t] = signalAt(1, t);

    const int iters = cfg.smoke ? 50 : 2000;
    double sink = 0.0;

    auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        series[0] = static_cast<double>(i % 17);
        sink += std::abs(legacy::fftReal(series)[3]);
    }
    auto t1 = Clock::now();
    legacy_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;

    const auto plan = iceb::math::fftPlanFor(cfg.window);
    iceb::math::FftScratch scratch;
    std::vector<iceb::math::Complex> spectrum(cfg.window);
    // Prime the scratch so the timed loop is allocation-free.
    plan->forwardReal(series.data(), spectrum.data(), scratch);

    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        series[0] = static_cast<double>(i % 17);
        plan->forwardReal(series.data(), spectrum.data(), scratch);
        sink += std::abs(spectrum[3]);
    }
    t1 = Clock::now();
    plan_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;

    if (sink == 42.0)
        std::cout << "";
}

/**
 * Forecast-agreement sweep (independent of the timed runs): walks one
 * function's stream through all three predictors and records the
 * worst per-step divergence. plan-vs-legacy must be exactly zero;
 * incremental-vs-plan must stay within 1e-6.
 */
void
checkAgreement(const BenchConfig &cfg, double &plan_vs_legacy,
               double &incremental_vs_plan)
{
    iceb::predictors::FftPredictorConfig fip;
    fip.window = cfg.window;
    legacy::Predictor old_p(fip);
    iceb::predictors::FftPredictor plan_p(fip);
    iceb::predictors::FftPredictorConfig inc_cfg = fip;
    inc_cfg.incremental_spectrum = true;
    iceb::predictors::FftPredictor inc_p(inc_cfg);

    plan_vs_legacy = 0.0;
    incremental_vs_plan = 0.0;
    std::vector<double> plan_out, inc_out;
    const std::size_t steps = cfg.window + (cfg.smoke ? 40 : 200);
    for (std::size_t t = 0; t < steps; ++t) {
        const double v = signalAt(3, t);
        old_p.observe(v);
        plan_p.observe(v);
        inc_p.observe(v);
        const std::vector<double> old_out =
            old_p.forecastHorizon(cfg.horizon);
        plan_p.forecastHorizon(cfg.horizon, plan_out);
        inc_p.forecastHorizon(cfg.horizon, inc_out);
        for (std::size_t h = 0; h < cfg.horizon; ++h) {
            plan_vs_legacy = std::max(
                plan_vs_legacy, std::fabs(plan_out[h] - old_out[h]));
            incremental_vs_plan = std::max(
                incremental_vs_plan, std::fabs(inc_out[h] - plan_out[h]));
        }
    }
}

// ---------------------------------------------------------------------------
// Batch section: the ForecastPool SoA engine vs a scalar predictor
// fleet at --batch-functions scale.
// ---------------------------------------------------------------------------

struct BatchResult
{
    std::size_t functions = 0;
    std::size_t intervals = 0;
    /** Functions the scalar fleet actually timed/verified (capped so
     * a 1M-function batch run does not also build 1M scalar
     * predictor objects; per-forecast scalar cost is scale-free). */
    std::size_t scalar_sample = 0;
    double scalar_ns = 0.0;
    double exact_ns = 0.0;
    double fast_ns = 0.0;
    double exact_diff = 0.0; //!< max |pool_exact - scalar| (gate: 0)
    long long exact_bit_mismatches = 0;
    double fast_diff = 0.0; //!< max |pool_fast - scalar| (gate: 1e-9)
    double steady_allocs = 0.0; //!< pool allocs per (function,interval)
};

BatchResult
runBatch(const BenchConfig &cfg)
{
    using iceb::predictors::FftPredictor;
    using iceb::predictors::FftPredictorConfig;
    using iceb::predictors::ForecastPool;
    using iceb::predictors::ForecastPoolOptions;

    BatchResult r;
    r.functions = cfg.batch_functions;
    r.intervals = cfg.batch_intervals;
    r.scalar_sample =
        std::min<std::size_t>(cfg.batch_functions, 65536);

    FftPredictorConfig fip;
    fip.window = cfg.window;

    ForecastPoolOptions exact_opts;
    ForecastPool pool_exact(exact_opts);
    ForecastPoolOptions fast_opts;
    fast_opts.fast_path = true;
    ForecastPool pool_fast(fast_opts);
    std::vector<FftPredictor> scalar;
    scalar.reserve(r.scalar_sample);
    for (std::size_t fn = 0; fn < cfg.batch_functions; ++fn) {
        pool_exact.addFunction(fip);
        pool_fast.addFunction(fip);
        if (fn < r.scalar_sample)
            scalar.emplace_back(fip);
    }

    // Fill every history to a full window (untimed), then one warm
    // forecast per mode so workspace capacities converge before the
    // timed rounds.
    const std::size_t warm = cfg.window + 8;
    for (std::size_t t = 0; t < warm; ++t) {
        for (std::size_t fn = 0; fn < cfg.batch_functions; ++fn) {
            const double v = signalAt(fn, t);
            pool_exact.observe(fn, v);
            pool_fast.observe(fn, v);
            if (fn < r.scalar_sample)
                scalar[fn].observe(v);
        }
    }
    pool_exact.forecastAll(cfg.horizon);
    pool_fast.forecastAll(cfg.horizon);
    std::vector<double> out;
    for (std::size_t fn = 0; fn < r.scalar_sample; ++fn)
        scalar[fn].forecastHorizon(cfg.horizon, out);

    // Timed rounds: observe one interval per function, then forecast
    // the fleet. All three modes walk the same observation stream so
    // the post-timing states line up for the equivalence sweep.
    const std::size_t rounds = cfg.batch_intervals;

    auto t0 = Clock::now();
    for (std::size_t rd = 0; rd < rounds; ++rd) {
        for (std::size_t fn = 0; fn < r.scalar_sample; ++fn) {
            scalar[fn].observe(signalAt(fn, warm + rd));
            scalar[fn].forecastHorizon(cfg.horizon, out);
        }
    }
    auto t1 = Clock::now();
    r.scalar_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(r.scalar_sample * rounds);

    t0 = Clock::now();
    for (std::size_t rd = 0; rd < rounds; ++rd) {
        for (std::size_t fn = 0; fn < cfg.batch_functions; ++fn)
            pool_exact.observe(fn, signalAt(fn, warm + rd));
        pool_exact.forecastAll(cfg.horizon);
    }
    t1 = Clock::now();
    r.exact_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(cfg.batch_functions * rounds);

    t0 = Clock::now();
    for (std::size_t rd = 0; rd < rounds; ++rd) {
        for (std::size_t fn = 0; fn < cfg.batch_functions; ++fn)
            pool_fast.observe(fn, signalAt(fn, warm + rd));
        pool_fast.forecastAll(cfg.horizon);
    }
    t1 = Clock::now();
    r.fast_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(cfg.batch_functions * rounds);

    // Equivalence sweep over a bounded subset (the scalar forecast is
    // recomputed from the identical post-timing history; the pools'
    // last forecastAll covers the same history).
    const std::size_t check =
        std::min<std::size_t>(r.scalar_sample, 4096);
    for (std::size_t fn = 0; fn < check; ++fn) {
        scalar[fn].forecastHorizon(cfg.horizon, out);
        const double *exact = pool_exact.forecast(fn);
        const double *fast = pool_fast.forecast(fn);
        for (std::size_t h = 0; h < cfg.horizon; ++h) {
            r.exact_diff = std::max(r.exact_diff,
                                    std::fabs(exact[h] - out[h]));
            if (std::memcmp(&exact[h], &out[h], sizeof(double)) != 0)
                ++r.exact_bit_mismatches;
            r.fast_diff =
                std::max(r.fast_diff, std::fabs(fast[h] - out[h]));
        }
    }

    // Steady-state allocation probe: one more observe+forecastAll
    // round per pool must not allocate at all.
    const long long before =
        g_alloc_count.load(std::memory_order_relaxed);
    for (std::size_t fn = 0; fn < cfg.batch_functions; ++fn) {
        pool_exact.observe(fn, signalAt(fn, warm + rounds));
        pool_fast.observe(fn, signalAt(fn, warm + rounds));
    }
    pool_exact.forecastAll(cfg.horizon);
    pool_fast.forecastAll(cfg.horizon);
    const long long after =
        g_alloc_count.load(std::memory_order_relaxed);
    r.steady_allocs = static_cast<double>(after - before) /
        static_cast<double>(cfg.batch_functions);
    return r;
}

/**
 * FNV-1a digest of the geometry a batch measurement depends on. The
 * baseline gate refuses to compare runs whose digests disagree, so a
 * committed BENCH_fip.json can never silently gate a differently
 * configured run (the staleness failure mode this replaces).
 */
std::string
configDigest(std::size_t window, std::size_t horizon,
             std::size_t batch_functions, std::size_t batch_intervals)
{
    char text[128];
    std::snprintf(text, sizeof(text),
                  "window=%zu;horizon=%zu;batch_functions=%zu;"
                  "batch_intervals=%zu",
                  window, horizon, batch_functions, batch_intervals);
    unsigned long long hash = 1469598103934665603ull;
    for (const char *p = text; *p != '\0'; ++p) {
        hash ^= static_cast<unsigned char>(*p);
        hash *= 1099511628211ull;
    }
    char out[32];
    std::snprintf(out, sizeof(out), "0x%016llx", hash);
    return out;
}

/** Fields the baseline gate reads from a committed BENCH_fip.json. */
struct Baseline
{
    std::size_t window = 0;
    std::size_t horizon = 0;
    std::size_t batch_functions = 0;
    std::size_t batch_intervals = 0;
    double speedup_fast_vs_scalar = 0.0;
    std::string digest;
};

/** Flat string scan (the file is written by this bench itself). */
Baseline
readBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_fip: cannot read baseline %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

    const auto number = [&](const std::string &key, std::size_t from,
                            const char *what) -> double {
        const std::size_t pos = text.find(key, from);
        if (pos == std::string::npos) {
            std::fprintf(stderr,
                         "bench_fip: baseline %s has no %s -- "
                         "regenerate it with a batch-mode run\n",
                         path.c_str(), what);
            std::exit(1);
        }
        return std::strtod(text.c_str() + pos + key.size(), nullptr);
    };

    Baseline base;
    base.window = static_cast<std::size_t>(
        number("\"window\":", 0, "window"));
    base.horizon = static_cast<std::size_t>(
        number("\"horizon\":", 0, "horizon"));
    const std::size_t batch_pos = text.find("\"batch\":");
    if (batch_pos == std::string::npos) {
        std::fprintf(stderr,
                     "bench_fip: baseline %s has no batch section -- "
                     "regenerate it with a batch-mode run\n",
                     path.c_str());
        std::exit(1);
    }
    base.batch_functions = static_cast<std::size_t>(
        number("\"functions\":", batch_pos, "batch functions"));
    base.batch_intervals = static_cast<std::size_t>(
        number("\"intervals\":", batch_pos, "batch intervals"));
    base.speedup_fast_vs_scalar = number("\"speedup_fast_vs_scalar\":",
                                         batch_pos,
                                         "speedup_fast_vs_scalar");

    const std::string digest_key = "\"config_digest\": \"";
    const std::size_t digest_pos = text.find(digest_key);
    if (digest_pos == std::string::npos) {
        std::fprintf(stderr,
                     "bench_fip: baseline %s has no config_digest -- "
                     "regenerate it with a batch-mode run\n",
                     path.c_str());
        std::exit(1);
    }
    const std::size_t digest_start = digest_pos + digest_key.size();
    const std::size_t digest_end = text.find('"', digest_start);
    base.digest = text.substr(digest_start, digest_end - digest_start);
    return base;
}

void
writeJson(const BenchConfig &cfg, const ModeResult &legacy_r,
          const ModeResult &plan_r, const ModeResult &inc_r,
          double fft_legacy_ns, double fft_plan_ns,
          double plan_vs_legacy, double incremental_vs_plan,
          double steady_allocs_plan, double steady_allocs_inc,
          const BatchResult &batch)
{
    std::ofstream out(cfg.json_path);
    if (!out) {
        std::cerr << "cannot write " << cfg.json_path << "\n";
        std::exit(1);
    }
    out << "{\n";
    out << "  \"bench\": \"bench_fip\",\n";
    out << "  \"functions\": " << cfg.functions << ",\n";
    out << "  \"intervals\": " << cfg.intervals << ",\n";
    out << "  \"window\": " << cfg.window << ",\n";
    out << "  \"horizon\": " << cfg.horizon << ",\n";
    out << "  \"threads\": " << cfg.threads << ",\n";
    out << "  \"fft_real_non_pow2\": {\n";
    out << "    \"legacy_ns\": " << fft_legacy_ns << ",\n";
    out << "    \"plan_ns\": " << fft_plan_ns << ",\n";
    out << "    \"speedup\": " << fft_legacy_ns / fft_plan_ns << "\n";
    out << "  },\n";
    const auto mode = [&](const char *name, const ModeResult &r,
                          bool last) {
        out << "  \"" << name << "\": {\n";
        out << "    \"ns_per_forecast\": " << r.ns_per_forecast << ",\n";
        out << "    \"allocs_per_forecast\": " << r.allocs_per_forecast
            << ",\n";
        out << "    \"speedup_vs_legacy\": "
            << legacy_r.ns_per_forecast / r.ns_per_forecast << "\n";
        out << "  }" << (last ? "\n" : ",\n");
    };
    mode("legacy", legacy_r, false);
    mode("plan", plan_r, false);
    mode("incremental", inc_r, false);
    out << "  \"steady_state_allocs\": {\n";
    out << "    \"plan\": " << steady_allocs_plan << ",\n";
    out << "    \"incremental\": " << steady_allocs_inc << "\n";
    out << "  },\n";
    out << "  \"max_abs_diff\": {\n";
    out << "    \"plan_vs_legacy\": " << plan_vs_legacy << ",\n";
    out << "    \"incremental_vs_plan\": " << incremental_vs_plan << "\n";
    out << "  },\n";
    out << "  \"batch\": {\n";
    out << "    \"functions\": " << batch.functions << ",\n";
    out << "    \"intervals\": " << batch.intervals << ",\n";
    out << "    \"scalar_sample_functions\": " << batch.scalar_sample
        << ",\n";
    out << "    \"scalar_ns_per_forecast\": " << batch.scalar_ns
        << ",\n";
    out << "    \"exact_ns_per_forecast\": " << batch.exact_ns << ",\n";
    out << "    \"fast_ns_per_forecast\": " << batch.fast_ns << ",\n";
    out << "    \"scalar_forecasts_per_sec\": "
        << 1e9 / batch.scalar_ns << ",\n";
    out << "    \"exact_forecasts_per_sec\": " << 1e9 / batch.exact_ns
        << ",\n";
    out << "    \"fast_forecasts_per_sec\": " << 1e9 / batch.fast_ns
        << ",\n";
    out << "    \"speedup_exact_vs_scalar\": "
        << batch.scalar_ns / batch.exact_ns << ",\n";
    out << "    \"speedup_fast_vs_scalar\": "
        << batch.scalar_ns / batch.fast_ns << ",\n";
    out << "    \"max_abs_diff_exact\": " << batch.exact_diff << ",\n";
    out << "    \"max_abs_diff_fast\": " << batch.fast_diff << ",\n";
    out << "    \"steady_state_allocs\": " << batch.steady_allocs
        << "\n";
    out << "  },\n";
    out << "  \"config_digest\": \""
        << configDigest(cfg.window, cfg.horizon, batch.functions,
                        batch.intervals)
        << "\"\n";
    out << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--functions") {
            cfg.functions = std::stoul(next());
        } else if (arg == "--intervals") {
            cfg.intervals = std::stoul(next());
        } else if (arg == "--window") {
            cfg.window = std::stoul(next());
        } else if (arg == "--threads") {
            cfg.threads = std::max<std::size_t>(1, std::stoul(next()));
        } else if (arg == "--batch-functions") {
            cfg.batch_functions = std::clamp<std::size_t>(
                std::stoul(next()), 1, 1000000);
        } else if (arg == "--batch-intervals") {
            cfg.batch_intervals =
                std::max<std::size_t>(1, std::stoul(next()));
        } else if (arg == "--json") {
            cfg.json_path = next();
        } else if (arg == "--baseline") {
            cfg.baseline_path = next();
        } else if (arg == "--smoke") {
            cfg.smoke = true;
        } else {
            std::cerr << "usage: bench_fip [--functions N]"
                      << " [--intervals N] [--window N] [--threads N]"
                      << " [--batch-functions N] [--batch-intervals N]"
                      << " [--json PATH] [--baseline PATH] [--smoke]\n";
            return arg == "--help" ? 0 : 2;
        }
    }
    if (cfg.smoke) {
        cfg.functions = std::min<std::size_t>(cfg.functions, 4);
        cfg.intervals = std::min<std::size_t>(cfg.intervals, 60);
        cfg.batch_functions =
            std::min<std::size_t>(cfg.batch_functions, 512);
        cfg.batch_intervals =
            std::min<std::size_t>(cfg.batch_intervals, 2);
    }

    // The baseline gate compares like against like: the batch section
    // re-runs at the committed geometry (overriding --smoke's clamp),
    // and a baseline whose digest disagrees with its own recorded
    // geometry -- or whose window/horizon disagree with this run -- is
    // refused rather than silently compared.
    Baseline baseline;
    if (!cfg.baseline_path.empty()) {
        baseline = readBaseline(cfg.baseline_path);
        const std::string expect = configDigest(
            baseline.window, baseline.horizon, baseline.batch_functions,
            baseline.batch_intervals);
        if (baseline.digest != expect) {
            std::fprintf(stderr,
                         "FAIL: baseline %s is stale: config_digest %s"
                         " does not match its recorded geometry"
                         " (expected %s) -- regenerate the baseline\n",
                         cfg.baseline_path.c_str(),
                         baseline.digest.c_str(), expect.c_str());
            return 1;
        }
        if (baseline.window != cfg.window ||
            baseline.horizon != cfg.horizon) {
            std::fprintf(stderr,
                         "FAIL: baseline %s was measured at window=%zu"
                         " horizon=%zu but this run uses window=%zu"
                         " horizon=%zu -- refusing to compare"
                         " mismatched configs\n",
                         cfg.baseline_path.c_str(), baseline.window,
                         baseline.horizon, cfg.window, cfg.horizon);
            return 1;
        }
        cfg.batch_functions = baseline.batch_functions;
        cfg.batch_intervals = baseline.batch_intervals;
    }

    iceb::predictors::FftPredictorConfig fip;
    fip.window = cfg.window;

    // Allocation accounting needs the single-threaded grid; with
    // --threads the timed region still reports the aggregate rate,
    // which stays meaningful because predictors are thread-local.
    const auto legacy_r = runGrid(
        cfg,
        [&](std::size_t) { return legacy::Predictor(fip); },
        [&](legacy::Predictor &p, std::size_t fn, std::size_t t) {
            p.observe(signalAt(fn, t));
            return p.forecastHorizon(cfg.horizon).front();
        });

    struct PlanState
    {
        iceb::predictors::FftPredictor predictor;
        std::vector<double> out;
    };
    const auto plan_r = runGrid(
        cfg,
        [&](std::size_t) { return PlanState{
            iceb::predictors::FftPredictor(fip), {}}; },
        [&](PlanState &s, std::size_t fn, std::size_t t) {
            s.predictor.observe(signalAt(fn, t));
            s.predictor.forecastHorizon(cfg.horizon, s.out);
            return s.out.front();
        });

    iceb::predictors::FftPredictorConfig inc_cfg = fip;
    inc_cfg.incremental_spectrum = true;
    const auto inc_r = runGrid(
        cfg,
        [&](std::size_t) { return PlanState{
            iceb::predictors::FftPredictor(inc_cfg), {}}; },
        [&](PlanState &s, std::size_t fn, std::size_t t) {
            s.predictor.observe(signalAt(fn, t));
            s.predictor.forecastHorizon(cfg.horizon, s.out);
            return s.out.front();
        });

    double fft_legacy_ns = 0.0, fft_plan_ns = 0.0;
    benchFftKernel(cfg, fft_legacy_ns, fft_plan_ns);

    double plan_vs_legacy = 0.0, incremental_vs_plan = 0.0;
    checkAgreement(cfg, plan_vs_legacy, incremental_vs_plan);

    const double steady_allocs_plan = steadyStateAllocs(cfg, false);
    const double steady_allocs_inc = steadyStateAllocs(cfg, true);

    const BatchResult batch = runBatch(cfg);

    std::printf("bench_fip: %zu functions x %zu intervals, window %zu"
                " (non-pow2: %s), horizon %zu, threads %zu\n",
                cfg.functions, cfg.intervals, cfg.window,
                iceb::math::isPowerOfTwo(cfg.window) ? "no" : "yes",
                cfg.horizon, cfg.threads);
    std::printf("  %-12s %10s %12s %10s\n", "mode", "ns/fcast",
                "allocs/fcast", "speedup");
    std::printf("  %-12s %10.0f %12.2f %10s\n", "legacy",
                legacy_r.ns_per_forecast, legacy_r.allocs_per_forecast,
                "1.00x");
    std::printf("  %-12s %10.0f %12.2f %9.2fx\n", "plan",
                plan_r.ns_per_forecast, plan_r.allocs_per_forecast,
                legacy_r.ns_per_forecast / plan_r.ns_per_forecast);
    std::printf("  %-12s %10.0f %12.2f %9.2fx\n", "incremental",
                inc_r.ns_per_forecast, inc_r.allocs_per_forecast,
                legacy_r.ns_per_forecast / inc_r.ns_per_forecast);
    std::printf("  fftReal(%zu): legacy %.0f ns, plan %.0f ns"
                " (%.2fx)\n",
                cfg.window, fft_legacy_ns, fft_plan_ns,
                fft_legacy_ns / fft_plan_ns);
    std::printf("  steady-state allocs: plan %.3f, incremental %.3f\n",
                steady_allocs_plan, steady_allocs_inc);
    std::printf("  max |diff|: plan vs legacy %.3g,"
                " incremental vs plan %.3g\n",
                plan_vs_legacy, incremental_vs_plan);

    std::printf("batch: %zu functions x %zu intervals (scalar fleet"
                " sampled at %zu)\n",
                batch.functions, batch.intervals, batch.scalar_sample);
    std::printf("  %-12s %10s %16s %10s\n", "mode", "ns/fcast",
                "forecasts/sec", "speedup");
    std::printf("  %-12s %10.0f %16.0f %10s\n", "scalar",
                batch.scalar_ns, 1e9 / batch.scalar_ns, "1.00x");
    std::printf("  %-12s %10.0f %16.0f %9.2fx\n", "pool-exact",
                batch.exact_ns, 1e9 / batch.exact_ns,
                batch.scalar_ns / batch.exact_ns);
    std::printf("  %-12s %10.0f %16.0f %9.2fx\n", "pool-fast",
                batch.fast_ns, 1e9 / batch.fast_ns,
                batch.scalar_ns / batch.fast_ns);
    std::printf("  max |diff|: exact %.3g (%lld bit mismatches),"
                " fast %.3g; steady-state allocs %.4f\n",
                batch.exact_diff, batch.exact_bit_mismatches,
                batch.fast_diff, batch.steady_allocs);

    writeJson(cfg, legacy_r, plan_r, inc_r, fft_legacy_ns, fft_plan_ns,
              plan_vs_legacy, incremental_vs_plan, steady_allocs_plan,
              steady_allocs_inc, batch);
    std::printf("  wrote %s\n", cfg.json_path.c_str());

    if (cfg.smoke) {
        // Correctness gates only; absolute timings vary with the CI
        // machine and are reported, not enforced.
        bool ok = true;
        if (steady_allocs_plan > 0.0) {
            std::fprintf(stderr,
                         "FAIL: plan path allocates in steady state"
                         " (%.3f allocs/forecast)\n",
                         steady_allocs_plan);
            ok = false;
        }
        if (plan_vs_legacy > 1e-9) {
            // The complex FFT plans are bit-identical to legacy; the
            // real-input packing reorders roundoff, so end-to-end
            // forecasts may differ at the 1e-12 scale.
            std::fprintf(stderr,
                         "FAIL: plan path diverges from legacy"
                         " (max |diff| %.3g)\n",
                         plan_vs_legacy);
            ok = false;
        }
        if (incremental_vs_plan > 1e-6) {
            std::fprintf(stderr,
                         "FAIL: incremental mode outside 1e-6"
                         " (max |diff| %.3g)\n",
                         incremental_vs_plan);
            ok = false;
        }
        if (batch.exact_bit_mismatches != 0) {
            std::fprintf(stderr,
                         "FAIL: batched exact mode is not bit-identical"
                         " to the scalar predictor (%lld mismatches,"
                         " max |diff| %.3g)\n",
                         batch.exact_bit_mismatches, batch.exact_diff);
            ok = false;
        }
        if (batch.fast_diff > 1e-9) {
            std::fprintf(stderr,
                         "FAIL: batched fast mode outside 1e-9"
                         " (max |diff| %.3g)\n",
                         batch.fast_diff);
            ok = false;
        }
        if (batch.steady_allocs > 0.0) {
            std::fprintf(stderr,
                         "FAIL: forecast pool allocates in steady state"
                         " (%.4f allocs per function-interval)\n",
                         batch.steady_allocs);
            ok = false;
        }
        if (!ok)
            return 1;
        std::printf("  smoke gates passed\n");
    }

    if (!cfg.baseline_path.empty()) {
        // Same reasoning as bench_sim's gate: the ratio of two rates
        // measured back to back in one process cancels machine speed,
        // and contention can only depress a measured speedup, so on a
        // miss we re-measure and keep the best round -- noise is shed
        // while a genuine regression fails every round.
        const double floor = baseline.speedup_fast_vs_scalar * 0.98;
        double best = batch.scalar_ns / batch.fast_ns;
        for (int round = 2; best < floor && round <= 5; ++round) {
            const BatchResult again = runBatch(cfg);
            const double speedup = again.scalar_ns / again.fast_ns;
            std::printf("gate re-measure round %d: %.3f\n", round,
                        speedup);
            best = std::max(best, speedup);
        }
        std::printf("baseline batch speedup %.3f -> floor %.3f (-2%%),"
                    " measured %.3f\n",
                    baseline.speedup_fast_vs_scalar, floor, best);
        if (best < floor) {
            std::fprintf(stderr,
                         "FAIL: batch fast-vs-scalar speedup regressed"
                         " more than 2%% below the committed"
                         " baseline\n");
            return 1;
        }
    }
    return 0;
}
