/**
 * @file
 * Reproduces Fig. 2: using one Azure-like function running the
 * StatelessCost profile,
 *   (a) warm-start fraction as a function of the fixed keep-alive
 *       window;
 *   (b) keep-alive cost and mean service time on high-end only with
 *       a 10-minute window;
 *   (c) the hand-constructed heterogeneous policy (short stay on
 *       high-end, longer keep-alive carried by the low-end tier);
 *   (d) low-end only, with the window stretched until service time
 *       matches (c) -- at visibly higher keep-alive cost.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "policies/openwhisk_policy.hh"
#include "policies/policy_util.hh"
#include "sim/simulator.hh"
#include "trace/synthetic.hh"
#include "workload/benchmark_suite.hh"

namespace
{

using namespace iceb;

/**
 * One function over a day whose bursts arrive every 12 +- 3 minutes:
 * inter-arrivals straddle the 10-minute fixed window, so -- like the
 * paper's example -- a 10-minute keep-alive catches only a minority
 * of invocations warm while modestly longer coverage catches most.
 */
trace::Trace
singleFunctionTrace()
{
    const std::size_t n = 1440;
    trace::FunctionSeries series;
    series.name = "fig2-example";
    series.cls = trace::FunctionClass::Periodic;
    series.memory_mb = 256;
    series.avg_exec_ms = 1200;
    series.concurrency.assign(n, 0);
    iceb::Rng rng(0xF162);
    std::size_t t = 3;
    while (t + 1 < n) {
        series.concurrency[t] = 2;
        series.concurrency[t + 1] = 1;
        t += static_cast<std::size_t>(12 + rng.uniformInt(-3, 3));
    }
    trace::Trace tr(n, kMsPerMinute);
    tr.addFunction(std::move(series));
    return tr;
}

std::vector<workload::FunctionProfile>
statelessProfiles()
{
    return {workload::statelessCostProfile()};
}

/** Cluster with a single tier populated. */
sim::ClusterConfig
oneTier(Tier tier)
{
    sim::ClusterConfig config = sim::defaultHeterogeneousCluster();
    config.spec(otherTier(tier)).server_count = 0;
    return config;
}

/**
 * The hand-constructed Fig. 2(c) policy: after execution the
 * container stays briefly on its (high-end) server, while the
 * low-end tier carries a warm instance for the following stretch of
 * the idle period.
 */
class HandHeterogeneousPolicy : public sim::Policy
{
  public:
    HandHeterogeneousPolicy(TimeMs high_ms, TimeMs low_ms)
        : high_ms_(high_ms), low_ms_(low_ms)
    {
    }

    const char *name() const override { return "hand-heterogeneous"; }

    void
    onIntervalObserved(const sim::IntervalObservation &closed) override
    {
        if (closed.arrivalsFor(0) > 0)
            last_arrival_ = closed.interval;
    }

    void
    onIntervalStart(IntervalIndex interval,
                    sim::WarmupInterface &cluster) override
    {
        (void)interval;
        // While inside (high window, high+low window] minutes since
        // the last arrival, hold one warm instance on the low tier.
        if (last_arrival_ < 0)
            return;
        const TimeMs since = cluster.now() -
            last_arrival_ * ctx_->interval_ms;
        if (since > high_ms_ && since <= high_ms_ + low_ms_) {
            cluster.ensureWarm(0, Tier::LowEnd, 1,
                               cluster.now() + ctx_->interval_ms +
                                   policies::kRenewalGraceMs);
        }
    }

    void
    initialize(const sim::SimContext &ctx) override
    {
        Policy::initialize(ctx);
        last_arrival_ = -1;
    }

    TimeMs
    keepAliveAfterExecutionMs(FunctionId fn, Tier tier, TimeMs now)
        override
    {
        (void)fn;
        (void)now;
        return tier == Tier::HighEnd ? high_ms_ : low_ms_;
    }

  private:
    TimeMs high_ms_;
    TimeMs low_ms_;
    IntervalIndex last_arrival_ = -1;
};

struct Cell
{
    Dollars keep_alive = 0.0;
    double service_ms = 0.0;
    double warm = 0.0;
};

Cell
runFixed(const trace::Trace &tr, const sim::ClusterConfig &cluster,
         TimeMs keep_alive_ms)
{
    policies::OpenWhiskPolicy policy(keep_alive_ms);
    const sim::SimulationMetrics m = sim::runSimulation(
        tr, statelessProfiles(), cluster, policy);
    return {m.totalKeepAliveCost(), m.meanServiceMs(),
            m.warmStartFraction()};
}

} // namespace

int
main()
{
    const trace::Trace tr = singleFunctionTrace();

    // (a) Warm-start fraction vs keep-alive window (high-end only).
    TextTable fig2a("Fig. 2(a): warm starts vs keep-alive window "
                    "(single function, high-end)");
    fig2a.setHeader({"window (min)", "warm starts"});
    const sim::ClusterConfig high_only = oneTier(Tier::HighEnd);
    for (TimeMs minutes : {1, 2, 5, 10, 15, 20, 25}) {
        const Cell cell =
            runFixed(tr, high_only, minutes * kMsPerMinute);
        fig2a.addRow({std::to_string(minutes),
                      TextTable::pct(cell.warm)});
    }
    fig2a.print(std::cout);

    // (b) high-end only, 10-minute window.
    const Cell high10 = runFixed(tr, high_only, 10 * kMsPerMinute);

    // (c) hand-built heterogeneous: 5 min high-end + 10 min low-end.
    HandHeterogeneousPolicy hand(5 * kMsPerMinute, 10 * kMsPerMinute);
    const sim::SimulationMetrics hand_m = sim::runSimulation(
        tr, statelessProfiles(), sim::defaultHeterogeneousCluster(),
        hand);

    // (d) low-end only; window stretched until service matches (c).
    const sim::ClusterConfig low_only = oneTier(Tier::LowEnd);
    Cell low_match;
    TimeMs low_window = 0;
    for (TimeMs minutes = 10; minutes <= 40; ++minutes) {
        low_match = runFixed(tr, low_only, minutes * kMsPerMinute);
        low_window = minutes;
        if (low_match.service_ms <= hand_m.meanServiceMs())
            break;
    }

    const double base_cost = high10.keep_alive;
    TextTable fig2bcd("Fig. 2(b)-(d): keep-alive cost (% of high-end "
                      "10-min case) and service time");
    fig2bcd.setHeader({"configuration", "keep-alive", "service (ms)",
                       "warm starts"});
    fig2bcd.addRow({"(b) high-end only, 10 min",
                    TextTable::pct(1.0),
                    TextTable::num(high10.service_ms, 0),
                    TextTable::pct(high10.warm)});
    fig2bcd.addRow({"(c) heterogeneous 5 min high + 10 min low",
                    TextTable::pct(hand_m.totalKeepAliveCost() /
                                   base_cost),
                    TextTable::num(hand_m.meanServiceMs(), 0),
                    TextTable::pct(hand_m.warmStartFraction())});
    fig2bcd.addRow({"(d) low-end only, " + std::to_string(low_window) +
                        " min",
                    TextTable::pct(low_match.keep_alive / base_cost),
                    TextTable::num(low_match.service_ms, 0),
                    TextTable::pct(low_match.warm)});
    fig2bcd.print(std::cout);

    std::cout << "\nShape check: (c) should undercut (b) on both "
                 "columns; (d) needs a much\nlonger window and more "
                 "keep-alive spend to chase (c)'s service time.\n";
    return 0;
}
