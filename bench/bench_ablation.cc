/**
 * @file
 * Ablation study of IceBreaker's design choices (the DESIGN.md Sec. 5
 * list): dynamic cut-offs, the ping-pong safeguard, the large-memory
 * safeguard, the self-correcting concurrency margin, and the
 * prediction-driven keep-alive extension. Each variant disables one
 * mechanism and reruns the standard workload; the full configuration
 * should dominate or tie each ablated one on the combined objective.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/icebreaker.hh"
#include "sim/simulator.hh"

namespace
{

using namespace iceb;

struct Variant
{
    const char *name;
    core::IceBreakerConfig config;
};

} // namespace

int
main()
{
    const harness::Workload workload = bench::standardWorkload(300, 600);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // Baseline for the improvement columns.
    const auto base = harness::runScheme(harness::Scheme::OpenWhisk,
                                         workload, cluster);

    std::vector<Variant> variants;
    variants.push_back({"full IceBreaker", {}});
    {
        core::IceBreakerConfig config;
        config.pdm.enable_dynamic_cutoffs = false;
        variants.push_back({"static cut-offs", config});
    }
    {
        core::IceBreakerConfig config;
        config.pdm.enable_ping_pong_guard = false;
        variants.push_back({"no ping-pong guard", config});
    }
    {
        core::IceBreakerConfig config;
        config.pdm.enable_large_memory_guard = false;
        variants.push_back({"no large-memory guard", config});
    }
    {
        core::IceBreakerConfig config;
        config.count_deadband = 0.5; // plain rounding, no margin bias
        variants.push_back({"unbiased instance counts", config});
    }
    {
        core::IceBreakerConfig config;
        config.keep_alive_horizon = 0; // boundary-only keep-alive
        variants.push_back({"no predicted-gap keep-alive", config});
    }
    {
        core::IceBreakerConfig config;
        config.fip.harmonics = 3;
        variants.push_back({"3 harmonics instead of 10", config});
    }
    {
        core::IceBreakerConfig config;
        config.fip.window = 60;
        variants.push_back({"1-hour FIP window", config});
    }

    TextTable table("IceBreaker ablations (improvements over the "
                    "OpenWhisk baseline)");
    table.setHeader({"variant", "ka impr.", "svc impr.", "warm"});
    for (const auto &variant : variants) {
        core::IceBreakerPolicy policy(variant.config);
        const sim::SimulationMetrics m = sim::runSimulation(
            workload.trace, workload.profiles, cluster, policy);
        table.addRow({
            variant.name,
            TextTable::pct(harness::improvementOver(
                base.metrics.totalKeepAliveCost(),
                m.totalKeepAliveCost())),
            TextTable::pct(harness::improvementOver(
                base.metrics.meanServiceMs(), m.meanServiceMs())),
            TextTable::pct(m.warmStartFraction()),
        });
    }
    table.print(std::cout);

    std::cout << "\nReading guide: each row disables one mechanism; "
                 "regressions against the\nfirst row show what that "
                 "mechanism buys.\n";
    return 0;
}
