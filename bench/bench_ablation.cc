/**
 * @file
 * Ablation study of IceBreaker's design choices (the DESIGN.md Sec. 5
 * list): dynamic cut-offs, the ping-pong safeguard, the large-memory
 * safeguard, the self-correcting concurrency margin, and the
 * prediction-driven keep-alive extension. Each variant registers a
 * configured IceBreaker factory under its own scheme name and the
 * whole (variant x replicate) grid runs through the parallel
 * ExperimentRunner; the full configuration should dominate or tie
 * each ablated one on the combined objective.
 */

#include <iostream>
#include <memory>

#include "bench/bench_util.hh"
#include "core/icebreaker.hh"
#include "harness/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = bench::standardWorkload(300, 600);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // Each variant is a registered scheme whose factory captures its
    // configuration by value, so replicates are identically configured
    // no matter which worker thread builds them.
    std::vector<std::pair<const char *, core::IceBreakerConfig>> variants;
    variants.push_back({"static cut-offs", {}});
    variants.back().second.pdm.enable_dynamic_cutoffs = false;
    variants.push_back({"no ping-pong guard", {}});
    variants.back().second.pdm.enable_ping_pong_guard = false;
    variants.push_back({"no large-memory guard", {}});
    variants.back().second.pdm.enable_large_memory_guard = false;
    variants.push_back({"unbiased instance counts", {}});
    variants.back().second.count_deadband = 0.5; // plain rounding
    variants.push_back({"no predicted-gap keep-alive", {}});
    variants.back().second.keep_alive_horizon = 0; // boundary-only
    variants.push_back({"3 harmonics instead of 10", {}});
    variants.back().second.fip.harmonics = 3;
    variants.push_back({"1-hour FIP window", {}});
    variants.back().second.fip.window = 60;

    std::vector<bench::ComparisonScheme> schemes = {
        {"openwhisk", "OpenWhisk"}, // baseline for the improvements
        {"icebreaker", "full IceBreaker"},
    };
    std::vector<std::unique_ptr<harness::ScopedPolicyRegistration>>
        registrations;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const std::string key = "iceb-ablation-" + std::to_string(i);
        const core::IceBreakerConfig config = variants[i].second;
        registrations.push_back(
            std::make_unique<harness::ScopedPolicyRegistration>(
                key, [config] {
                    return std::make_unique<core::IceBreakerPolicy>(
                        config);
                }));
        schemes.push_back(
            bench::ComparisonScheme{key, variants[i].first});
    }

    const std::vector<harness::SweepPoint> points = {{"", cluster}};
    bench::runGridComparison(
        "IceBreaker ablations (improvements over the OpenWhisk "
        "baseline)",
        "", workload, points, schemes, options);

    std::cout << "\nReading guide: each row disables one mechanism; "
                 "regressions against the\nfirst row show what that "
                 "mechanism buys.\n";
    return 0;
}
