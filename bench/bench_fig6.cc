/**
 * @file
 * Reproduces Fig. 6 (and the Sec. 5 median/tail numbers): overall
 * keep-alive cost and service time of every scheme on the default
 * heterogeneous cluster, as improvements over the OpenWhisk baseline.
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = options.smoke
        ? bench::smokeWorkload()
        : bench::standardWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    std::cout << "workload: " << workload.trace.numFunctions()
              << " functions, " << workload.trace.totalInvocations()
              << " invocations, cluster " << cluster.name << "\n\n";

    const std::vector<harness::SchemeSummary> results =
        bench::compareSchemes(workload, cluster, options);
    bench::printSchemeComparison(
        "Fig. 6: keep-alive cost (a) and service time (b) vs the "
        "OpenWhisk baseline",
        results);

    // Sec. 5 text: median and 95th-percentile improvements, over the
    // replicate-pooled service-time samples.
    const harness::ServiceSummary base =
        harness::summarizeService(results.front().summary.pooled);
    TextTable tail("Sec. 5: median and tail (p95) service-time "
                   "improvements over baseline");
    tail.setHeader({"scheme", "median impr.", "p95 impr."});
    for (const auto &result : results) {
        const harness::ServiceSummary s =
            harness::summarizeService(result.summary.pooled);
        tail.addRow({
            harness::schemeName(result.scheme),
            TextTable::pct(harness::improvementOver(base.median_ms,
                                                    s.median_ms)),
            TextTable::pct(
                harness::improvementOver(base.p95_ms, s.p95_ms)),
        });
    }
    std::cout << "\n";
    tail.print(std::cout);

    std::cout << "\nShape check (paper): IceBreaker leads both "
                 "metrics, beats the next-best\nscheme by tens of "
                 "points on keep-alive cost, and sits closest to the\n"
                 "Oracle's service time.\n";
    return 0;
}
