/**
 * @file
 * Reproduces Fig. 14 and the surrounding Sec. 5 cohort analysis:
 * service-time and keep-alive improvements for the hard-to-predict
 * and infrequent function cohorts (bottom/top 15% as the paper
 * defines them), plus the frequent and concurrency-spike cohorts
 * from the text.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "math/stats.hh"

namespace
{

using namespace iceb;

double
cohortKeepAlive(const sim::SimulationMetrics &metrics,
                const std::vector<FunctionId> &cohort)
{
    double total = 0.0;
    for (FunctionId fn : cohort)
        total += metrics.per_function[fn].keep_alive_cost;
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const harness::Workload workload = bench::standardWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const std::vector<harness::SchemeResult> results =
        bench::runSchemesParallel(
            workload, cluster, bench::parseBenchOptions(argc, argv));
    const sim::SimulationMetrics &baseline = results.front().metrics;

    const harness::Cohorts cohorts =
        harness::buildCohorts(workload.trace, baseline);
    const struct
    {
        const char *name;
        const std::vector<FunctionId> *functions;
    } groups[] = {
        {"hard-to-predict (top 15% cold time)",
         &cohorts.hard_to_predict},
        {"infrequent (bottom 15% invocations)", &cohorts.infrequent},
        {"frequent (top 15% invocations)", &cohorts.frequent},
        {"spiky (top 15% concurrency spikes)", &cohorts.spiky},
    };

    for (const auto &group : groups) {
        TextTable table(std::string("Fig. 14 cohort: ") + group.name);
        table.setHeader({"scheme", "median svc impr.",
                         "mean svc impr.", "cohort ka impr."});
        const double base_ka =
            cohortKeepAlive(baseline, *group.functions);
        for (const auto &result : results) {
            if (result.scheme == harness::Scheme::OpenWhisk)
                continue;
            const std::vector<double> improvement =
                harness::cohortImprovement(baseline, result.metrics,
                                           *group.functions);
            const double ka =
                cohortKeepAlive(result.metrics, *group.functions);
            table.addRow({
                harness::schemeName(result.scheme),
                TextTable::pct(math::median(improvement)),
                TextTable::pct(math::mean(improvement)),
                TextTable::pct(
                    harness::improvementOver(base_ka, ka)),
            });
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Shape check: IceBreaker is the closest to the "
                 "Oracle for the hard-to-predict\nand infrequent "
                 "cohorts, where competing schemes show left-tail "
                 "degradation.\n";
    return 0;
}
