/**
 * @file
 * Reproduces Fig. 10: IceBreaker's FFT-based predictor vs ARIMA on
 * the period-switch signal of Fig. 4 -- lower error and faster
 * re-convergence after the periodicity change -- plus the local-
 * window sensitivity note from Sec. 3.1.
 */

#include <cmath>
#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "math/stats.hh"
#include "predictors/arima.hh"
#include "predictors/fft_predictor.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace iceb;

std::vector<double>
rollingAbsError(predictors::Predictor &predictor,
                const std::vector<double> &signal)
{
    std::vector<double> error(signal.size(), 0.0);
    for (std::size_t t = 0; t + 1 < signal.size(); ++t) {
        predictor.observe(signal[t]);
        error[t + 1] = std::fabs(predictor.predictNext() - signal[t + 1]);
    }
    return error;
}

/** Mean absolute error over intervals with actual activity. */
double
blockMae(const std::vector<double> &error, std::size_t begin,
         std::size_t end)
{
    std::vector<double> block(error.begin() + begin,
                              error.begin() + end);
    return math::mean(block);
}

double
burstMae(const std::vector<double> &error,
         const std::vector<double> &signal, std::size_t begin,
         std::size_t end)
{
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t t = begin; t < end; ++t) {
        if (signal[t] > 0.0) {
            acc += error[t];
            ++count;
        }
    }
    return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

} // namespace

int
main()
{
    const std::size_t n = 720;
    const std::size_t switch_at = n / 2;
    // Sparse bursts every 18 minutes, switching to every 32: the
    // regime where one-step prediction requires period knowledge.
    std::vector<double> signal = trace::makePeriodSwitchPulseTrain(
        n, 18.0, 32.0, switch_at, 3, 6.0);
    Rng noise(0xF16'4);
    for (double &value : signal) {
        if (value > 0.0)
            value = std::max(
                0.0, std::round(value + noise.gaussian(0.0, 0.4)));
        else
            value = 0.0;
    }

    predictors::ArimaPredictor arima;
    predictors::FftPredictor fft;
    const std::vector<double> arima_err = rollingAbsError(arima, signal);
    const std::vector<double> fft_err = rollingAbsError(fft, signal);

    // Predicting zero everywhere scores a deceptively low MAE on a
    // sparse series, so errors are evaluated on the burst intervals:
    // a predictor only scores well there by anticipating the bursts.
    TextTable table("Fig. 10: prediction error on burst intervals "
                    "around the period change");
    table.setHeader({"window", "ARIMA", "IceBreaker FIP"});
    table.addRow({"steady state before switch",
                  TextTable::num(
                      burstMae(arima_err, signal, 200, switch_at), 2),
                  TextTable::num(
                      burstMae(fft_err, signal, 200, switch_at), 2)});
    table.addRow({"first 60 intervals after switch",
                  TextTable::num(burstMae(arima_err, signal, switch_at,
                                          switch_at + 60),
                                 2),
                  TextTable::num(burstMae(fft_err, signal, switch_at,
                                          switch_at + 60),
                                 2)});
    table.addRow({"60-180 intervals after switch",
                  TextTable::num(burstMae(arima_err, signal,
                                          switch_at + 60,
                                          switch_at + 180),
                                 2),
                  TextTable::num(burstMae(fft_err, signal,
                                          switch_at + 60,
                                          switch_at + 180),
                                 2)});
    table.print(std::cout);

    // Sec. 3.1: results vary little with the local-window length.
    TextTable window_table("Sec. 3.1: FIP local-window sensitivity "
                           "(steady-state MAE)");
    window_table.setHeader({"window (intervals)", "MAE"});
    for (std::size_t window : {60u, 120u, 240u, 480u}) {
        predictors::FftPredictorConfig config;
        config.window = window;
        predictors::FftPredictor predictor(config);
        const std::vector<double> error =
            rollingAbsError(predictor, signal);
        window_table.addRow({std::to_string(window),
                             TextTable::num(
                                 blockMae(error, 240, switch_at), 2)});
    }
    std::cout << "\n";
    window_table.print(std::cout);

    std::cout << "\nShape check: the FIP re-converges in fewer "
                 "intervals and with lower\npost-switch error than "
                 "ARIMA.\n";
    return 0;
}
