/**
 * @file
 * Reproduces Fig. 7: CDFs of per-function service-time improvement
 * over the OpenWhisk baseline, overall and split by executing tier.
 * The paper's claims: IceBreaker improves > 98% of functions and its
 * CDF tracks the Oracle's; competing schemes degrade > 25% of
 * functions.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "math/stats.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = bench::standardWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const std::vector<harness::SchemeResult> results =
        bench::runSchemesParallel(workload, cluster, options);
    const sim::SimulationMetrics &baseline = results.front().metrics;

    TextTable cdf("Fig. 7: per-function service-time improvement "
                  "CDF quantiles vs baseline");
    cdf.setHeader({"scheme", "p10", "p25", "median", "p75", "p90",
                   "improved fns"});
    for (const auto &result : results) {
        if (result.scheme == harness::Scheme::OpenWhisk)
            continue;
        std::vector<double> improvement =
            harness::perFunctionServiceImprovement(baseline,
                                                   result.metrics);
        const double improved_frac =
            static_cast<double>(std::count_if(
                improvement.begin(), improvement.end(),
                [](double v) { return v > 0.0; })) /
            static_cast<double>(improvement.size());
        cdf.addRow({
            harness::schemeName(result.scheme),
            TextTable::pct(math::percentile(improvement, 0.10)),
            TextTable::pct(math::percentile(improvement, 0.25)),
            TextTable::pct(math::median(improvement)),
            TextTable::pct(math::percentile(improvement, 0.75)),
            TextTable::pct(math::percentile(improvement, 0.90)),
            TextTable::pct(improved_frac),
        });
    }
    cdf.print(std::cout);

    // Tier split: mean service time of invocations executing on each
    // tier, per scheme.
    TextTable tiers("Fig. 7 (tier split): mean service time by "
                    "executing tier");
    tiers.setHeader({"scheme", "high-end (ms)", "low-end (ms)",
                     "high-end share"});
    for (const auto &result : results) {
        const auto &m = result.metrics;
        const auto mean_of = [](const std::vector<float> &v) {
            if (v.empty())
                return 0.0;
            double acc = 0.0;
            for (float x : v)
                acc += x;
            return acc / static_cast<double>(v.size());
        };
        const double share =
            static_cast<double>(m.service_times_high_ms.size()) /
            static_cast<double>(m.invocations);
        tiers.addRow({
            harness::schemeName(result.scheme),
            TextTable::num(mean_of(m.service_times_high_ms), 0),
            TextTable::num(mean_of(m.service_times_low_ms), 0),
            TextTable::pct(share),
        });
    }
    std::cout << "\n";
    tiers.print(std::cout);

    std::cout << "\nShape check: IceBreaker's improved-function "
                 "fraction approaches the\nOracle's and its quantiles "
                 "dominate Wild's and FaasCache's.\n";
    return 0;
}
