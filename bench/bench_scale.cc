/**
 * @file
 * Out-of-core ingestion benchmark: the Azure-scale streaming pipeline
 * (chunked CSV reader -> external-memory arrival generator ->
 * TraceSource windows) against the materializing path on the same
 * workload.
 *
 * Three quantities matter at 100k+ functions:
 *
 *  * ingest rate -- rows/sec through the chunked CSV parser and the
 *    synthetic row stream (spill-sorting included);
 *  * end-to-end simulation rate -- events/sec of a run fed by the
 *    streamed source vs one fed by a materialized trace;
 *  * peak RSS -- the streamed phase must stay bounded by its chunk
 *    and read-buffer sizes while the materializing phase grows
 *    linearly with the horizon (VmHWM is reset between phases via
 *    /proc/self/clear_refs, so each phase owns its own peak).
 *
 * The bench always self-gates on correctness: the streamed run's
 * metrics must be byte-identical to the materialized run's, in the
 * classic engine AND the sharded engine (--shards workers), and a
 * hinted streamed re-run must perform zero allocations (the merge
 * loop's zero-steady-state-allocation contract, measured end to end).
 * In --smoke mode the chunk size is forced tiny so the external
 * spill/merge path is exercised and must still agree.
 *
 * Flags:
 *   --functions N / --intervals N   workload size (default 100000 x
 *                                   1440: one synthetic Azure day)
 *   --repeats R                     timed runs per engine (default 3)
 *   --shards N                      workers for the sharded rows
 *                                   (default 4)
 *   --json PATH                     output (default BENCH_scale.json)
 *   --smoke                         small workload + forced spill;
 *                                   correctness gates only
 *   --baseline PATH                 gate against the committed
 *                                   BENCH_scale.json: [telemetry
 *                                   overhead] -- the histograms-on/off
 *                                   events/s ratio of the streamed
 *                                   core must stay within 2% of 1.0
 *                                   (best of up to 5 rounds, measured
 *                                   in the streamed phase);
 *                                   [metrics digest]
 *                                   -- the fixed-geometry streamed
 *                                   sharded digest must match exactly
 *                                   (machine-independent); [stream
 *                                   rate ratio] -- streamed events/sec
 *                                   over materialized events/sec,
 *                                   same process and machine so
 *                                   runner speed cancels, must stay
 *                                   within 10% of the committed
 *                                   value (best of up to 5 rounds).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/icebreaker.hh"
#include "harness/baseline_gate.hh"
#include "obs/recorder.hh"
#include "policies/openwhisk_policy.hh"
#include "sim/cluster_config.hh"
#include "sim/sharded_simulator.hh"
#include "sim/simulator.hh"
#include "sim/trace_source.hh"
#include "trace/azure_loader.hh"
#include "trace/stream_reader.hh"
#include "trace/synthetic.hh"
#include "workload/benchmark_suite.hh"
#include "workload/profile_matcher.hh"

// ---------------------------------------------------------------------------
// Global allocation counter (same probe as bench_sim): counts every
// operator new in the process, so deltas are taken around
// single-threaded measurement regions only.
// ---------------------------------------------------------------------------

namespace
{
std::atomic<long long> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace
{

using namespace iceb;
using Clock = std::chrono::steady_clock;

struct BenchConfig
{
    std::size_t num_functions = 100'000;
    std::size_t num_intervals = 1440; //!< one day of 1-minute slots
    std::size_t repeats = 3;
    std::size_t shards = 4;
    std::string json_path = "BENCH_scale.json";
    std::string baseline_path;
    bool smoke = false;
};

// Fixed geometry for the machine-independent digest row: its digest
// must stay comparable across every invocation that ever wrote a
// baseline file, independent of --smoke and --functions.
constexpr std::size_t kFixedFunctions = 1024;
constexpr std::size_t kFixedIntervals = 120;

// CSV ingest is timed on a capped subset: the CSV text itself is
// generated in memory, and 100k rows of 1440 columns would spend the
// bench's whole budget on serialization rather than parsing.
constexpr std::size_t kMaxCsvRows = 4096;

// --------------------------------------------------------------- peak RSS

/** VmHWM (peak resident set) of this process in KiB, or 0. */
std::size_t
peakRssKb()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return static_cast<std::size_t>(
                std::strtoull(line.c_str() + 6, nullptr, 10));
    }
    return 0;
}

/**
 * Reset the kernel's peak-RSS watermark so the next peakRssKb() read
 * covers only the work done since. Returns false where unsupported
 * (non-Linux); peaks then accumulate monotonically across phases.
 */
bool
resetPeakRss()
{
    std::FILE *f = std::fopen("/proc/self/clear_refs", "w");
    if (f == nullptr)
        return false;
    const bool ok = std::fputs("5", f) >= 0;
    std::fclose(f);
    return ok;
}

// ------------------------------------------------------------- workload

trace::SyntheticConfig
scaleWorkloadConfig(const BenchConfig &cfg)
{
    return trace::azureScaleConfig(cfg.num_functions, cfg.num_intervals);
}

/**
 * Cluster sized to the function count: the paper's default
 * composition, scaled from its 400-function figure workloads so
 * per-function pressure stays comparable at any --functions.
 */
sim::ClusterConfig
scaleCluster(std::size_t num_functions)
{
    sim::ClusterConfig cluster = sim::defaultHeterogeneousCluster();
    const std::size_t scale = std::max<std::size_t>(
        1, (num_functions + 399) / 400);
    for (int t = 0; t < kNumTiers; ++t)
        cluster.tiers[static_cast<std::size_t>(t)].server_count *= scale;
    return cluster;
}

// ------------------------------------------------------------ digesting

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1aDouble(std::uint64_t hash, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

/** Hash every result field (the byte-identity gate's comparator). */
std::uint64_t
hashMetrics(const sim::SimulationMetrics &m)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a(hash, m.invocations);
    hash = fnv1a(hash, m.cold_starts);
    hash = fnv1a(hash, m.warm_starts);
    hash = fnv1a(hash, m.cold_no_container);
    hash = fnv1a(hash, m.cold_all_busy);
    hash = fnv1a(hash, m.cold_setup_attach);
    hash = fnv1aDouble(hash, m.sum_service_ms);
    hash = fnv1aDouble(hash, m.sum_wait_ms);
    hash = fnv1aDouble(hash, m.sum_cold_ms);
    hash = fnv1aDouble(hash, m.sum_exec_ms);
    hash = fnv1aDouble(hash, m.sum_overhead_ms);
    for (const auto *samples :
         {&m.service_times_ms, &m.service_times_high_ms,
          &m.service_times_low_ms}) {
        hash = fnv1a(hash, samples->size());
        for (float sample : *samples) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &sample, sizeof(bits));
            hash = fnv1a(hash, bits);
        }
    }
    for (const sim::FunctionMetrics &fm : m.per_function) {
        hash = fnv1a(hash, fm.invocations);
        hash = fnv1a(hash, fm.cold_starts);
        hash = fnv1a(hash, fm.warm_starts);
        hash = fnv1aDouble(hash, fm.sum_service_ms);
        hash = fnv1aDouble(hash, fm.sum_wait_ms);
        hash = fnv1aDouble(hash, fm.sum_cold_ms);
        hash = fnv1aDouble(hash, fm.sum_exec_ms);
        hash = fnv1aDouble(hash, fm.keep_alive_cost);
    }
    for (int t = 0; t < kNumTiers; ++t) {
        hash = fnv1aDouble(hash, m.keep_alive[t].successful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasteful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasted_mb_ms);
    }
    return hash;
}

std::string
digestHex(std::uint64_t digest)
{
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buffer;
}

// --------------------------------------------------------------- timing

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/**
 * Best-of-N wall time of @p run_fn in milliseconds: contention on a
 * shared machine only adds time, so the minimum is the observation
 * closest to the true cost and ratios of minima are stable.
 */
template <typename RunFn>
double
bestOfMs(RunFn &&run_fn, std::size_t repeats)
{
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        run_fn();
        best = std::min(best, elapsedMs(start));
    }
    return best;
}

// ------------------------------------------------------------ phase rows

struct IngestRow
{
    double wall_ms = 0.0;
    double rows_per_sec = 0.0;
};

struct CsvRow
{
    std::size_t rows = 0;
    std::size_t minute_cells = 0;
    double wall_ms = 0.0;
    double rows_per_sec = 0.0;
    double cells_per_sec = 0.0;
};

struct RunRow
{
    double events_per_sec = 0.0;
    std::size_t peak_rss_kb = 0;
};

struct FixedRow
{
    std::size_t workers = 0;
    std::string metrics_digest;
};

/** The telemetry-overhead row: histograms on vs off, streamed core. */
struct TelemetryRow
{
    double events_per_sec_off = 0.0;
    double events_per_sec_on = 0.0;
    double overhead_ratio = 0.0; //!< on / off (1.0 = free)
};

// ---------------------------------------------------------------- phases

/**
 * CSV ingest rate: serialize a capped subset of the workload to the
 * Azure CSV schema in memory, then time the chunked reader draining
 * it row by row.
 */
CsvRow
runCsvPhase(const BenchConfig &cfg)
{
    trace::SyntheticConfig sub = scaleWorkloadConfig(cfg);
    sub.num_functions = std::min(cfg.num_functions, kMaxCsvRows);
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(sub).generate();
    std::ostringstream csv;
    trace::writeAzureCsv(csv, tr);
    const std::string text = csv.str();

    CsvRow row;
    row.rows = tr.numFunctions();
    row.minute_cells = tr.numFunctions() * tr.numIntervals();

    std::istringstream in(text);
    const auto start = Clock::now();
    trace::AzureCsvRowStream stream(in);
    trace::FunctionRow fn_row;
    std::size_t rows = 0;
    while (stream.next(fn_row))
        ++rows;
    row.wall_ms = elapsedMs(start);

    if (rows != row.rows) {
        std::fprintf(stderr,
                     "FAIL: CSV stream produced %zu rows, wrote %zu\n",
                     rows, row.rows);
        std::exit(1);
    }
    row.rows_per_sec =
        static_cast<double>(row.rows) / (row.wall_ms / 1000.0);
    row.cells_per_sec =
        static_cast<double>(row.minute_cells) / (row.wall_ms / 1000.0);
    return row;
}

sim::SimCapacityHints
hintsFrom(const sim::SimulationMetrics &m)
{
    sim::SimCapacityHints hints;
    hints.containers = m.event_loop.peak_live_containers;
    hints.events = m.event_loop.peak_pending_events;
    hints.events_per_bucket = m.event_loop.peak_bucket_events;
    hints.evict_entries = m.event_loop.peak_evict_entries;
    hints.wait_queue = m.event_loop.peak_wait_queue;
    return hints;
}

/** Whole baseline file as a string; exits with a message if absent. */
std::string
readBaselineFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_scale: cannot read baseline %s\n",
                     path.c_str());
        std::exit(1);
    }
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

// ----------------------------------------------------------------- json

void
writeJson(const BenchConfig &cfg, std::uint64_t arrivals,
          std::uint64_t invocations, std::uint64_t events,
          const CsvRow &csv, const IngestRow &stream_ingest,
          std::size_t spill_runs, std::uint64_t spilled_bytes,
          const IngestRow &materialize, const RunRow &streamed,
          const RunRow &materialized, bool agree, bool sharded_agree,
          long long hinted_allocs, const FixedRow &fixed,
          const TelemetryRow &telemetry)
{
    const double rss_ratio = streamed.peak_rss_kb > 0
        ? static_cast<double>(materialized.peak_rss_kb) /
            static_cast<double>(streamed.peak_rss_kb)
        : 0.0;
    std::ofstream out(cfg.json_path);
    out << "{\n";
    out << "  \"bench\": \"scale\",\n";
    out << "  \"workload\": {\"functions\": " << cfg.num_functions
        << ", \"intervals\": " << cfg.num_intervals
        << ", \"arrivals\": " << arrivals
        << ", \"invocations\": " << invocations
        << ", \"events\": " << events << "},\n";
    out << "  \"repeats\": " << cfg.repeats << ",\n";
    out << "  \"csv_ingest\": {\"rows\": " << csv.rows
        << ", \"minute_cells\": " << csv.minute_cells
        << ", \"wall_ms\": " << csv.wall_ms
        << ", \"rows_per_sec\": " << csv.rows_per_sec
        << ", \"cells_per_sec\": " << csv.cells_per_sec << "},\n";
    out << "  \"stream_ingest\": {\"wall_ms\": " << stream_ingest.wall_ms
        << ", \"rows_per_sec\": " << stream_ingest.rows_per_sec
        << ", \"spill_runs\": " << spill_runs
        << ", \"spilled_mb\": "
        << static_cast<double>(spilled_bytes) / (1024.0 * 1024.0)
        << "},\n";
    out << "  \"materialize\": {\"wall_ms\": " << materialize.wall_ms
        << ", \"rows_per_sec\": " << materialize.rows_per_sec << "},\n";
    out << "  \"streamed\": {\"events_per_sec\": "
        << streamed.events_per_sec
        << ", \"peak_rss_mb\": "
        << static_cast<double>(streamed.peak_rss_kb) / 1024.0 << "},\n";
    out << "  \"materialized\": {\"events_per_sec\": "
        << materialized.events_per_sec
        << ", \"peak_rss_mb\": "
        << static_cast<double>(materialized.peak_rss_kb) / 1024.0
        << "},\n";
    out << "  \"stream_rate_ratio\": "
        << streamed.events_per_sec / materialized.events_per_sec << ",\n";
    out << "  \"rss_ratio\": " << rss_ratio << ",\n";
    out << "  \"agreement\": " << (agree ? "true" : "false") << ",\n";
    out << "  \"sharded_agreement\": "
        << (sharded_agree ? "true" : "false") << ",\n";
    out << "  \"allocations\": {\"hinted_run\": " << hinted_allocs
        << "},\n";
    out << "  \"telemetry\": {\"events_per_sec_off\": "
        << telemetry.events_per_sec_off
        << ", \"events_per_sec_on\": " << telemetry.events_per_sec_on
        << ", \"overhead_ratio\": " << telemetry.overhead_ratio
        << "},\n";
    out << "  \"fixed\": {\"functions\": " << kFixedFunctions
        << ", \"intervals\": " << kFixedIntervals
        << ", \"scheme\": \"icebreaker\""
        << ", \"workers\": " << fixed.workers
        << ", \"metrics_digest\": \"" << fixed.metrics_digest << "\"}\n";
    out << "}\n";
}

[[noreturn]] void
usage(int status)
{
    (status == 0 ? std::cout : std::cerr)
        << "usage: bench_scale [--functions N] [--intervals N]\n"
           "                   [--repeats R] [--shards N]\n"
           "                   [--json PATH] [--smoke]\n"
           "                   [--baseline PATH]\n";
    std::exit(status);
}

BenchConfig
parseArgs(int argc, char **argv)
{
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "bench_scale: missing value for " << arg
                          << "\n";
                usage(1);
            }
            return argv[++i];
        };
        auto count = [&]() -> std::size_t {
            const std::string text = next();
            char *end = nullptr;
            const unsigned long long value =
                std::strtoull(text.c_str(), &end, 0);
            if (end == text.c_str() || *end != '\0' || value == 0) {
                std::cerr << "bench_scale: bad value '" << text
                          << "' for " << arg
                          << " (want a positive integer)\n";
                usage(1);
            }
            return static_cast<std::size_t>(value);
        };
        if (arg == "--functions") {
            cfg.num_functions = count();
        } else if (arg == "--intervals") {
            cfg.num_intervals = count();
        } else if (arg == "--repeats") {
            cfg.repeats = count();
        } else if (arg == "--shards") {
            cfg.shards = count();
        } else if (arg == "--json") {
            cfg.json_path = next();
        } else if (arg == "--baseline") {
            cfg.baseline_path = next();
        } else if (arg == "--smoke") {
            cfg.smoke = true;
        } else {
            if (arg != "--help")
                std::cerr << "bench_scale: unknown option " << arg
                          << "\n";
            usage(arg == "--help" ? 0 : 1);
        }
    }
    if (cfg.smoke) {
        cfg.num_functions = 768;
        cfg.num_intervals = 96;
        cfg.repeats = 3;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchConfig cfg = parseArgs(argc, argv);
    const trace::SyntheticConfig workload_config =
        scaleWorkloadConfig(cfg);
    const sim::ClusterConfig cluster = scaleCluster(cfg.num_functions);
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::sebs();
    const workload::ProfileMatcher matcher(suite);
    const bool rss_resets = resetPeakRss();
    if (!rss_resets)
        std::printf("note: peak-RSS reset unsupported; phase peaks "
                    "accumulate\n");

    // ------------------------------------------------- CSV ingest rate
    const CsvRow csv = runCsvPhase(cfg);
    std::printf("csv ingest: %zu rows (%zu cells) in %.1f ms -> "
                "%.0f rows/sec, %.2fM cells/sec\n",
                csv.rows, csv.minute_cells, csv.wall_ms,
                csv.rows_per_sec, csv.cells_per_sec / 1e6);

    // ------------------------------------------------- streamed phase
    // Runs FIRST so its peak RSS cannot inherit pages the
    // materializing phase touched.
    (void)resetPeakRss();
    sim::StreamingSourceOptions stream_options;
    if (cfg.smoke) {
        // Force the external spill/merge path even on a tiny horizon:
        // the smoke gate must exercise the same code CI ships.
        stream_options.chunk_records = 512;
        stream_options.read_records = 128;
    }

    IngestRow stream_ingest;
    RunRow streamed;
    std::uint64_t arrivals = 0;
    std::uint64_t invocations = 0;
    std::uint64_t events = 0;
    std::uint64_t digest_streamed = 0;
    std::uint64_t digest_streamed_sharded = 0;
    std::size_t spill_runs = 0;
    std::uint64_t spilled_bytes = 0;
    long long hinted_allocs = 0;
    double streamed_best_ms = 0.0;
    sim::SimCapacityHints hints;
    TelemetryRow telemetry;
    {
        const auto ingest_start = Clock::now();
        trace::SyntheticRowStream rows(workload_config);
        sim::StreamingWorkloadSource source(rows, stream_options);
        stream_ingest.wall_ms = elapsedMs(ingest_start);
        stream_ingest.rows_per_sec =
            static_cast<double>(cfg.num_functions) /
            (stream_ingest.wall_ms / 1000.0);
        arrivals = source.totalArrivals();
        spill_runs = source.spillRuns();
        spilled_bytes = source.spilledBytes();
        std::printf("stream ingest: %zu fns, %llu arrivals in %.1f ms "
                    "-> %.0f rows/sec (%zu spill runs, %.1f MB "
                    "spilled)\n",
                    cfg.num_functions,
                    static_cast<unsigned long long>(arrivals),
                    stream_ingest.wall_ms, stream_ingest.rows_per_sec,
                    spill_runs,
                    static_cast<double>(spilled_bytes) /
                        (1024.0 * 1024.0));
        if (cfg.smoke && spill_runs == 0) {
            std::fprintf(stderr,
                         "FAIL: smoke run never spilled; the external "
                         "merge path went untested\n");
            return 1;
        }

        const std::vector<workload::FunctionProfile> profiles =
            sim::matchStreamedProfiles(source, matcher);

        // Calibration run: digest, event count, capacity hints.
        policies::OpenWhiskPolicy policy;
        const sim::SimulationMetrics calib = sim::runSimulation(
            source, profiles, cluster, policy, {});
        digest_streamed = hashMetrics(calib);
        invocations = calib.invocations;
        events = calib.event_loop.totalPopped();
        hints = hintsFrom(calib);

        // Zero-allocation gate: a hinted re-run's run() must not
        // allocate -- beginRun() rewinds the spill cursors and the
        // merge loop reuses every buffer sized during ingest.
        {
            sim::SimulatorOptions options;
            options.hints = hints;
            sim::Simulator hinted(source, profiles, cluster, policy,
                                  options);
            const long long before =
                g_alloc_count.load(std::memory_order_relaxed);
            (void)hinted.run();
            hinted_allocs =
                g_alloc_count.load(std::memory_order_relaxed) - before;
        }
        std::printf("allocations in hinted streamed run(): %lld\n",
                    hinted_allocs);

        // Timed streamed runs (hinted, best-of-N).
        streamed_best_ms = bestOfMs(
            [&] {
                sim::SimulatorOptions options;
                options.hints = hints;
                (void)sim::runSimulation(source, profiles, cluster,
                                         policy, options);
            },
            cfg.repeats);
        streamed.events_per_sec = static_cast<double>(events) /
            (streamed_best_ms / 1000.0);

        // The RSS sample covers exactly ingest + profiles + classic
        // runs; the sharded agreement run below allocates per-cell
        // engine state that belongs to neither pipeline.
        streamed.peak_rss_kb = peakRssKb();

        // Telemetry overhead row: the same hinted streamed run with
        // latency histograms attached, best-of-N on both sides so the
        // ratio is a ratio of minima. Re-measure-on-miss happens here
        // (not in the gate block) while the source is still alive.
        {
            obs::ObsConfig obs_config;
            obs_config.histograms = true;
            obs::RunRecorder recorder(obs_config);
            sim::SimulatorOptions plain_options;
            plain_options.hints = hints;
            sim::SimulatorOptions hist_options;
            hist_options.hints = hints;
            hist_options.recorder = &recorder;
            const auto measure = [&] {
                TelemetryRow row;
                const double off_ms = bestOfMs(
                    [&] {
                        (void)sim::runSimulation(source, profiles,
                                                 cluster, policy,
                                                 plain_options);
                    },
                    cfg.repeats);
                const double on_ms = bestOfMs(
                    [&] {
                        (void)sim::runSimulation(source, profiles,
                                                 cluster, policy,
                                                 hist_options);
                    },
                    cfg.repeats);
                row.events_per_sec_off =
                    static_cast<double>(events) / (off_ms / 1000.0);
                row.events_per_sec_on =
                    static_cast<double>(events) / (on_ms / 1000.0);
                row.overhead_ratio =
                    row.events_per_sec_on / row.events_per_sec_off;
                return row;
            };
            telemetry = measure();
            for (int round = 2;
                 telemetry.overhead_ratio < 0.98 && round <= 5;
                 ++round) {
                const TelemetryRow again = measure();
                std::printf("telemetry re-measure round %d: %.5f\n",
                            round, again.overhead_ratio);
                if (again.overhead_ratio > telemetry.overhead_ratio)
                    telemetry = again;
            }
        }
        std::printf("telemetry: %8.0f events/sec histograms off, "
                    "%8.0f events/sec on (ratio %.4f)\n",
                    telemetry.events_per_sec_off,
                    telemetry.events_per_sec_on,
                    telemetry.overhead_ratio);

        // Sharded engine fed by the streamed source (the coordinator
        // scatters each global window to the cells). OpenWhisk keeps
        // the at-scale digest about the engine's window path; the
        // paper scheme runs in the fixed digest row instead.
        {
            policies::OpenWhiskPolicy sharded_policy;
            sim::SimulatorOptions options;
            options.shards = cfg.shards;
            digest_streamed_sharded = hashMetrics(sim::runSimulation(
                source, profiles, cluster, sharded_policy, options));
        }
        std::printf("streamed run: %8.0f events/sec, peak RSS %.1f "
                    "MB\n",
                    streamed.events_per_sec,
                    static_cast<double>(streamed.peak_rss_kb) / 1024.0);
    }

    // --------------------------------------------- materialized phase
    (void)resetPeakRss();
    IngestRow materialize;
    RunRow materialized;
    std::uint64_t digest_materialized = 0;
    std::uint64_t digest_materialized_sharded = 0;
    double materialized_best_ms = 0.0;
    {
        const auto build_start = Clock::now();
        const trace::Trace tr =
            trace::SyntheticTraceGenerator(workload_config).generate();
        const std::vector<workload::FunctionProfile> profiles =
            matcher.profilesFor(tr);
        materialize.wall_ms = elapsedMs(build_start);
        materialize.rows_per_sec =
            static_cast<double>(cfg.num_functions) /
            (materialize.wall_ms / 1000.0);

        policies::OpenWhiskPolicy policy;
        {
            const sim::SimulationMetrics calib = sim::runSimulation(
                tr, profiles, cluster, policy, {});
            digest_materialized = hashMetrics(calib);
        }
        materialized_best_ms = bestOfMs(
            [&] {
                sim::SimulatorOptions options;
                options.hints = hints;
                (void)sim::runSimulation(tr, profiles, cluster, policy,
                                         options);
            },
            cfg.repeats);
        materialized.events_per_sec = static_cast<double>(events) /
            (materialized_best_ms / 1000.0);

        materialized.peak_rss_kb = peakRssKb();

        {
            policies::OpenWhiskPolicy sharded_policy;
            sim::SimulatorOptions options;
            options.shards = cfg.shards;
            digest_materialized_sharded = hashMetrics(sim::runSimulation(
                tr, profiles, cluster, sharded_policy, options));
        }
        std::printf("materialized: built in %.1f ms; %8.0f events/sec, "
                    "peak RSS %.1f MB\n",
                    materialize.wall_ms, materialized.events_per_sec,
                    static_cast<double>(materialized.peak_rss_kb) /
                        1024.0);
    }

    const bool agree = digest_streamed == digest_materialized;
    const bool sharded_agree =
        digest_streamed_sharded == digest_materialized_sharded;
    std::printf("agreement (streamed == materialized): classic %s, "
                "sharded x%zu %s\n",
                agree ? "OK" : "MISMATCH", cfg.shards,
                sharded_agree ? "OK" : "MISMATCH");
    if (streamed.peak_rss_kb > 0 && rss_resets) {
        std::printf("peak RSS ratio (materialized / streamed): %.2fx\n",
                    static_cast<double>(materialized.peak_rss_kb) /
                        static_cast<double>(streamed.peak_rss_kb));
    }

    // ------------------------------------------- fixed digest row
    // Machine-independent: fixed geometry, default chunking, the paper
    // scheme on the sharded engine, digest identical for every worker
    // count by the sharded determinism contract.
    FixedRow fixed;
    fixed.workers = cfg.shards;
    {
        trace::SyntheticRowStream rows(
            trace::azureScaleConfig(kFixedFunctions, kFixedIntervals));
        sim::StreamingWorkloadSource source(rows);
        const std::vector<workload::FunctionProfile> profiles =
            sim::matchStreamedProfiles(source, matcher);
        core::IceBreakerPolicy policy;
        sim::SimulatorOptions options;
        options.shards = cfg.shards;
        fixed.metrics_digest = digestHex(hashMetrics(sim::runSimulation(
            source, profiles, scaleCluster(kFixedFunctions), policy,
            options)));
    }
    std::printf("fixed row (%zux%zu, icebreaker, streamed+sharded): "
                "digest %s\n",
                kFixedFunctions, kFixedIntervals,
                fixed.metrics_digest.c_str());

    writeJson(cfg, arrivals, invocations, events, csv, stream_ingest,
              spill_runs, spilled_bytes, materialize, streamed,
              materialized, agree, sharded_agree, hinted_allocs, fixed,
              telemetry);
    std::printf("wrote %s\n", cfg.json_path.c_str());

    // ------------------------------------------------------------ gates
    if (!agree) {
        std::fprintf(stderr,
                     "FAIL: streamed and materialized metrics differ: "
                     "%s != %s\n",
                     digestHex(digest_streamed).c_str(),
                     digestHex(digest_materialized).c_str());
        return 1;
    }
    if (!sharded_agree) {
        std::fprintf(stderr,
                     "FAIL: sharded streamed and materialized metrics "
                     "differ: %s != %s\n",
                     digestHex(digest_streamed_sharded).c_str(),
                     digestHex(digest_materialized_sharded).c_str());
        return 1;
    }
    if (hinted_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: hinted streamed run() performed %lld "
                     "allocations\n",
                     hinted_allocs);
        return 1;
    }
    if (!cfg.baseline_path.empty()) {
        const std::string baseline = readBaselineFile(cfg.baseline_path);

        // The fixed digest is machine-independent: exact equality.
        const std::optional<std::string> committed =
            harness::findJsonString(baseline, "metrics_digest");
        if (!committed) {
            std::fprintf(stderr,
                         "bench_scale: no metrics_digest in %s\n",
                         cfg.baseline_path.c_str());
            return 1;
        }
        const harness::GateResult digest_gate = harness::gateDigest(
            "metrics digest", fixed.metrics_digest, *committed);
        std::printf("%s\n", digest_gate.message.c_str());
        if (!digest_gate.ok) {
            std::fprintf(stderr, "FAIL: %s\n",
                         digest_gate.message.c_str());
            return 1;
        }

        // Telemetry gates against 1.0, not the baseline file: the
        // histogram pillar must stay within 2% of free on the
        // streamed core (re-measure rounds already ran in the
        // streamed phase). Geometry-independent, so smoke runs gate
        // it too.
        const harness::GateResult telemetry_gate = harness::gateRatio(
            "telemetry overhead", telemetry.overhead_ratio, 1.0, 0.02);
        std::printf("%s\n", telemetry_gate.message.c_str());
        if (!telemetry_gate.ok) {
            std::fprintf(stderr, "FAIL: %s\n",
                         telemetry_gate.message.c_str());
            return 1;
        }

        // Streamed vs materialized events/sec in the same process:
        // machine speed cancels, leaving what the streaming window
        // path costs relative to serving slices of a prebuilt array.
        // Contention only ever lowers the measured ratio, so on a
        // miss re-measure and keep the best round. The ratio is NOT
        // geometry-independent (a smoke-sized workload fits in cache
        // on both paths, shrinking the streamed advantage), so it
        // only gates runs at the baseline's own scale.
        if (cfg.smoke) {
            std::printf("[stream rate ratio] smoke geometry is not "
                        "comparable to the committed full-scale "
                        "ratio; gate skipped\n");
            return 0;
        }
        const std::optional<double> base =
            harness::findJsonNumber(baseline, "stream_rate_ratio");
        if (!base) {
            std::fprintf(stderr,
                         "bench_scale: no stream_rate_ratio in %s\n",
                         cfg.baseline_path.c_str());
            return 1;
        }
        double best =
            streamed.events_per_sec / materialized.events_per_sec;
        std::fprintf(stderr,
                     "gate: stream rate ratio %.4f (baseline %.4f)\n",
                     best, *base);
        const double floor = *base * 0.90;
        if (best < floor) {
            // Re-measure rounds need both workloads alive again;
            // rebuild them once and alternate timed runs.
            trace::SyntheticRowStream rows(workload_config);
            sim::StreamingWorkloadSource source(rows, stream_options);
            const std::vector<workload::FunctionProfile> sprofiles =
                sim::matchStreamedProfiles(source, matcher);
            const trace::Trace tr =
                trace::SyntheticTraceGenerator(workload_config)
                    .generate();
            const std::vector<workload::FunctionProfile> mprofiles =
                matcher.profilesFor(tr);
            policies::OpenWhiskPolicy policy;
            sim::SimulatorOptions options;
            options.hints = hints;
            for (int round = 2; best < floor && round <= 5; ++round) {
                const double s_ms = bestOfMs(
                    [&] {
                        (void)sim::runSimulation(source, sprofiles,
                                                 cluster, policy,
                                                 options);
                    },
                    cfg.repeats);
                const double m_ms = bestOfMs(
                    [&] {
                        (void)sim::runSimulation(tr, mprofiles, cluster,
                                                 policy, options);
                    },
                    cfg.repeats);
                const double again = m_ms / s_ms;
                std::printf("gate re-measure round %d: %.4f\n", round,
                            again);
                best = std::max(best, again);
            }
        }
        const harness::GateResult ratio_gate = harness::gateRatio(
            "stream rate ratio", best, *base, 0.10);
        std::printf("%s\n", ratio_gate.message.c_str());
        if (!ratio_gate.ok) {
            std::fprintf(stderr, "FAIL: %s\n",
                         ratio_gate.message.c_str());
            return 1;
        }
    }
    return 0;
}
