/**
 * @file
 * Reproduces Fig. 13: sensitivity to the high-end/low-end cost
 * ratio. The paper sweeps ~1.23x (t3 vs t4g) to 2.4x; gains shrink
 * as the ratio approaches 1 (a homogeneous price point), where only
 * the prediction advantage remains.
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main()
{
    using namespace iceb;

    const harness::Workload workload = bench::sweepWorkload();

    TextTable table("Fig. 13: improvements over OpenWhisk across "
                    "high/low cost ratios");
    table.setHeader({"cost ratio", "cluster", "scheme", "ka impr.",
                     "svc impr."});
    for (double ratio : {1.23, 1.5, 1.8, 2.4}) {
        const sim::ClusterConfig cluster =
            sim::clusterWithCostRatio(ratio);
        const std::string shape =
            std::to_string(cluster.spec(Tier::HighEnd).server_count) +
            "H+" +
            std::to_string(cluster.spec(Tier::LowEnd).server_count) +
            "L";
        const std::vector<harness::SchemeResult> results =
            harness::runAllSchemes(workload, cluster);
        const auto &baseline = results.front().metrics;
        bool first = true;
        for (const auto &result : results) {
            if (result.scheme == harness::Scheme::OpenWhisk)
                continue;
            table.addRow({
                first ? TextTable::num(ratio, 2) : "",
                first ? shape : "",
                harness::schemeName(result.scheme),
                TextTable::pct(harness::improvementOver(
                    baseline.totalKeepAliveCost(),
                    result.metrics.totalKeepAliveCost())),
                TextTable::pct(harness::improvementOver(
                    baseline.meanServiceMs(),
                    result.metrics.meanServiceMs())),
            });
            first = false;
        }
        table.addRule();
    }
    table.print(std::cout);

    std::cout << "\nShape check: IceBreaker outperforms the "
                 "competition at every ratio, with\nlarger keep-alive "
                 "gains at larger ratios.\n";
    return 0;
}
