/**
 * @file
 * Reproduces Fig. 13: sensitivity to the high-end/low-end cost
 * ratio. The paper sweeps ~1.23x (t3 vs t4g) to 2.4x; gains shrink
 * as the ratio approaches 1 (a homogeneous price point), where only
 * the prediction advantage remains.
 *
 * Runs the whole (scheme x ratio x replicate) grid through the
 * parallel ExperimentRunner; see --help for --threads / --seeds /
 * --repeats.
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = options.smoke
        ? bench::smokeWorkload()
        : bench::sweepWorkload();

    std::vector<harness::SweepPoint> points;
    for (double ratio : {1.23, 1.5, 1.8, 2.4}) {
        const sim::ClusterConfig cluster =
            sim::clusterWithCostRatio(ratio);
        const std::string label = TextTable::num(ratio, 2) + "  " +
            std::to_string(cluster.spec(Tier::HighEnd).server_count) +
            "H+" +
            std::to_string(cluster.spec(Tier::LowEnd).server_count) +
            "L";
        points.push_back(harness::SweepPoint{label, cluster});
    }

    bench::runGridComparison(
        "Fig. 13: improvements over OpenWhisk across high/low cost "
        "ratios",
        "ratio  cluster", workload, points, bench::paperSchemes(),
        options, /*show_warm=*/false);

    std::cout << "\nShape check: IceBreaker outperforms the "
                 "competition at every ratio, with\nlarger keep-alive "
                 "gains at larger ratios.\n";
    return 0;
}
