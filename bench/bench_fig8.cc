/**
 * @file
 * Reproduces Fig. 8: the service-time component breakdown. All
 * schemes share both tiers, so execution time differs only mildly;
 * IceBreaker's advantage concentrates in the cold-start and wait
 * components (plus its fixed decision overhead, charged
 * pessimistically as in the paper).
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = bench::standardWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const std::vector<harness::SchemeResult> results =
        bench::runSchemesParallel(workload, cluster, options);

    TextTable table("Fig. 8: mean service-time components per scheme "
                    "(ms)");
    table.setHeader({"scheme", "exec", "cold start", "wait", "overhead",
                     "total"});
    for (const auto &result : results) {
        const auto &m = result.metrics;
        const double n = static_cast<double>(m.invocations);
        table.addRow({
            harness::schemeName(result.scheme),
            TextTable::num(m.meanExecMs(), 0),
            TextTable::num(m.meanColdMs(), 0),
            TextTable::num(m.meanWaitMs(), 1),
            TextTable::num(m.sum_overhead_ms / n, 0),
            TextTable::num(m.meanServiceMs(), 0),
        });
    }
    table.print(std::cout);

    const auto &base = results.front().metrics;
    const auto &ib = results[3].metrics;
    const auto &oracle = results.back().metrics;
    std::cout << "\ncold-start component improvement over baseline: "
              << TextTable::pct(harness::improvementOver(
                     base.meanColdMs(), ib.meanColdMs()))
              << " (IceBreaker)\n"
              << "IceBreaker vs Oracle cold-start gap:            "
              << TextTable::num(ib.meanColdMs() - oracle.meanColdMs(),
                                0)
              << " ms (paper: small)\n"
              << "execution-time spread across schemes:           "
              << TextTable::pct(
                     (results[3].metrics.meanExecMs() -
                      base.meanExecMs()) /
                     base.meanExecMs())
              << " (paper: minor)\n";
    return 0;
}
