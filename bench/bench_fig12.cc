/**
 * @file
 * Reproduces Fig. 12: the budget-constant composition sweep, from 20
 * high-end/0 low-end servers to 0/35, eleven configurations in all.
 * IceBreaker should lead everywhere; on the homogeneous high-end
 * endpoint the paper notes it trades keep-alive cost for service
 * time because that endpoint has the least memory.
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main()
{
    using namespace iceb;

    const harness::Workload workload = bench::sweepWorkload();
    std::cout << "workload: " << workload.trace.numFunctions()
              << " functions, " << workload.trace.totalInvocations()
              << " invocations per configuration\n\n";

    TextTable table("Fig. 12: improvements over OpenWhisk across "
                    "budget-constant compositions");
    table.setHeader({"config", "scheme", "ka impr.", "svc impr.",
                     "warm"});
    for (const sim::ClusterConfig &cluster :
         sim::budgetConstantSweep()) {
        const std::vector<harness::SchemeResult> results =
            harness::runAllSchemes(workload, cluster);
        const auto &baseline = results.front().metrics;
        bool first = true;
        for (const auto &result : results) {
            if (result.scheme == harness::Scheme::OpenWhisk)
                continue;
            table.addRow({
                first ? cluster.name : "",
                harness::schemeName(result.scheme),
                TextTable::pct(harness::improvementOver(
                    baseline.totalKeepAliveCost(),
                    result.metrics.totalKeepAliveCost())),
                TextTable::pct(harness::improvementOver(
                    baseline.meanServiceMs(),
                    result.metrics.meanServiceMs())),
                TextTable::pct(result.metrics.warmStartFraction()),
            });
            first = false;
        }
        table.addRule();
    }
    table.print(std::cout);

    std::cout << "\nShape check: IceBreaker leads in the "
                 "heterogeneous middle of the sweep;\nhomogeneous "
                 "endpoints retain its prediction advantage only.\n";
    return 0;
}
