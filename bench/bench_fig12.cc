/**
 * @file
 * Reproduces Fig. 12: the budget-constant composition sweep, from 20
 * high-end/0 low-end servers to 0/35, eleven configurations in all.
 * IceBreaker should lead everywhere; on the homogeneous high-end
 * endpoint the paper notes it trades keep-alive cost for service
 * time because that endpoint has the least memory.
 *
 * Runs the whole (scheme x composition x replicate) grid through the
 * parallel ExperimentRunner; see --help for --threads / --seeds /
 * --repeats.
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = bench::sweepWorkload();
    std::cout << "workload: " << workload.trace.numFunctions()
              << " functions, " << workload.trace.totalInvocations()
              << " invocations per configuration\n\n";

    std::vector<harness::SweepPoint> points;
    for (const sim::ClusterConfig &cluster : sim::budgetConstantSweep())
        points.push_back(harness::SweepPoint{cluster.name, cluster});

    bench::runGridComparison(
        "Fig. 12: improvements over OpenWhisk across budget-constant "
        "compositions",
        "config", workload, points, bench::paperSchemes(), options);

    std::cout << "\nShape check: IceBreaker leads in the "
                 "heterogeneous middle of the sweep;\nhomogeneous "
                 "endpoints retain its prediction advantage only.\n";
    return 0;
}
