#include "bench/bench_util.hh"

namespace bench
{

using namespace iceb;

harness::Workload
standardWorkload(std::size_t num_functions, std::size_t num_intervals)
{
    trace::SyntheticConfig config;
    config.num_functions = num_functions;
    config.num_intervals = num_intervals;
    config.min_memory_mb = 256;
    return harness::makeWorkload(config);
}

harness::Workload
sweepWorkload()
{
    return standardWorkload(260, 360);
}

void
printSchemeComparison(const std::string &title,
                      const std::vector<harness::SchemeResult> &results)
{
    const sim::SimulationMetrics &baseline = results.front().metrics;
    TextTable table(title);
    table.setHeader({"scheme", "keep-alive $", "ka impr.", "svc (ms)",
                     "svc impr.", "warm", "cold (ms)", "wait (ms)"});
    for (const auto &result : results) {
        const auto &m = result.metrics;
        table.addRow({
            harness::schemeName(result.scheme),
            TextTable::num(m.totalKeepAliveCost(), 3),
            TextTable::pct(harness::improvementOver(
                baseline.totalKeepAliveCost(), m.totalKeepAliveCost())),
            TextTable::num(m.meanServiceMs(), 0),
            TextTable::pct(harness::improvementOver(
                baseline.meanServiceMs(), m.meanServiceMs())),
            TextTable::pct(m.warmStartFraction()),
            TextTable::num(m.meanColdMs(), 0),
            TextTable::num(m.meanWaitMs(), 1),
        });
    }
    table.print(std::cout);
}

} // namespace bench
