#include "bench/bench_util.hh"

#include <cstdlib>
#include <string_view>

#include "common/logging.hh"
#include "sim/metrics_summary.hh"

namespace bench
{

using namespace iceb;

harness::Workload
standardWorkload(std::size_t num_functions, std::size_t num_intervals)
{
    trace::SyntheticConfig config;
    config.num_functions = num_functions;
    config.num_intervals = num_intervals;
    config.min_memory_mb = 256;
    return harness::makeWorkload(config);
}

harness::Workload
sweepWorkload()
{
    return standardWorkload(260, 360);
}

harness::Workload
smokeWorkload()
{
    return standardWorkload(48, 60);
}

namespace
{

[[noreturn]] void
usage(const char *prog, int status)
{
    std::cout
        << "usage: " << prog << " [options]\n"
        << "  --threads N   worker threads (0 = hardware concurrency; "
           "default 0)\n"
        << "  --shards N    intra-run shard workers (0 = classic "
           "engine; default 0).\n"
        << "                Sharded output is identical for every "
           "N >= 1 but differs\n"
        << "                from the classic engine (partitioned "
           "memory model)\n"
        << "  --max-cells M ceiling for the sharded engine's auto "
           "cell count\n"
        << "                (0 = built-in default of 16; results "
           "depend on the\n"
        << "                cell partition, never on --shards)\n"
        << "  --seeds S     base seed for derived per-run RNG streams\n"
        << "  --repeats R   seed replicates per experiment cell "
           "(default 1)\n"
        << "  --smoke       shrunken workload for CI smoke runs\n"
        << "  --trace-out F     write Chrome trace_event JSON "
           "(Perfetto-viewable)\n"
        << "  --probe-out F     write interval/forecast probes as CSV\n"
        << "  --hist-out F      write latency histograms as tidy CSV\n"
        << "  --manifest-out F  write one JSON manifest line per run\n"
        << "  --help        this message\n"
        << "\nOutput (stdout and observability files) is "
           "byte-identical for every\n--threads value.\n";
    std::exit(status);
}

std::uint64_t
parseUint(const char *prog, std::string_view flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::cerr << prog << ": bad value '" << text << "' for " << flag
                  << "\n";
        usage(prog, 1);
    }
    return static_cast<std::uint64_t>(value);
}

/** "mean +-stddev" with pct formatting; bare mean for single runs. */
std::string
pctWithSpread(const sim::ValueStats &stats)
{
    std::string cell = TextTable::pct(stats.mean);
    if (stats.count > 1)
        cell += " +-" + TextTable::pct(stats.stddev);
    return cell;
}

/** "mean +-stddev" with num formatting; bare mean for single runs. */
std::string
numWithSpread(const sim::ValueStats &stats, int precision)
{
    std::string cell = TextTable::num(stats.mean, precision);
    if (stats.count > 1)
        cell += " +-" + TextTable::num(stats.stddev, precision);
    return cell;
}

} // namespace

BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions options;
    const char *prog = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto value = [&](std::string_view flag) {
            if (i + 1 >= argc) {
                std::cerr << prog << ": " << flag
                          << " needs a value\n";
                usage(prog, 1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(prog, 0);
        } else if (arg == "--threads") {
            options.threads =
                static_cast<std::size_t>(parseUint(prog, arg,
                                                   value(arg)));
        } else if (arg == "--shards") {
            options.shards =
                static_cast<std::size_t>(parseUint(prog, arg,
                                                   value(arg)));
        } else if (arg == "--max-cells") {
            options.max_cells =
                static_cast<std::size_t>(parseUint(prog, arg,
                                                   value(arg)));
        } else if (arg == "--repeats") {
            options.repeats =
                static_cast<std::size_t>(parseUint(prog, arg,
                                                   value(arg)));
            if (options.repeats == 0) {
                std::cerr << prog << ": --repeats must be >= 1\n";
                usage(prog, 1);
            }
        } else if (arg == "--seeds" || arg == "--seed") {
            options.base_seed = parseUint(prog, arg, value(arg));
        } else if (arg == "--smoke") {
            options.smoke = true;
        } else if (arg == "--trace-out") {
            options.observation.trace_path = value(arg);
        } else if (arg == "--probe-out") {
            options.observation.probe_path = value(arg);
        } else if (arg == "--hist-out") {
            options.observation.hist_path = value(arg);
        } else if (arg == "--manifest-out") {
            options.observation.manifest_path = value(arg);
        } else {
            std::cerr << prog << ": unknown option '" << arg << "'\n";
            usage(prog, 1);
        }
    }
    return options;
}

harness::RunnerOptions
runnerOptions(const BenchOptions &options)
{
    harness::RunnerOptions ro;
    ro.threads = options.threads;
    ro.shards = options.shards;
    ro.max_cells = options.max_cells;
    ro.repeats = options.repeats;
    ro.base_seed = options.base_seed;
    if (options.observation.enabled())
        ro.observation = &options.observation;
    return ro;
}

std::vector<harness::SchemeSummary>
compareSchemes(const harness::Workload &workload,
               const sim::ClusterConfig &cluster,
               const BenchOptions &options)
{
    return harness::runAllSchemesParallel(workload, cluster,
                                          runnerOptions(options));
}

std::vector<harness::SchemeResult>
runSchemesParallel(const harness::Workload &workload,
                   const sim::ClusterConfig &cluster,
                   const BenchOptions &options)
{
    std::vector<harness::SchemeSummary> summaries =
        compareSchemes(workload, cluster, options);
    std::vector<harness::SchemeResult> results;
    results.reserve(summaries.size());
    for (harness::SchemeSummary &summary : summaries) {
        harness::SchemeResult result;
        result.scheme = summary.scheme;
        result.metrics = std::move(summary.summary.pooled);
        results.push_back(std::move(result));
    }
    return results;
}

void
printSchemeComparison(const std::string &title,
                      const std::vector<harness::SchemeSummary> &results)
{
    const sim::MetricsSummary &baseline = results.front().summary;
    TextTable table(title);
    table.setHeader({"scheme", "keep-alive $", "ka impr.", "svc (ms)",
                     "svc impr.", "warm", "cold (ms)", "wait (ms)"});
    for (const auto &result : results) {
        const sim::MetricsSummary &s = result.summary;
        table.addRow({
            harness::schemeName(result.scheme),
            numWithSpread(s.keep_alive_cost, 3),
            TextTable::pct(harness::improvementOver(
                baseline.keep_alive_cost.mean,
                s.keep_alive_cost.mean)),
            numWithSpread(s.mean_service_ms, 0),
            TextTable::pct(harness::improvementOver(
                baseline.mean_service_ms.mean, s.mean_service_ms.mean)),
            TextTable::pct(s.warm_start_fraction.mean),
            TextTable::num(s.mean_cold_ms.mean, 0),
            TextTable::num(s.mean_wait_ms.mean, 1),
        });
    }
    table.print(std::cout);
}

std::vector<ComparisonScheme>
paperSchemes()
{
    std::vector<ComparisonScheme> schemes;
    for (harness::Scheme scheme : harness::allSchemes())
        schemes.push_back(ComparisonScheme{
            harness::schemeKey(scheme), harness::schemeName(scheme)});
    return schemes;
}

void
runGridComparison(const std::string &title,
                  const std::string &label_header,
                  const harness::Workload &workload,
                  const std::vector<harness::SweepPoint> &points,
                  const std::vector<ComparisonScheme> &schemes,
                  const BenchOptions &options, bool show_warm)
{
    ICEB_ASSERT(schemes.size() >= 2,
                "grid comparison needs a baseline plus >= 1 scheme");
    std::vector<std::string> keys;
    keys.reserve(schemes.size());
    for (const ComparisonScheme &scheme : schemes)
        keys.push_back(scheme.key);

    std::vector<harness::RunSpec> grid = harness::buildGrid(
        keys, workload, points, options.base_seed, options.repeats);
    for (harness::RunSpec &spec : grid) {
        spec.shards = options.shards;
        spec.max_cells = options.max_cells;
    }
    harness::ExperimentRunner runner(options.threads);
    if (options.observation.enabled())
        runner.setObservation(options.observation);
    const std::vector<harness::RunResult> results = runner.run(grid);

    const std::size_t repeats = options.repeats;
    const std::size_t point_stride = schemes.size() * repeats;

    TextTable table(title);
    std::vector<std::string> header;
    if (!label_header.empty())
        header.push_back(label_header);
    header.insert(header.end(), {"scheme", "ka impr.", "svc impr."});
    if (show_warm)
        header.push_back("warm");
    table.setHeader(header);

    for (std::size_t p = 0; p < points.size(); ++p) {
        const std::size_t base_off = p * point_stride;
        bool first = true;
        for (std::size_t s = 1; s < schemes.size(); ++s) {
            const std::size_t scheme_off = base_off + s * repeats;
            // Pair replicate r of this scheme with replicate r of the
            // baseline: both saw the same derived arrival jitter, so
            // the improvement distribution is the paired one.
            std::vector<double> ka_impr, svc_impr, warm;
            ka_impr.reserve(repeats);
            svc_impr.reserve(repeats);
            warm.reserve(repeats);
            for (std::size_t r = 0; r < repeats; ++r) {
                const sim::SimulationMetrics &base =
                    results[base_off + r].metrics;
                const sim::SimulationMetrics &run =
                    results[scheme_off + r].metrics;
                ka_impr.push_back(harness::improvementOver(
                    base.totalKeepAliveCost(),
                    run.totalKeepAliveCost()));
                svc_impr.push_back(harness::improvementOver(
                    base.meanServiceMs(), run.meanServiceMs()));
                warm.push_back(run.warmStartFraction());
            }
            std::vector<std::string> row;
            if (!label_header.empty())
                row.push_back(first ? points[p].label : "");
            row.push_back(schemes[s].display);
            row.push_back(pctWithSpread(sim::ValueStats::of(ka_impr)));
            row.push_back(pctWithSpread(sim::ValueStats::of(svc_impr)));
            if (show_warm)
                row.push_back(
                    pctWithSpread(sim::ValueStats::of(warm)));
            table.addRow(std::move(row));
            first = false;
        }
        if (p + 1 < points.size())
            table.addRule();
    }
    table.print(std::cout);
}

} // namespace bench
