/**
 * @file
 * Reproduces Table 1: cold-start time, execution time and service
 * time (with cold vs warm start) for the paper's three representative
 * ServerlessBench functions on both tiers, plus the suite-wide
 * fraction of functions for which a warm start on the low-end server
 * beats a cold start on the high-end server (paper: > 60%).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "workload/benchmark_suite.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;
    using namespace iceb::workload;

    // Accepts the standard bench CLI for suite uniformity; the table
    // itself is closed-form over the profile pool (no simulation), so
    // --threads/--repeats do not change its output.
    (void)bench::parseBenchOptions(argc, argv);

    const std::vector<FunctionProfile> fns = {
        table1FunctionA(), table1FunctionB(), table1FunctionC()};
    const char *labels[] = {"F_A", "F_B", "F_C"};

    TextTable table(
        "Table 1: cold start on high-end vs warm start on low-end "
        "(seconds)");
    table.setHeader({"Function", "Server", "CST", "ET", "ST w/ CS",
                     "ST w/ WS", "Metric"});
    for (std::size_t i = 0; i < fns.size(); ++i) {
        const FunctionProfile &p = fns[i];
        const bool metric = p.warmLowBeatsColdHigh();
        for (Tier tier : {Tier::LowEnd, Tier::HighEnd}) {
            table.addRow({
                tier == Tier::LowEnd ? labels[i] : "",
                tier == Tier::LowEnd ? "Low-end" : "High-end",
                TextTable::num(msToSeconds(p.coldStartMs(tier)), 2),
                TextTable::num(msToSeconds(p.execMs(tier)), 2),
                TextTable::num(msToSeconds(p.serviceTimeColdMs(tier)),
                               2),
                TextTable::num(msToSeconds(p.serviceTimeWarmMs(tier)),
                               2),
                tier == Tier::LowEnd ? (metric ? "yes" : "no") : "",
            });
        }
        table.addRule();
    }
    table.print(std::cout);

    const BenchmarkSuite suite = BenchmarkSuite::standard();
    std::cout << "\nFraction of benchmark-pool functions where a warm "
                 "start on low-end\nbeats a cold start on high-end: "
              << TextTable::pct(suite.fractionWarmLowBeatsColdHigh())
              << " (paper: > 60%)\n";
    return 0;
}
