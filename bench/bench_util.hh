/**
 * @file
 * Shared helpers for the per-figure bench binaries: standard workload
 * geometries (kept small enough that the whole bench suite runs in
 * minutes) and the common scheme-comparison printer.
 */

#ifndef ICEB_BENCH_BENCH_UTIL_HH
#define ICEB_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

namespace bench
{

/**
 * The standard evaluation workload: Azure-like synthetic trace with
 * matched ServerlessBench-style profiles. 420 functions x 12 hours by
 * default -- enough functions that keep-alive demand oversubscribes
 * the default cluster's memory, the regime the paper's trace replay
 * operates in (a scheme must *choose* what stays warm).
 */
iceb::harness::Workload standardWorkload(std::size_t num_functions = 420,
                                         std::size_t num_intervals = 720);

/** Smaller geometry for the sweep benches (Figs. 12 and 13). */
iceb::harness::Workload sweepWorkload();

/**
 * Print the Fig. 6-style comparison: keep-alive cost and mean service
 * time of every scheme as absolute values and improvements over the
 * OpenWhisk baseline (results[0] must be OpenWhisk).
 */
void printSchemeComparison(
    const std::string &title,
    const std::vector<iceb::harness::SchemeResult> &results);

} // namespace bench

#endif // ICEB_BENCH_BENCH_UTIL_HH
