/**
 * @file
 * Shared helpers for the per-figure bench binaries: standard workload
 * geometries (kept small enough that the whole bench suite runs in
 * minutes), the common bench CLI (--threads / --seeds / --repeats),
 * and runner-driven scheme-comparison helpers.
 *
 * All comparison output is byte-identical across --threads values:
 * the ExperimentRunner's determinism contract fixes every run's RNG
 * stream from (base seed, replicate index), results return in grid
 * order, and nothing thread-count-dependent is printed.
 */

#ifndef ICEB_BENCH_BENCH_UTIL_HH
#define ICEB_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/observe.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

namespace bench
{

/**
 * The standard evaluation workload: Azure-like synthetic trace with
 * matched ServerlessBench-style profiles. 420 functions x 12 hours by
 * default -- enough functions that keep-alive demand oversubscribes
 * the default cluster's memory, the regime the paper's trace replay
 * operates in (a scheme must *choose* what stays warm).
 */
iceb::harness::Workload standardWorkload(std::size_t num_functions = 420,
                                         std::size_t num_intervals = 720);

/** Smaller geometry for the sweep benches (Figs. 12 and 13). */
iceb::harness::Workload sweepWorkload();

/**
 * Common bench CLI options.
 *
 *   --threads N       worker threads (0 = hardware concurrency, default)
 *   --shards N        intra-run shard workers (0 = classic engine,
 *                     default; sharded results are identical for any
 *                     N >= 1 but differ from the classic engine)
 *   --max-cells M     ceiling for the sharded engine's auto cell
 *                     count (0 = built-in default of 16; part of the
 *                     partition model, so results depend on it)
 *   --seeds S         base seed for the run's derived RNG streams
 *   --repeats R       seed replicates per cell (mean +- stddev columns)
 *   --smoke           shrunken workload for CI smoke runs
 *   --trace-out F     write a Chrome trace_event JSON of every run
 *   --probe-out F     write interval/forecast probe series as CSV
 *   --hist-out F      write latency histograms as tidy CSV
 *   --manifest-out F  write one JSON manifest line per run
 */
struct BenchOptions
{
    std::size_t threads = 0;
    std::size_t shards = 0;
    std::size_t max_cells = 0;
    std::size_t repeats = 1;
    std::uint64_t base_seed = iceb::harness::kDefaultBaseSeed;
    bool smoke = false;
    iceb::harness::ObservationOptions observation;
};

/** The --smoke workload geometry (shared by the figure benches). */
iceb::harness::Workload smokeWorkload();

/** Parse the common flags; prints usage and exits on --help/errors. */
BenchOptions parseBenchOptions(int argc, char **argv);

/** Convert BenchOptions to the harness runner options. */
iceb::harness::RunnerOptions runnerOptions(const BenchOptions &options);

/**
 * The five-scheme comparison through the parallel runner: every
 * scheme runs options.repeats replicates, aggregated per scheme.
 */
std::vector<iceb::harness::SchemeSummary>
compareSchemes(const iceb::harness::Workload &workload,
               const iceb::sim::ClusterConfig &cluster,
               const BenchOptions &options);

/**
 * Five-scheme run returning one pooled SimulationMetrics per scheme
 * (replicates merged), for benches that analyse per-function or
 * per-sample detail downstream. Ordered as allSchemes().
 */
std::vector<iceb::harness::SchemeResult>
runSchemesParallel(const iceb::harness::Workload &workload,
                   const iceb::sim::ClusterConfig &cluster,
                   const BenchOptions &options);

/**
 * Print the Fig. 6-style comparison: keep-alive cost and mean service
 * time of every scheme as absolute values and improvements over the
 * first scheme (the OpenWhisk baseline). With more than one replicate
 * the absolute columns read "mean +-stddev".
 */
void printSchemeComparison(
    const std::string &title,
    const std::vector<iceb::harness::SchemeSummary> &results);

/** One column of a grid comparison: registry key + display name. */
struct ComparisonScheme
{
    std::string key;     //!< PolicyRegistry name
    std::string display; //!< table row label
};

/** The five paper schemes as ComparisonSchemes (baseline first). */
std::vector<ComparisonScheme> paperSchemes();

/**
 * The shared sweep/ablation skeleton (Figs. 12, 13, ablations): run
 * schemes[0..n) on every sweep point through one runner invocation
 * and print, per point, each non-baseline scheme's keep-alive and
 * service-time improvement over schemes[0], paired per replicate and
 * reported mean +- stddev.
 *
 * @param label_header Header of the sweep-point column; empty hides
 *                     the column (single-point grids).
 * @param show_warm    Append the warm-start-fraction column.
 */
void runGridComparison(const std::string &title,
                       const std::string &label_header,
                       const iceb::harness::Workload &workload,
                       const std::vector<iceb::harness::SweepPoint> &points,
                       const std::vector<ComparisonScheme> &schemes,
                       const BenchOptions &options, bool show_warm = true);

} // namespace bench

#endif // ICEB_BENCH_BENCH_UTIL_HH
