/**
 * @file
 * Frozen pre-optimisation sim core for bench_sim's speedup baseline.
 *
 * A verbatim port of the simulator as it stood before the
 * allocation-free rewrite (PR 4): ContainerId -> Container hash map,
 * worst-fit linear server scans, std::find pool removal, a binary
 * event heap of fat 48-byte Events, and per-interval materialised
 * arrival Event pushes. Kept here so `speedup_vs_legacy` always
 * compares against the same baseline regardless of how src/sim
 * evolves. Do not "fix" or modernise this code.
 *
 * It drives the same Policy / MetricsCollector / ClusterConfig /
 * FunctionProfile types as the live simulator, so both run identical
 * workloads and their metrics can be compared for exact agreement.
 */

#ifndef ICEB_BENCH_LEGACY_SIM_HH
#define ICEB_BENCH_LEGACY_SIM_HH

#include <algorithm>
#include <array>
#include <deque>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "sim/cluster_config.hh"
#include "sim/metrics.hh"
#include "sim/policy.hh"
#include "trace/trace.hh"
#include "workload/function_profile.hh"

namespace legacy_sim
{

using namespace iceb;
using sim::ClusterConfig;
using sim::MetricsCollector;
using sim::Policy;
using sim::SimulationMetrics;
using sim::TierSpec;
using sim::WarmupInterface;

// --------------------------------------------------------- event queue

enum class EventType : std::uint8_t
{
    InvocationArrival,
    IntervalTick,
    PrewarmStart,
    PrewarmReady,
    ExecutionComplete,
    ContainerExpiry,
};

struct Event
{
    TimeMs time = 0;
    std::uint64_t seq = 0;
    EventType type = EventType::IntervalTick;

    FunctionId fn = kInvalidFunction;
    ContainerId container = 0;
    IntervalIndex interval = 0;
    std::uint64_t token = 0;
    Tier tier = Tier::HighEnd;
    TimeMs expiry = 0;
};

class EventQueue
{
  public:
    void
    push(Event event)
    {
        event.seq = next_seq_++;
        heap_.push(event);
    }

    std::optional<Event>
    pop()
    {
        if (heap_.empty())
            return std::nullopt;
        Event event = heap_.top();
        heap_.pop();
        return event;
    }

    std::optional<TimeMs>
    peekTime() const
    {
        if (heap_.empty())
            return std::nullopt;
        return heap_.top().time;
    }

    std::size_t size() const { return heap_.size(); }
    bool empty() const { return heap_.empty(); }

  private:
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

// -------------------------------------------------------- cluster state

enum class ContainerState : std::uint8_t
{
    Setup,
    IdleWarm,
    Running,
};

struct Container
{
    ContainerId id = 0;
    FunctionId fn = kInvalidFunction;
    ServerId server = kInvalidServer;
    Tier tier = Tier::HighEnd;
    ContainerState state = ContainerState::Setup;
    MemoryMb memory_mb = 0;

    TimeMs ready_at = 0;
    TimeMs idle_since = 0;
    TimeMs expiry = 0;
    TimeMs last_used = 0;
    std::uint64_t expiry_token = 0;
    bool prewarmed_unused = false;
};

struct Server
{
    ServerId id = kInvalidServer;
    Tier tier = Tier::HighEnd;
    MemoryMb capacity_mb = 0;
    MemoryMb free_mb = 0;
};

class ClusterState : public WarmupInterface
{
  public:
    ClusterState(const ClusterConfig &config,
                 const std::vector<workload::FunctionProfile> &profiles,
                 EventQueue &events, MetricsCollector &metrics)
        : config_(config), profiles_(profiles), events_(events),
          metrics_(metrics)
    {
        pools_.resize(profiles_.size());
        live_per_fn_.assign(profiles_.size(), 0);
        for (int t = 0; t < kNumTiers; ++t) {
            const auto tier = static_cast<Tier>(t);
            const TierSpec &spec = config_.spec(tier);
            rate_mb_ms_[static_cast<std::size_t>(t)] =
                dollarsPerGbHourToMbMs(spec.dollars_per_gb_hour);
            for (std::size_t i = 0; i < spec.server_count; ++i) {
                Server server;
                server.id = static_cast<ServerId>(servers_.size());
                server.tier = tier;
                server.capacity_mb = spec.memory_per_server_mb;
                server.free_mb = spec.memory_per_server_mb;
                tier_servers_[static_cast<std::size_t>(t)].push_back(
                    server.id);
                servers_.push_back(server);
            }
        }
    }

    void setNow(TimeMs now) { now_ = now; }
    TimeMs now() const override { return now_; }

    std::size_t
    ensureWarm(FunctionId fn, Tier tier, std::size_t count,
               TimeMs expiry) override
    {
        return ensureWarmImpl(fn, tier, count, expiry, nullptr);
    }

    std::size_t
    ensureWarmEvicting(FunctionId fn, Tier tier, std::size_t count,
                       TimeMs expiry, Policy &policy) override
    {
        return ensureWarmImpl(fn, tier, count, expiry, &policy);
    }

    void
    schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                    TimeMs expiry) override
    {
        ICEB_ASSERT(start_time >= now_, "prewarm scheduled in the past");
        Event event;
        event.time = start_time;
        event.type = EventType::PrewarmStart;
        event.fn = fn;
        event.tier = tier;
        event.expiry = expiry;
        events_.push(event);
    }

    MemoryMb
    vacantMemoryMb(Tier tier) const override
    {
        MemoryMb total = 0;
        for (ServerId sid :
             tier_servers_[static_cast<std::size_t>(tierIndex(tier))]) {
            total += servers_[sid].free_mb;
        }
        return total;
    }

    MemoryMb
    totalMemoryMb(Tier tier) const override
    {
        return config_.spec(tier).totalMemoryMb();
    }

    std::size_t
    warmCount(FunctionId fn, Tier tier) const override
    {
        const auto t = static_cast<std::size_t>(tierIndex(tier));
        return pools_[fn].idle[t].size() + pools_[fn].setup[t].size();
    }

    struct Acquisition
    {
        ContainerId id = 0;
        Tier tier = Tier::HighEnd;
        TimeMs ready_at = 0;
        bool cold = false;
    };

    std::optional<Acquisition>
    acquireWarm(FunctionId fn, const std::array<Tier, 2> &order)
    {
        FunctionPools &pools = pools_[fn];
        for (Tier tier : order) {
            auto &idle =
                pools.idle[static_cast<std::size_t>(tierIndex(tier))];
            if (idle.empty())
                continue;
            const ContainerId id = idle.back();
            idle.pop_back();
            Container &c = containers_.at(id);
            metrics_.recordKeepAlive(c.tier, fn, c.memory_mb,
                                     now_ - c.idle_since, true,
                                     rateMbMs(c.tier));
            c.state = ContainerState::Running;
            c.prewarmed_unused = false;
            c.last_used = now_;
            ++c.expiry_token;
            return Acquisition{id, c.tier, now_, false};
        }
        return std::nullopt;
    }

    std::optional<Acquisition>
    acquireSetup(FunctionId fn, const std::array<Tier, 2> &order)
    {
        FunctionPools &pools = pools_[fn];
        for (Tier tier : order) {
            auto &setup =
                pools.setup[static_cast<std::size_t>(tierIndex(tier))];
            if (setup.empty())
                continue;
            auto best = setup.begin();
            for (auto it = setup.begin(); it != setup.end(); ++it) {
                if (containers_.at(*it).ready_at <
                    containers_.at(*best).ready_at) {
                    best = it;
                }
            }
            const ContainerId id = *best;
            setup.erase(best);
            Container &c = containers_.at(id);
            c.state = ContainerState::Running;
            c.prewarmed_unused = false;
            c.last_used = now_;
            ++c.expiry_token;
            const bool still_cold = c.ready_at > now_;
            return Acquisition{id, c.tier, std::max(c.ready_at, now_),
                               still_cold};
        }
        return std::nullopt;
    }

    std::optional<Acquisition>
    acquireCold(FunctionId fn, const std::array<Tier, 2> &order,
                Policy &policy)
    {
        const workload::FunctionProfile &profile = profileOf(fn);
        for (int pass = 0; pass < 2; ++pass) {
            for (Tier tier : order) {
                if (config_.spec(tier).server_count == 0)
                    continue;
                if (pass == 1 &&
                    !evictToFit(tier, profile.memory_mb, policy)) {
                    continue;
                }
                const ServerId server =
                    pickServer(tier, profile.memory_mb);
                if (server == kInvalidServer)
                    continue;
                const ContainerId id = createContainer(
                    fn, tier, server, ContainerState::Running);
                Container &c = containers_.at(id);
                c.prewarmed_unused = false;
                return Acquisition{id, tier, c.ready_at, true};
            }
        }
        return std::nullopt;
    }

    void
    startExecution(ContainerId id, TimeMs exec_end)
    {
        Container &c = containers_.at(id);
        ICEB_ASSERT(c.state == ContainerState::Running,
                    "container not acquired for execution");
        (void)c;
        (void)exec_end;
    }

    void
    finishExecution(ContainerId id, TimeMs keep_alive_ms, Policy &policy)
    {
        Container &c = containers_.at(id);
        if (keep_alive_ms <= 0) {
            destroyContainer(c, false, &policy);
            return;
        }
        becomeIdle(c, now_ + keep_alive_ms, &policy);
    }

    void
    handlePrewarmStart(const Event &event, Policy &policy)
    {
        const workload::FunctionProfile &profile = profileOf(event.fn);
        Tier tier = event.tier;
        ServerId server = pickServer(tier, profile.memory_mb);
        if (server == kInvalidServer) {
            tier = otherTier(tier);
            server = pickServer(tier, profile.memory_mb);
        }
        if (server == kInvalidServer &&
            evictToFit(event.tier, profile.memory_mb, policy,
                       event.fn)) {
            tier = event.tier;
            server = pickServer(tier, profile.memory_mb);
        }
        if (server == kInvalidServer) {
            ++prewarm_failures_;
            return;
        }
        const ContainerId id = createContainer(event.fn, tier, server,
                                               ContainerState::Setup);
        Container &c = containers_.at(id);
        c.expiry = event.expiry;
        c.prewarmed_unused = true;
        pools_[event.fn]
            .setup[static_cast<std::size_t>(tierIndex(tier))]
            .push_back(id);

        Event ready;
        ready.time = c.ready_at;
        ready.type = EventType::PrewarmReady;
        ready.container = id;
        events_.push(ready);
    }

    void
    handlePrewarmReady(const Event &event, Policy &policy)
    {
        const auto it = containers_.find(event.container);
        if (it == containers_.end() ||
            it->second.state != ContainerState::Setup) {
            return;
        }
        Container &c = it->second;
        removeFromPool(pools_[c.fn].setup[static_cast<std::size_t>(
                           tierIndex(c.tier))],
                       c.id);
        if (c.expiry <= now_) {
            c.state = ContainerState::IdleWarm;
            c.idle_since = now_;
            pools_[c.fn]
                .idle[static_cast<std::size_t>(tierIndex(c.tier))]
                .push_back(c.id);
            destroyContainer(c, true, &policy);
            return;
        }
        c.state = ContainerState::IdleWarm;
        c.idle_since = now_;
        scheduleExpiry(c);
        pools_[c.fn]
            .idle[static_cast<std::size_t>(tierIndex(c.tier))]
            .push_back(c.id);
        pushEvictEntry(c, static_cast<double>(c.last_used));
    }

    void
    handleContainerExpiry(const Event &event, Policy &policy)
    {
        const auto it = containers_.find(event.container);
        if (it == containers_.end() ||
            it->second.state != ContainerState::IdleWarm ||
            it->second.expiry_token != event.token) {
            return;
        }
        destroyContainer(it->second, true, &policy);
    }

    const Container &
    container(ContainerId id) const
    {
        const auto it = containers_.find(id);
        ICEB_ASSERT(it != containers_.end(), "unknown container");
        return it->second;
    }

    std::uint32_t liveCount(FunctionId fn) const
    {
        return live_per_fn_[fn];
    }

  private:
    struct EvictEntry
    {
        double priority = 0.0;
        std::uint64_t seq = 0;
        ContainerId id = 0;
        std::uint64_t token = 0;

        bool operator>(const EvictEntry &other) const
        {
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    using EvictHeap = std::priority_queue<EvictEntry,
                                          std::vector<EvictEntry>,
                                          std::greater<EvictEntry>>;

    struct FunctionPools
    {
        std::array<std::vector<ContainerId>, kNumTiers> idle;
        std::array<std::vector<ContainerId>, kNumTiers> setup;
    };

    const workload::FunctionProfile &
    profileOf(FunctionId fn) const
    {
        return profiles_[fn];
    }

    double
    rateMbMs(Tier tier) const
    {
        return rate_mb_ms_[static_cast<std::size_t>(tierIndex(tier))];
    }

    ServerId
    pickServer(Tier tier, MemoryMb memory_mb) const
    {
        ServerId best = kInvalidServer;
        MemoryMb best_free = memory_mb - 1;
        for (ServerId sid :
             tier_servers_[static_cast<std::size_t>(tierIndex(tier))]) {
            const Server &server = servers_[sid];
            if (server.free_mb > best_free) {
                best_free = server.free_mb;
                best = sid;
            }
        }
        return best;
    }

    ContainerId
    createContainer(FunctionId fn, Tier tier, ServerId server,
                    ContainerState state)
    {
        const workload::FunctionProfile &profile = profileOf(fn);
        Server &host = servers_[server];
        host.free_mb -= profile.memory_mb;

        Container c;
        c.id = next_container_id_++;
        c.fn = fn;
        c.server = server;
        c.tier = tier;
        c.state = state;
        c.memory_mb = profile.memory_mb;
        c.ready_at = now_ + profile.coldStartMs(tier);
        c.last_used = now_;
        const ContainerId id = c.id;
        containers_.emplace(id, c);
        ++live_per_fn_[fn];
        return id;
    }

    void
    removeFromPool(std::vector<ContainerId> &pool, ContainerId id)
    {
        const auto it = std::find(pool.begin(), pool.end(), id);
        ICEB_ASSERT(it != pool.end(), "container missing from pool");
        pool.erase(it);
    }

    void
    scheduleExpiry(Container &c)
    {
        ++c.expiry_token;
        Event event;
        event.time = c.expiry;
        event.type = EventType::ContainerExpiry;
        event.container = c.id;
        event.token = c.expiry_token;
        events_.push(event);
    }

    void
    pushEvictEntry(const Container &c, double priority)
    {
        EvictEntry entry;
        entry.priority = priority;
        entry.seq = next_evict_seq_++;
        entry.id = c.id;
        entry.token = c.expiry_token;
        evict_heaps_[static_cast<std::size_t>(tierIndex(c.tier))].push(
            entry);
    }

    std::size_t
    ensureWarmImpl(FunctionId fn, Tier tier, std::size_t count,
                   TimeMs expiry, Policy *evict_with)
    {
        FunctionPools &pools = pools_[fn];
        const auto t = static_cast<std::size_t>(tierIndex(tier));
        auto &idle = pools.idle[t];
        auto &setup = pools.setup[t];

        std::size_t provisioned = 0;
        for (auto it = idle.rbegin();
             it != idle.rend() && provisioned < count; ++it) {
            Container &c = containers_.at(*it);
            if (expiry > c.expiry) {
                c.expiry = expiry;
                scheduleExpiry(c);
            }
            ++provisioned;
        }
        for (auto it = setup.rbegin();
             it != setup.rend() && provisioned < count; ++it) {
            Container &c = containers_.at(*it);
            if (expiry > c.expiry)
                c.expiry = expiry;
            ++provisioned;
        }

        const workload::FunctionProfile &profile = profileOf(fn);
        while (provisioned < count) {
            ServerId server = pickServer(tier, profile.memory_mb);
            if (server == kInvalidServer && evict_with &&
                evictToFit(tier, profile.memory_mb, *evict_with, fn)) {
                server = pickServer(tier, profile.memory_mb);
            }
            if (server == kInvalidServer)
                break;
            const ContainerId id =
                createContainer(fn, tier, server, ContainerState::Setup);
            Container &c = containers_.at(id);
            c.expiry = expiry;
            c.prewarmed_unused = true;
            setup.push_back(id);

            Event ready;
            ready.time = c.ready_at;
            ready.type = EventType::PrewarmReady;
            ready.container = id;
            events_.push(ready);
            ++provisioned;
        }
        return provisioned;
    }

    void
    becomeIdle(Container &c, TimeMs expiry, Policy *policy)
    {
        c.state = ContainerState::IdleWarm;
        c.idle_since = now_;
        c.expiry = expiry;
        scheduleExpiry(c);
        pools_[c.fn].idle[static_cast<std::size_t>(tierIndex(c.tier))]
            .push_back(c.id);
        const double priority = policy
            ? policy->evictionPriority(c.fn, c.tier, c.last_used, now_)
            : static_cast<double>(c.last_used);
        pushEvictEntry(c, priority);
    }

    void
    destroyContainer(Container &c, bool wasteful, Policy *policy)
    {
        if (c.state == ContainerState::IdleWarm) {
            removeFromPool(pools_[c.fn].idle[static_cast<std::size_t>(
                               tierIndex(c.tier))],
                           c.id);
            if (wasteful) {
                metrics_.recordKeepAlive(c.tier, c.fn, c.memory_mb,
                                         now_ - c.idle_since, false,
                                         rateMbMs(c.tier));
            }
        } else if (c.state == ContainerState::Setup) {
            removeFromPool(pools_[c.fn].setup[static_cast<std::size_t>(
                               tierIndex(c.tier))],
                           c.id);
        }
        if (wasteful && c.prewarmed_unused && policy)
            policy->onWarmupWasted(c.fn, c.tier, now_);

        servers_[c.server].free_mb += c.memory_mb;
        --live_per_fn_[c.fn];
        containers_.erase(c.id);
    }

    bool
    evictToFit(Tier tier, MemoryMb memory_mb, Policy &policy,
               FunctionId exclude_fn = kInvalidFunction)
    {
        EvictHeap &heap =
            evict_heaps_[static_cast<std::size_t>(tierIndex(tier))];
        std::vector<EvictEntry> spared;
        while (pickServer(tier, memory_mb) == kInvalidServer) {
            bool evicted = false;
            while (!heap.empty()) {
                const EvictEntry entry = heap.top();
                heap.pop();
                const auto it = containers_.find(entry.id);
                if (it == containers_.end() ||
                    it->second.state != ContainerState::IdleWarm ||
                    it->second.expiry_token != entry.token) {
                    continue;
                }
                if (it->second.fn == exclude_fn) {
                    spared.push_back(entry);
                    continue;
                }
                Container &victim = it->second;
                policy.onEviction(victim.fn, victim.tier, now_);
                destroyContainer(victim, true, &policy);
                evicted = true;
                break;
            }
            if (!evicted) {
                for (const EvictEntry &entry : spared)
                    heap.push(entry);
                return false;
            }
        }
        for (const EvictEntry &entry : spared)
            heap.push(entry);
        return true;
    }

    const ClusterConfig &config_;
    const std::vector<workload::FunctionProfile> &profiles_;
    EventQueue &events_;
    MetricsCollector &metrics_;

    TimeMs now_ = 0;
    std::vector<Server> servers_;
    std::array<std::vector<ServerId>, kNumTiers> tier_servers_;
    std::array<double, kNumTiers> rate_mb_ms_{0.0, 0.0};

    std::unordered_map<ContainerId, Container> containers_;
    std::vector<FunctionPools> pools_;
    std::array<EvictHeap, kNumTiers> evict_heaps_;

    std::vector<std::uint32_t> live_per_fn_;
    ContainerId next_container_id_ = 1;
    std::uint64_t next_evict_seq_ = 0;
    std::uint64_t prewarm_failures_ = 0;
};

// ------------------------------------------------------------ simulator

class Simulator
{
  public:
    Simulator(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              std::uint64_t seed)
        : trace_(tr), profiles_(profiles), policy_(policy), seed_(seed),
          metrics_(tr.numFunctions()),
          cluster_(config, profiles, events_, metrics_)
    {
        buildArrivalSchedule();
        // Frozen pre-refactor core: it predates the streaming
        // observation feed and never pushes IntervalObservations, so
        // it can only drive observation-free policies (bench_sim uses
        // OpenWhisk). That also keeps it a clean same-machine control
        // for measuring what the streaming boundary costs.
        context_.num_functions = trace_.numFunctions();
        context_.profiles = &profiles_;
        context_.cluster = &config;
        context_.interval_ms = trace_.intervalMs();
    }

    SimulationMetrics
    run()
    {
        policy_.initialize(context_);
        for (std::size_t iv = 0; iv < trace_.numIntervals(); ++iv) {
            Event tick;
            tick.time =
                static_cast<TimeMs>(iv) * trace_.intervalMs();
            tick.type = EventType::IntervalTick;
            tick.interval = static_cast<IntervalIndex>(iv);
            events_.push(tick);
        }

        while (auto event = events_.pop()) {
            now_ = event->time;
            cluster_.setNow(now_);
            switch (event->type) {
              case EventType::IntervalTick:
                policy_.onIntervalStart(event->interval, cluster_);
                pushIntervalArrivals(event->interval);
                break;
              case EventType::InvocationArrival:
                handleArrival(event->fn, event->time);
                break;
              case EventType::PrewarmStart:
                cluster_.handlePrewarmStart(*event, policy_);
                break;
              case EventType::PrewarmReady:
                cluster_.handlePrewarmReady(*event, policy_);
                drainQueue();
                break;
              case EventType::ExecutionComplete: {
                const Container &c =
                    cluster_.container(event->container);
                const TimeMs keep_alive =
                    policy_.keepAliveAfterExecutionMs(c.fn, c.tier,
                                                      now_);
                cluster_.finishExecution(event->container, keep_alive,
                                         policy_);
                drainQueue();
                break;
              }
              case EventType::ContainerExpiry:
                cluster_.handleContainerExpiry(*event, policy_);
                drainQueue();
                break;
            }
        }
        return metrics_.take();
    }

  private:
    struct QueuedInvocation
    {
        FunctionId fn = kInvalidFunction;
        TimeMs arrival = 0;
    };

    void
    buildArrivalSchedule()
    {
        Rng master(seed_);
        const TimeMs interval_ms = trace_.intervalMs();
        arrival_schedule_.resize(trace_.numFunctions());
        arrival_cursor_.assign(trace_.numFunctions(), 0);

        for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
            Rng rng = master.fork(fn);
            const auto &series = trace_.function(fn);
            auto &schedule = arrival_schedule_[fn];
            schedule.reserve(series.totalInvocations());
            for (std::size_t iv = 0; iv < series.concurrency.size();
                 ++iv) {
                const std::uint32_t count = series.concurrency[iv];
                if (count == 0)
                    continue;
                const TimeMs base =
                    static_cast<TimeMs>(iv) * interval_ms;
                const TimeMs span =
                    std::min<TimeMs>(5000, interval_ms - 1);
                const TimeMs offset = static_cast<TimeMs>(
                    rng.uniformInt(0, interval_ms - 1 - span));
                std::vector<TimeMs> times;
                times.reserve(count);
                for (std::uint32_t i = 0; i < count; ++i) {
                    times.push_back(base + offset +
                                    static_cast<TimeMs>(
                                        rng.uniformInt(0, span)));
                }
                std::sort(times.begin(), times.end());
                schedule.insert(schedule.end(), times.begin(),
                                times.end());
            }
        }
    }

    void
    pushIntervalArrivals(IntervalIndex interval)
    {
        const TimeMs interval_end =
            (static_cast<TimeMs>(interval) + 1) * trace_.intervalMs();
        for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
            const auto &schedule = arrival_schedule_[fn];
            std::size_t &cursor = arrival_cursor_[fn];
            while (cursor < schedule.size() &&
                   schedule[cursor] < interval_end) {
                Event event;
                event.time = schedule[cursor];
                event.type = EventType::InvocationArrival;
                event.fn = fn;
                events_.push(event);
                ++cursor;
            }
        }
    }

    void
    handleArrival(FunctionId fn, TimeMs arrival)
    {
        if (!wait_queue_.empty()) {
            wait_queue_.push_back(QueuedInvocation{fn, arrival});
            return;
        }
        if (!tryPlace(fn, arrival))
            wait_queue_.push_back(QueuedInvocation{fn, arrival});
    }

    bool
    tryPlace(FunctionId fn, TimeMs arrival)
    {
        const std::array<Tier, 2> order = policy_.coldPlacementOrder(fn);

        if (auto acq = cluster_.acquireWarm(fn, order)) {
            startExecution(*acq, fn, arrival);
            return true;
        }
        if (auto acq = cluster_.acquireSetup(fn, order)) {
            if (acq->cold)
                metrics_.recordColdCause(true, true);
            startExecution(*acq, fn, arrival);
            return true;
        }
        const bool had_live = cluster_.liveCount(fn) > 0;
        if (auto acq = cluster_.acquireCold(fn, order, policy_)) {
            metrics_.recordColdCause(false, had_live);
            startExecution(*acq, fn, arrival);
            return true;
        }
        return false;
    }

    void
    startExecution(const ClusterState::Acquisition &acq, FunctionId fn,
                   TimeMs arrival)
    {
        const workload::FunctionProfile &profile = profiles_[fn];
        const TimeMs exec_ms = profile.execMs(acq.tier);
        const TimeMs exec_start = acq.ready_at;
        const TimeMs exec_end = exec_start + exec_ms;

        cluster_.startExecution(acq.id, exec_end);
        policy_.onExecutionStart(fn, acq.tier, acq.cold, now_);

        Event done;
        done.time = exec_end;
        done.type = EventType::ExecutionComplete;
        done.container = acq.id;
        done.fn = fn;
        events_.push(done);

        sim::InvocationOutcome outcome;
        outcome.fn = fn;
        outcome.tier = acq.tier;
        outcome.cold = acq.cold;
        outcome.arrival = arrival;
        outcome.wait_ms = now_ - arrival;
        outcome.cold_start_ms = acq.cold ? exec_start - now_ : 0;
        outcome.exec_ms = exec_ms;
        outcome.overhead_ms = policy_.overheadMs();
        metrics_.recordInvocation(outcome);
    }

    void
    drainQueue()
    {
        while (!wait_queue_.empty()) {
            const QueuedInvocation head = wait_queue_.front();
            if (!tryPlace(head.fn, head.arrival))
                break;
            wait_queue_.pop_front();
        }
    }

    const trace::Trace &trace_;
    const std::vector<workload::FunctionProfile> &profiles_;
    Policy &policy_;
    std::uint64_t seed_;

    EventQueue events_;
    MetricsCollector metrics_;
    ClusterState cluster_;
    sim::SimContext context_;

    std::vector<std::vector<TimeMs>> arrival_schedule_;
    std::vector<std::size_t> arrival_cursor_;

    std::deque<QueuedInvocation> wait_queue_;
    TimeMs now_ = 0;
};

} // namespace legacy_sim

#endif // ICEB_BENCH_LEGACY_SIM_HH
