/**
 * @file
 * Reproduces Fig. 11: replacing the FFT-based FIP with an LSTM buys
 * only a marginal accuracy improvement at a prohibitive per-interval
 * overhead. The overhead side is measured with google-benchmark (one
 * observe + predict step per iteration, the work a controller does
 * per function per interval); the accuracy side compares rolling
 * one-step MAE on a representative periodic series. A harmonic-count
 * ablation (Sec. 3.1's n = 10 choice) closes the binary.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "math/stats.hh"
#include "predictors/fft_predictor.hh"
#include "predictors/lstm.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace iceb;

std::vector<double>
benchSignal(std::size_t n)
{
    // The sparse burst train of Figs. 4/10: the representative hard
    // case for per-interval concurrency prediction.
    return trace::makePeriodSwitchPulseTrain(n, 22.0, 34.0, n / 2, 3,
                                             5.0);
}

/** One-step MAE restricted to burst intervals (activity present). */
double
burstMae(predictors::Predictor &predictor,
         const std::vector<double> &signal, std::size_t skip)
{
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t t = 0; t + 1 < signal.size(); ++t) {
        predictor.observe(signal[t]);
        if (t >= skip && signal[t + 1] > 0.0) {
            acc += std::fabs(predictor.predictNext() - signal[t + 1]);
            ++count;
        }
    }
    return acc / static_cast<double>(count);
}

void
BM_FftFipStep(benchmark::State &state)
{
    const std::vector<double> signal = benchSignal(4096);
    predictors::FftPredictor predictor;
    std::size_t t = 0;
    for (auto _ : state) {
        predictor.observe(signal[t % signal.size()]);
        benchmark::DoNotOptimize(predictor.predictNext());
        ++t;
    }
}
BENCHMARK(BM_FftFipStep);

void
BM_LstmStep(benchmark::State &state)
{
    const std::vector<double> signal = benchSignal(4096);
    predictors::LstmConfig config;
    config.epochs_per_observe = 8;
    predictors::LstmPredictor predictor(config);
    std::size_t t = 0;
    for (auto _ : state) {
        predictor.observe(signal[t % signal.size()]);
        benchmark::DoNotOptimize(predictor.predictNext());
        ++t;
    }
}
BENCHMARK(BM_LstmStep);

} // namespace

int
main(int argc, char **argv)
{
    // Accuracy comparison (the "marginal improvement" half).
    const std::vector<double> signal = benchSignal(720);
    predictors::FftPredictor fft;
    predictors::LstmConfig lstm_config;
    lstm_config.epochs_per_observe = 8;
    predictors::LstmPredictor lstm(lstm_config);

    TextTable accuracy("Fig. 11: prediction accuracy, FFT FIP vs "
                       "LSTM (burst-interval one-step MAE)");
    accuracy.setHeader({"predictor", "MAE"});
    accuracy.addRow({"IceBreaker FIP", TextTable::num(
                                           burstMae(fft, signal, 150),
                                           3)});
    accuracy.addRow({"LSTM", TextTable::num(
                                 burstMae(lstm, signal, 150), 3)});
    accuracy.print(std::cout);

    // Harmonic-count ablation (Sec. 3.1: < 0.75% change beyond 10).
    TextTable ablation("Sec. 3.1 ablation: FIP accuracy vs harmonic "
                       "count");
    ablation.setHeader({"harmonics", "MAE"});
    for (std::size_t n : {2u, 5u, 10u, 16u, 24u}) {
        predictors::FftPredictorConfig config;
        config.harmonics = n;
        predictors::FftPredictor predictor(config);
        ablation.addRow({std::to_string(n),
                         TextTable::num(
                             burstMae(predictor, signal, 150), 3)});
    }
    std::cout << "\n";
    ablation.print(std::cout);

    std::cout << "\nOverhead (the prohibitive half) -- per-interval "
                 "per-function cost of one\nobserve+predict step; the "
                 "LSTM's online BPTT training makes it orders of\n"
                 "magnitude slower (paper: 243x):\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
