/**
 * @file
 * Reproduces Fig. 5: (a) one function's invocation concurrency
 * decomposed into its major harmonics, and (b) the distribution of
 * significant-harmonic counts across the trace's functions.
 */

#include <iostream>

#include "common/table.hh"
#include "math/harmonics.hh"
#include "math/polyfit.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"

int
main()
{
    using namespace iceb;

    // (a) Decompose one multi-harmonic function.
    trace::SyntheticConfig config;
    config.num_functions = 200;
    config.num_intervals = 1440;
    const trace::SyntheticTraceGenerator generator(config);
    const trace::FunctionSeries example = generator.generateSeries(
        trace::FunctionClass::MultiHarmonic, 21);

    std::vector<double> series(example.concurrency.begin(),
                               example.concurrency.end());
    const math::Polynomial trend = math::polyfitSeries(series, 2);
    const std::vector<double> residual = math::detrend(series, trend);
    const std::vector<math::Harmonic> harmonics =
        math::decompose(residual, 5);

    TextTable fig5a("Fig. 5(a): top harmonics of one multi-harmonic "
                    "function's concurrency");
    fig5a.setHeader({"rank", "period (min)", "amplitude"});
    for (std::size_t i = 0; i < harmonics.size(); ++i) {
        fig5a.addRow({std::to_string(i + 1),
                      TextTable::num(1.0 / harmonics[i].frequency, 1),
                      TextTable::num(harmonics[i].amplitude, 2)});
    }
    fig5a.print(std::cout);
    std::cout << "trend: " << TextTable::num(trend.coeff(2), 6)
              << "*t^2 + " << TextTable::num(trend.coeff(1), 4)
              << "*t + " << TextTable::num(trend.coeff(0), 2) << "\n\n";

    // (b) Harmonic-count distribution across the whole trace.
    const trace::Trace tr = generator.generate();
    const trace::TraceCharacter character =
        trace::characterizeTrace(tr);

    TextTable fig5b("Fig. 5(b): CDF of significant harmonic counts "
                    "across functions");
    fig5b.setHeader({"harmonics <=", "fraction of functions"});
    for (double bound : {0.0, 1.0, 2.0, 4.0, 6.0, 9.0, 15.0, 30.0}) {
        fig5b.addRow({TextTable::num(bound, 0),
                      TextTable::pct(character.harmonic_cdf.at(bound))});
    }
    fig5b.print(std::cout);

    std::cout << "\nfunctions with periodic concurrency:      "
              << TextTable::pct(character.fraction_periodic)
              << " (paper: ~98%)\n"
              << "functions with >= 2 significant harmonics: "
              << TextTable::pct(character.fraction_multi_harmonic)
              << " (paper: >= 25%)\n"
              << "functions with < 10 harmonics:             "
              << TextTable::pct(character.fraction_under_ten)
              << " (paper: ~98%; sharp one-minute pulse trains in\n"
                 "our generator legitimately carry more harmonics)\n";
    return 0;
}
