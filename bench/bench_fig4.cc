/**
 * @file
 * Reproduces Fig. 4: (a) serverless functions show periodic
 * invocation concurrency whose periodicity changes over time, and
 * (b) ARIMA is slow to re-converge after the period switches --
 * its prediction error spikes and decays only gradually.
 */

#include <cmath>
#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "math/stats.hh"
#include "predictors/arima.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"

int
main()
{
    using namespace iceb;

    // (a) Characterise a small trace: concurrency and inter-arrival
    // variation over time for representative functions.
    trace::SyntheticConfig config;
    config.num_functions = 40;
    config.num_intervals = 1440;
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    const trace::TraceCharacter character =
        trace::characterizeTrace(tr);

    TextTable fig4a("Fig. 4(a): invocation patterns are periodic and "
                    "concurrency varies");
    fig4a.setHeader({"metric", "value"});
    fig4a.addRow({"functions with periodic concurrency",
                  TextTable::pct(character.fraction_periodic)});
    double cv_sum = 0.0;
    std::size_t cv_count = 0;
    for (const auto &fn : tr.functions()) {
        const std::vector<double> gaps =
            trace::interArrivalIntervals(fn);
        if (gaps.size() < 4)
            continue;
        const double mu = math::mean(gaps);
        if (mu > 0.0) {
            cv_sum += math::stddev(gaps) / mu;
            ++cv_count;
        }
    }
    fig4a.addRow({"mean inter-arrival coefficient of variation",
                  TextTable::num(cv_sum / cv_count, 2)});
    fig4a.print(std::cout);

    // (b) ARIMA error around a periodicity change.
    const std::size_t n = 720;
    const std::size_t switch_at = n / 2;
    // Sparse bursts every 18 minutes, switching to every 32: the
    // regime where one-step prediction requires period knowledge.
    std::vector<double> signal = trace::makePeriodSwitchPulseTrain(
        n, 18.0, 32.0, switch_at, 3, 6.0);
    Rng noise(0xF16'4);
    for (double &value : signal) {
        if (value > 0.0)
            value = std::max(
                0.0, std::round(value + noise.gaussian(0.0, 0.4)));
        else
            value = 0.0;
    }

    predictors::ArimaPredictor arima;
    std::vector<double> abs_error(n, 0.0);
    for (std::size_t t = 0; t + 1 < n; ++t) {
        arima.observe(signal[t]);
        abs_error[t + 1] =
            std::fabs(arima.predictNext() - signal[t + 1]);
    }

    TextTable fig4b("Fig. 4(b): ARIMA burst-interval prediction error "
                    "around the period change (per 60-interval block)");
    fig4b.setHeader({"intervals", "phase", "ARIMA MAE"});
    for (std::size_t start = 120; start + 60 <= n; start += 60) {
        double acc = 0.0;
        std::size_t count = 0;
        for (std::size_t t = start; t < start + 60; ++t) {
            if (signal[t] > 0.0) {
                acc += abs_error[t];
                ++count;
            }
        }
        const double mae =
            count == 0 ? 0.0 : acc / static_cast<double>(count);
        const char *phase = start + 60 <= switch_at
            ? "before switch"
            : (start >= switch_at ? "after switch" : "switch");
        fig4b.addRow({std::to_string(start) + "-" +
                          std::to_string(start + 60),
                      phase, TextTable::num(mae, 2)});
    }
    fig4b.print(std::cout);

    std::cout << "\nShape check: the first post-switch blocks carry "
                 "the largest errors,\ndecaying only over several "
                 "blocks (slow convergence).\n";
    return 0;
}
