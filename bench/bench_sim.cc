/**
 * @file
 * Whole-simulation throughput benchmark: events/sec, ns/event and
 * allocations/invocation for the discrete-event sim core, against the
 * frozen pre-optimisation core in legacy_sim.hh (hash-map container
 * table, linear worst-fit scans, std::find pool removal, fat-event
 * binary heap, materialised arrival pushes).
 *
 * Both cores replay the same frozen synthetic trace under the
 * OpenWhisk baseline policy and must produce identical metrics (the
 * refactor is behaviour-preserving by construction); the bench gates
 * on that agreement before timing anything.
 *
 * The allocation probe runs the live core twice: a calibration run
 * whose EventLoopStats peaks become SimCapacityHints, then a hinted
 * run whose Simulator::run() must not allocate at all.
 *
 * Flags:
 *   --functions N / --intervals N   workload size (default 64 x 120)
 *   --repeats R                     timed runs per core (default 5)
 *   --threads N                     shard timed runs across N threads
 *   --shards N                      worker threads for the sharded-
 *                                   engine row's multi-worker run
 *                                   (default 4)
 *   --json PATH                     output path (default BENCH_sim.json)
 *   --smoke                         tiny workload + correctness gates:
 *                                   exits non-zero if the cores
 *                                   disagree or the hinted run
 *                                   allocates. Absolute timings are
 *                                   NOT gated (CI noise).
 *   --baseline PATH                 also gate on the committed
 *                                   BENCH_sim.json at PATH. Each gate
 *                                   is named on its FAIL line:
 *                                   [speedup ratio] -- the measured
 *                                   live/legacy speedup must stay
 *                                   within 2% of its
 *                                   speedup_vs_legacy (best of up to
 *                                   5 measurement rounds; contention
 *                                   only ever lowers the ratio, so
 *                                   retrying sheds noise without
 *                                   masking regressions). Because the
 *                                   legacy core is frozen BEFORE the
 *                                   streaming observation boundary,
 *                                   this ratio is a machine-
 *                                   independent ceiling on what the
 *                                   boundary may cost.
 *                                   [telemetry overhead] -- the
 *                                   histograms-on/off events/s ratio
 *                                   must stay within 2% of 1.0 (same
 *                                   best-of-rounds retry discipline;
 *                                   the bound is a property of the
 *                                   build, so it gates against 1.0
 *                                   rather than the baseline file).
 *                                   [metrics digest] -- the sharded
 *                                   engine's metrics digest (computed
 *                                   on a FIXED workload geometry,
 *                                   independent of --smoke and
 *                                   --functions) must equal the
 *                                   committed one exactly; it is
 *                                   machine-independent by the
 *                                   sharded determinism contract.
 *
 * The sharded row always self-gates: the digest of a 1-worker run and
 * an N-worker run of the sharded engine must be identical, or the
 * bench exits non-zero.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "core/icebreaker.hh"
#include "harness/baseline_gate.hh"
#include "legacy_sim.hh"
#include "obs/recorder.hh"
#include "policies/openwhisk_policy.hh"
#include "sim/sharded_simulator.hh"
#include "sim/simulator.hh"

// ---------------------------------------------------------------------------
// Global allocation counter. Counts every operator new in the
// process, so deltas are taken around single-threaded measurement
// regions only.
// ---------------------------------------------------------------------------

namespace
{
std::atomic<long long> g_alloc_count{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace
{

using namespace iceb;
using Clock = std::chrono::steady_clock;

struct BenchConfig
{
    std::size_t num_functions = 64;
    std::size_t num_intervals = 120; // 2 hours of 1-minute slots
    std::size_t repeats = 5;
    std::size_t threads = 1;
    std::size_t shards = 4; //!< workers in the sharded row's multi run
    std::string json_path = "BENCH_sim.json";
    std::string baseline_path;
    bool smoke = false;
};

// ---------------------------------------------------------------------------
// Frozen workload: hand-rolled trace (independent of the
// synthetic-trace generator, so this bench's numbers cannot drift as
// the workload model evolves). The regime is warm steady state --
// where a production FaaS simulator spends nearly all of its time:
//
//  * Three quarters of the functions serve a burst of invocations
//    every interval, all warm reuses after the first. Each reuse
//    renews the keep-alive, so under OpenWhisk's 10-minute window a
//    deep backlog of stale ContainerExpiry events accumulates in the
//    pending-event set (hundreds of thousands). That backlog is what
//    separates the cores: the legacy core pushes and pops a fat
//    48-byte Event through an ~18-level, multi-megabyte binary heap
//    for EVERY arrival, while the live core streams arrivals from
//    the precomputed schedule without touching the queue at all, and
//    its completion/expiry traffic costs an O(1) calendar-queue
//    bucket append plus a sequential sorted-run drain.
//  * The remaining quarter are sparse: gaps longer than the
//    keep-alive, so every burst cold-starts a fresh fleet (O(servers)
//    worst-fit scans + a hash-map node allocation per container in
//    the legacy core) and the previous fleet expires.
//
// Memory is provisioned above peak demand: no eviction and no wait
// queueing, which are identical code on both sides and would only
// dilute the comparison (tests cover those paths; the agreement gate
// still replays them on every smoke run via the sparse expiries).
// ---------------------------------------------------------------------------

struct BenchWorkload
{
    trace::Trace tr{1, 60'000}; // placeholder; rebuilt in buildWorkload
    std::vector<workload::FunctionProfile> profiles;
    sim::ClusterConfig cluster;
};

BenchWorkload
buildWorkload(const BenchConfig &cfg)
{
    BenchWorkload w;
    w.tr = trace::Trace(cfg.num_intervals, 60'000);
    Rng rng(0x51D'BE4C'11ull);
    std::int64_t peak_demand_mb = 0;
    for (std::size_t fn = 0; fn < cfg.num_functions; ++fn) {
        Rng stream = rng.fork(fn);
        trace::FunctionSeries series;
        series.name = "b" + std::to_string(fn);
        series.memory_mb = 128 + 64 * stream.uniformInt(0, 2);
        series.avg_exec_ms = 600 * stream.uniformInt(1, 3);
        series.concurrency.assign(cfg.num_intervals, 0);
        std::uint32_t peak_conc = 0;
        if (fn % 4 != 3) {
            // Steady service: a warm-reuse burst every interval.
            for (std::size_t iv = 0; iv < cfg.num_intervals; ++iv) {
                series.concurrency[iv] = static_cast<std::uint32_t>(
                    stream.uniformInt(256, 512));
                peak_conc = std::max(peak_conc, series.concurrency[iv]);
            }
        } else {
            // Sparse service: gaps outlast the 10-minute keep-alive,
            // so each burst is a cold restart of the whole fleet and
            // the previous fleet expires container by container.
            std::size_t iv =
                static_cast<std::size_t>(stream.uniformInt(0, 11));
            while (iv < cfg.num_intervals) {
                series.concurrency[iv] = static_cast<std::uint32_t>(
                    stream.uniformInt(32, 96));
                peak_conc = std::max(peak_conc, series.concurrency[iv]);
                iv += static_cast<std::size_t>(stream.uniformInt(12, 18));
            }
        }
        w.tr.addFunction(series);
        peak_demand_mb +=
            static_cast<std::int64_t>(series.memory_mb) * peak_conc;

        workload::FunctionProfile profile;
        profile.name = series.name;
        profile.memory_mb = series.memory_mb;
        profile.cold_start_ms = {
            1000 + 250 * stream.uniformInt(0, 4),
            2000 + 500 * stream.uniformInt(0, 4)};
        profile.exec_ms = {series.avg_exec_ms, 2 * series.avg_exec_ms};
        w.profiles.push_back(profile);
    }

    // Provision 15% above the sum of per-function peaks (an upper
    // bound on simultaneous containers) so placement never evicts or
    // queues. Many small servers keep the legacy cold-placement scan
    // honest without inflating construction cost.
    w.cluster = sim::defaultHeterogeneousCluster();
    const std::size_t servers = static_cast<std::size_t>(
        peak_demand_mb * 23 / 20 / 2048 + 1);
    w.cluster.spec(Tier::HighEnd).server_count = servers;
    w.cluster.spec(Tier::HighEnd).memory_per_server_mb = 2048;
    w.cluster.spec(Tier::LowEnd).server_count = servers;
    w.cluster.spec(Tier::LowEnd).memory_per_server_mb = 2048;
    return w;
}

// ------------------------------------------------------------ agreement

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1aDouble(std::uint64_t hash, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

/** Hash every output both cores share (event_loop is new-only). */
std::uint64_t
hashMetrics(const sim::SimulationMetrics &m)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a(hash, m.invocations);
    hash = fnv1a(hash, m.cold_starts);
    hash = fnv1a(hash, m.warm_starts);
    hash = fnv1a(hash, m.cold_no_container);
    hash = fnv1a(hash, m.cold_all_busy);
    hash = fnv1a(hash, m.cold_setup_attach);
    hash = fnv1aDouble(hash, m.sum_service_ms);
    hash = fnv1aDouble(hash, m.sum_wait_ms);
    hash = fnv1aDouble(hash, m.sum_cold_ms);
    hash = fnv1aDouble(hash, m.sum_exec_ms);
    hash = fnv1aDouble(hash, m.sum_overhead_ms);
    for (const auto *samples :
         {&m.service_times_ms, &m.service_times_high_ms,
          &m.service_times_low_ms}) {
        hash = fnv1a(hash, samples->size());
        for (float sample : *samples) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &sample, sizeof(bits));
            hash = fnv1a(hash, bits);
        }
    }
    for (const sim::FunctionMetrics &fm : m.per_function) {
        hash = fnv1a(hash, fm.invocations);
        hash = fnv1a(hash, fm.cold_starts);
        hash = fnv1a(hash, fm.warm_starts);
        hash = fnv1aDouble(hash, fm.sum_service_ms);
        hash = fnv1aDouble(hash, fm.sum_wait_ms);
        hash = fnv1aDouble(hash, fm.sum_cold_ms);
        hash = fnv1aDouble(hash, fm.sum_exec_ms);
        hash = fnv1aDouble(hash, fm.keep_alive_cost);
    }
    for (int t = 0; t < kNumTiers; ++t) {
        hash = fnv1aDouble(hash, m.keep_alive[t].successful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasteful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasted_mb_ms);
    }
    return hash;
}

sim::SimulationMetrics
runLegacy(const BenchWorkload &w)
{
    policies::OpenWhiskPolicy policy;
    legacy_sim::Simulator sim(w.tr, w.profiles, w.cluster, policy,
                              sim::SimulatorOptions{}.seed);
    return sim.run();
}

sim::SimulationMetrics
runLive(const BenchWorkload &w, const sim::SimCapacityHints &hints = {})
{
    policies::OpenWhiskPolicy policy;
    sim::SimulatorOptions options;
    options.hints = hints;
    sim::Simulator sim(w.tr, w.profiles, w.cluster, policy, options);
    return sim.run();
}

/** The live core with latency histograms attached (telemetry row). */
sim::SimulationMetrics
runLiveHist(const BenchWorkload &w, const sim::SimCapacityHints &hints,
            obs::RunRecorder &recorder)
{
    policies::OpenWhiskPolicy policy;
    sim::SimulatorOptions options;
    options.hints = hints;
    options.recorder = &recorder;
    sim::Simulator sim(w.tr, w.profiles, w.cluster, policy, options);
    return sim.run();
}

// ------------------------------------------------------- sharded row
//
// The sharded-engine row runs IceBreaker (the paper scheme, and a
// shardCompatible one, so the inter-barrier phases actually execute
// concurrently) on a FIXED geometry, independent of --smoke and
// --functions: the metrics digest it reports must stay comparable
// across every invocation that ever wrote a baseline file.

constexpr std::size_t kShardedFunctions = 32;
constexpr std::size_t kShardedIntervals = 36;

sim::SimulationMetrics
runSharded(const BenchWorkload &w, std::size_t workers)
{
    core::IceBreakerPolicy policy;
    sim::SimulatorOptions options;
    options.shards = workers;
    return sim::runSimulation(w.tr, w.profiles, w.cluster, policy,
                              options);
}

std::string
digestHex(std::uint64_t digest)
{
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buffer;
}

// --------------------------------------------------------------- timing

struct CoreTiming
{
    double wall_ms = 0.0;       //!< whole timed batch
    double events_per_sec = 0.0;
    double ns_per_event = 0.0;
};

/**
 * Time @p repeats complete simulations sharded across @p threads
 * (each run is independent; both cores are measured identically).
 * @p events is the logical event count of ONE run.
 *
 * Single-threaded runs report the BEST (minimum) per-repeat time:
 * contention on a shared machine only ever adds time, so the minimum
 * is the observation closest to the true cost, and the ratio of two
 * minima (the speedup the --baseline gate enforces) is far more
 * stable than the ratio of medians. Multi-threaded runs time the
 * whole sharded batch (the point there is aggregate throughput).
 */
template <typename RunFn>
CoreTiming
timeCore(RunFn &&run_fn, std::size_t repeats, std::size_t threads,
         std::uint64_t events)
{
    const auto start = Clock::now();
    double best_run_ms = 0.0;
    if (threads <= 1) {
        best_run_ms = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < repeats; ++r) {
            const auto run_start = Clock::now();
            run_fn();
            best_run_ms =
                std::min(best_run_ms,
                         std::chrono::duration<double, std::milli>(
                             Clock::now() - run_start)
                             .count());
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                while (next.fetch_add(1) < repeats)
                    run_fn();
            });
        }
        for (std::thread &worker : pool)
            worker.join();
    }
    const auto end = Clock::now();

    CoreTiming timing;
    timing.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    const double rep_ms = threads <= 1
        ? best_run_ms
        : timing.wall_ms / static_cast<double>(repeats);
    timing.events_per_sec =
        static_cast<double>(events) / (rep_ms / 1000.0);
    timing.ns_per_event = rep_ms * 1e6 / static_cast<double>(events);
    return timing;
}

// ----------------------------------------------------------------- json

/** The telemetry-overhead row: histograms on vs off on the live core. */
struct TelemetryRow
{
    double events_per_sec_off = 0.0;
    double events_per_sec_on = 0.0;
    double overhead_ratio = 0.0; //!< on / off (1.0 = free)
};

/** The sharded-engine row of the JSON report. */
struct ShardedRow
{
    std::size_t logical_cells = 0;
    std::size_t workers = 0;       //!< the multi run's worker count
    std::uint64_t events = 0;      //!< events of one sharded run
    double events_per_sec_single = 0.0;
    double events_per_sec_multi = 0.0;
    double intra_run_speedup = 0.0;
    std::string metrics_digest;    //!< identical for every worker count
    unsigned host_cpus = 0;        //!< speedup context: cores available
};

void
writeJson(const BenchConfig &cfg, std::uint64_t events,
          std::uint64_t invocations, const CoreTiming &legacy,
          const CoreTiming &live, bool agree, long long calib_allocs,
          long long hinted_allocs, long long hinted_hist_allocs,
          const sim::EventLoopStats &stats, const ShardedRow &sharded,
          const TelemetryRow &telemetry)
{
    std::ofstream out(cfg.json_path);
    out << "{\n";
    out << "  \"bench\": \"sim\",\n";
    out << "  \"workload\": {\"functions\": " << cfg.num_functions
        << ", \"intervals\": " << cfg.num_intervals
        << ", \"invocations\": " << invocations
        << ", \"events\": " << events << "},\n";
    out << "  \"repeats\": " << cfg.repeats << ",\n";
    out << "  \"threads\": " << cfg.threads << ",\n";
    out << "  \"agreement\": " << (agree ? "true" : "false") << ",\n";
    out << "  \"legacy\": {\"wall_ms\": " << legacy.wall_ms
        << ", \"events_per_sec\": " << legacy.events_per_sec
        << ", \"ns_per_event\": " << legacy.ns_per_event << "},\n";
    out << "  \"live\": {\"wall_ms\": " << live.wall_ms
        << ", \"events_per_sec\": " << live.events_per_sec
        << ", \"ns_per_event\": " << live.ns_per_event << "},\n";
    out << "  \"speedup_vs_legacy\": "
        << live.events_per_sec / legacy.events_per_sec << ",\n";
    out << "  \"allocations\": {\"calibration_run\": " << calib_allocs
        << ", \"hinted_run\": " << hinted_allocs
        << ", \"hinted_run_histograms\": " << hinted_hist_allocs
        << ", \"hinted_per_invocation\": "
        << static_cast<double>(hinted_allocs) /
            static_cast<double>(invocations)
        << "},\n";
    out << "  \"telemetry\": {\"events_per_sec_off\": "
        << telemetry.events_per_sec_off
        << ", \"events_per_sec_on\": " << telemetry.events_per_sec_on
        << ", \"overhead_ratio\": " << telemetry.overhead_ratio
        << "},\n";
    out << "  \"sharded\": {\"scheme\": \"icebreaker\""
        << ", \"functions\": " << kShardedFunctions
        << ", \"intervals\": " << kShardedIntervals
        << ", \"logical_cells\": " << sharded.logical_cells
        << ", \"workers\": " << sharded.workers
        << ", \"events\": " << sharded.events
        << ", \"events_per_sec_single\": "
        << sharded.events_per_sec_single
        << ", \"events_per_sec_multi\": "
        << sharded.events_per_sec_multi
        << ", \"intra_run_speedup\": " << sharded.intra_run_speedup
        << ", \"metrics_digest\": \"" << sharded.metrics_digest << "\""
        << ", \"host_cpus\": " << sharded.host_cpus << "},\n";
    out << "  \"event_loop\": {\"popped_total\": " << stats.totalPopped()
        << ", \"stale_expiry_events\": " << stats.stale_expiry_events
        << ", \"stale_evict_entries\": " << stats.stale_evict_entries
        << ", \"eviction_victims_examined\": "
        << stats.eviction_victims_examined
        << ", \"peak_live_containers\": " << stats.peak_live_containers
        << ", \"peak_pending_events\": " << stats.peak_pending_events
        << ", \"peak_bucket_events\": " << stats.peak_bucket_events
        << ", \"peak_evict_entries\": " << stats.peak_evict_entries
        << ", \"peak_wait_queue\": " << stats.peak_wait_queue << "}\n";
    out << "}\n";
}

/** Whole baseline file as a string; exits with a message if absent. */
std::string
readBaselineFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_sim: cannot read baseline %s\n",
                     path.c_str());
        std::exit(1);
    }
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

[[noreturn]] void
usage(int status)
{
    (status == 0 ? std::cout : std::cerr)
        << "usage: bench_sim [--functions N] [--intervals N]\n"
           "                 [--repeats R] [--threads N] [--shards N]\n"
           "                 [--json PATH] [--smoke]\n"
           "                 [--baseline PATH]\n";
    std::exit(status);
}

BenchConfig
parseArgs(int argc, char **argv)
{
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "bench_sim: missing value for " << arg << "\n";
                usage(1);
            }
            return argv[++i];
        };
        auto count = [&]() -> std::size_t {
            const std::string text = next();
            char *end = nullptr;
            const unsigned long long value =
                std::strtoull(text.c_str(), &end, 0);
            if (end == text.c_str() || *end != '\0' || value == 0) {
                std::cerr << "bench_sim: bad value '" << text << "' for "
                          << arg << " (want a positive integer)\n";
                usage(1);
            }
            return static_cast<std::size_t>(value);
        };
        if (arg == "--functions") {
            cfg.num_functions = count();
        } else if (arg == "--intervals") {
            cfg.num_intervals = count();
        } else if (arg == "--repeats") {
            cfg.repeats = count();
        } else if (arg == "--threads") {
            cfg.threads = count();
        } else if (arg == "--shards") {
            cfg.shards = count();
        } else if (arg == "--json") {
            cfg.json_path = next();
        } else if (arg == "--baseline") {
            cfg.baseline_path = next();
        } else if (arg == "--smoke") {
            cfg.smoke = true;
        } else {
            if (arg != "--help")
                std::cerr << "bench_sim: unknown option " << arg << "\n";
            usage(arg == "--help" ? 0 : 1);
        }
    }
    if (cfg.smoke) {
        cfg.num_functions = 16;
        cfg.num_intervals = 30;
        // Enough repeats for the best-of-N estimator to converge on a
        // noisy CI runner: smoke runs are ~50 ms, so this stays cheap.
        cfg.repeats = 7;
    }
    if (cfg.threads == 0)
        cfg.threads = 1;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchConfig cfg = parseArgs(argc, argv);
    const BenchWorkload w = buildWorkload(cfg);

    // -------------------------------------------------- agreement gate
    const sim::SimulationMetrics legacy_metrics = runLegacy(w);
    const sim::SimulationMetrics live_metrics = runLive(w);
    const bool agree =
        hashMetrics(legacy_metrics) == hashMetrics(live_metrics);
    const std::uint64_t events = live_metrics.event_loop.totalPopped();
    const std::uint64_t invocations = live_metrics.invocations;
    std::printf("workload: %zu fns x %zu intervals, %llu invocations, "
                "%llu events\n",
                cfg.num_functions, cfg.num_intervals,
                static_cast<unsigned long long>(invocations),
                static_cast<unsigned long long>(events));
    std::printf("agreement (legacy == live metrics): %s\n",
                agree ? "OK" : "MISMATCH");

    // -------------------------------------------------- allocation probe
    sim::SimCapacityHints hints;
    hints.containers = live_metrics.event_loop.peak_live_containers;
    hints.events = live_metrics.event_loop.peak_pending_events;
    hints.events_per_bucket = live_metrics.event_loop.peak_bucket_events;
    hints.evict_entries = live_metrics.event_loop.peak_evict_entries;
    hints.wait_queue = live_metrics.event_loop.peak_wait_queue;

    long long calib_allocs = 0;
    long long hinted_allocs = 0;
    {
        policies::OpenWhiskPolicy policy;
        sim::Simulator sim(w.tr, w.profiles, w.cluster, policy, {});
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        (void)sim.run();
        calib_allocs =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    {
        policies::OpenWhiskPolicy policy;
        sim::SimulatorOptions options;
        options.hints = hints;
        sim::Simulator sim(w.tr, w.profiles, w.cluster, policy, options);
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        (void)sim.run();
        hinted_allocs =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    // The same hinted run with latency histograms attached: record()
    // is array increments into a preconstructed set, so telemetry must
    // not reintroduce steady-state allocations (recorder construction
    // sits outside the counted region, like the hints).
    long long hinted_hist_allocs = 0;
    {
        policies::OpenWhiskPolicy policy;
        obs::ObsConfig obs_config;
        obs_config.histograms = true;
        obs::RunRecorder recorder(obs_config);
        sim::SimulatorOptions options;
        options.hints = hints;
        options.recorder = &recorder;
        sim::Simulator sim(w.tr, w.profiles, w.cluster, policy, options);
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        (void)sim.run();
        hinted_hist_allocs =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    std::printf("allocations in run(): calibration %lld, hinted %lld "
                "(%.6f per invocation), hinted+histograms %lld\n",
                calib_allocs, hinted_allocs,
                static_cast<double>(hinted_allocs) /
                    static_cast<double>(invocations),
                hinted_hist_allocs);

    // ----------------------------------------------------------- timing
    // One untimed warmup of each core, then the timed batches.
    (void)runLegacy(w);
    (void)runLive(w, hints);
    const CoreTiming legacy_timing = timeCore(
        [&] { (void)runLegacy(w); }, cfg.repeats, cfg.threads, events);
    const CoreTiming live_timing = timeCore(
        [&] { (void)runLive(w, hints); }, cfg.repeats, cfg.threads,
        events);
    const double speedup =
        live_timing.events_per_sec / legacy_timing.events_per_sec;

    std::printf("legacy: %8.0f events/sec  (%7.1f ns/event)\n",
                legacy_timing.events_per_sec, legacy_timing.ns_per_event);
    std::printf("live:   %8.0f events/sec  (%7.1f ns/event)\n",
                live_timing.events_per_sec, live_timing.ns_per_event);
    std::printf("speedup vs legacy: %.2fx\n", speedup);

    // --------------------------------------------- telemetry overhead
    // Histograms on vs off on the hinted live core, single-threaded
    // best-of-N on both sides so the overhead ratio is a ratio of two
    // minima (same estimator as the legacy/live gate). The recorder
    // persists across repeats: construction is setup cost, and
    // record() cost does not depend on accumulated counts.
    obs::ObsConfig telemetry_config;
    telemetry_config.histograms = true;
    obs::RunRecorder telemetry_recorder(telemetry_config);
    (void)runLiveHist(w, hints, telemetry_recorder); // warmup
    const auto measureTelemetry = [&] {
        const CoreTiming off = timeCore(
            [&] { (void)runLive(w, hints); }, cfg.repeats, 1, events);
        const CoreTiming on = timeCore(
            [&] { (void)runLiveHist(w, hints, telemetry_recorder); },
            cfg.repeats, 1, events);
        TelemetryRow row;
        row.events_per_sec_off = off.events_per_sec;
        row.events_per_sec_on = on.events_per_sec;
        row.overhead_ratio = on.events_per_sec / off.events_per_sec;
        return row;
    };
    TelemetryRow telemetry = measureTelemetry();
    std::printf("telemetry: %8.0f events/sec histograms off, %8.0f "
                "events/sec on (ratio %.4f)\n",
                telemetry.events_per_sec_off,
                telemetry.events_per_sec_on, telemetry.overhead_ratio);

    // ------------------------------------------------- sharded row
    // Fixed geometry (see kSharded* above): its digest is comparable
    // across hosts and across every bench invocation.
    BenchConfig sharded_cfg = cfg;
    sharded_cfg.num_functions = kShardedFunctions;
    sharded_cfg.num_intervals = kShardedIntervals;
    const BenchWorkload sw = buildWorkload(sharded_cfg);
    const std::size_t shard_workers = std::max<std::size_t>(
        2, cfg.shards);

    const sim::SimulationMetrics sharded_single = runSharded(sw, 1);
    const sim::SimulationMetrics sharded_multi =
        runSharded(sw, shard_workers);
    const std::uint64_t digest_single = hashMetrics(sharded_single);
    const std::uint64_t digest_multi = hashMetrics(sharded_multi);
    const bool sharded_agree = digest_single == digest_multi;

    ShardedRow sharded;
    sharded.logical_cells =
        sim::ShardPlan::build(sw.tr.numFunctions(), sw.cluster).num_cells;
    sharded.workers = shard_workers;
    sharded.events = sharded_single.event_loop.totalPopped();
    sharded.metrics_digest = digestHex(digest_single);
    sharded.host_cpus = std::thread::hardware_concurrency();

    // Best-of-3 per worker count: the ratio of two minima sheds
    // contention noise the same way the legacy/live gate does.
    const CoreTiming sharded_1 = timeCore(
        [&] { (void)runSharded(sw, 1); }, 3, 1, sharded.events);
    const CoreTiming sharded_n = timeCore(
        [&] { (void)runSharded(sw, shard_workers); }, 3, 1,
        sharded.events);
    sharded.events_per_sec_single = sharded_1.events_per_sec;
    sharded.events_per_sec_multi = sharded_n.events_per_sec;
    sharded.intra_run_speedup =
        sharded_n.events_per_sec / sharded_1.events_per_sec;

    std::printf("sharded (icebreaker, %zu cells): digest %s "
                "(1 worker == %zu workers: %s)\n",
                sharded.logical_cells, sharded.metrics_digest.c_str(),
                shard_workers, sharded_agree ? "OK" : "MISMATCH");
    std::printf("sharded: %8.0f events/sec single, %8.0f events/sec "
                "x%zu workers (%.2fx, %u cpus)\n",
                sharded.events_per_sec_single,
                sharded.events_per_sec_multi, shard_workers,
                sharded.intra_run_speedup, sharded.host_cpus);

    writeJson(cfg, events, invocations, legacy_timing, live_timing,
              agree, calib_allocs, hinted_allocs, hinted_hist_allocs,
              live_metrics.event_loop, sharded, telemetry);
    std::printf("wrote %s\n", cfg.json_path.c_str());

    if (!agree) {
        std::fprintf(stderr, "FAIL: legacy and live metrics differ\n");
        return 1;
    }
    if (hinted_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: hinted run() performed %lld allocations\n",
                     hinted_allocs);
        return 1;
    }
    if (hinted_hist_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: hinted run() with histograms performed "
                     "%lld allocations\n",
                     hinted_hist_allocs);
        return 1;
    }
    if (!sharded_agree) {
        std::fprintf(stderr,
                     "FAIL: [metrics digest] sharded engine diverged "
                     "across worker counts: 1 worker %s != %zu "
                     "workers %s\n",
                     digestHex(digest_single).c_str(), shard_workers,
                     digestHex(digest_multi).c_str());
        return 1;
    }
    if (!cfg.baseline_path.empty()) {
        const std::string baseline =
            readBaselineFile(cfg.baseline_path);

        // Ratio-of-rates on the same machine in the same process:
        // machine speed cancels out, leaving only what the live core
        // gained or lost relative to the frozen control since the
        // baseline was committed. Contention can only make a measured
        // speedup look WORSE (it slows the live batch or speeds the
        // comparison by stalling nothing), never better, so on a miss
        // the gate re-measures and keeps the best round: noise is
        // shed, while a genuine regression depresses every round and
        // still fails.
        const std::optional<double> base = harness::findJsonNumber(
            baseline, "speedup_vs_legacy");
        if (!base) {
            std::fprintf(stderr,
                         "bench_sim: no speedup_vs_legacy in %s\n",
                         cfg.baseline_path.c_str());
            return 1;
        }
        const double floor = *base * 0.98;
        double best = speedup;
        for (int round = 2; best < floor && round <= 5; ++round) {
            const CoreTiming lt = timeCore([&] { (void)runLegacy(w); },
                                           cfg.repeats, cfg.threads,
                                           events);
            const CoreTiming vt =
                timeCore([&] { (void)runLive(w, hints); }, cfg.repeats,
                         cfg.threads, events);
            const double again = vt.events_per_sec / lt.events_per_sec;
            std::printf("gate re-measure round %d: %.5f\n", round,
                        again);
            best = std::max(best, again);
        }
        const harness::GateResult ratio_gate = harness::gateRatio(
            "speedup ratio", best, *base, 0.02);
        std::printf("%s\n", ratio_gate.message.c_str());
        if (!ratio_gate.ok) {
            std::fprintf(stderr, "FAIL: %s\n",
                         ratio_gate.message.c_str());
            return 1;
        }

        // Telemetry gates against 1.0, not the baseline file: the
        // histogram pillar must stay within 2% of free, which is a
        // property of the build, not of this machine. Same
        // re-measure-on-miss discipline as the speedup gate.
        TelemetryRow best_telemetry = telemetry;
        for (int round = 2;
             best_telemetry.overhead_ratio < 0.98 && round <= 5;
             ++round) {
            const TelemetryRow again = measureTelemetry();
            std::printf("telemetry re-measure round %d: %.5f\n", round,
                        again.overhead_ratio);
            if (again.overhead_ratio > best_telemetry.overhead_ratio)
                best_telemetry = again;
        }
        const harness::GateResult telemetry_gate = harness::gateRatio(
            "telemetry overhead", best_telemetry.overhead_ratio, 1.0,
            0.02);
        std::printf("%s\n", telemetry_gate.message.c_str());
        if (!telemetry_gate.ok) {
            std::fprintf(stderr, "FAIL: %s\n",
                         telemetry_gate.message.c_str());
            return 1;
        }

        // The sharded digest is machine-independent, so it gates
        // exactly — but only against baselines that carry one (older
        // baseline files predate the sharded engine).
        const std::optional<std::string> committed =
            harness::findJsonString(baseline, "metrics_digest");
        if (committed) {
            const harness::GateResult digest_gate = harness::gateDigest(
                "metrics digest", sharded.metrics_digest, *committed);
            std::printf("%s\n", digest_gate.message.c_str());
            if (!digest_gate.ok) {
                std::fprintf(stderr, "FAIL: %s\n",
                             digest_gate.message.c_str());
                return 1;
            }
        } else {
            std::printf("[metrics digest] baseline %s has no sharded "
                        "digest; gate skipped\n",
                        cfg.baseline_path.c_str());
        }
    }
    return 0;
}
