/**
 * @file
 * Reproduces Fig. 9: keep-alive cost split into successful warm-ups
 * (the warmed instance served an invocation) and wasteful warm-ups
 * (warmed but destroyed unused), per server tier and per scheme --
 * plus the memory-wastage comparison from the same section.
 */

#include <iostream>

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    const bench::BenchOptions options =
        bench::parseBenchOptions(argc, argv);
    const harness::Workload workload = bench::standardWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const std::vector<harness::SchemeResult> results =
        bench::runSchemesParallel(workload, cluster, options);

    for (Tier tier : {Tier::HighEnd, Tier::LowEnd}) {
        TextTable table(std::string("Fig. 9: warm-up cost on the ") +
                        tierName(tier) + " tier");
        table.setHeader({"scheme", "successful $", "wasteful $",
                         "wasted GB-min"});
        for (const auto &result : results) {
            const sim::TierKeepAlive &ka =
                result.metrics.tierKeepAlive(tier);
            table.addRow({
                harness::schemeName(result.scheme),
                TextTable::num(ka.successful_cost, 3),
                TextTable::num(ka.wasteful_cost, 3),
                TextTable::num(ka.wasted_mb_ms / 1024.0 / 60'000.0, 0),
            });
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    const auto wasteful_high = [&](std::size_t i) {
        return results[i].metrics.tierKeepAlive(Tier::HighEnd)
            .wasteful_cost;
    };
    std::cout << "IceBreaker wasteful warm-up improvement on "
                 "high-end vs baseline: "
              << TextTable::pct((wasteful_high(0) - wasteful_high(3)) /
                                wasteful_high(0))
              << " (paper: > 65%)\n";
    return 0;
}
