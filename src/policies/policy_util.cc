#include "policies/policy_util.hh"

namespace iceb::policies
{

std::size_t
warmWithSpill(sim::WarmupInterface &cluster, FunctionId fn, Tier primary,
              std::size_t count, TimeMs expiry, sim::Policy &policy)
{
    if (count == 0)
        return 0;
    std::size_t placed = cluster.ensureWarm(fn, primary, count, expiry);
    if (placed < count) {
        placed += cluster.ensureWarm(fn, otherTier(primary),
                                     count - placed, expiry);
    }
    if (placed < count) {
        placed += cluster.ensureWarmEvicting(fn, primary, count - placed,
                                             expiry, policy);
    }
    return placed;
}

} // namespace iceb::policies
