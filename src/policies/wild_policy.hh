/**
 * @file
 * "Serverless in the Wild" (Shahrad et al., ATC'20) warm-up policy.
 *
 * Hybrid histogram of per-function idle times: when representative,
 * pre-warm the function head-percentile minutes after its last
 * arrival and keep it alive until the tail percentile; fall back to
 * an ARIMA idle-time forecast, then to a standard fixed keep-alive.
 * As the paper's critique notes, the scheme warms the number of
 * instances seen at the previous invocation (it does not predict
 * concurrency). Made heterogeneity-aware the way the paper modified
 * it: high-end placement first, spill to low-end.
 */

#ifndef ICEB_POLICIES_WILD_POLICY_HH
#define ICEB_POLICIES_WILD_POLICY_HH

#include <vector>

#include "common/units.hh"
#include "predictors/hybrid_histogram.hh"
#include "sim/policy.hh"

namespace iceb::policies
{

/** Wild policy configuration. */
struct WildConfig
{
    predictors::HybridHistogramConfig histogram;
    TimeMs standard_keep_alive_ms = 10 * kMsPerMinute;
    TimeMs overhead_ms = 15; //!< paper: competing schemes 10-20 ms
};

/**
 * Hybrid-histogram warm-up policy.
 */
class WildPolicy : public sim::Policy
{
  public:
    explicit WildPolicy(WildConfig config = {});

    const char *name() const override { return "wild"; }

    void initialize(const sim::SimContext &ctx) override;
    void onIntervalObserved(
        const sim::IntervalObservation &closed) override;
    void onIntervalStart(IntervalIndex interval,
                         sim::WarmupInterface &cluster) override;
    TimeMs keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                     TimeMs now) override;
    TimeMs overheadMs() const override { return config_.overhead_ms; }

    /**
     * keepAliveAfterExecutionMs reads only functions_[fn], whose
     * state is written exclusively in the interval hooks.
     */
    bool shardCompatible() const override { return true; }

  private:
    struct FunctionState
    {
        predictors::HybridHistogram histogram;
        predictors::IdleWindowForecast forecast; //!< for current idle
        IntervalIndex last_arrival = -1;
        std::uint32_t last_concurrency = 0;

        explicit FunctionState(
            const predictors::HybridHistogramConfig &config)
            : histogram(config)
        {
        }
    };

    WildConfig config_;
    std::vector<FunctionState> functions_;
};

} // namespace iceb::policies

#endif // ICEB_POLICIES_WILD_POLICY_HH
