#include "policies/faascache_policy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace iceb::policies
{

FaasCachePolicy::FaasCachePolicy(FaasCacheConfig config)
    : config_(config)
{
}

void
FaasCachePolicy::initialize(const sim::SimContext &ctx)
{
    Policy::initialize(ctx);
    frequency_.assign(ctx.num_functions, 0);
    clock_ = 0.0;
}

void
FaasCachePolicy::onExecutionStart(FunctionId fn, Tier tier, bool cold,
                                  TimeMs now)
{
    (void)tier;
    (void)cold;
    (void)now;
    ICEB_ASSERT(fn < frequency_.size(), "unknown function");
    ++frequency_[fn];
}

TimeMs
FaasCachePolicy::keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                           TimeMs now)
{
    (void)fn;
    (void)tier;
    (void)now;
    // "Keep everything" -- greedy-dual eviction is the real policy;
    // the cap only bounds abandoned tails.
    return config_.max_keep_alive_ms;
}

double
FaasCachePolicy::priorityOf(FunctionId fn, Tier tier) const
{
    const workload::FunctionProfile &profile = (*ctx_->profiles)[fn];
    const double cost =
        static_cast<double>(profile.coldStartMs(tier));
    const double size = static_cast<double>(profile.memory_mb);
    const double freq = static_cast<double>(frequency_[fn]);
    return clock_ + freq * cost / std::max(1.0, size);
}

double
FaasCachePolicy::evictionPriority(FunctionId fn, Tier tier,
                                  TimeMs last_used, TimeMs now)
{
    (void)last_used;
    (void)now;
    return priorityOf(fn, tier);
}

void
FaasCachePolicy::onEviction(FunctionId fn, Tier tier, TimeMs now)
{
    (void)now;
    // Greedy-dual aging: the clock jumps to the evicted priority.
    clock_ = std::max(clock_, priorityOf(fn, tier));
}

} // namespace iceb::policies
