#include "policies/oracle_policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::policies
{

void
OraclePolicy::initializeOracle(const sim::OracleContext &oracle)
{
    OfflinePolicy::initializeOracle(oracle);
    ICEB_ASSERT(oracle.arrival_schedule != nullptr,
                "oracle needs the arrival schedule");
    cursor_.assign(oracle.arrival_schedule->size(), 0);
}

void
OraclePolicy::onIntervalStart(IntervalIndex interval,
                              sim::WarmupInterface &cluster)
{
    // Warm up everything arriving in the *next* interval: a warm-up
    // may have to begin inside the current interval for setup to
    // finish exactly at the arrival instant.
    const TimeMs interval_ms = ctx_->interval_ms;
    const TimeMs window_end =
        (static_cast<TimeMs>(interval) + 2) * interval_ms;
    const TimeMs now = cluster.now();

    for (FunctionId fn = 0; fn < cursor_.size(); ++fn) {
        const auto &schedule = (*oracle_->arrival_schedule)[fn];
        const workload::FunctionProfile &profile =
            (*ctx_->profiles)[fn];
        // Oracle executes on the fastest tier; setup falls back to
        // low-end inside the simulator when high-end is full.
        const TimeMs cst = profile.coldStartMs(Tier::HighEnd);
        std::size_t &cursor = cursor_[fn];
        while (cursor < schedule.size() &&
               schedule[cursor] < window_end) {
            const TimeMs arrival = schedule[cursor];
            const TimeMs start = std::max(now, arrival - cst);
            cluster.schedulePrewarm(fn, Tier::HighEnd, start,
                                    arrival + kMsPerMinute);
            ++cursor;
        }
    }
}

} // namespace iceb::policies
