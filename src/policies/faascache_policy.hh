/**
 * @file
 * FaasCache (Fuerst & Sharma, ASPLOS'21) keep-alive policy.
 *
 * Treats function keep-alive as caching with Greedy-Dual-Size-
 * Frequency: every container stays warm indefinitely, and under
 * memory pressure the container with the lowest priority
 *
 *   priority = clock + frequency * cold_start_cost / memory_size
 *
 * is evicted; the global clock rises to the evicted priority so cold
 * entries age out. No prediction or pre-warming. Heterogeneity-aware
 * per the paper's modification: high-end placement first.
 */

#ifndef ICEB_POLICIES_FAASCACHE_POLICY_HH
#define ICEB_POLICIES_FAASCACHE_POLICY_HH

#include <vector>

#include "common/units.hh"
#include "sim/policy.hh"

namespace iceb::policies
{

/** FaasCache configuration. */
struct FaasCacheConfig
{
    /** Cap on how long an un-evicted container may stay warm. */
    TimeMs max_keep_alive_ms = 1 * kMsPerHour;
    TimeMs overhead_ms = 12; //!< paper: competing schemes 10-20 ms
};

/**
 * Greedy-dual keep-alive policy.
 */
class FaasCachePolicy : public sim::Policy
{
  public:
    explicit FaasCachePolicy(FaasCacheConfig config = {});

    const char *name() const override { return "faascache"; }

    void initialize(const sim::SimContext &ctx) override;
    void onExecutionStart(FunctionId fn, Tier tier, bool cold,
                          TimeMs now) override;
    TimeMs keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                     TimeMs now) override;
    double evictionPriority(FunctionId fn, Tier tier, TimeMs last_used,
                            TimeMs now) override;
    void onEviction(FunctionId fn, Tier tier, TimeMs now) override;
    TimeMs overheadMs() const override { return config_.overhead_ms; }

    // NOT shardCompatible (keeps the Policy default of false): the
    // greedy-dual clock_ is cross-function shared state read by
    // evictionPriority and advanced by onEviction mid-interval, so
    // concurrent cells would race on it. The sharded engine runs this
    // scheme's cells serially in cell order instead.

    /** Current greedy-dual clock (exposed for tests). */
    double clock() const { return clock_; }

  private:
    double priorityOf(FunctionId fn, Tier tier) const;

    FaasCacheConfig config_;
    std::vector<std::uint64_t> frequency_;
    double clock_ = 0.0;
};

} // namespace iceb::policies

#endif // ICEB_POLICIES_FAASCACHE_POLICY_HH
