#include "policies/wild_policy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "policies/policy_util.hh"

namespace iceb::policies
{

WildPolicy::WildPolicy(WildConfig config)
    : config_(config)
{
}

void
WildPolicy::initialize(const sim::SimContext &ctx)
{
    Policy::initialize(ctx);
    functions_.clear();
    functions_.reserve(ctx.num_functions);
    for (std::size_t i = 0; i < ctx.num_functions; ++i)
        functions_.emplace_back(config_.histogram);
}

void
WildPolicy::onIntervalObserved(const sim::IntervalObservation &closed)
{
    // Digest the interval that just finished into each function's
    // idle-time histogram (the policy's own history state).
    for (FunctionId fn = 0; fn < functions_.size(); ++fn) {
        const std::uint32_t observed = closed.arrivalsFor(fn);
        if (observed == 0)
            continue;
        FunctionState &state = functions_[fn];
        state.histogram.observeArrival(closed.interval);
        state.last_arrival = closed.interval;
        state.last_concurrency = observed;
        state.forecast = state.histogram.forecast();
    }
}

void
WildPolicy::onIntervalStart(IntervalIndex interval,
                            sim::WarmupInterface &cluster)
{
    const TimeMs interval_ms = ctx_->interval_ms;
    const TimeMs now = cluster.now();
    const TimeMs expiry = now + interval_ms + kRenewalGraceMs;

    for (FunctionId fn = 0; fn < functions_.size(); ++fn) {
        FunctionState &state = functions_[fn];
        if (state.last_arrival < 0 || !state.forecast.usable)
            continue;

        // Pre-warm while inside [head, tail] of the predicted idle
        // window, with the previous invocation's concurrency.
        const double idle_minutes =
            static_cast<double>(interval - state.last_arrival);
        if (idle_minutes >= state.forecast.head_minutes &&
            idle_minutes <= state.forecast.tail_minutes) {
            warmWithSpill(cluster, fn, Tier::HighEnd,
                          std::max<std::uint32_t>(
                              1, state.last_concurrency),
                          expiry, *this);
        }
    }
}

TimeMs
WildPolicy::keepAliveAfterExecutionMs(FunctionId fn, Tier tier, TimeMs now)
{
    (void)tier;
    const FunctionState &state = functions_[fn];
    if (!state.forecast.usable)
        return config_.standard_keep_alive_ms;

    // Keep alive through the head of the expected idle window; the
    // interval hook re-warms the function near the predicted arrival.
    const TimeMs head_ms = static_cast<TimeMs>(
        state.forecast.head_minutes *
        static_cast<double>(ctx_->interval_ms));
    if (head_ms <= ctx_->interval_ms)
        return std::max<TimeMs>(
            ctx_->interval_ms + kRenewalGraceMs,
            static_cast<TimeMs>(
                state.forecast.tail_minutes *
                static_cast<double>(ctx_->interval_ms)));
    (void)now;
    return ctx_->interval_ms + kRenewalGraceMs;
}

} // namespace iceb::policies
