/**
 * @file
 * OpenWhisk's native keep-alive policy: the paper's baseline.
 *
 * No prediction, no pre-warming; every container is simply kept warm
 * for a fixed window (ten minutes by default) after its execution
 * ends -- the behaviour of stock OpenWhisk and, per the paper, of
 * commercial FaaS offerings. All reported improvements in the benches
 * are relative to this scheme.
 */

#ifndef ICEB_POLICIES_OPENWHISK_POLICY_HH
#define ICEB_POLICIES_OPENWHISK_POLICY_HH

#include "common/units.hh"
#include "sim/policy.hh"

namespace iceb::policies
{

/**
 * Fixed keep-alive baseline.
 */
class OpenWhiskPolicy : public sim::Policy
{
  public:
    /** @param keep_alive_ms Post-execution keep-alive window. */
    explicit OpenWhiskPolicy(TimeMs keep_alive_ms = 10 * kMsPerMinute)
        : keep_alive_ms_(keep_alive_ms)
    {
    }

    const char *name() const override { return "openwhisk"; }

    /** The only hook reads an immutable constant. */
    bool shardCompatible() const override { return true; }

    TimeMs
    keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                              TimeMs now) override
    {
        (void)fn;
        (void)tier;
        (void)now;
        return keep_alive_ms_;
    }

  private:
    TimeMs keep_alive_ms_;
};

} // namespace iceb::policies

#endif // ICEB_POLICIES_OPENWHISK_POLICY_HH
