/**
 * @file
 * Oracle warm-up policy: the paper's offline upper bound.
 *
 * Knows every future invocation exactly (it reads the simulator's
 * arrival schedule) and warms each instance just-in-time so setup
 * completes precisely at the arrival. Containers are torn down
 * immediately after execution, so keep-alive cost is (essentially)
 * zero and every invocation is a warm start whenever memory allows.
 * Not implementable online; it bounds the achievable service time.
 */

#ifndef ICEB_POLICIES_ORACLE_POLICY_HH
#define ICEB_POLICIES_ORACLE_POLICY_HH

#include <vector>

#include "sim/policy.hh"

namespace iceb::policies
{

/**
 * Just-in-time, future-knowledge policy.
 */
class OraclePolicy : public sim::Policy
{
  public:
    OraclePolicy() = default;

    const char *name() const override { return "oracle"; }

    void initialize(const sim::SimContext &ctx) override;
    void onIntervalStart(IntervalIndex interval,
                         sim::WarmupInterface &cluster) override;

    TimeMs
    keepAliveAfterExecutionMs(FunctionId fn, Tier tier, TimeMs now)
        override
    {
        (void)fn;
        (void)tier;
        (void)now;
        return 0; // tear down instantly; the next warm-up is JIT
    }

  private:
    /** Per-function cursor into the arrival schedule. */
    std::vector<std::size_t> cursor_;
};

} // namespace iceb::policies

#endif // ICEB_POLICIES_ORACLE_POLICY_HH
