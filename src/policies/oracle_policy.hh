/**
 * @file
 * Oracle warm-up policy: the paper's offline upper bound.
 *
 * Knows every future invocation exactly (it reads the driver's
 * arrival schedule through the privileged OracleContext; it is the
 * one policy deriving from sim::OfflinePolicy) and warms each
 * instance just-in-time so setup completes precisely at the arrival.
 * Containers are torn down immediately after execution, so keep-alive
 * cost is (essentially) zero and every invocation is a warm start
 * whenever memory allows. Not implementable online; it bounds the
 * achievable service time.
 */

#ifndef ICEB_POLICIES_ORACLE_POLICY_HH
#define ICEB_POLICIES_ORACLE_POLICY_HH

#include <vector>

#include "sim/oracle.hh"

namespace iceb::policies
{

/**
 * Just-in-time, future-knowledge policy.
 */
class OraclePolicy : public sim::OfflinePolicy
{
  public:
    OraclePolicy() = default;

    const char *name() const override { return "oracle"; }

    void initializeOracle(const sim::OracleContext &oracle) override;
    void onIntervalStart(IntervalIndex interval,
                         sim::WarmupInterface &cluster) override;

    /**
     * keepAliveAfterExecutionMs is a constant; the schedule cursors
     * advance only in onIntervalStart (a barrier hook).
     */
    bool shardCompatible() const override { return true; }

    TimeMs
    keepAliveAfterExecutionMs(FunctionId fn, Tier tier, TimeMs now)
        override
    {
        (void)fn;
        (void)tier;
        (void)now;
        return 0; // tear down instantly; the next warm-up is JIT
    }

  private:
    /** Per-function cursor into the arrival schedule. */
    std::vector<std::size_t> cursor_;
};

} // namespace iceb::policies

#endif // ICEB_POLICIES_ORACLE_POLICY_HH
