/**
 * @file
 * Shared helpers for policy implementations.
 */

#ifndef ICEB_POLICIES_POLICY_UTIL_HH
#define ICEB_POLICIES_POLICY_UTIL_HH

#include "sim/policy.hh"

namespace iceb::policies
{

/**
 * Warm @p count instances of @p fn, preferring @p primary, spilling
 * any shortfall onto the other tier (the heterogeneity-aware
 * placement the paper applies to every scheme), and finally evicting
 * in @p policy's priority order. Returns instances actually
 * provisioned across both tiers.
 */
std::size_t warmWithSpill(sim::WarmupInterface &cluster, FunctionId fn,
                          Tier primary, std::size_t count, TimeMs expiry,
                          sim::Policy &policy);

/**
 * Small margin added to expiries that land exactly on the next
 * decision boundary, so renewal (processed at the boundary) wins the
 * race against expiry.
 */
inline constexpr TimeMs kRenewalGraceMs = 1500;

} // namespace iceb::policies

#endif // ICEB_POLICIES_POLICY_UTIL_HH
