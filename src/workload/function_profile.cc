#include "workload/function_profile.hh"

#include "common/logging.hh"

namespace iceb::workload
{

double
FunctionProfile::interServerSpeedup() const
{
    const double low = static_cast<double>(
        serviceTimeColdMs(Tier::LowEnd));
    ICEB_ASSERT(low > 0.0, "profile '", name,
                "' has zero low-end service time");
    return static_cast<double>(serviceTimeColdMs(Tier::HighEnd)) / low;
}

} // namespace iceb::workload
