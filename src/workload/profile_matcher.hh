/**
 * @file
 * Trace-function to benchmark-profile matching.
 *
 * The Azure trace provides only memory allocation and average
 * execution time per function; the paper finds "the nearest match of
 * a corresponding benchmark from our benchmark pool to represent the
 * corresponding function behavior" (Sec. 4). This module implements
 * that matcher and produces the per-function profiles the simulator
 * consumes.
 */

#ifndef ICEB_WORKLOAD_PROFILE_MATCHER_HH
#define ICEB_WORKLOAD_PROFILE_MATCHER_HH

#include <vector>

#include "trace/trace.hh"
#include "workload/benchmark_suite.hh"

namespace iceb::workload
{

/** How matched profiles are adapted to the trace's resource hints. */
enum class MatchMode
{
    /**
     * Use the matched benchmark's numbers verbatim (exactly what the
     * paper's real-system setup does: the benchmark binary runs).
     */
    ProfileOnly,

    /**
     * Keep the benchmark's tier ratios and cold-start behaviour but
     * scale execution time and memory to the trace's hints, widening
     * workload diversity beyond the pool size.
     */
    ScaleToTrace,
};

/**
 * Matches trace functions to benchmark profiles.
 */
class ProfileMatcher
{
  public:
    ProfileMatcher(const BenchmarkSuite &suite,
                   MatchMode mode = MatchMode::ScaleToTrace);

    /**
     * Nearest-profile index for the given resource hints, by L2
     * distance in log(memory), log(exec-time) space (both axes span
     * orders of magnitude).
     */
    std::size_t matchIndex(MemoryMb memory_mb, TimeMs exec_ms) const;

    /** Materialised profile for one trace function. */
    FunctionProfile profileFor(const trace::FunctionSeries &fn) const;

    /**
     * Materialised profile from bare metadata (name + resource
     * hints), for streamed workloads that never build FunctionSeries.
     * Identical output to the series overload for equal inputs.
     */
    FunctionProfile profileFor(const std::string &name,
                               MemoryMb memory_mb, TimeMs exec_ms) const;

    /** Profiles for every function in a trace, indexed by id. */
    std::vector<FunctionProfile> profilesFor(const trace::Trace &tr) const;

  private:
    const BenchmarkSuite &suite_;
    MatchMode mode_;
};

} // namespace iceb::workload

#endif // ICEB_WORKLOAD_PROFILE_MATCHER_HH
