#include "workload/profile_matcher.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace iceb::workload
{

ProfileMatcher::ProfileMatcher(const BenchmarkSuite &suite, MatchMode mode)
    : suite_(suite), mode_(mode)
{
}

std::size_t
ProfileMatcher::matchIndex(MemoryMb memory_mb, TimeMs exec_ms) const
{
    ICEB_ASSERT(memory_mb > 0 && exec_ms > 0,
                "matcher needs positive resource hints");
    const double log_mem = std::log(static_cast<double>(memory_mb));
    const double log_exec = std::log(static_cast<double>(exec_ms));

    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < suite_.size(); ++i) {
        const FunctionProfile &p = suite_.profile(i);
        const double dm =
            log_mem - std::log(static_cast<double>(p.memory_mb));
        const double de = log_exec -
            std::log(static_cast<double>(p.execMs(Tier::HighEnd)));
        const double dist = dm * dm + de * de;
        if (dist < best_dist) {
            best_dist = dist;
            best = i;
        }
    }
    return best;
}

FunctionProfile
ProfileMatcher::profileFor(const trace::FunctionSeries &fn) const
{
    return profileFor(fn.name, fn.memory_mb, fn.avg_exec_ms);
}

FunctionProfile
ProfileMatcher::profileFor(const std::string &name, MemoryMb memory_mb,
                           TimeMs exec_ms) const
{
    const MemoryMb mem = memory_mb > 0 ? memory_mb : MemoryMb{256};
    const TimeMs exec = exec_ms > 0 ? exec_ms : TimeMs{1000};
    const std::size_t index = matchIndex(mem, exec);
    const FunctionProfile &base = suite_.profile(index);

    FunctionProfile out = base;
    out.name = name.empty()
        ? base.name
        : name + " (" + base.name + ")";
    if (mode_ == MatchMode::ProfileOnly)
        return out;

    // ScaleToTrace: pin high-end execution to the trace hint, keep the
    // benchmark's low/high execution ratio, keep cold starts (they are
    // dominated by container/image setup, not function speed), and
    // adopt the trace's memory allocation.
    const double exec_scale = static_cast<double>(exec) /
        static_cast<double>(base.execMs(Tier::HighEnd));
    out.memory_mb = mem;
    out.exec_ms[tierIndex(Tier::HighEnd)] = std::max<TimeMs>(
        1, static_cast<TimeMs>(
               static_cast<double>(base.execMs(Tier::HighEnd)) *
               exec_scale));
    out.exec_ms[tierIndex(Tier::LowEnd)] = std::max<TimeMs>(
        1, static_cast<TimeMs>(
               static_cast<double>(base.execMs(Tier::LowEnd)) *
               exec_scale));
    return out;
}

std::vector<FunctionProfile>
ProfileMatcher::profilesFor(const trace::Trace &tr) const
{
    std::vector<FunctionProfile> out;
    out.reserve(tr.numFunctions());
    for (const auto &fn : tr.functions())
        out.push_back(profileFor(fn));
    return out;
}

} // namespace iceb::workload
