#include "workload/benchmark_suite.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::workload
{

namespace
{

/**
 * Build a profile from seconds-denominated measurements in the order
 * the paper's Table 1 lists them: low-end CST/ET, high-end CST/ET.
 */
FunctionProfile
makeProfile(std::string name, MemoryMb memory_mb, double cst_low_s,
            double et_low_s, double cst_high_s, double et_high_s)
{
    FunctionProfile p;
    p.name = std::move(name);
    p.memory_mb = memory_mb;
    p.cold_start_ms[tierIndex(Tier::LowEnd)] = secondsToMs(cst_low_s);
    p.exec_ms[tierIndex(Tier::LowEnd)] = secondsToMs(et_low_s);
    p.cold_start_ms[tierIndex(Tier::HighEnd)] = secondsToMs(cst_high_s);
    p.exec_ms[tierIndex(Tier::HighEnd)] = secondsToMs(et_high_s);
    return p;
}

} // namespace

FunctionProfile
table1FunctionA()
{
    // Paper Table 1, F_A: warm-on-low beats cold-on-high (metric = yes).
    return makeProfile("serverlessbench/F_A", 512, 2.63, 3.13, 2.09, 2.75);
}

FunctionProfile
table1FunctionB()
{
    // Paper Table 1, F_B: high-end much faster (metric = no).
    return makeProfile("serverlessbench/F_B", 256, 1.20, 3.01, 0.66, 0.77);
}

FunctionProfile
table1FunctionC()
{
    // Paper Table 1, F_C: warm-on-low beats cold-on-high (metric = yes).
    return makeProfile("serverlessbench/F_C", 384, 1.11, 2.09, 0.81, 1.62);
}

FunctionProfile
statelessCostProfile()
{
    // StatelessCost: cold start comparable to execution time and a
    // modest tier slowdown, the regime where warm starts matter most
    // (drives Fig. 2: a warm start on the low-end tier clearly beats
    // a cold start on the high-end tier).
    return makeProfile("serverlessbench/stateless-cost", 256,
                       1.40, 1.45, 1.10, 1.20);
}

BenchmarkSuite
BenchmarkSuite::standard()
{
    std::vector<FunctionProfile> pool;
    pool.push_back(table1FunctionA());
    pool.push_back(table1FunctionB());
    pool.push_back(table1FunctionC());
    pool.push_back(statelessCostProfile());

    // Representative ServerlessBench-style applications spanning the
    // suite's domains. Cold-start overheads are similar across tiers
    // (the paper's experimental observation). Low-end slowdowns
    // follow Table 1's pattern: mostly modest (1.15-1.4x, I/O- and
    // setup-bound functions) with a compute-bound minority at 2.5-4x,
    // so that -- as the paper reports for ServerlessBench -- more
    // than 60% of functions serve a warm start on the low-end tier
    // faster than a cold start on the high-end tier. Memory spans
    // 128 MB - 6 GB.
    pool.push_back(makeProfile("image/thumbnail", 512,
                               1.05, 0.60, 0.90, 0.45));
    pool.push_back(makeProfile("image/exif-rotate", 256,
                               0.85, 0.26, 0.75, 0.21));
    pool.push_back(makeProfile("image/watermark", 768,
                               1.25, 1.05, 1.05, 0.82));
    pool.push_back(makeProfile("video/frame-extract", 1536,
                               2.10, 3.00, 1.80, 2.30));
    pool.push_back(makeProfile("analytics/word-count", 1024,
                               1.35, 1.75, 1.15, 1.35));
    pool.push_back(makeProfile("analytics/json-etl", 640,
                               0.95, 0.68, 0.85, 0.52));
    pool.push_back(makeProfile("analytics/log-aggregate", 2048,
                               1.70, 4.30, 1.45, 2.60));
    pool.push_back(makeProfile("compile/online-gcc", 1280,
                               1.90, 4.40, 1.60, 3.40));
    pool.push_back(makeProfile("compile/template-render", 192,
                               0.70, 0.19, 0.62, 0.15));
    pool.push_back(makeProfile("linalg/matmul-512", 896,
                               1.10, 4.20, 0.95, 1.50));
    pool.push_back(makeProfile("linalg/pagerank", 1792,
                               1.55, 9.50, 1.35, 3.80));
    pool.push_back(makeProfile("ml/inference-resnet", 3072,
                               2.60, 1.40, 2.20, 1.10));
    pool.push_back(makeProfile("ml/feature-hash", 448,
                               0.90, 0.49, 0.80, 0.38));
    pool.push_back(makeProfile("web/render-ssr", 384,
                               0.80, 0.39, 0.70, 0.30));
    pool.push_back(makeProfile("web/auth-check", 128,
                               0.60, 0.13, 0.55, 0.10));
    pool.push_back(makeProfile("crypto/pbkdf2", 160,
                               0.65, 2.60, 0.60, 0.85));
    pool.push_back(makeProfile("db/kv-query", 320,
                               0.75, 0.42, 0.68, 0.33));
    pool.push_back(makeProfile("batch/pdf-report", 6144,
                               3.20, 6.20, 2.80, 4.60));
    pool.push_back(makeProfile("stream/dedup-window", 5120,
                               2.90, 2.10, 2.55, 1.65));

    return BenchmarkSuite(std::move(pool));
}

const char *
sebsCategoryName(SebsCategory category)
{
    switch (category) {
      case SebsCategory::Web:
        return "web";
      case SebsCategory::Multimedia:
        return "multimedia";
      case SebsCategory::Utilities:
        return "utilities";
      case SebsCategory::Inference:
        return "inference";
    }
    return "unknown";
}

std::vector<FunctionProfile>
sebsCategoryProfiles(SebsCategory category)
{
    // SeBS groups its applications into these four categories; the
    // numbers follow each group's published character — webapps are
    // short and tiny, multimedia is I/O-heavy and mid-weight,
    // utilities span compression/visualisation batch jobs, inference
    // pays a large model-load cold start then runs briefly. Low-end
    // slowdowns keep Table 1's pattern: modest for I/O- and
    // setup-bound functions, 2.5-4x for the compute-bound minority.
    std::vector<FunctionProfile> pool;
    switch (category) {
      case SebsCategory::Web:
        pool.push_back(makeProfile("sebs/web/dynamic-html", 128,
                                   0.65, 0.11, 0.58, 0.08));
        pool.push_back(makeProfile("sebs/web/uploader", 256,
                                   0.80, 0.55, 0.70, 0.42));
        pool.push_back(makeProfile("sebs/web/crud-api", 192,
                                   0.72, 0.24, 0.64, 0.18));
        break;
      case SebsCategory::Multimedia:
        pool.push_back(makeProfile("sebs/multimedia/thumbnailer", 512,
                                   1.10, 0.72, 0.95, 0.55));
        pool.push_back(makeProfile("sebs/multimedia/video-processing",
                                   2048, 2.30, 5.10, 1.95, 3.90));
        pool.push_back(makeProfile("sebs/multimedia/gif-transcode", 1024,
                                   1.60, 2.40, 1.40, 1.80));
        break;
      case SebsCategory::Utilities:
        pool.push_back(makeProfile("sebs/utilities/compression", 768,
                                   1.00, 3.60, 0.90, 1.30));
        pool.push_back(makeProfile("sebs/utilities/data-vis", 896,
                                   1.30, 1.90, 1.10, 1.45));
        pool.push_back(makeProfile("sebs/utilities/graph-bfs", 1536,
                                   1.50, 4.80, 1.30, 1.90));
        break;
      case SebsCategory::Inference:
        pool.push_back(makeProfile("sebs/inference/image-recognition",
                                   3008, 3.10, 1.20, 2.70, 0.95));
        pool.push_back(makeProfile("sebs/inference/sentiment", 1280,
                                   2.20, 0.80, 1.95, 0.62));
        break;
    }
    ICEB_ASSERT(!pool.empty(), "unknown SeBS category");
    return pool;
}

BenchmarkSuite
BenchmarkSuite::sebs()
{
    std::vector<FunctionProfile> pool;
    for (std::size_t c = 0; c < kNumSebsCategories; ++c) {
        std::vector<FunctionProfile> category =
            sebsCategoryProfiles(static_cast<SebsCategory>(c));
        for (FunctionProfile &p : category)
            pool.push_back(std::move(p));
    }
    return BenchmarkSuite(std::move(pool));
}

BenchmarkSuite::BenchmarkSuite(std::vector<FunctionProfile> profiles)
    : profiles_(std::move(profiles))
{
    ICEB_ASSERT(!profiles_.empty(), "benchmark suite cannot be empty");
    for (const auto &p : profiles_) {
        ICEB_ASSERT(p.memory_mb > 0, "profile '", p.name,
                    "' has no memory footprint");
        for (int t = 0; t < kNumTiers; ++t) {
            ICEB_ASSERT(p.exec_ms[static_cast<std::size_t>(t)] > 0,
                        "profile '", p.name, "' has zero exec time");
        }
    }
}

const FunctionProfile &
BenchmarkSuite::profile(std::size_t index) const
{
    ICEB_ASSERT(index < profiles_.size(), "profile index out of range");
    return profiles_[index];
}

const FunctionProfile &
BenchmarkSuite::profileByName(const std::string &name) const
{
    for (const auto &p : profiles_)
        if (p.name == name)
            return p;
    fatal("no benchmark profile named '", name, "'");
}

double
BenchmarkSuite::fractionWarmLowBeatsColdHigh() const
{
    std::size_t count = 0;
    for (const auto &p : profiles_)
        if (p.warmLowBeatsColdHigh())
            ++count;
    return static_cast<double>(count) /
        static_cast<double>(profiles_.size());
}

} // namespace iceb::workload
