/**
 * @file
 * ServerlessBench-like benchmark pool.
 *
 * The paper measures real ServerlessBench applications (image
 * processing, data analytics, online compiling, linear algebra, and
 * the StatelessCost micro-benchmark) on its two tiers, then matches
 * each Azure-trace function to the nearest benchmark. This module
 * carries an equivalent profile pool: the three Table 1 functions with
 * the paper's measured values verbatim, a StatelessCost profile (used
 * by Fig. 2), and a spread of representative applications covering the
 * same cold-start/execution/memory ranges.
 */

#ifndef ICEB_WORKLOAD_BENCHMARK_SUITE_HH
#define ICEB_WORKLOAD_BENCHMARK_SUITE_HH

#include <vector>

#include "workload/function_profile.hh"

namespace iceb::workload
{

/**
 * Immutable pool of benchmark profiles.
 */
/**
 * SeBS application categories (Copik et al., Middleware'21). The
 * Azure-scale synthetic preset draws its function-profile mix from
 * these four groups, the same taxonomy the SeBS suite uses to cover
 * the serverless application space.
 */
enum class SebsCategory
{
    Web,        //!< webapps: dynamic HTML, uploads, auth
    Multimedia, //!< thumbnailing, video processing
    Utilities,  //!< compression, data visualisation, graph jobs
    Inference,  //!< ML inference (image recognition etc.)
};

/** Number of SebsCategory values. */
inline constexpr std::size_t kNumSebsCategories = 4;

/** Stable lower-case name of a category ("web", "multimedia", ...). */
const char *sebsCategoryName(SebsCategory category);

/** The category's function profiles (cold start, exec, memory ranges
 * characteristic of that SeBS group; both tiers populated). */
std::vector<FunctionProfile> sebsCategoryProfiles(SebsCategory category);

class BenchmarkSuite
{
  public:
    /** Build the default ServerlessBench-like pool. */
    static BenchmarkSuite standard();

    /** All four SeBS category pools combined, category order fixed
     * (Web, Multimedia, Utilities, Inference). */
    static BenchmarkSuite sebs();

    /** Construct from an explicit profile list. */
    explicit BenchmarkSuite(std::vector<FunctionProfile> profiles);

    /** All profiles. */
    const std::vector<FunctionProfile> &profiles() const
    {
        return profiles_;
    }

    /** Number of profiles. */
    std::size_t size() const { return profiles_.size(); }

    /** Profile by index. */
    const FunctionProfile &profile(std::size_t index) const;

    /** Profile by name; fatal() when absent. */
    const FunctionProfile &profileByName(const std::string &name) const;

    /**
     * Fraction of pool functions for which a warm start on the
     * low-end tier beats a cold start on the high-end tier (the paper
     * reports > 60% for ServerlessBench).
     */
    double fractionWarmLowBeatsColdHigh() const;

  private:
    std::vector<FunctionProfile> profiles_;
};

/** The paper's Table 1 profiles (units converted from seconds). */
FunctionProfile table1FunctionA();
FunctionProfile table1FunctionB();
FunctionProfile table1FunctionC();

/** The StatelessCost profile used in the paper's Fig. 2 experiment. */
FunctionProfile statelessCostProfile();

} // namespace iceb::workload

#endif // ICEB_WORKLOAD_BENCHMARK_SUITE_HH
