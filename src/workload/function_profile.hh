/**
 * @file
 * Per-function performance/resource profile.
 *
 * The platform side of the paper only needs four numbers per function
 * per server tier: cold-start time, execution time, and the memory a
 * warm instance occupies (plus its name for reporting). Profiles for
 * the paper's Table 1 functions carry the measured values verbatim.
 */

#ifndef ICEB_WORKLOAD_FUNCTION_PROFILE_HH
#define ICEB_WORKLOAD_FUNCTION_PROFILE_HH

#include <array>
#include <string>

#include "common/types.hh"

namespace iceb::workload
{

/**
 * Performance profile of one serverless function across tiers.
 */
struct FunctionProfile
{
    std::string name;

    /** Memory a warm or running instance occupies. */
    MemoryMb memory_mb = 0;

    /** Cold-start latency per tier, indexed by tierIndex(). */
    std::array<TimeMs, kNumTiers> cold_start_ms{0, 0};

    /** Warm execution latency per tier, indexed by tierIndex(). */
    std::array<TimeMs, kNumTiers> exec_ms{0, 0};

    /** Cold-start time on a tier. */
    TimeMs coldStartMs(Tier tier) const
    {
        return cold_start_ms[static_cast<std::size_t>(tierIndex(tier))];
    }

    /** Execution time on a tier. */
    TimeMs execMs(Tier tier) const
    {
        return exec_ms[static_cast<std::size_t>(tierIndex(tier))];
    }

    /** Service time of a cold start on a tier (CST + ET). */
    TimeMs serviceTimeColdMs(Tier tier) const
    {
        return coldStartMs(tier) + execMs(tier);
    }

    /** Service time of a warm start on a tier (ET only). */
    TimeMs serviceTimeWarmMs(Tier tier) const { return execMs(tier); }

    /**
     * Inter-server speedup I_s as the paper defines it: the ratio of
     * (ET + CST) on the high-end server to (ET + CST) on the low-end
     * server. Smaller values mean the high-end tier helps more.
     */
    double interServerSpeedup() const;

    /**
     * The Table 1 "metric": true when a warm start on the low-end
     * server beats a cold start on the high-end server.
     */
    bool warmLowBeatsColdHigh() const
    {
        return serviceTimeWarmMs(Tier::LowEnd) <
            serviceTimeColdMs(Tier::HighEnd);
    }
};

} // namespace iceb::workload

#endif // ICEB_WORKLOAD_FUNCTION_PROFILE_HH
