#include "core/utility_score.hh"

#include "math/stats.hh"

namespace iceb::core
{

std::vector<UtilityScore>
computeUtilityScores(const std::vector<UtilityComponents> &candidates)
{
    std::vector<UtilityScore> scores;
    computeUtilityScores(candidates, scores);
    return scores;
}

void
computeUtilityScores(const std::vector<UtilityComponents> &candidates,
                     std::vector<UtilityScore> &scores)
{
    scores.clear();
    scores.reserve(candidates.size());
    if (candidates.empty())
        return;

    const std::size_t n = candidates.size();
    std::vector<double> tn(n), fp(n), is(n), mr(n);
    for (std::size_t i = 0; i < n; ++i) {
        tn[i] = candidates[i].true_negative;
        fp[i] = candidates[i].false_positive;
        is[i] = candidates[i].speedup;
        mr[i] = candidates[i].memory;
    }
    tn = math::minMaxNormalize(tn);
    fp = math::minMaxNormalize(fp);
    is = math::minMaxNormalize(is);
    mr = math::minMaxNormalize(mr);

    for (std::size_t i = 0; i < n; ++i) {
        UtilityScore s;
        s.fn = candidates[i].fn;
        s.score =
            (tn[i] + (1.0 - fp[i]) + (1.0 - is[i]) + (1.0 - mr[i])) / 4.0;
        scores.push_back(s);
    }
}

} // namespace iceb::core
