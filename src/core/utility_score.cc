#include "core/utility_score.hh"

#include "math/stats.hh"

namespace iceb::core
{

std::vector<UtilityScore>
computeUtilityScores(const std::vector<UtilityComponents> &candidates)
{
    std::vector<UtilityScore> scores;
    computeUtilityScores(candidates, scores);
    return scores;
}

void
computeUtilityScores(const std::vector<UtilityComponents> &candidates,
                     std::vector<UtilityScore> &scores)
{
    scores.clear();
    scores.reserve(candidates.size());
    if (candidates.empty())
        return;

    // Fused column min/max scan (replacing four normalized copies of
    // the component columns). The comparison directions mirror
    // std::min_element / std::max_element exactly, so the extrema --
    // and through minMaxNormalizeValue every score -- are bit-identical
    // to the copying implementation this replaces.
    const std::size_t n = candidates.size();
    double tn_lo = candidates[0].true_negative, tn_hi = tn_lo;
    double fp_lo = candidates[0].false_positive, fp_hi = fp_lo;
    double is_lo = candidates[0].speedup, is_hi = is_lo;
    double mr_lo = candidates[0].memory, mr_hi = mr_lo;
    for (std::size_t i = 1; i < n; ++i) {
        const UtilityComponents &c = candidates[i];
        if (c.true_negative < tn_lo)
            tn_lo = c.true_negative;
        if (tn_hi < c.true_negative)
            tn_hi = c.true_negative;
        if (c.false_positive < fp_lo)
            fp_lo = c.false_positive;
        if (fp_hi < c.false_positive)
            fp_hi = c.false_positive;
        if (c.speedup < is_lo)
            is_lo = c.speedup;
        if (is_hi < c.speedup)
            is_hi = c.speedup;
        if (c.memory < mr_lo)
            mr_lo = c.memory;
        if (mr_hi < c.memory)
            mr_hi = c.memory;
    }

    for (std::size_t i = 0; i < n; ++i) {
        const UtilityComponents &c = candidates[i];
        const double tn =
            math::minMaxNormalizeValue(c.true_negative, tn_lo, tn_hi);
        const double fp =
            math::minMaxNormalizeValue(c.false_positive, fp_lo, fp_hi);
        const double is =
            math::minMaxNormalizeValue(c.speedup, is_lo, is_hi);
        const double mr =
            math::minMaxNormalizeValue(c.memory, mr_lo, mr_hi);
        UtilityScore s;
        s.fn = c.fn;
        s.score = (tn + (1.0 - fp) + (1.0 - is) + (1.0 - mr)) / 4.0;
        scores.push_back(s);
    }
}

} // namespace iceb::core
