#include "core/icebreaker.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/probes.hh"
#include "obs/recorder.hh"
#include "policies/policy_util.hh"

namespace iceb::core
{

IceBreakerPolicy::IceBreakerPolicy(IceBreakerConfig config)
    : config_(config)
{
}

void
IceBreakerPolicy::initialize(const sim::SimContext &ctx)
{
    Policy::initialize(ctx);
    const std::size_t n = ctx.num_functions;
    functions_.clear();
    functions_.reserve(n);
    predictors::ForecastPoolOptions pool_opts;
    pool_opts.fast_path = config_.fip_fast_batch;
    pool_opts.threads = config_.fip_threads;
    pool_ = predictors::ForecastPool(pool_opts);
    std::vector<double> memory_ratios(n, 0.0);
    for (std::size_t fn = 0; fn < n; ++fn) {
        functions_.emplace_back(config_.pdm.window);
        FunctionState &state = functions_.back();
        const std::size_t slot = pool_.addFunction(config_.fip);
        ICEB_ASSERT(slot == fn, "pool slots must mirror function ids");
        (void)slot;
        const workload::FunctionProfile &profile = (*ctx.profiles)[fn];
        state.speedup_raw = profile.interServerSpeedup();
        state.memory_raw = std::min(
            1.0, static_cast<double>(profile.memory_mb) /
                     static_cast<double>(config_.max_function_memory_mb));
        memory_ratios[fn] = state.memory_raw;
    }
    pdm_ = std::make_unique<Pdm>(n, config_.pdm);
    pdm_->setMemoryRatios(std::move(memory_ratios));
}

void
IceBreakerPolicy::onIntervalObserved(
    const sim::IntervalObservation &closed)
{
    // 1. Close out the interval that just finished: fold the pushed
    // arrival counts into each function's tracker and FIP window.
    obs::ProbeTable *probes = ctx_->recorder != nullptr
        ? ctx_->recorder->probeTable()
        : nullptr;
    for (FunctionId fn = 0; fn < functions_.size(); ++fn) {
        FunctionState &state = functions_[fn];
        const std::uint32_t observed = closed.arrivalsFor(fn);
        state.tracker.recordInterval(state.invoked_this_interval,
                                     state.cold_this_interval,
                                     state.wasted_this_interval,
                                     state.last_prediction,
                                     static_cast<double>(observed));
        if (probes != nullptr &&
            (state.last_prediction != 0.0 || observed != 0)) {
            obs::ForecastSample sample;
            sample.interval =
                static_cast<std::uint32_t>(closed.interval);
            sample.fn = fn;
            sample.predicted = state.last_prediction;
            sample.actual = static_cast<double>(observed);
            sample.window_mae =
                state.tracker.meanAbsForecastError();
            probes->addForecastSample(sample);
        }
        state.invoked_this_interval = 0;
        state.cold_this_interval = 0;
        state.wasted_this_interval = 0;

        state.max_observed = std::max(state.max_observed, observed);
        pool_.observe(fn, static_cast<double>(observed));
    }
}

void
IceBreakerPolicy::onIntervalStart(IntervalIndex interval,
                                  sim::WarmupInterface &cluster)
{
    const TimeMs now = cluster.now();
    const TimeMs expiry =
        now + ctx_->interval_ms + policies::kRenewalGraceMs;

    // 2. Dynamic cut-offs from tier occupancy.
    const auto vacant_frac = [&](Tier tier) {
        const MemoryMb total = cluster.totalMemoryMb(tier);
        if (total <= 0)
            return 0.0;
        return static_cast<double>(cluster.vacantMemoryMb(tier)) /
            static_cast<double>(total);
    };
    pdm_->updateCutoffs(vacant_frac(Tier::HighEnd),
                        vacant_frac(Tier::LowEnd));

    // 3. Predict the whole fleet in one batched pass, then collect
    // candidates from the per-function horizons.
    const std::size_t horizon_len = config_.keep_alive_horizon + 1;
    pool_.forecastAll(horizon_len);
    std::vector<UtilityComponents> &candidates = candidates_;
    std::vector<std::size_t> &counts = counts_;
    candidates.clear();
    counts.clear();
    for (FunctionId fn = 0; fn < functions_.size(); ++fn) {
        FunctionState &state = functions_[fn];
        const double *horizon = pool_.forecast(fn);
        const double prediction = horizon[0];
        state.last_prediction = prediction;
        // The next interval beyond this one with predicted activity
        // drives post-execution keep-alive durations.
        state.next_predicted_gap = 0;
        for (std::size_t step = 1; step < horizon_len; ++step) {
            if (horizon[step] >= 0.5) {
                state.next_predicted_gap =
                    static_cast<std::uint32_t>(step);
                break;
            }
        }
        // Conservative rounding plus a self-correcting margin: a
        // function whose recent cold starts reveal under-provisioned
        // warm-ups (high T_n) gets proportionally more instances.
        const double margin =
            1.0 + std::min(1.0, state.tracker.trueNegativeRate());
        const double biased =
            (prediction - config_.count_deadband) * margin;
        std::size_t count = biased <= 0.0
            ? 0
            : static_cast<std::size_t>(std::ceil(biased));
        const auto cap = static_cast<std::size_t>(
            config_.concurrency_cap_factor *
                static_cast<double>(std::max<std::uint32_t>(
                    1, state.max_observed)) +
            1.0);
        count = std::min(count, cap);
        if (count == 0)
            continue;
        UtilityComponents uc;
        uc.fn = fn;
        uc.true_negative = state.tracker.trueNegativeRate();
        uc.false_positive = state.tracker.falsePositiveRate();
        uc.speedup = state.speedup_raw;
        uc.memory = state.memory_raw;
        candidates.push_back(uc);
        counts.push_back(count);
    }
    if (candidates.empty())
        return;

    // 4./5. Score, decide, and warm highest-utility functions first.
    std::vector<UtilityScore> &scores = scores_;
    computeUtilityScores(candidates, scores);
    std::vector<std::size_t> &order = order_;
    order.resize(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (scores[a].score != scores[b].score)
                      return scores[a].score > scores[b].score;
                  return scores[a].fn < scores[b].fn;
              });

    for (std::size_t idx : order) {
        const UtilityScore &score = scores[idx];
        functions_[score.fn].last_score = score.score;
        const WarmTarget target = pdm_->decide(interval, score);
        if (target == WarmTarget::None)
            continue;
        const Tier tier = target == WarmTarget::HighEnd
            ? Tier::HighEnd
            : Tier::LowEnd;
        const std::size_t want = counts[idx];
        // Vacant memory first on the target tier, then the other
        // tier, then preempt lower-utility idle containers (the
        // paper's "priority is given to the functions with higher
        // utility scores").
        std::size_t on_primary =
            cluster.ensureWarm(score.fn, tier, want, expiry);
        std::size_t on_other = 0;
        if (on_primary < want) {
            on_other = cluster.ensureWarm(score.fn, otherTier(tier),
                                          want - on_primary, expiry);
        }
        if (on_primary + on_other < want) {
            on_primary += cluster.ensureWarmEvicting(
                score.fn, tier, want - on_other, expiry, *this);
        }
        if (on_primary > 0)
            pdm_->noteWarmed(score.fn, tier);
        if (on_other > 0)
            pdm_->noteWarmed(score.fn, otherTier(tier));
        functions_[score.fn].last_warm_tier =
            on_primary > 0 ? tier
                           : (on_other > 0 ? otherTier(tier) : tier);
    }
}

void
IceBreakerPolicy::onExecutionStart(FunctionId fn, Tier tier, bool cold,
                                   TimeMs now)
{
    (void)tier;
    (void)now;
    FunctionState &state = functions_[fn];
    ++state.invoked_this_interval;
    if (cold)
        ++state.cold_this_interval;
}

TimeMs
IceBreakerPolicy::keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                            TimeMs now)
{
    (void)tier;
    // Hold the container at least to the next decision boundary (the
    // PDM renews it if the FIP predicts another invocation). When the
    // FIP already predicts a near-future invocation, ride the gap:
    // keeping the just-used container warm through the predicted
    // interval is cheaper and surer than tearing down and re-warming,
    // and the extension runs on whichever (possibly cheap) tier the
    // container already occupies.
    // Long gaps are only ridden out on the cheap tier (the paper's
    // Fig. 2c: a short stay on the high-end server, then the low-end
    // server carries the wait); expensive-tier containers get at most
    // a short extension.
    const TimeMs interval_ms = ctx_->interval_ms;
    const TimeMs next_boundary =
        (now / interval_ms + 1) * interval_ms;
    const std::uint32_t gap = functions_[fn].next_predicted_gap;
    const std::uint32_t tier_horizon = tier == Tier::HighEnd
        ? 3
        : static_cast<std::uint32_t>(config_.keep_alive_horizon);
    const TimeMs extension = (gap == 0 || gap > tier_horizon)
        ? 0
        : static_cast<TimeMs>(gap) * interval_ms;
    return next_boundary - now + policies::kRenewalGraceMs + extension;
}

std::array<Tier, 2>
IceBreakerPolicy::coldPlacementOrder(FunctionId fn)
{
    (void)fn;
    // Warm-up placement is utility-driven, but an unpredicted
    // invocation that must cold start anyway executes on the fastest
    // tier with room (matching how the paper runs the competing
    // schemes: high-end first, spill to low-end).
    return {Tier::HighEnd, Tier::LowEnd};
}

double
IceBreakerPolicy::evictionPriority(FunctionId fn, Tier tier,
                                   TimeMs last_used, TimeMs now)
{
    (void)tier;
    (void)now;
    // Reclaim the lowest-utility functions' containers first; break
    // utility ties by least-recent use.
    return functions_[fn].last_score +
        1e-12 * static_cast<double>(last_used);
}

void
IceBreakerPolicy::onWarmupWasted(FunctionId fn, Tier tier, TimeMs now)
{
    (void)tier;
    (void)now;
    ++functions_[fn].wasted_this_interval;
}

} // namespace iceb::core
