#include "core/pdm.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace iceb::core
{

Pdm::Pdm(std::size_t num_functions, PdmConfig config)
    : config_(config), functions_(num_functions),
      memory_ratios_(num_functions, 0.0),
      high_cutoff_(config.high_cutoff), low_cutoff_(config.low_cutoff)
{
    ICEB_ASSERT(config_.low_cutoff < config_.high_cutoff,
                "cut-offs inverted");
    ICEB_ASSERT(config_.window >= 1, "window must be positive");
}

void
Pdm::setMemoryRatios(std::vector<double> ratios)
{
    ICEB_ASSERT(ratios.size() == functions_.size(),
                "one memory ratio per function");
    memory_ratios_ = std::move(ratios);
}

void
Pdm::updateCutoffs(double vacant_high_frac, double vacant_low_frac)
{
    if (!config_.enable_dynamic_cutoffs) {
        high_cutoff_ = config_.high_cutoff;
        low_cutoff_ = config_.low_cutoff;
        return;
    }
    // Each cut-off scales in proportion to its tier's occupancy
    // (paper: "changed in proportion to the fraction of vacant
    // memory"). A vacant high-end tier pulls H_E down so more
    // functions qualify for it; as the tier fills, the cut-off
    // returns to its selective base value -- and symmetrically for
    // the low-end tier.
    high_cutoff_ = std::clamp(
        config_.high_cutoff * (1.0 - config_.vacancy_gain *
                                         vacant_high_frac),
        0.15, 0.95);
    low_cutoff_ = std::clamp(
        config_.low_cutoff * (1.0 - config_.vacancy_gain *
                                        vacant_low_frac),
        0.02, high_cutoff_ - 0.02);
}

WarmTarget
Pdm::targetFromCutoffs(double score) const
{
    if (score > high_cutoff_)
        return WarmTarget::HighEnd;
    if (score < low_cutoff_)
        return WarmTarget::None;
    return WarmTarget::LowEnd;
}

void
Pdm::rollWindow(IntervalIndex interval)
{
    if (interval - window_start_ <
        static_cast<IntervalIndex>(config_.window)) {
        return;
    }
    window_start_ = interval;
    for (std::size_t fn = 0; fn < functions_.size(); ++fn) {
        FunctionState &state = functions_[fn];
        // Large-memory safeguard: big functions that only saw
        // low-end warm-ups last window get high-end next window.
        state.force_high_next_window =
            config_.enable_large_memory_guard &&
            memory_ratios_[fn] >= config_.large_memory_threshold &&
            state.warmed_low_this_window &&
            !state.warmed_high_this_window;
        state.warmed_high_this_window = false;
        state.warmed_low_this_window = false;
        // Window end also releases the ping-pong anchor.
        state.anchor_score = -1.0;
    }
}

WarmTarget
Pdm::decide(IntervalIndex interval, const UtilityScore &score)
{
    ICEB_ASSERT(score.fn < functions_.size(), "unknown function");
    rollWindow(interval);
    FunctionState &state = functions_[score.fn];

    WarmTarget target = targetFromCutoffs(score.score);

    if (state.force_high_next_window && target != WarmTarget::None)
        target = WarmTarget::HighEnd;

    // Ping-pong safeguard: only guard High <-> Low flips.
    const bool is_flip =
        (state.last_target == WarmTarget::HighEnd &&
         target == WarmTarget::LowEnd) ||
        (state.last_target == WarmTarget::LowEnd &&
         target == WarmTarget::HighEnd);
    if (config_.enable_ping_pong_guard && is_flip &&
        state.anchor_score >= 0.0) {
        const double base = std::max(state.anchor_score, 1e-9);
        const double change =
            std::fabs(score.score - state.anchor_score) / base;
        if (change <= config_.ping_pong_threshold)
            target = state.last_target;
    }

    if (target != state.last_target || state.anchor_score < 0.0) {
        state.anchor_score = score.score;
        state.anchor_interval = interval;
    }
    state.last_target = target;
    return target;
}

void
Pdm::noteWarmed(FunctionId fn, Tier tier)
{
    ICEB_ASSERT(fn < functions_.size(), "unknown function");
    if (tier == Tier::HighEnd)
        functions_[fn].warmed_high_this_window = true;
    else
        functions_[fn].warmed_low_this_window = true;
}

} // namespace iceb::core
