/**
 * @file
 * IceBreaker's Placement Decision Maker (paper Sec. 3.2-3.3).
 *
 * Maps utility scores to warm-up targets through two cut-offs
 * (base H_E = 2/3, L_E = 1/3):
 *
 *   S_u > H_E            -> warm on a high-end server
 *   L_E <= S_u <= H_E    -> warm on a low-end server
 *   S_u < L_E            -> do not warm up
 *
 * with three refinements from the paper:
 *  - dynamic cut-offs: shifted in proportion to the vacant-memory
 *    imbalance between tiers, so an empty tier attracts warm-ups;
 *  - ping-pong safeguard: the tier does not flip while the function's
 *    utility score moved <= 10% within the local window;
 *  - large-memory safeguard: a big function that spent the previous
 *    window warming only on low-end is promoted to high-end for the
 *    next window.
 */

#ifndef ICEB_CORE_PDM_HH
#define ICEB_CORE_PDM_HH

#include <vector>

#include "common/types.hh"
#include "core/utility_score.hh"

namespace iceb::core
{

/** Where the PDM wants a function warmed. */
enum class WarmTarget : std::uint8_t
{
    None = 0,
    LowEnd,
    HighEnd,
};

/** PDM tuning (paper defaults). */
struct PdmConfig
{
    double high_cutoff = 2.0 / 3.0;
    double low_cutoff = 1.0 / 3.0;
    /** Gain of the occupancy-proportional cut-off adjustment. */
    double vacancy_gain = 0.75;
    /** Relative S_u change below which the tier is frozen. */
    double ping_pong_threshold = 0.10;
    /** Local window (intervals) for both safeguards. */
    std::size_t window = 60;
    /** M_r above which the large-memory safeguard applies. */
    double large_memory_threshold = 0.5;
    bool enable_dynamic_cutoffs = true;
    bool enable_ping_pong_guard = true;
    bool enable_large_memory_guard = true;
};

/**
 * The placement decision maker. Stateful: tracks per-function
 * placement anchors for the ping-pong guard and per-window tier
 * history for the large-memory safeguard.
 */
class Pdm
{
  public:
    Pdm(std::size_t num_functions, PdmConfig config = {});

    /**
     * Provide each function's raw memory ratio M_r once (static
     * across the run; used by the large-memory safeguard).
     */
    void setMemoryRatios(std::vector<double> ratios);

    /**
     * Update the dynamic cut-offs from tier occupancy.
     * @param vacant_high_frac Vacant fraction of high-end memory.
     * @param vacant_low_frac  Vacant fraction of low-end memory.
     */
    void updateCutoffs(double vacant_high_frac, double vacant_low_frac);

    /**
     * Decide the warm-up target for one scored function at the given
     * interval, applying all safeguards.
     */
    WarmTarget decide(IntervalIndex interval, const UtilityScore &score);

    /**
     * Record that the function was actually warmed on a tier this
     * interval (feeds the large-memory safeguard's window history).
     */
    void noteWarmed(FunctionId fn, Tier tier);

    /** Current effective cut-offs (exposed for tests/benches). */
    double highCutoff() const { return high_cutoff_; }
    double lowCutoff() const { return low_cutoff_; }

    const PdmConfig &config() const { return config_; }

  private:
    struct FunctionState
    {
        WarmTarget last_target = WarmTarget::None;
        double anchor_score = -1.0;          //!< S_u when tier chosen
        IntervalIndex anchor_interval = -1;  //!< when it was chosen
        bool warmed_high_this_window = false;
        bool warmed_low_this_window = false;
        bool force_high_next_window = false;
    };

    WarmTarget targetFromCutoffs(double score) const;
    void rollWindow(IntervalIndex interval);

    PdmConfig config_;
    std::vector<FunctionState> functions_;
    std::vector<double> memory_ratios_;
    double high_cutoff_;
    double low_cutoff_;
    IntervalIndex window_start_ = 0;
};

} // namespace iceb::core

#endif // ICEB_CORE_PDM_HH
