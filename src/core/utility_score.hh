/**
 * @file
 * IceBreaker's utility score (paper Sec. 3.2, Eq. 1).
 *
 * For every function predicted to be invoked, four components are
 * combined:
 *
 *   S_u = [ T_n + (1 - F_p) + (1 - I_s) + (1 - M_r) ] / 4
 *
 *   T_n  true-negative rate of the FIP (cold starts the scheme failed
 *        to prevent -- raise priority),
 *   F_p  false-positive rate (wasted warm-ups -- lower priority),
 *   I_s  inter-server speedup, (ET+CST)_high / (ET+CST)_low (smaller
 *        = high-end helps more -- raise priority),
 *   M_r  memory footprint relative to the provider cap (big
 *        functions crowd out others -- lower priority).
 *
 * Every component is min-max normalised across the candidate set for
 * the interval before entering the formula.
 */

#ifndef ICEB_CORE_UTILITY_SCORE_HH
#define ICEB_CORE_UTILITY_SCORE_HH

#include <vector>

#include "common/types.hh"

namespace iceb::core
{

/** Raw (pre-normalisation) utility-score inputs for one function. */
struct UtilityComponents
{
    FunctionId fn = kInvalidFunction;
    double true_negative = 0.0;  //!< T_n in [0, 1]
    double false_positive = 0.0; //!< F_p, may exceed 1 pre-normalise
    double speedup = 1.0;        //!< I_s = (ET+CST)_H / (ET+CST)_L
    double memory = 0.0;         //!< M_r in [0, 1]
};

/** A scored function. */
struct UtilityScore
{
    FunctionId fn = kInvalidFunction;
    double score = 0.0; //!< S_u in [0, 1]
};

/**
 * Score every candidate: min-max normalise each component column
 * across the candidates, then apply Eq. 1. Constant columns
 * normalise to 0.5 (no ranking information). Output order matches
 * the input order.
 */
std::vector<UtilityScore>
computeUtilityScores(const std::vector<UtilityComponents> &candidates);

/**
 * As above, writing into a caller-owned vector (cleared first) so
 * per-interval callers can reuse one buffer instead of allocating a
 * fresh result every scoring round.
 */
void computeUtilityScores(const std::vector<UtilityComponents> &candidates,
                          std::vector<UtilityScore> &out);

} // namespace iceb::core

#endif // ICEB_CORE_UTILITY_SCORE_HH
