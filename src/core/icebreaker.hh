/**
 * @file
 * The IceBreaker policy: FFT-based function-invocation prediction
 * (FIP) + utility-driven placement decision making (PDM) over a
 * heterogeneous cluster. This is the paper's primary contribution
 * (Sec. 3), expressed as a simulator Policy.
 *
 * Per decision interval it:
 *  1. folds the closed interval's pushed arrival observations into
 *     each function's true-negative / false-positive tracker and FIP
 *     window (onIntervalObserved — the policy keeps its own history;
 *     it never reads a trace);
 *  2. predicts every function's invocation concurrency for the new
 *     interval (trend polynomial + top-10 harmonics);
 *  3. scores the predicted-active functions (Eq. 1), min-max
 *     normalised across the candidate set;
 *  4. lets the PDM map scores to warm-up targets through the dynamic
 *     cut-offs and safeguards;
 *  5. warms the predicted concurrency on the chosen tier, spilling to
 *     the other tier under memory pressure (highest scores first).
 */

#ifndef ICEB_CORE_ICEBREAKER_HH
#define ICEB_CORE_ICEBREAKER_HH

#include <vector>

#include "common/units.hh"
#include "core/pdm.hh"
#include "predictors/fft_predictor.hh"
#include "predictors/forecast_pool.hh"
#include "predictors/prediction_tracker.hh"
#include "sim/policy.hh"

namespace iceb::core
{

/** IceBreaker configuration (paper defaults). */
struct IceBreakerConfig
{
    predictors::FftPredictorConfig fip;
    PdmConfig pdm;

    /** Provider cap that normalises M_r (AWS Lambda: 10 GB). */
    MemoryMb max_function_memory_mb = 10 * kMbPerGb;

    /** Measured FIP+PDM latency charged to every invocation. */
    TimeMs overhead_ms = 30;

    /**
     * Safety cap on predicted concurrency, as a multiple of the
     * largest concurrency ever observed for the function (guards
     * against runaway quadratic extrapolation).
     */
    double concurrency_cap_factor = 2.0;

    /**
     * Instance-count rounding bias: warm ceil(prediction - deadband)
     * instances. A conservative (upward) bias trades a little
     * keep-alive cost for fewer cold starts on under-predictions.
     */
    double count_deadband = 0.2;

    /**
     * Prediction-driven keep-alive horizon: after an execution the
     * container stays warm until the FIP's next predicted invocation
     * interval, looking at most this many intervals ahead. Bounds the
     * worst-case keep-alive at the OpenWhisk default while making the
     * spend track the function's time-varying arrival probability
     * (the paper's Fig. 1 idea).
     */
    std::size_t keep_alive_horizon = 10;

    /**
     * Batched-FIP knobs, forwarded to the ForecastPool. The default
     * (exact mode, one thread) is bit-identical to forecasting through
     * per-function FftPredictor instances; fip_fast_batch opts into
     * the rotation-recurrence fast path (<= 1e-9 per forecast, the
     * "icebreaker-fastfip" registry scheme). fip_threads > 1
     * forecasts blocks in parallel and stays byte-identical for any
     * thread count.
     */
    bool fip_fast_batch = false;
    std::size_t fip_threads = 1;
};

/**
 * The IceBreaker warm-up/keep-alive policy.
 */
class IceBreakerPolicy : public sim::Policy
{
  public:
    explicit IceBreakerPolicy(IceBreakerConfig config = {});

    const char *name() const override
    {
        return config_.fip_fast_batch ? "icebreaker-fastfip"
                                      : "icebreaker";
    }

    void initialize(const sim::SimContext &ctx) override;
    void onIntervalObserved(
        const sim::IntervalObservation &closed) override;
    void onIntervalStart(IntervalIndex interval,
                         sim::WarmupInterface &cluster) override;
    void onExecutionStart(FunctionId fn, Tier tier, bool cold,
                          TimeMs now) override;
    TimeMs keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                     TimeMs now) override;
    std::array<Tier, 2> coldPlacementOrder(FunctionId fn) override;
    double evictionPriority(FunctionId fn, Tier tier, TimeMs last_used,
                            TimeMs now) override;
    void onWarmupWasted(FunctionId fn, Tier tier, TimeMs now) override;
    TimeMs overheadMs() const override { return config_.overhead_ms; }

    /**
     * Every mid-interval hook touches only functions_[fn] (disjoint
     * vector elements across cells); the FIP pool, PDM cut-offs and
     * utility scratch are written exclusively in the interval hooks
     * and only read (per function) in between.
     */
    bool shardCompatible() const override { return true; }

    /** The PDM (exposed for tests and the ablation benches). */
    const Pdm &pdm() const { return *pdm_; }

  private:
    struct FunctionState
    {
        predictors::PredictionTracker tracker;
        std::uint32_t invoked_this_interval = 0;
        std::uint32_t cold_this_interval = 0;
        std::uint32_t wasted_this_interval = 0;
        std::uint32_t max_observed = 0;
        double last_score = 0.4; //!< most recent S_u (mid by default)
        /** horizon.front() of the most recent forecast (probe data). */
        double last_prediction = 0.0;
        /** Steps until the next predicted invocation (0 = none). */
        std::uint32_t next_predicted_gap = 0;
        Tier last_warm_tier = Tier::HighEnd;
        double speedup_raw = 1.0; //!< I_s
        double memory_raw = 0.0;  //!< M_r

        explicit FunctionState(std::size_t window) : tracker(window) {}
    };

    IceBreakerConfig config_;
    std::vector<FunctionState> functions_;
    /**
     * Batched FIP state for every function, slot id == FunctionId
     * (functions are registered in id order and never retired here).
     * Replaces the per-function FftPredictor members: one
     * forecastAll() per interval forecasts the whole fleet through
     * the SoA block kernels.
     */
    predictors::ForecastPool pool_;
    std::unique_ptr<Pdm> pdm_;

    // Per-interval scratch, hoisted out of onIntervalStart so the
    // decision loop stops re-allocating these for every interval of
    // every scheme run. Contents are rebuilt from scratch each
    // interval; only the capacity persists.
    std::vector<UtilityComponents> candidates_;
    std::vector<std::size_t> counts_;
    std::vector<UtilityScore> scores_;
    std::vector<std::size_t> order_;
};

} // namespace iceb::core

#endif // ICEB_CORE_ICEBREAKER_HH
