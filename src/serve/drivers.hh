/**
 * @file
 * Drivers that feed a DecisionEngine.
 *
 * SimDriver is the batch adapter: it binds an engine into the
 * discrete-event Simulator exactly like a bare policy, so an
 * engine-wrapped run produces byte-identical SimulationMetrics — the
 * regression anchor proving the serving boundary adds no behaviour.
 *
 * ReplayDriver replays a recorded trace through the engine one event
 * at a time over the Simulator's incremental stepping API, optionally
 * paced against the wall clock (acceleration = simulated ms per wall
 * ms). Because it advances the very same event loop run() executes,
 * an accelerated — or even real-time — replay reproduces the batch
 * metrics exactly, while streaming per-interval probe CSV to a live
 * consumer and emitting a Chrome trace at the end. This is the
 * serving-mode story: the same engine, the same decisions, with wall
 * time instead of simulated time as the master clock.
 */

#ifndef ICEB_SERVE_DRIVERS_HH
#define ICEB_SERVE_DRIVERS_HH

#include <functional>
#include <iosfwd>
#include <string>

#include "serve/decision_engine.hh"
#include "sim/simulator.hh"

namespace iceb::serve
{

class StatsExporter; // stats_exporter.hh

/**
 * Batch driver: one engine-wrapped simulation run.
 */
class SimDriver
{
  public:
    /** All references are borrowed for the driver's lifetime. */
    SimDriver(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const sim::ClusterConfig &cluster, DecisionEngine &engine,
              sim::SimulatorOptions options = {});

    /** As above, over an external workload source (streamed runs). */
    SimDriver(sim::TraceSource &source,
              const std::vector<workload::FunctionProfile> &profiles,
              const sim::ClusterConfig &cluster, DecisionEngine &engine,
              sim::SimulatorOptions options = {});

    /** Run the whole trace; identical to runSimulation on the engine. */
    sim::SimulationMetrics run();

  private:
    const trace::Trace *trace_ = nullptr;
    sim::TraceSource *source_ = nullptr;
    const std::vector<workload::FunctionProfile> &profiles_;
    const sim::ClusterConfig &cluster_;
    DecisionEngine &engine_;
    sim::SimulatorOptions options_;
};

/** Progress snapshot passed to ReplayOptions::on_interval. */
struct ReplayProgress
{
    IntervalIndex interval = 0; //!< interval that just started
    TimeMs sim_time_ms = 0;     //!< simulated clock at the boundary
    std::size_t decisions = 0;  //!< engine decisions issued so far
};

/** Knobs for a replay run. */
struct ReplayOptions
{
    /**
     * Simulated milliseconds replayed per wall-clock millisecond;
     * 1.0 is real time, 60.0 replays a minute per second, <= 0
     * replays as fast as possible (no pacing). Pacing only schedules
     * when work happens — never what — so metrics are independent of
     * this value.
     */
    double acceleration = 0.0;

    /** Run label used in probe CSV rows and the Chrome trace. */
    std::string run_label = "replay";

    /**
     * Streaming probe CSV destination (null = off): each interval's
     * samples are appended as soon as the boundary is processed, so
     * the file can be tailed while the replay runs.
     */
    std::ostream *probe_csv = nullptr;

    /** Chrome trace_event JSON, written once the replay finishes. */
    std::ostream *chrome_trace = nullptr;

    /** Called after every processed interval boundary. */
    std::function<void(const ReplayProgress &)> on_interval;

    /**
     * Live metrics endpoint (borrowed, null = off): receives one
     * StatsSnapshot per processed interval boundary and a final one
     * when the run drains. Attaching it enables the run's latency
     * histograms (they feed the quantile digests it serves).
     */
    StatsExporter *stats = nullptr;

    /** Underlying simulator options (seed, capacity hints). */
    sim::SimulatorOptions sim;
};

/**
 * Streaming driver: replays a trace through the engine with optional
 * wall-clock pacing and live observability export.
 */
class ReplayDriver
{
  public:
    /** All references are borrowed for the driver's lifetime. */
    ReplayDriver(const trace::Trace &tr,
                 const std::vector<workload::FunctionProfile> &profiles,
                 const sim::ClusterConfig &cluster,
                 DecisionEngine &engine, ReplayOptions options = {});

    /**
     * Replay the whole trace. Returns metrics byte-identical to
     * SimDriver::run with the same SimulatorOptions.
     */
    sim::SimulationMetrics run();

  private:
    const trace::Trace &trace_;
    const std::vector<workload::FunctionProfile> &profiles_;
    const sim::ClusterConfig &cluster_;
    DecisionEngine &engine_;
    ReplayOptions options_;
};

} // namespace iceb::serve

#endif // ICEB_SERVE_DRIVERS_HH
