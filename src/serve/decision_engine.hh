/**
 * @file
 * DecisionEngine: the serving-mode façade around a warm-up policy.
 *
 * The engine packages one online policy (with whatever predictor
 * stack it owns) behind the streaming observation/decision boundary
 * and captures every action the policy takes as a typed Decision
 * record. It is usable two ways:
 *
 *  - As a transparent Policy decorator: hand it to a Simulator (or
 *    register it as a scheme) and it forwards every hook to the inner
 *    policy unchanged — results are byte-identical to running the
 *    policy bare — while logging the decisions that flow through its
 *    WarmupInterface.
 *
 *  - As a standalone serving façade: a driver with no trace at all
 *    (a live front end, the ReplayDriver, a unit test) feeds it
 *    pushArrival() per invocation, calls advanceInterval() at each
 *    decision boundary, and collects the resulting warm-up actions
 *    with drainDecisions(). The engine maintains the per-interval
 *    arrival counts itself and pushes them to the policy as
 *    IntervalObservations, exactly as the Simulator does.
 *
 * Offline schemes are rejected at construction: an OfflinePolicy
 * needs the OracleContext grant, which deliberately does not pass
 * through the serving boundary — a serving engine has no future to
 * leak.
 */

#ifndef ICEB_SERVE_DECISION_ENGINE_HH
#define ICEB_SERVE_DECISION_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/policy.hh"

namespace iceb::serve
{

/** What kind of cluster action a policy took. */
enum class DecisionKind : std::uint8_t
{
    EnsureWarm = 0,     //!< warm-up from vacant memory only
    EnsureWarmEvicting, //!< warm-up that may evict lower priority
    SchedulePrewarm,    //!< deferred warm-up at a future start time
};

/** Display name of a decision kind. */
const char *decisionKindName(DecisionKind kind);

/** One recorded policy action, as issued through a WarmupInterface. */
struct Decision
{
    DecisionKind kind = DecisionKind::EnsureWarm;
    IntervalIndex interval = 0; //!< decision interval it was issued in
    TimeMs issued_at = 0;       //!< cluster time at issue
    FunctionId fn = kInvalidFunction;
    Tier tier = Tier::HighEnd;
    std::size_t count = 0;       //!< instances requested
    std::size_t provisioned = 0; //!< instances actually granted
    TimeMs start_time = 0;       //!< SchedulePrewarm only
    TimeMs expiry = 0;           //!< keep-alive deadline granted
};

/**
 * One policy + predictor stack behind the serving boundary. See the
 * file comment for the two usage modes.
 */
class DecisionEngine final : public sim::Policy
{
  public:
    /**
     * Takes ownership of @p policy. fatal()s if @p policy is an
     * OfflinePolicy (the oracle grant cannot cross this boundary).
     */
    explicit DecisionEngine(std::unique_ptr<sim::Policy> policy);
    ~DecisionEngine() override;

    /** The wrapped scheme (for white-box tests and reports). */
    sim::Policy &policy() { return *policy_; }

    // ---------------------------------------------------- Policy
    // Decorator mode: every hook forwards to the inner policy;
    // onIntervalStart additionally records the decisions the policy
    // issues through the passed WarmupInterface.

    const char *name() const override { return policy_->name(); }
    void initialize(const sim::SimContext &ctx) override;
    void
    onIntervalObserved(const sim::IntervalObservation &closed) override
    {
        policy_->onIntervalObserved(closed);
    }
    void onIntervalStart(IntervalIndex interval,
                         sim::WarmupInterface &cluster) override;
    void onExecutionStart(FunctionId fn, Tier tier, bool cold,
                          TimeMs now) override
    {
        policy_->onExecutionStart(fn, tier, cold, now);
    }
    TimeMs
    keepAliveAfterExecutionMs(FunctionId fn, Tier tier, TimeMs now)
        override
    {
        return policy_->keepAliveAfterExecutionMs(fn, tier, now);
    }
    std::array<Tier, 2> coldPlacementOrder(FunctionId fn) override
    {
        return policy_->coldPlacementOrder(fn);
    }
    double evictionPriority(FunctionId fn, Tier tier, TimeMs last_used,
                            TimeMs now) override
    {
        return policy_->evictionPriority(fn, tier, last_used, now);
    }
    void onWarmupWasted(FunctionId fn, Tier tier, TimeMs now) override
    {
        policy_->onWarmupWasted(fn, tier, now);
    }
    void onEviction(FunctionId fn, Tier tier, TimeMs now) override
    {
        policy_->onEviction(fn, tier, now);
    }
    TimeMs overheadMs() const override
    {
        return policy_->overheadMs();
    }
    /**
     * The engine adds no mid-interval state of its own (decision
     * recording happens inside onIntervalStart, a barrier hook), so
     * shard compatibility is exactly the wrapped policy's.
     */
    bool shardCompatible() const override
    {
        return policy_->shardCompatible();
    }

    // ------------------------------------------- serving façade
    // Standalone mode: the caller is the driver. No trace, no
    // simulator — just observations in, decisions out.

    /** Record @p count arrivals of @p fn in the open interval. */
    void pushArrival(FunctionId fn, std::uint32_t count = 1);

    /**
     * Close the open interval (pushing its arrival counts to the
     * policy as an IntervalObservation) and start the next one,
     * letting the policy act on @p cluster. Decisions land in the
     * drainable log.
     */
    void advanceInterval(sim::WarmupInterface &cluster);

    /** Intervals started through advanceInterval(). */
    IntervalIndex servedIntervals() const { return next_interval_; }

    // ------------------------------------------- decision log

    /** Move out the decisions recorded since the last drain. */
    std::vector<Decision> drainDecisions();

    /** Decisions ever recorded (including drained ones). */
    std::size_t decisionCount() const { return decision_count_; }

  private:
    class RecordingWarmup;

    std::unique_ptr<sim::Policy> policy_;
    std::vector<Decision> decisions_;
    std::size_t decision_count_ = 0;

    /** Interval the policy is currently acting for (either mode). */
    IntervalIndex current_interval_ = 0;

    /** Standalone-mode state: open-interval counts and the counter. */
    std::vector<std::uint32_t> observed_;
    IntervalIndex next_interval_ = 0;
};

} // namespace iceb::serve

#endif // ICEB_SERVE_DECISION_ENGINE_HH
