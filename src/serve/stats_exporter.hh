/**
 * @file
 * Live metrics export for serving mode: the third pillar of the obs
 * layer made watchable while a replay runs.
 *
 * A StatsExporter receives one StatsSnapshot per processed decision
 * interval from the ReplayDriver and renders it two ways:
 *
 *  - Prometheus text exposition served over a minimal blocking HTTP
 *    listener (`curl localhost:PORT/metrics` while the replay runs).
 *    The listener thread only ever serves the latest pre-rendered
 *    string — rendering happens on the driver thread under the same
 *    mutex — so a slow scraper can never stall the replay for longer
 *    than one write.
 *  - A JSON snapshot file rewritten atomically-enough (truncate +
 *    write + flush) each interval: the socket-free mode CI uses. The
 *    JSON always contains every histogram series (even empty ones) so
 *    schema goldens are stable across workloads.
 *
 * Snapshots are assembled from sim::LiveCounters — scalar counters
 * only, no sample-vector copies — so per-interval export cost is O(1)
 * in the run length. Export never feeds back into the simulation:
 * like every obs sink, the exporter is strictly write-only.
 */

#ifndef ICEB_SERVE_STATS_EXPORTER_HH
#define ICEB_SERVE_STATS_EXPORTER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "sim/simulator.hh"

namespace iceb::obs
{
struct HistogramSet;
} // namespace iceb::obs

namespace iceb::serve
{

/** One interval's worth of exportable state (all borrowed). */
struct StatsSnapshot
{
    std::string run_label = "replay";
    std::uint64_t intervals_started = 0;
    TimeMs sim_time_ms = 0;
    std::uint64_t decisions = 0;
    sim::LiveCounters counters;
    /** The run's histogram set, or null when the pillar is off. */
    const obs::HistogramSet *histograms = nullptr;
};

/** Where to export. Both modes may be active at once. */
struct StatsExporterOptions
{
    /** JSON snapshot file, rewritten per interval ("" = off). */
    std::string json_path;

    /**
     * HTTP port for the Prometheus endpoint: -1 = off, 0 = bind an
     * ephemeral port (read it back via port()), otherwise the port.
     */
    int http_port = -1;
};

/**
 * Renders snapshots and serves them. Construct before the replay,
 * call update() per interval (and once more after finish()), destroy
 * to stop the listener.
 */
class StatsExporter
{
  public:
    explicit StatsExporter(StatsExporterOptions options);
    ~StatsExporter();

    StatsExporter(const StatsExporter &) = delete;
    StatsExporter &operator=(const StatsExporter &) = delete;

    /** Render @p snap and publish it to both configured outputs. */
    void update(const StatsSnapshot &snap);

    /** Bound HTTP port, or -1 when the listener is off/failed. */
    int port() const { return port_; }

    /** Latest rendered Prometheus text (tests; "" before update). */
    std::string prometheusText() const;

    /** Latest rendered JSON document (tests; "" before update). */
    std::string jsonText() const;

  private:
    void serveLoop();
    void writeJsonFile();

    StatsExporterOptions options_;
    mutable std::mutex mutex_;
    std::string prometheus_;
    std::string json_;

    int listen_fd_ = -1;
    int port_ = -1;
    std::thread server_;
};

/** Render @p snap as Prometheus text exposition (format v0.0.4). */
std::string renderPrometheus(const StatsSnapshot &snap);

/**
 * Render @p snap as a single-line JSON document. Every histogram
 * series appears (count/p50/p95/p99/max, zeros when empty) under
 * "histograms", keyed "series" or "series/tier" — see README's
 * telemetry artifact table for the full schema.
 */
std::string renderStatsJson(const StatsSnapshot &snap);

} // namespace iceb::serve

#endif // ICEB_SERVE_STATS_EXPORTER_HH
