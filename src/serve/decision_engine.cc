#include "serve/decision_engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "sim/oracle.hh"

namespace iceb::serve
{

const char *
decisionKindName(DecisionKind kind)
{
    switch (kind) {
    case DecisionKind::EnsureWarm:
        return "ensure_warm";
    case DecisionKind::EnsureWarmEvicting:
        return "ensure_warm_evicting";
    case DecisionKind::SchedulePrewarm:
        return "schedule_prewarm";
    }
    return "?";
}

/**
 * WarmupInterface decorator that forwards every call to the real
 * cluster and appends one Decision per mutating call. Reads pass
 * through untouched, so a wrapped policy sees exactly the occupancy
 * signals an unwrapped one would.
 */
class DecisionEngine::RecordingWarmup final : public sim::WarmupInterface
{
  public:
    RecordingWarmup(DecisionEngine &engine, sim::WarmupInterface &inner)
        : engine_(engine), inner_(inner)
    {
    }

    std::size_t
    ensureWarm(FunctionId fn, Tier tier, std::size_t count,
               TimeMs expiry) override
    {
        const std::size_t got = inner_.ensureWarm(fn, tier, count,
                                                  expiry);
        record(DecisionKind::EnsureWarm, fn, tier, count, got, 0,
               expiry);
        return got;
    }

    std::size_t
    ensureWarmEvicting(FunctionId fn, Tier tier, std::size_t count,
                       TimeMs expiry, sim::Policy &policy) override
    {
        const std::size_t got = inner_.ensureWarmEvicting(
            fn, tier, count, expiry, policy);
        record(DecisionKind::EnsureWarmEvicting, fn, tier, count, got,
               0, expiry);
        return got;
    }

    void
    schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                    TimeMs expiry) override
    {
        inner_.schedulePrewarm(fn, tier, start_time, expiry);
        record(DecisionKind::SchedulePrewarm, fn, tier, 1, 1,
               start_time, expiry);
    }

    MemoryMb vacantMemoryMb(Tier tier) const override
    {
        return inner_.vacantMemoryMb(tier);
    }
    MemoryMb totalMemoryMb(Tier tier) const override
    {
        return inner_.totalMemoryMb(tier);
    }
    std::size_t warmCount(FunctionId fn, Tier tier) const override
    {
        return inner_.warmCount(fn, tier);
    }
    TimeMs now() const override { return inner_.now(); }

  private:
    void
    record(DecisionKind kind, FunctionId fn, Tier tier,
           std::size_t count, std::size_t provisioned,
           TimeMs start_time, TimeMs expiry)
    {
        Decision d;
        d.kind = kind;
        d.interval = engine_.current_interval_;
        d.issued_at = inner_.now();
        d.fn = fn;
        d.tier = tier;
        d.count = count;
        d.provisioned = provisioned;
        d.start_time = start_time;
        d.expiry = expiry;
        engine_.decisions_.push_back(d);
        ++engine_.decision_count_;
    }

    DecisionEngine &engine_;
    sim::WarmupInterface &inner_;
};

DecisionEngine::DecisionEngine(std::unique_ptr<sim::Policy> policy)
    : policy_(std::move(policy))
{
    ICEB_ASSERT(policy_ != nullptr, "DecisionEngine needs a policy");
    if (dynamic_cast<sim::OfflinePolicy *>(policy_.get()) != nullptr) {
        fatal("DecisionEngine cannot serve offline scheme '",
              policy_->name(),
              "': the oracle grant does not cross the serving "
              "boundary");
    }
}

DecisionEngine::~DecisionEngine() = default;

void
DecisionEngine::initialize(const sim::SimContext &ctx)
{
    Policy::initialize(ctx);
    policy_->initialize(ctx);
    observed_.assign(ctx.num_functions, 0);
    next_interval_ = 0;
    current_interval_ = 0;
}

void
DecisionEngine::onIntervalStart(IntervalIndex interval,
                                sim::WarmupInterface &cluster)
{
    current_interval_ = interval;
    RecordingWarmup recording(*this, cluster);
    policy_->onIntervalStart(interval, recording);
}

void
DecisionEngine::pushArrival(FunctionId fn, std::uint32_t count)
{
    ICEB_ASSERT(fn < observed_.size(),
                "pushArrival for unknown function (initialize first)");
    observed_[fn] += count;
}

void
DecisionEngine::advanceInterval(sim::WarmupInterface &cluster)
{
    ICEB_ASSERT(ctx_ != nullptr,
                "advanceInterval before initialize()");
    if (next_interval_ > 0) {
        sim::IntervalObservation closed;
        closed.interval = next_interval_ - 1;
        closed.arrivals = observed_.data();
        closed.num_functions = observed_.size();
        policy_->onIntervalObserved(closed);
        std::fill(observed_.begin(), observed_.end(), 0u);
    }
    onIntervalStart(next_interval_, cluster);
    ++next_interval_;
}

std::vector<Decision>
DecisionEngine::drainDecisions()
{
    return std::exchange(decisions_, {});
}

} // namespace iceb::serve
