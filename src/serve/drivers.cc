#include "serve/drivers.hh"

#include <chrono>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/recorder.hh"
#include "serve/stats_exporter.hh"
#include "sim/sharded_simulator.hh"

namespace iceb::serve
{

SimDriver::SimDriver(
    const trace::Trace &tr,
    const std::vector<workload::FunctionProfile> &profiles,
    const sim::ClusterConfig &cluster, DecisionEngine &engine,
    sim::SimulatorOptions options)
    : trace_(&tr), profiles_(profiles), cluster_(cluster),
      engine_(engine), options_(options)
{
}

SimDriver::SimDriver(
    sim::TraceSource &source,
    const std::vector<workload::FunctionProfile> &profiles,
    const sim::ClusterConfig &cluster, DecisionEngine &engine,
    sim::SimulatorOptions options)
    : source_(&source), profiles_(profiles), cluster_(cluster),
      engine_(engine), options_(options)
{
}

sim::SimulationMetrics
SimDriver::run()
{
    // runSimulation dispatches on options_.shards: the classic
    // engine at 0, the sharded engine otherwise.
    if (source_ != nullptr) {
        return sim::runSimulation(*source_, profiles_, cluster_,
                                  engine_, options_);
    }
    return sim::runSimulation(*trace_, profiles_, cluster_, engine_,
                              options_);
}

ReplayDriver::ReplayDriver(
    const trace::Trace &tr,
    const std::vector<workload::FunctionProfile> &profiles,
    const sim::ClusterConfig &cluster, DecisionEngine &engine,
    ReplayOptions options)
    : trace_(tr), profiles_(profiles), cluster_(cluster),
      engine_(engine), options_(std::move(options))
{
}

sim::SimulationMetrics
ReplayDriver::run()
{
    // Stand up this run's observability sinks when the caller asked
    // for live export but supplied no recorder of their own.
    obs::ObsConfig obs_config;
    obs_config.trace = options_.chrome_trace != nullptr;
    obs_config.probes = options_.probe_csv != nullptr ||
        options_.chrome_trace != nullptr;
    obs_config.histograms = options_.stats != nullptr;
    std::optional<obs::RunRecorder> own_recorder;
    sim::SimulatorOptions sim_options = options_.sim;
    if (sim_options.recorder == nullptr && obs_config.any()) {
        own_recorder.emplace(obs_config);
        sim_options.recorder = &*own_recorder;
    }

    std::optional<obs::ProbeCsvStreamer> streamer;
    const auto attachStreamer = [&] {
        if (options_.probe_csv != nullptr &&
            sim_options.recorder != nullptr &&
            sim_options.recorder->probeTable() != nullptr) {
            streamer.emplace(*options_.probe_csv, options_.run_label,
                             *sim_options.recorder->probeTable());
        }
    };

    using Clock = std::chrono::steady_clock;
    const Clock::time_point wall_start = Clock::now();
    const bool paced = options_.acceleration > 0.0;

    const auto sleepUntilSimTime = [&](TimeMs sim_time) {
        const auto offset = std::chrono::duration<double, std::milli>(
            static_cast<double>(sim_time) / options_.acceleration);
        std::this_thread::sleep_until(
            wall_start +
            std::chrono::duration_cast<Clock::duration>(offset));
    };

    // One snapshot per publish: scalar counters off the live engine
    // plus the run's histogram set (null when stats are off).
    const auto publishStats = [&](std::size_t started, TimeMs sim_now,
                                  const sim::LiveCounters &counters) {
        StatsSnapshot snap;
        snap.run_label = options_.run_label;
        snap.intervals_started = started;
        snap.sim_time_ms = sim_now;
        snap.decisions = engine_.decisionCount();
        snap.counters = counters;
        snap.histograms = sim_options.recorder != nullptr
            ? sim_options.recorder->histograms()
            : nullptr;
        options_.stats->update(snap);
    };

    // Bound by each engine branch to its live simulator.
    std::function<sim::LiveCounters()> live_counters;

    const auto reportIntervals = [&](std::size_t &seen,
                                     std::size_t started,
                                     TimeMs sim_now) {
        const bool advanced = seen < started;
        while (seen < started) {
            if (streamer)
                streamer->flush();
            if (options_.on_interval) {
                ReplayProgress progress;
                progress.interval = static_cast<IntervalIndex>(seen);
                progress.sim_time_ms = sim_now;
                progress.decisions = engine_.decisionCount();
                options_.on_interval(progress);
            }
            ++seen;
        }
        if (advanced && options_.stats != nullptr)
            publishStats(started, sim_now, live_counters());
    };

    sim::SimulationMetrics metrics;
    if (sim_options.shards > 0) {
        // Sharded replay paces at decision-interval granularity: the
        // sharded engine's external step is the barrier, not the
        // single event.
        sim::ShardedSimulator simulator(trace_, profiles_, cluster_,
                                        engine_, sim_options);
        simulator.start();
        attachStreamer();
        live_counters = [&simulator] { return simulator.liveCounters(); };

        std::size_t intervals_seen = 0;
        bool more = true;
        while (more) {
            if (paced) {
                if (const std::optional<TimeMs> next =
                        simulator.nextBarrierTime())
                    sleepUntilSimTime(*next);
            }
            more = simulator.advanceInterval();
            reportIntervals(intervals_seen,
                            simulator.intervalsStarted(),
                            simulator.now());
        }
        // Counters must be snapshotted before finish() consumes the
        // cells' metrics; the recorder's merged histograms land in the
        // final publish below, after finish() pools them.
        const sim::LiveCounters final_counters =
            options_.stats != nullptr ? simulator.liveCounters()
                                      : sim::LiveCounters{};
        metrics = simulator.finish();
        if (options_.stats != nullptr) {
            publishStats(simulator.intervalsStarted(), simulator.now(),
                         final_counters);
        }
    } else {
        sim::Simulator simulator(trace_, profiles_, cluster_, engine_,
                                 sim_options);
        simulator.start();
        attachStreamer();
        live_counters = [&simulator] { return simulator.liveCounters(); };

        std::size_t intervals_seen = 0;
        bool more = true;
        while (more) {
            if (paced) {
                if (const std::optional<TimeMs> next =
                        simulator.nextEventTime())
                    sleepUntilSimTime(*next);
            }
            more = simulator.step();

            // An interval boundary was processed: stream its probes
            // and report progress before the next unit of work.
            reportIntervals(intervals_seen,
                            simulator.intervalsStarted(),
                            simulator.now());
        }
        const sim::LiveCounters final_counters =
            options_.stats != nullptr ? simulator.liveCounters()
                                      : sim::LiveCounters{};
        metrics = simulator.finish();
        if (options_.stats != nullptr) {
            publishStats(simulator.intervalsStarted(), simulator.now(),
                         final_counters);
        }
    }
    if (streamer)
        streamer->flush();

    if (options_.chrome_trace != nullptr &&
        sim_options.recorder != nullptr) {
        std::vector<obs::TraceRun> runs(1);
        runs[0].name = options_.run_label;
        runs[0].trace = sim_options.recorder->traceSinkIfEnabled();
        runs[0].probes = sim_options.recorder->probeTableIfEnabled();
        for (const auto &cell : sim_options.recorder->cellTraceSinks())
            runs[0].cells.push_back(cell.get());
        obs::writeChromeTrace(*options_.chrome_trace, runs);
    }
    return metrics;
}

} // namespace iceb::serve
