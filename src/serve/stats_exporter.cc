#include "serve/stats_exporter.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/histogram.hh"

namespace iceb::serve
{

namespace
{

/** snprintf-append into a std::string (locale-immune formatting). */
template <typename... Args>
void appendf(std::string &out, const char *fmt, Args... args)
{
    char buf[256];
    const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
    if (n > 0 && static_cast<std::size_t>(n) < sizeof(buf))
        out.append(buf, static_cast<std::size_t>(n));
}

/** "series" or "series/tier": the flat histogram key both formats
 * share (no '.' — the CI schema checker splits key paths on dots). */
std::string histKey(const obs::NamedHistogram &named)
{
    std::string key = named.series;
    if (named.tier[0] != '\0') {
        key += '/';
        key += named.tier;
    }
    return key;
}

} // namespace

std::string
renderPrometheus(const StatsSnapshot &snap)
{
    std::string out;
    out.reserve(2048);
    const char *run = snap.run_label.c_str();

    out += "# TYPE icebreaker_invocations_total counter\n";
    appendf(out, "icebreaker_invocations_total{run=\"%s\"} %" PRIu64 "\n",
            run, snap.counters.invocations);
    out += "# TYPE icebreaker_cold_starts_total counter\n";
    appendf(out, "icebreaker_cold_starts_total{run=\"%s\"} %" PRIu64 "\n",
            run, snap.counters.cold_starts);
    out += "# TYPE icebreaker_warm_starts_total counter\n";
    appendf(out, "icebreaker_warm_starts_total{run=\"%s\"} %" PRIu64 "\n",
            run, snap.counters.warm_starts);
    out += "# TYPE icebreaker_wait_queue_depth gauge\n";
    appendf(out, "icebreaker_wait_queue_depth{run=\"%s\"} %" PRId64 "\n",
            run, snap.counters.wait_queue);
    out += "# TYPE icebreaker_keep_alive_cost gauge\n";
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        appendf(out,
                "icebreaker_keep_alive_cost{run=\"%s\",tier=\"%s\"} "
                "%.6f\n",
                run, tierName(static_cast<Tier>(t)),
                snap.counters.keep_alive_cost[t]);
    }
    out += "# TYPE icebreaker_intervals_started counter\n";
    appendf(out,
            "icebreaker_intervals_started{run=\"%s\"} %" PRIu64 "\n",
            run, snap.intervals_started);
    out += "# TYPE icebreaker_sim_time_ms gauge\n";
    appendf(out, "icebreaker_sim_time_ms{run=\"%s\"} %lld\n", run,
            static_cast<long long>(snap.sim_time_ms));
    out += "# TYPE icebreaker_decisions_total counter\n";
    appendf(out, "icebreaker_decisions_total{run=\"%s\"} %" PRIu64 "\n",
            run, snap.decisions);

    if (snap.histograms != nullptr) {
        out += "# TYPE icebreaker_latency summary\n";
        for (const obs::NamedHistogram &named :
             obs::namedHistograms(*snap.histograms)) {
            const obs::LatencyHistogram &h = *named.hist;
            const char *tier =
                named.tier[0] != '\0' ? named.tier : "all";
            appendf(out,
                    "icebreaker_latency{run=\"%s\",series=\"%s\","
                    "tier=\"%s\",quantile=\"0.5\"} %" PRIu64 "\n",
                    run, named.series, tier, h.quantile(0.5));
            appendf(out,
                    "icebreaker_latency{run=\"%s\",series=\"%s\","
                    "tier=\"%s\",quantile=\"0.95\"} %" PRIu64 "\n",
                    run, named.series, tier, h.quantile(0.95));
            appendf(out,
                    "icebreaker_latency{run=\"%s\",series=\"%s\","
                    "tier=\"%s\",quantile=\"0.99\"} %" PRIu64 "\n",
                    run, named.series, tier, h.quantile(0.99));
            appendf(out,
                    "icebreaker_latency_count{run=\"%s\",series=\"%s\","
                    "tier=\"%s\"} %" PRIu64 "\n",
                    run, named.series, tier, h.count());
            appendf(out,
                    "icebreaker_latency_max{run=\"%s\",series=\"%s\","
                    "tier=\"%s\"} %" PRIu64 "\n",
                    run, named.series, tier, h.max());
        }
    }
    return out;
}

std::string
renderStatsJson(const StatsSnapshot &snap)
{
    std::string out;
    out.reserve(2048);
    out += '{';
    appendf(out, "\"run\":\"%s\",", snap.run_label.c_str());
    appendf(out, "\"intervals\":%" PRIu64 ",", snap.intervals_started);
    appendf(out, "\"sim_time_ms\":%lld,",
            static_cast<long long>(snap.sim_time_ms));
    appendf(out, "\"decisions\":%" PRIu64 ",", snap.decisions);
    appendf(out, "\"invocations\":%" PRIu64 ",",
            snap.counters.invocations);
    appendf(out, "\"cold_starts\":%" PRIu64 ",",
            snap.counters.cold_starts);
    appendf(out, "\"warm_starts\":%" PRIu64 ",",
            snap.counters.warm_starts);
    appendf(out, "\"wait_queue\":%" PRId64 ",",
            snap.counters.wait_queue);
    out += "\"keep_alive_cost\":{";
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        appendf(out, "%s\"%s\":%.6f", t == 0 ? "" : ",",
                tierName(static_cast<Tier>(t)),
                snap.counters.keep_alive_cost[t]);
    }
    out += "},\"histograms\":{";
    if (snap.histograms != nullptr) {
        bool first = true;
        // Every series is emitted — empty ones as zeros — so the JSON
        // key set is a workload-independent schema.
        for (const obs::NamedHistogram &named :
             obs::namedHistograms(*snap.histograms)) {
            const obs::LatencyHistogram &h = *named.hist;
            appendf(out,
                    "%s\"%s\":{\"count\":%" PRIu64 ",\"p50\":%" PRIu64
                    ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                    ",\"max\":%" PRIu64 "}",
                    first ? "" : ",", histKey(named).c_str(), h.count(),
                    h.quantile(0.5), h.quantile(0.95), h.quantile(0.99),
                    h.max());
            first = false;
        }
    }
    out += "}}\n";
    return out;
}

StatsExporter::StatsExporter(StatsExporterOptions options)
    : options_(std::move(options))
{
    if (options_.http_port < 0)
        return;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        warn("stats exporter: socket() failed; HTTP endpoint disabled");
        return;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options_.http_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
        warn("stats exporter: bind/listen on port ",
             options_.http_port, " failed; HTTP endpoint disabled");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0) {
        port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    server_ = std::thread([this] { serveLoop(); });
}

StatsExporter::~StatsExporter()
{
    if (listen_fd_ >= 0) {
        // Unblocks the accept() so the thread exits.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (server_.joinable())
        server_.join();
}

void
StatsExporter::serveLoop()
{
    while (true) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0)
            return; // listener shut down (or fatal accept error)

        // One request line is all we need: everything except the path
        // is ignored (no keep-alive, no headers of consequence).
        char req[1024] = {};
        const ssize_t got = ::recv(client, req, sizeof(req) - 1, 0);

        // "GET <path> HTTP/1.x" -- serve /metrics (and "/" as a
        // convenience alias), 404 anything else so scrape
        // misconfigurations fail loudly.
        std::string path;
        if (got > 0) {
            const char *sp = std::strchr(req, ' ');
            if (sp != nullptr) {
                const char *end = std::strchr(sp + 1, ' ');
                if (end != nullptr)
                    path.assign(sp + 1, end);
            }
        }
        const bool known = path == "/metrics" || path == "/";

        std::string body;
        if (known) {
            std::lock_guard<std::mutex> lock(mutex_);
            body = prometheus_;
        } else {
            body = "not found: serve /metrics\n";
        }
        std::string resp;
        resp.reserve(body.size() + 128);
        appendf(resp,
                "HTTP/1.1 %s\r\n"
                "Content-Type: text/plain; version=0.0.4\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                known ? "200 OK" : "404 Not Found",
                body.size());
        resp += body;
        const char *p = resp.data();
        std::size_t left = resp.size();
        while (left > 0) {
            const ssize_t n = ::send(client, p, left, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            p += n;
            left -= static_cast<std::size_t>(n);
        }
        ::close(client);
    }
}

void
StatsExporter::update(const StatsSnapshot &snap)
{
    std::string prom = renderPrometheus(snap);
    std::string json = renderStatsJson(snap);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        prometheus_ = std::move(prom);
        json_ = std::move(json);
    }
    writeJsonFile();
}

void
StatsExporter::writeJsonFile()
{
    if (options_.json_path.empty())
        return;
    std::ofstream out(options_.json_path,
                      std::ios::trunc | std::ios::binary);
    if (!out) {
        warn("stats exporter: cannot write ", options_.json_path);
        options_.json_path.clear(); // warn once, not per interval
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    out << json_;
}

std::string
StatsExporter::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return prometheus_;
}

std::string
StatsExporter::jsonText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return json_;
}

} // namespace iceb::serve
