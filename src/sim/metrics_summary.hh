/**
 * @file
 * Aggregation of repeated-seed runs into confidence-interval-ready
 * summaries.
 *
 * A MetricsSummary folds N runs of the same (workload, scheme,
 * cluster) cell — differing only in their derived RNG stream — into
 * per-metric mean/stddev statistics plus a pooled SimulationMetrics
 * whose concatenated service-time samples give percentile pooling
 * across the whole replicate set. Summaries are computed in run-index
 * order, so the result is bit-identical however the runs were
 * scheduled.
 */

#ifndef ICEB_SIM_METRICS_SUMMARY_HH
#define ICEB_SIM_METRICS_SUMMARY_HH

#include <cstddef>
#include <vector>

#include "sim/metrics.hh"

namespace iceb::sim
{

/** Mean/spread of one scalar metric across replicate runs. */
struct ValueStats
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; //!< population stddev; 0 for < 2 runs
    double min = 0.0;
    double max = 0.0;

    /** Compute over a replicate vector (empty input -> all zeros). */
    static ValueStats of(const std::vector<double> &values);
};

/** N replicate runs of one experiment cell, aggregated. */
struct MetricsSummary
{
    std::size_t runs = 0;

    ValueStats keep_alive_cost;    //!< totalKeepAliveCost() per run
    ValueStats mean_service_ms;    //!< meanServiceMs() per run
    ValueStats mean_wait_ms;       //!< meanWaitMs() per run
    ValueStats mean_cold_ms;       //!< meanColdMs() per run
    ValueStats warm_start_fraction;//!< warmStartFraction() per run
    ValueStats cold_starts;        //!< cold_starts per run
    ValueStats invocations;        //!< invocations per run

    /**
     * All runs merged (SimulationMetrics::merge in run order): counts
     * and sums over the whole replicate set, with every run's
     * service-time samples pooled for percentile queries.
     */
    SimulationMetrics pooled;

    /** Percentile (q in [0, 1]) over the pooled service times. */
    double pooledServicePercentileMs(double q) const;
};

/**
 * Aggregate replicate runs of one cell. All runs must cover the same
 * function set (they are replicates of one workload).
 */
MetricsSummary summarizeRuns(const std::vector<SimulationMetrics> &runs);

} // namespace iceb::sim

#endif // ICEB_SIM_METRICS_SUMMARY_HH
