/**
 * @file
 * The discrete-event serverless cluster simulator.
 *
 * Drives a trace through a cluster under a policy: streams each
 * interval's invocations at deterministic jittered timestamps, fires
 * the policy's interval hook at every decision boundary, places
 * invocations (warm pool, in-setup attach, cold start, or FIFO wait
 * queue), and produces the full SimulationMetrics.
 *
 * Arrivals never enter the event heap (PR 4): the whole arrival
 * schedule is precomputed once, and the run loop merges the current
 * interval's slice against the heap by (time, seq) -- with sequence
 * numbers block-reserved at the interval tick, so the pop order is
 * bit-for-bit the order the old per-arrival pushes produced. The wait
 * queue is a reusable ring over a vector instead of a std::deque.
 * Together with SimCapacityHints sized from a previous run's peaks,
 * a run's steady state performs no heap allocations at all.
 */

#ifndef ICEB_SIM_SIMULATOR_HH
#define ICEB_SIM_SIMULATOR_HH

#include <memory>
#include <optional>

#include "obs/trace_sink.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/oracle.hh"
#include "sim/policy.hh"
#include "sim/trace_source.hh"
#include "trace/trace.hh"
#include "workload/function_profile.hh"

namespace iceb::obs
{
class ProbeTable;
struct HistogramSet;
} // namespace iceb::obs

namespace iceb::sim
{

/** Run-level options. */
struct SimulatorOptions
{
    /** Seed for the deterministic within-interval arrival jitter. */
    std::uint64_t seed = 0x51AB'1CEBull;

    /**
     * Pre-sizing for the run's dynamic structures (never affects
     * results, only allocation counts). Feed a previous run's
     * SimulationMetrics::event_loop peaks back here to make a repeat
     * run allocation-free in steady state.
     */
    SimCapacityHints hints;

    /**
     * Observability sinks for this run (borrowed, may be null).
     * Observation is strictly write-only: attaching a recorder never
     * changes the simulation's results.
     */
    obs::RunRecorder *recorder = nullptr;

    /**
     * Direct sink overrides, used only when `recorder` is null. The
     * sharded coordinator hands each cell its own trace ring and
     * histogram set through these (cells never see the run's
     * recorder — its sinks are not safe to share across the parallel
     * cell phase). Borrowed; write-only like the recorder.
     */
    obs::TraceSink *trace_sink = nullptr;
    obs::HistogramSet *histograms = nullptr;

    /**
     * Worker threads for the sharded engine; 0 (the default) runs the
     * classic single-shard engine. Any value >= 1 switches
     * runSimulation to the ShardedSimulator, whose results are
     * byte-identical for every shards value (the logical cell
     * partition is fixed by the workload/cluster geometry, never by
     * the worker count). They can differ from the classic engine's
     * only through the partitioned per-cell memory accounting (see
     * sim/sharded_simulator.hh).
     */
    std::size_t shards = 0;

    /**
     * Logical cell count override for the sharded engine; 0 = auto
     * (the max_cells ceiling, clamped to the smallest populated
     * tier's server count and the function count). Results depend on
     * this partition — it is part of the sharded model — but never on
     * `shards`.
     */
    std::size_t cells = 0;

    /**
     * Ceiling for the auto cell count; 0 = the built-in default
     * (ShardPlan::kDefaultCells). Large clusters can raise it to
     * expose more parallelism than the historical 16-cell clamp;
     * ignored when `cells` names an explicit count.
     */
    std::size_t max_cells = 0;

    /**
     * Options for run @p run_index of a repeated-seed experiment: the
     * run's RNG stream is derived purely from (base_seed, run_index),
     * so a grid of runs is reproducible regardless of how runs are
     * scheduled across threads. forRun(base, 0) reseeds with the
     * derived stream too (it is not the same as seed = base), so a
     * repeated grid is internally consistent from index 0 up.
     */
    static SimulatorOptions forRun(std::uint64_t base_seed,
                                   std::uint64_t run_index);
};

/**
 * Scalar counter snapshot for live exporters (serve::StatsExporter):
 * cheap to assemble mid-run — no sample-vector copies — on both the
 * classic and sharded engines.
 */
struct LiveCounters
{
    std::uint64_t invocations = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t warm_starts = 0;
    std::int64_t wait_queue = 0;
    std::array<double, kNumTiers> keep_alive_cost{};
};

/**
 * One simulation run binding (trace, profiles, cluster, policy).
 */
class Simulator
{
  public:
    /**
     * @param tr        The invocation trace to replay.
     * @param profiles  Per-function profiles, indexed by FunctionId.
     * @param config    Cluster composition.
     * @param policy    The warm-up/keep-alive scheme under test.
     *
     * Wraps @p tr in an internal MaterializedTraceSource seeded with
     * options.seed — byte-identical to the pre-TraceSource engine.
     */
    Simulator(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options = {});

    /**
     * Run against an external workload source (e.g. a
     * StreamingWorkloadSource). @p source must outlive the Simulator;
     * start() rewinds it, so one source can feed sequential runs.
     */
    Simulator(TraceSource &source,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options = {});

    /** Execute the whole trace and return the collected metrics. */
    SimulationMetrics run();

    // ----------------------------------------------------------------
    // Incremental stepping API: the serving-mode drivers advance the
    // same event loop run() uses, one unit at a time, so a paced
    // (wall-clock) replay processes the identical sequence and
    // produces byte-identical metrics.
    // ----------------------------------------------------------------

    /**
     * Initialise the policy (and, for OfflinePolicy schemes, grant
     * the OracleContext) and schedule the interval ticks. Idempotent
     * preamble of run(); must be called before step().
     */
    void start();

    /**
     * Process the next unit of work (one event pop or one streamed
     * arrival). Returns false when the run is exhausted.
     */
    bool step();

    /**
     * Simulated time of the next unit step() would process, or
     * nullopt when the run is exhausted. Lets a paced driver sleep
     * until the wall-clock deadline of the next event. (Non-const:
     * peeking the calendar queue may advance its lazy drain.)
     */
    std::optional<TimeMs> nextEventTime();

    /** Final bookkeeping; returns the collected metrics. */
    SimulationMetrics finish();

    /** Interval ticks processed so far (streaming progress signal). */
    std::size_t intervalsStarted() const { return intervals_started_; }

    /** Current simulated time. */
    TimeMs now() const { return now_; }

    // ----------------------------------------------------------------
    // Accessors for the sharded coordinator (sharded_simulator.cc),
    // which drives one Simulator per logical cell and needs to route
    // barrier-time policy actions and probe sampling into them.
    // ----------------------------------------------------------------

    /** The cluster state this run schedules against. */
    ClusterState &cluster() { return cluster_; }
    const ClusterState &cluster() const { return cluster_; }

    /** Metrics accrued so far (mid-run view; probe sampling). */
    const SimulationMetrics &accruedMetrics() const
    {
        return metrics_.current();
    }

    /** Invocations currently parked in the FIFO wait queue. */
    std::size_t waitingCount() const { return waitCount(); }

    /** Mid-run counter snapshot for live exporters. */
    LiveCounters liveCounters() const;

    /**
     * Arrival counts accumulated in the currently open interval (the
     * counts the next IntervalObservation will deliver). The sharded
     * engine reads these at its barrier, before the cell's tick has
     * delivered and reset them.
     */
    const std::vector<std::uint32_t> &observedCounts() const
    {
        return observed_counts_;
    }

  private:
    struct QueuedInvocation
    {
        FunctionId fn = kInvalidFunction;
        TimeMs arrival = 0;
    };

    /** Delegation target of the public constructors: exactly one of
     * @p owned / @p external names the workload source. */
    Simulator(std::unique_ptr<TraceSource> owned, TraceSource *external,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options);

    /**
     * Body shared by run()'s hot loop and the public step(): kept as
     * a separate force-inlined helper so the batch loop keeps its
     * pre-stepping-API code shape (stats hoisted, no per-event call
     * overhead) while the incremental API executes the identical
     * logic one unit at a time.
     */
    bool stepImpl(EventLoopStats &stats);
    void openArrivalWindow(IntervalIndex interval);
    void handleArrival(FunctionId fn, TimeMs arrival);
    bool tryPlace(FunctionId fn, TimeMs arrival);
    void startExecution(const ClusterState::Acquisition &acq,
                        FunctionId fn, TimeMs arrival,
                        obs::ColdCause cause);
    void sampleIntervalProbes(IntervalIndex interval);
    void drainQueue();

    std::size_t waitCount() const
    {
        return wait_queue_.size() - wait_head_;
    }
    void pushWaiting(FunctionId fn, TimeMs arrival);
    void popWaiting();

    /** Set only by the Trace convenience constructor. */
    std::unique_ptr<TraceSource> owned_source_;
    TraceSource *source_ = nullptr;

    const std::vector<workload::FunctionProfile> &profiles_;
    const ClusterConfig &config_;
    Policy &policy_;
    SimulatorOptions options_;

    /** Workload geometry, cached off source_ (hot-loop reads). */
    std::size_t num_functions_ = 0;
    std::size_t num_intervals_ = 0;
    TimeMs interval_ms_ = 0;

    EventQueue events_;
    MetricsCollector metrics_;
    ClusterState cluster_;
    SimContext context_;
    OracleContext oracle_context_; //!< granted to OfflinePolicy only

    /** Resolved observability sinks (null when observation is off). */
    obs::TraceSink *tsink_ = nullptr;
    obs::ProbeTable *probes_ = nullptr;
    obs::HistogramSet *hists_ = nullptr;

    /** Open arrival window (current interval's borrowed view). */
    ArrivalWindow window_;
    std::size_t window_pos_ = 0;
    std::uint64_t stream_seq_base_ = 0;

    /** FIFO wait queue as a reusable ring over a vector. */
    std::vector<QueuedInvocation> wait_queue_;
    std::size_t wait_head_ = 0;

    /**
     * Arrivals observed (streamed through handleArrival) during the
     * open interval; pushed to the policy as an IntervalObservation at
     * the next boundary, then reset. This — not the trace — is what
     * online policies see.
     */
    std::vector<std::uint32_t> observed_counts_;

    std::size_t intervals_started_ = 0;
    bool started_ = false;

    TimeMs now_ = 0;
};

/**
 * Convenience one-shot runner used by tests, examples and benches.
 * Dispatches to the ShardedSimulator when options.shards > 0.
 */
SimulationMetrics
runSimulation(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options = {});

/** As above, over an external workload source (streamed workloads). */
SimulationMetrics
runSimulation(TraceSource &source,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options = {});

} // namespace iceb::sim

#endif // ICEB_SIM_SIMULATOR_HH
