/**
 * @file
 * The discrete-event serverless cluster simulator.
 *
 * Drives a trace through a cluster under a policy: materialises each
 * interval's invocations at deterministic jittered timestamps, fires
 * the policy's interval hook at every decision boundary, places
 * invocations (warm pool, in-setup attach, cold start, or FIFO wait
 * queue), and produces the full SimulationMetrics.
 */

#ifndef ICEB_SIM_SIMULATOR_HH
#define ICEB_SIM_SIMULATOR_HH

#include <deque>
#include <memory>

#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/policy.hh"
#include "trace/trace.hh"
#include "workload/function_profile.hh"

namespace iceb::sim
{

/** Run-level options. */
struct SimulatorOptions
{
    /** Seed for the deterministic within-interval arrival jitter. */
    std::uint64_t seed = 0x51AB'1CEBull;

    /**
     * Options for run @p run_index of a repeated-seed experiment: the
     * run's RNG stream is derived purely from (base_seed, run_index),
     * so a grid of runs is reproducible regardless of how runs are
     * scheduled across threads. forRun(base, 0) reseeds with the
     * derived stream too (it is not the same as seed = base), so a
     * repeated grid is internally consistent from index 0 up.
     */
    static SimulatorOptions forRun(std::uint64_t base_seed,
                                   std::uint64_t run_index);
};

/**
 * One simulation run binding (trace, profiles, cluster, policy).
 */
class Simulator
{
  public:
    /**
     * @param tr        The invocation trace to replay.
     * @param profiles  Per-function profiles, indexed by FunctionId.
     * @param config    Cluster composition.
     * @param policy    The warm-up/keep-alive scheme under test.
     */
    Simulator(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options = {});

    /** Execute the whole trace and return the collected metrics. */
    SimulationMetrics run();

  private:
    struct QueuedInvocation
    {
        FunctionId fn = kInvalidFunction;
        TimeMs arrival = 0;
    };

    void buildArrivalSchedule();
    void pushIntervalArrivals(IntervalIndex interval);
    void handleArrival(FunctionId fn, TimeMs arrival);
    bool tryPlace(FunctionId fn, TimeMs arrival);
    void startExecution(const ClusterState::Acquisition &acq,
                        FunctionId fn, TimeMs arrival);
    void drainQueue();

    const trace::Trace &trace_;
    const std::vector<workload::FunctionProfile> &profiles_;
    const ClusterConfig &config_;
    Policy &policy_;
    SimulatorOptions options_;

    EventQueue events_;
    MetricsCollector metrics_;
    ClusterState cluster_;
    SimContext context_;

    /** Exact arrival times per function (sorted); Oracle's input. */
    std::vector<std::vector<TimeMs>> arrival_schedule_;
    /** Per-function cursor into arrival_schedule_. */
    std::vector<std::size_t> arrival_cursor_;

    std::deque<QueuedInvocation> wait_queue_;
    TimeMs now_ = 0;
};

/**
 * Convenience one-shot runner used by tests, examples and benches.
 */
SimulationMetrics
runSimulation(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options = {});

} // namespace iceb::sim

#endif // ICEB_SIM_SIMULATOR_HH
