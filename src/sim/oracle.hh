/**
 * @file
 * The privileged offline observation channel.
 *
 * Online policies see arrivals only through the streaming feed in
 * sim/policy.hh. Offline upper bounds (the paper's Oracle) need the
 * exact future: the full trace and the jittered per-invocation
 * arrival schedule. That access is a separate, explicit contract — a
 * policy must derive from OfflinePolicy to receive an OracleContext,
 * and drivers only grant it to policies of that type. What used to be
 * a comment ("online policies must not read the schedule") is now a
 * compile-time property: the types simply do not reach Policy.
 */

#ifndef ICEB_SIM_ORACLE_HH
#define ICEB_SIM_ORACLE_HH

#include <vector>

#include "sim/policy.hh"
#include "trace/trace.hh"

namespace iceb::sim
{

/**
 * Full-future knowledge handed only to OfflinePolicy implementations.
 */
struct OracleContext
{
    /** The complete invocation trace, including future intervals. */
    const trace::Trace *trace = nullptr;

    /**
     * Exact jittered arrival timestamps per function (sorted); the
     * very timestamps the driver will replay.
     */
    const std::vector<std::vector<TimeMs>> *arrival_schedule = nullptr;
};

/**
 * A policy that is explicitly offline: it sees the future and
 * therefore only bounds what online schemes could achieve. Drivers
 * call initializeOracle (after initialize) exclusively for policies
 * derived from this class.
 */
class OfflinePolicy : public Policy
{
  public:
    /** Receive the privileged view. Default stores it. */
    virtual void initializeOracle(const OracleContext &oracle)
    {
        oracle_ = &oracle;
    }

  protected:
    const OracleContext *oracle_ = nullptr;
};

} // namespace iceb::sim

#endif // ICEB_SIM_ORACLE_HH
