/**
 * @file
 * The sharded discrete-event engine: one run scaled across threads.
 *
 * The workload is partitioned once into M logical cells — functions
 * by id (fn % M), servers round-robin per tier — and each cell is a
 * complete, independent Simulator over its slice: its own calendar
 * event queue, container arena, server heaps, eviction heap, wait
 * queue and metrics accumulator. Within a decision interval the cells
 * share nothing, so they execute concurrently on `shards` worker
 * threads; all cross-cell effects — the policy's global utility
 * ranking, tier-wide memory accounting, probe sampling, observation
 * aggregation — happen serially on the coordinator at the interval
 * barrier, which is already the deterministic decision epoch.
 *
 * Determinism contract: the cell partition is a pure function of the
 * workload/cluster geometry (and the optional `cells` override),
 * never of the worker count, and each cell's event order is internal
 * to that cell. Metrics, figure outputs and probe CSVs are therefore
 * byte-identical for every `shards` value at every `--threads`. The
 * classic engine (shards = 0) remains the default and is untouched.
 * The barrier replays the classic engine's interval ordering exactly
 * (policy hooks before the arrival windows open, interval ticks ahead
 * of same-time arrivals), so sharded results match the classic engine
 * whenever placement never contends for memory; under pressure the
 * partitioned per-cell memory accounting can place differently
 * (DESIGN.md section 13 discusses the partitioned-memory semantics).
 *
 * Policies participate in the parallel phase only if they declare
 * Policy::shardCompatible(); everything else runs cells serially in
 * cell order — same results, no intra-run speedup.
 */

#ifndef ICEB_SIM_SHARDED_SIMULATOR_HH
#define ICEB_SIM_SHARDED_SIMULATOR_HH

#include <memory>
#include <optional>

#include "sim/simulator.hh"

namespace iceb::sim
{

/**
 * The fixed logical partition: how many cells, which cell owns a
 * function, and each cell's slice of the cluster.
 */
struct ShardPlan
{
    /** Auto cell count before clamping to the cluster's geometry. */
    static constexpr std::size_t kDefaultCells = 16;

    std::size_t num_cells = 1;

    /**
     * Build the plan for a workload/cluster. @p requested_cells
     * overrides the auto count (0 = auto, capped at @p max_cells, or
     * kDefaultCells when that is 0 too); either way the count is
     * clamped to the smallest populated tier's server count (and to
     * the function count) so every cell owns at least one server of
     * EVERY tier — a cell missing a tier would distort heterogeneous
     * placement.
     */
    static ShardPlan build(std::size_t num_functions,
                           const ClusterConfig &config,
                           std::size_t requested_cells = 0,
                           std::size_t max_cells = 0);

    /** Owning cell of a function. */
    std::size_t cellOf(FunctionId fn) const
    {
        return static_cast<std::size_t>(fn) % num_cells;
    }

    /**
     * Cell @p cell's slice of @p config: per tier, server_count / M
     * servers plus one of the remainder for the first cells; rates
     * and per-server memory unchanged.
     */
    ClusterConfig cellConfig(const ClusterConfig &config,
                             std::size_t cell) const;
};

/**
 * Coordinator for one sharded run. Mirrors the classic Simulator's
 * incremental API at interval granularity so the serving-mode drivers
 * can pace it: start(), then advanceInterval() until it returns
 * false, then finish().
 */
class ShardedSimulator
{
  public:
    /** Wraps @p tr in an internal MaterializedTraceSource (seeded
     * with options.seed), like the classic Simulator. */
    ShardedSimulator(
        const trace::Trace &tr,
        const std::vector<workload::FunctionProfile> &profiles,
        const ClusterConfig &config, Policy &policy,
        SimulatorOptions options = {});

    /**
     * Run against an external workload source. The coordinator pulls
     * each interval's global window once and scatters it to the owning
     * cells at the barrier, so a streamed source is consumed strictly
     * in interval order — sharded streamed runs remain byte-identical
     * to sharded materialized runs of the same workload.
     */
    ShardedSimulator(
        TraceSource &source,
        const std::vector<workload::FunctionProfile> &profiles,
        const ClusterConfig &config, Policy &policy,
        SimulatorOptions options = {});

    ~ShardedSimulator();

    ShardedSimulator(const ShardedSimulator &) = delete;
    ShardedSimulator &operator=(const ShardedSimulator &) = delete;

    /** Execute the whole trace and return the merged metrics. */
    SimulationMetrics run();

    /**
     * Initialise the global policy (granting the OracleContext to
     * OfflinePolicy schemes) and start every cell. Must be called
     * before advanceInterval().
     */
    void start();

    /**
     * Process the next interval: the serial barrier (probe sampling,
     * observation aggregation, the policy's interval hooks) followed
     * by the parallel cell phase up to the next boundary. After the
     * last interval, one further call drains the cells' trailing
     * events and returns false.
     */
    bool advanceInterval();

    /**
     * Merge the cells' metrics in cell order and return them. Integer
     * counters and cost sums add, sample vectors concatenate in cell
     * order, per-function entries add (disjoint across cells), event
     * loop peaks take the max over cells.
     */
    SimulationMetrics finish();

    /** Simulated time of the next interval barrier (pacing signal),
     * or nullopt once all intervals have started. */
    std::optional<TimeMs> nextBarrierTime() const;

    /** Interval barriers processed so far. */
    std::size_t intervalsStarted() const;

    /** Current simulated time (the last barrier's timestamp). */
    TimeMs now() const;

    /** Mid-run counter snapshot, summed over cells (live export). */
    LiveCounters liveCounters() const;

    /** The fixed logical partition this run uses. */
    const ShardPlan &plan() const;

    /**
     * True when the cell phase actually runs on worker threads: the
     * policy is shardCompatible() and options.shards > 1.
     */
    bool parallel() const;

    struct Impl; //!< implementation detail (sharded_simulator.cc)

  private:
    std::unique_ptr<Impl> impl_;
};

} // namespace iceb::sim

#endif // ICEB_SIM_SHARDED_SIMULATOR_HH
