#include "sim/sharded_simulator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/probes.hh"
#include "obs/recorder.hh"

namespace iceb::sim
{

ShardPlan
ShardPlan::build(std::size_t num_functions, const ClusterConfig &config,
                 std::size_t requested_cells, std::size_t max_cells)
{
    // Every cell must own at least one server of EVERY populated tier
    // — a cell missing a tier would deny its functions that tier's
    // speed entirely and distort the heterogeneous placement the
    // policies reason about — so the cell count is clamped to the
    // smallest non-empty tier. Cells beyond the function count would
    // hold servers no function could ever reach.
    std::size_t smallest_tier = 0;
    for (const TierSpec &tier : config.tiers) {
        if (tier.server_count == 0)
            continue;
        smallest_tier = smallest_tier == 0
            ? tier.server_count
            : std::min(smallest_tier, tier.server_count);
    }
    ICEB_ASSERT(smallest_tier > 0, "cluster has no servers");

    const std::size_t ceiling =
        max_cells == 0 ? kDefaultCells : max_cells;
    std::size_t cells =
        requested_cells == 0 ? ceiling : requested_cells;
    cells = std::min(cells, smallest_tier);
    cells = std::min(cells, std::max<std::size_t>(1, num_functions));
    cells = std::max<std::size_t>(1, cells);

    ShardPlan plan;
    plan.num_cells = cells;
    return plan;
}

ClusterConfig
ShardPlan::cellConfig(const ClusterConfig &config, std::size_t cell) const
{
    ICEB_ASSERT(cell < num_cells, "cell index out of range");
    ClusterConfig out = config;
    out.name = config.name + "/cell" + std::to_string(cell);
    for (TierSpec &tier : out.tiers) {
        const std::size_t base = tier.server_count / num_cells;
        const std::size_t extra =
            cell < tier.server_count % num_cells ? 1 : 0;
        tier.server_count = base + extra;
    }
    return out;
}

/**
 * Internal machinery of the sharded engine. A named namespace (not an
 * anonymous one) because ShardedSimulator::Impl — an externally
 * visible type — holds members of these types.
 */
namespace shard_impl
{

/**
 * The per-cell stand-in policy. Mid-interval hooks forward to the
 * real policy (these are the per-function callbacks a shardCompatible
 * policy promises are safe to run concurrently across cells); the
 * interval hooks are swallowed — the coordinator fires the real
 * policy's interval hooks exactly once per barrier against the global
 * facade, reading each cell's open-interval arrival counts directly
 * through Simulator::observedCounts() before the cell's tick delivers
 * (and resets) them.
 *
 * Deliberately not an OfflinePolicy: the per-cell Simulator therefore
 * never grants its cell-local OracleContext; the coordinator grants
 * the global one itself.
 */
class CellAdapter final : public Policy
{
  public:
    explicit CellAdapter(Policy &inner) : inner_(inner) {}

    const char *name() const override { return inner_.name(); }

    void initialize(const SimContext &ctx) override
    {
        // Store the cell context for ourselves only; the coordinator
        // initialises the real policy once, with the global context.
        Policy::initialize(ctx);
    }

    void onIntervalObserved(const IntervalObservation &closed) override
    {
        // Swallowed: the coordinator already aggregated these counts
        // at the barrier, before this cell's tick was processed.
        (void)closed;
    }

    void onIntervalStart(IntervalIndex interval,
                         WarmupInterface &cluster) override
    {
        (void)interval;
        (void)cluster;
    }

    void onExecutionStart(FunctionId fn, Tier tier, bool cold,
                          TimeMs now) override
    {
        inner_.onExecutionStart(fn, tier, cold, now);
    }

    TimeMs keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                     TimeMs now) override
    {
        return inner_.keepAliveAfterExecutionMs(fn, tier, now);
    }

    std::array<Tier, 2> coldPlacementOrder(FunctionId fn) override
    {
        return inner_.coldPlacementOrder(fn);
    }

    double evictionPriority(FunctionId fn, Tier tier, TimeMs last_used,
                            TimeMs now) override
    {
        return inner_.evictionPriority(fn, tier, last_used, now);
    }

    void onWarmupWasted(FunctionId fn, Tier tier, TimeMs now) override
    {
        inner_.onWarmupWasted(fn, tier, now);
    }

    void onEviction(FunctionId fn, Tier tier, TimeMs now) override
    {
        inner_.onEviction(fn, tier, now);
    }

    TimeMs overheadMs() const override { return inner_.overheadMs(); }

  private:
    Policy &inner_;
};

/**
 * A tiny persistent worker pool for the per-interval cell phases.
 * run() hands out cell indices via an atomic counter — which worker
 * executes which cell can never affect results, because cells share
 * nothing between barriers. The calling thread participates, so a
 * pool of N lanes spawns N - 1 threads.
 */
class CellPool
{
  public:
    explicit CellPool(std::size_t lanes)
    {
        const std::size_t spawn = lanes > 0 ? lanes - 1 : 0;
        threads_.reserve(spawn);
        for (std::size_t i = 0; i < spawn; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~CellPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    void run(std::size_t count,
             const std::function<void(std::size_t)> &fn)
    {
        if (count == 0)
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &fn;
            job_count_ = count;
            next_.store(0, std::memory_order_relaxed);
            active_ = threads_.size();
            ++generation_;
        }
        work_cv_.notify_all();
        claimCells();
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return active_ == 0; });
        job_ = nullptr;
    }

  private:
    void claimCells()
    {
        while (true) {
            const std::size_t cell =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (cell >= job_count_)
                return;
            (*job_)(cell);
        }
    }

    void workerLoop()
    {
        std::uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_cv_.wait(lock, [this, seen] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
            }
            claimCells();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --active_;
            }
            done_cv_.notify_all();
        }
    }

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t job_count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::size_t active_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

/**
 * The per-cell workload source: a TraceSource whose windows the
 * coordinator fills at each barrier by scattering the GLOBAL window's
 * arrivals to their owning cells, in window order, re-ranking each by
 * its cell-buffer position. Within a cell, the restriction of the
 * global (time, rank) order IS the cell's own (time, rank) order (the
 * global ranks are function-major over all functions; restricted to
 * one cell's functions that is the cell's function-major order, and a
 * stable time sort commutes with the restriction), so this reproduces
 * the old per-cell masked-trace schedule byte for byte — without ever
 * materializing per-cell traces or schedules.
 *
 * Deliberately exposes no trace(): a cell can never grant an oracle.
 */
class CellStreamSource final : public TraceSource
{
  public:
    CellStreamSource(std::size_t num_functions,
                     std::size_t num_intervals, TimeMs interval_ms,
                     std::uint64_t total_arrivals_hint)
        : num_functions_(num_functions), num_intervals_(num_intervals),
          interval_ms_(interval_ms), total_hint_(total_arrivals_hint)
    {
    }

    std::size_t numFunctions() const override { return num_functions_; }
    std::size_t numIntervals() const override { return num_intervals_; }
    TimeMs intervalMs() const override { return interval_ms_; }
    std::uint64_t totalArrivals() const override { return total_hint_; }
    std::size_t maxIntervalArrivals() const override { return 0; }
    void beginRun() override {}

    ArrivalWindow intervalWindow(IntervalIndex interval) override
    {
        (void)interval; // the coordinator scatters exactly this one
        return ArrivalWindow{buffer_.data(), buffer_.size()};
    }

    /** The scatter target (cleared and refilled every barrier). */
    std::vector<ArrivalRecord> &buffer() { return buffer_; }

  private:
    std::size_t num_functions_;
    std::size_t num_intervals_;
    TimeMs interval_ms_;
    std::uint64_t total_hint_;
    std::vector<ArrivalRecord> buffer_;
};

/** One logical cell: a full Simulator over its slice of the world. */
struct Cell
{
    ClusterConfig config;
    std::unique_ptr<CellStreamSource> stream;
    std::unique_ptr<CellAdapter> adapter;
    std::unique_ptr<Simulator> sim;
    /** Cell-private histogram set, merged into the run's recorder at
     * finish() (cells cannot share the recorder's set mid-run). */
    std::unique_ptr<obs::HistogramSet> hist;
};

} // namespace shard_impl

struct ShardedSimulator::Impl
{
    /** Set only by the Trace convenience constructor. */
    std::unique_ptr<TraceSource> owned_source;
    TraceSource &source;

    const std::vector<workload::FunctionProfile> &profiles;
    const ClusterConfig &config;
    Policy &policy;
    SimulatorOptions options;

    /** Workload geometry, cached off the source. */
    std::size_t num_functions = 0;
    std::size_t num_intervals = 0;
    TimeMs interval_ms = 0;

    ShardPlan shard_plan;
    std::vector<std::unique_ptr<shard_impl::Cell>> cells;

    SimContext context;
    OracleContext oracle_context;

    std::unique_ptr<WarmupInterface> facade;
    std::unique_ptr<shard_impl::CellPool> pool;

    obs::ProbeTable *probes = nullptr;

    /** Coordinator-side sinks off the run's recorder (may be null). */
    obs::TraceSink *tsink = nullptr;
    obs::HistogramSet *hists = nullptr;

    /** Barrier scratch: aggregated closed-interval counts. */
    std::vector<std::uint32_t> observed;

    std::size_t intervals_started = 0;
    TimeMs now = 0;
    bool started = false;
    bool drained = false;
    bool parallel = false;

    Impl(std::unique_ptr<TraceSource> owned, TraceSource *external,
         const std::vector<workload::FunctionProfile> &prof,
         const ClusterConfig &cfg, Policy &pol, SimulatorOptions opt)
        : owned_source(std::move(owned)),
          source(owned_source != nullptr ? *owned_source : *external),
          profiles(prof), config(cfg), policy(pol), options(opt),
          num_functions(source.numFunctions()),
          num_intervals(source.numIntervals()),
          interval_ms(source.intervalMs())
    {
    }

    void setup();
    void scatterWindow(IntervalIndex interval);
    void runCells(const std::function<void(std::size_t)> &fn);
    void sampleProbes(IntervalIndex interval);

    ClusterState &cellCluster(FunctionId fn)
    {
        return cells[shard_plan.cellOf(fn)]->sim->cluster();
    }
};

namespace
{

/** Wall-clock µs elapsed since @p t0 (clamped at 0). */
std::uint64_t wallUsSince(std::chrono::steady_clock::time_point t0)
{
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    return us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count());
}

/**
 * The barrier-time WarmupInterface the real policy acts through:
 * per-function actions route to the owning cell's cluster, tier-wide
 * occupancy signals sum over cells. A shortfall inside a cell is not
 * spilled to other cells — a function's arrivals only ever stream in
 * its home cell, so a container elsewhere could never serve them;
 * cross-tier spillover (the policies' warm-with-spill idiom) still
 * works within the cell.
 */
class GlobalFacade final : public WarmupInterface
{
  public:
    explicit GlobalFacade(ShardedSimulator::Impl &impl) : impl_(impl) {}

    std::size_t ensureWarm(FunctionId fn, Tier tier, std::size_t count,
                           TimeMs expiry) override
    {
        return impl_.cellCluster(fn).ensureWarm(fn, tier, count,
                                                expiry);
    }

    std::size_t ensureWarmEvicting(FunctionId fn, Tier tier,
                                   std::size_t count, TimeMs expiry,
                                   Policy &policy) override
    {
        return impl_.cellCluster(fn).ensureWarmEvicting(
            fn, tier, count, expiry, policy);
    }

    void schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                         TimeMs expiry) override
    {
        impl_.cellCluster(fn).schedulePrewarm(fn, tier, start_time,
                                              expiry);
    }

    MemoryMb vacantMemoryMb(Tier tier) const override
    {
        MemoryMb total = 0;
        for (const auto &cell : impl_.cells)
            total += cell->sim->cluster().vacantMemoryMb(tier);
        return total;
    }

    MemoryMb totalMemoryMb(Tier tier) const override
    {
        MemoryMb total = 0;
        for (const auto &cell : impl_.cells)
            total += cell->sim->cluster().totalMemoryMb(tier);
        return total;
    }

    std::size_t warmCount(FunctionId fn, Tier tier) const override
    {
        return impl_.cellCluster(fn).warmCount(fn, tier);
    }

    TimeMs now() const override { return impl_.now; }

  private:
    ShardedSimulator::Impl &impl_;
};

} // namespace

void
ShardedSimulator::Impl::setup()
{
    ICEB_ASSERT(profiles.size() == num_functions,
                "one profile per workload function required");

    shard_plan = ShardPlan::build(num_functions, config, options.cells,
                                  options.max_cells);
    const std::size_t num_cells = shard_plan.num_cells;

    // Resolve the run's observability sinks up front: the cells are
    // wired below through the SimulatorOptions overrides (never the
    // recorder itself — its sinks are not safe to share across the
    // parallel cell phase).
    if (options.recorder != nullptr) {
        probes = options.recorder->probeTable();
        if (probes != nullptr)
            probes->reserve(num_intervals, num_functions);
        tsink = options.recorder->traceSink();
        hists = options.recorder->histograms();
    }

    SimulatorOptions cell_options = options;
    cell_options.recorder = nullptr; // cells get direct sinks instead
    cell_options.shards = 0;
    cell_options.cells = 0;

    // Per-cell arrival totals (metrics pre-sizing only, never
    // results): exact for a materialized source, unknown — so no
    // pre-reserve — for a streamed one.
    std::vector<std::uint64_t> cell_totals(num_cells, 0);
    if (const trace::Trace *tr = source.trace()) {
        for (FunctionId fn = 0; fn < tr->numFunctions(); ++fn) {
            cell_totals[shard_plan.cellOf(fn)] +=
                tr->function(fn).totalInvocations();
        }
    }

    cells.reserve(num_cells);
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
        auto owned = std::make_unique<shard_impl::Cell>();
        owned->config = shard_plan.cellConfig(config, cell);
        owned->stream = std::make_unique<shard_impl::CellStreamSource>(
            num_functions, num_intervals, interval_ms,
            cell_totals[cell]);
        owned->adapter =
            std::make_unique<shard_impl::CellAdapter>(policy);
        // Each cell records into private sinks: its own trace ring
        // (merged at export as a "cellN" track) and its own histogram
        // set (merged into the recorder's at finish(), in cell order).
        if (tsink != nullptr) {
            cell_options.trace_sink =
                options.recorder->cellTraceSink(cell, num_cells);
        }
        if (hists != nullptr) {
            owned->hist = std::make_unique<obs::HistogramSet>();
            cell_options.histograms = owned->hist.get();
        }
        owned->sim = std::make_unique<Simulator>(
            *owned->stream, profiles, owned->config, *owned->adapter,
            cell_options);
        cells.push_back(std::move(owned));
    }

    context.num_functions = num_functions;
    context.profiles = &profiles;
    context.cluster = &config; // the global composition
    context.interval_ms = interval_ms;
    context.recorder = options.recorder;

    facade = std::make_unique<GlobalFacade>(*this);
    observed.assign(num_functions, 0);

    parallel = policy.shardCompatible() && options.shards > 1 &&
        num_cells > 1;
    if (parallel) {
        pool = std::make_unique<shard_impl::CellPool>(
            std::min(options.shards, num_cells));
    }

}

void
ShardedSimulator::Impl::scatterWindow(IntervalIndex interval)
{
    // Pull the interval's GLOBAL window once and deal every arrival to
    // its owning cell, re-ranking by cell-buffer position (see
    // CellStreamSource). The single pull is what lets one streaming
    // source feed all cells: it is consumed strictly in interval
    // order, regardless of the cell count.
    const ArrivalWindow window = source.intervalWindow(interval);
    for (const auto &cell : cells)
        cell->stream->buffer().clear();
    for (std::size_t i = 0; i < window.size; ++i) {
        ArrivalRecord rec = window.data[i];
        auto &buf =
            cells[shard_plan.cellOf(rec.fn)]->stream->buffer();
        rec.rank = static_cast<std::uint32_t>(buf.size());
        buf.push_back(rec);
    }
}

void
ShardedSimulator::Impl::runCells(
    const std::function<void(std::size_t)> &fn)
{
    if (pool != nullptr) {
        pool->run(cells.size(), fn);
        return;
    }
    for (std::size_t cell = 0; cell < cells.size(); ++cell)
        fn(cell);
}

void
ShardedSimulator::Impl::sampleProbes(IntervalIndex interval)
{
    obs::IntervalSample sample;
    sample.interval = static_cast<std::uint32_t>(interval);
    sample.time = now;
    std::array<std::int64_t, kNumTiers> idle{};
    std::array<std::int64_t, kNumTiers> setup{};
    std::int64_t waiting = 0;
    for (const auto &cell : cells) {
        std::array<std::int64_t, kNumTiers> cell_idle{};
        std::array<std::int64_t, kNumTiers> cell_setup{};
        cell->sim->cluster().sampleOccupancy(cell_idle, cell_setup);
        const SimulationMetrics &accrued = cell->sim->accruedMetrics();
        for (std::size_t t = 0; t < kNumTiers; ++t) {
            const auto tier = static_cast<Tier>(t);
            idle[t] += cell_idle[t];
            setup[t] += cell_setup[t];
            sample.total_mb[t] +=
                cell->sim->cluster().totalMemoryMb(tier);
            sample.used_mb[t] +=
                cell->sim->cluster().totalMemoryMb(tier) -
                cell->sim->cluster().vacantMemoryMb(tier);
            sample.keep_alive_cost[t] +=
                accrued.keep_alive[t].totalCost();
        }
        waiting += static_cast<std::int64_t>(cell->sim->waitingCount());
    }
    sample.idle_warm = idle;
    sample.in_setup = setup;
    sample.wait_queue = waiting;
    probes->addIntervalSample(sample);
}

ShardedSimulator::ShardedSimulator(
    const trace::Trace &tr,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : impl_(std::make_unique<Impl>(
          std::make_unique<MaterializedTraceSource>(tr, options.seed),
          nullptr, profiles, config, policy, options))
{
    impl_->setup();
}

ShardedSimulator::ShardedSimulator(
    TraceSource &source,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : impl_(std::make_unique<Impl>(nullptr, &source, profiles, config,
                                   policy, options))
{
    impl_->setup();
}

ShardedSimulator::~ShardedSimulator() = default;

void
ShardedSimulator::start()
{
    Impl &impl = *impl_;
    ICEB_ASSERT(!impl.started, "ShardedSimulator::start() called twice");
    impl.started = true;

    impl.policy.initialize(impl.context);
    if (auto *offline = dynamic_cast<OfflinePolicy *>(&impl.policy)) {
        if (impl.source.trace() == nullptr) {
            fatal("offline (oracle) scheme '", impl.policy.name(),
                  "' needs a materialized trace; a streamed workload "
                  "cannot grant the privileged full-trace view");
        }
        impl.oracle_context.trace = impl.source.trace();
        impl.oracle_context.arrival_schedule =
            impl.source.arrivalSchedule();
        offline->initializeOracle(impl.oracle_context);
    }

    impl.source.beginRun();

    for (const auto &cell : impl.cells)
        cell->sim->start();
}

bool
ShardedSimulator::advanceInterval()
{
    Impl &impl = *impl_;
    ICEB_ASSERT(impl.started, "advanceInterval() before start()");
    if (impl.drained)
        return false;

    const std::size_t num_intervals = impl.num_intervals;
    if (impl.intervals_started == num_intervals) {
        // Trailing completions / expiries past the horizon; no policy
        // interval hooks remain.
        impl.runCells([&impl](std::size_t cell) {
            while (impl.cells[cell]->sim->step()) {
            }
        });
        impl.drained = true;
        return false;
    }

    const std::size_t iv = impl.intervals_started;
    const TimeMs interval_ms = impl.interval_ms;
    impl.now = static_cast<TimeMs>(iv) * interval_ms;

    // Serial barrier, deterministic cell order. The previous body
    // phase left every cell standing just before its own interval
    // tick (the tick at T_iv is its next unprocessed event). The
    // policy must act in THIS state — before any cell's tick reserves
    // the interval's arrival-window sequence numbers — so that, as in
    // the classic engine's tick handler (policy first, window after),
    // a warm-up completing at exactly an arrival's timestamp sorts
    // before the arrival.
    for (const auto &cell : impl.cells)
        cell->sim->cluster().setNow(impl.now);

    // Barrier-phase spans for the run's Chrome trace (the
    // coordinator's own sink; cells record lifecycle events into
    // their per-cell rings). Simulated-time spans only — the serial
    // phases are zero-length at the barrier timestamp — so traced
    // output stays byte-identical across worker counts.
    ICEB_TRACE(impl.tsink, obs::TraceKind::PhaseSerialBarrier, impl.now,
               static_cast<FunctionId>(iv), Tier::HighEnd,
               obs::ColdCause::None, 0);

    // Probe the aggregate BEFORE the policy acts, like the classic
    // engine: the row shows the state the decision saw.
    if (impl.probes != nullptr) {
        ICEB_TRACE(impl.tsink, obs::TraceKind::PhaseProbeSample,
                   impl.now, static_cast<FunctionId>(iv), Tier::HighEnd,
                   obs::ColdCause::None, 0);
        impl.sampleProbes(static_cast<IntervalIndex>(iv));
    }

    const bool wall = impl.hists != nullptr && impl.hists->wall_timing;

    // The real policy's interval hooks fire exactly once, against the
    // aggregated observation and the global facade. Each cell's
    // open-interval counts still hold the closed interval's arrivals
    // (its tick has not delivered and reset them yet); only the home
    // cell of a function ever counts it, so aggregation is a sum.
    if (iv > 0) {
        std::fill(impl.observed.begin(), impl.observed.end(), 0u);
        for (const auto &cell : impl.cells) {
            const auto &counts = cell->sim->observedCounts();
            for (std::size_t fn = 0; fn < impl.observed.size(); ++fn)
                impl.observed[fn] += counts[fn];
        }
        IntervalObservation closed;
        closed.interval = static_cast<IntervalIndex>(iv - 1);
        closed.arrivals = impl.observed.data();
        closed.num_functions = impl.observed.size();
        const auto t0 = wall ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
        impl.policy.onIntervalObserved(closed);
        if (wall)
            impl.hists->forecast_wall_us.record(wallUsSince(t0));
    }
    {
        const auto t0 = wall ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
        impl.policy.onIntervalStart(static_cast<IntervalIndex>(iv),
                                    *impl.facade);
        if (wall)
            impl.hists->decision_wall_us.record(wallUsSince(t0));
    }

    // Deal the interval's arrivals to the cells before any cell's
    // tick opens its window on them.
    impl.scatterWindow(static_cast<IntervalIndex>(iv));

    // Now advance every cell through its tick: the adapter swallows
    // the interval hooks, and the tick opens the arrival window with
    // sequence numbers above everything the policy just pushed.
    for (const auto &cell : impl.cells) {
        Simulator &sim = *cell->sim;
        while (sim.intervalsStarted() <= iv) {
            if (!sim.step())
                break;
        }
    }

    // Parallel phase: every cell runs its own event loop up to (not
    // including) the next barrier. Cells share nothing here.
    const TimeMs t_next = static_cast<TimeMs>(iv + 1) * interval_ms;
    ICEB_TRACE(impl.tsink, obs::TraceKind::PhaseParallelCells, impl.now,
               static_cast<FunctionId>(iv), Tier::HighEnd,
               obs::ColdCause::None,
               static_cast<std::uint64_t>(interval_ms));
    impl.runCells([&impl, t_next](std::size_t cell) {
        Simulator &sim = *impl.cells[cell]->sim;
        while (const std::optional<TimeMs> t = sim.nextEventTime()) {
            if (*t >= t_next)
                break;
            sim.step();
        }
    });

    ++impl.intervals_started;
    return true;
}

SimulationMetrics
ShardedSimulator::finish()
{
    Impl &impl = *impl_;
    ICEB_ASSERT(impl.drained,
                "finish() before the run completed (call "
                "advanceInterval() until it returns false)");
    SimulationMetrics total = impl.cells[0]->sim->finish();
    for (std::size_t cell = 1; cell < impl.cells.size(); ++cell)
        total.merge(impl.cells[cell]->sim->finish());
    // Fold the cells' private histogram sets into the recorder's, in
    // cell order (bucket addition is exact, so the merged set equals a
    // classic run's up to the partitioned-memory placement semantics).
    if (impl.hists != nullptr) {
        for (const auto &cell : impl.cells) {
            if (cell->hist != nullptr)
                impl.hists->merge(*cell->hist);
        }
    }
    return total;
}

SimulationMetrics
ShardedSimulator::run()
{
    start();
    while (advanceInterval()) {
    }
    return finish();
}

std::optional<TimeMs>
ShardedSimulator::nextBarrierTime() const
{
    const Impl &impl = *impl_;
    if (impl.intervals_started >= impl.num_intervals)
        return std::nullopt;
    return static_cast<TimeMs>(impl.intervals_started) *
        impl.interval_ms;
}

std::size_t
ShardedSimulator::intervalsStarted() const
{
    return impl_->intervals_started;
}

TimeMs
ShardedSimulator::now() const
{
    return impl_->now;
}

LiveCounters
ShardedSimulator::liveCounters() const
{
    LiveCounters total;
    for (const auto &cell : impl_->cells) {
        const LiveCounters c = cell->sim->liveCounters();
        total.invocations += c.invocations;
        total.cold_starts += c.cold_starts;
        total.warm_starts += c.warm_starts;
        total.wait_queue += c.wait_queue;
        for (std::size_t t = 0; t < kNumTiers; ++t)
            total.keep_alive_cost[t] += c.keep_alive_cost[t];
    }
    return total;
}

const ShardPlan &
ShardedSimulator::plan() const
{
    return impl_->shard_plan;
}

bool
ShardedSimulator::parallel() const
{
    return impl_->parallel;
}

} // namespace iceb::sim
