/**
 * @file
 * Metric accounting for the cluster simulator.
 *
 * Records exactly the quantities the paper evaluates: per-invocation
 * service time split into wait + cold-start + execution (+ scheme
 * overhead), and keep-alive cost split per tier into successful
 * (warm-up later consumed by an invocation) and wasteful (warmed but
 * never invoked) components, plus memory wastage.
 */

#ifndef ICEB_SIM_METRICS_HH
#define ICEB_SIM_METRICS_HH

#include <vector>

#include "common/types.hh"

namespace iceb::sim
{

/** Final disposition of one invocation. */
struct InvocationOutcome
{
    FunctionId fn = kInvalidFunction;
    Tier tier = Tier::HighEnd;
    bool cold = false;
    TimeMs arrival = 0;
    TimeMs wait_ms = 0;
    TimeMs cold_start_ms = 0;
    TimeMs exec_ms = 0;
    TimeMs overhead_ms = 0; //!< scheme decision latency (paper Sec. 5)

    /** End-to-end service time as the paper defines it. */
    TimeMs serviceMs() const
    {
        return wait_ms + cold_start_ms + exec_ms + overhead_ms;
    }
};

/** Per-function aggregates. */
struct FunctionMetrics
{
    std::uint64_t invocations = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t warm_starts = 0;
    double sum_service_ms = 0.0;
    double sum_wait_ms = 0.0;
    double sum_cold_ms = 0.0;
    double sum_exec_ms = 0.0;
    Dollars keep_alive_cost = 0.0; //!< successful + wasteful

    double meanServiceMs() const
    {
        return invocations == 0
            ? 0.0
            : sum_service_ms / static_cast<double>(invocations);
    }
};

/**
 * Event-loop and data-structure observability (PR 4): how much work
 * the sim core did to produce a run, so heap-churn regressions show
 * up in bench_sim's perf artifact. The peaks double as capacity
 * hints: feeding them back through SimCapacityHints makes a repeat
 * run allocation-free.
 */
struct EventLoopStats
{
    /** Events processed, indexed by EventType (streamed arrivals
     * count as popped InvocationArrivals). */
    std::uint64_t popped[6] = {};

    std::uint64_t stale_expiry_events = 0;  //!< expiry for gone/renewed
    std::uint64_t stale_evict_entries = 0;  //!< evict-heap entries skipped
    std::uint64_t eviction_victims_examined = 0; //!< evict-heap pops

    std::uint64_t peak_live_containers = 0;
    std::uint64_t peak_pending_events = 0;
    std::uint64_t peak_bucket_events = 0; //!< calendar-queue bucket depth
    std::uint64_t peak_evict_entries = 0; //!< largest per-tier heap
    std::uint64_t peak_wait_queue = 0;

    std::uint64_t totalPopped() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t count : popped)
            total += count;
        return total;
    }

    /** Counts add, peaks take the max (replicate pooling). */
    void merge(const EventLoopStats &other);
};

/** Per-tier keep-alive accounting. */
struct TierKeepAlive
{
    Dollars successful_cost = 0.0;
    Dollars wasteful_cost = 0.0;
    double wasted_mb_ms = 0.0; //!< memory wastage (wasteful idle)

    Dollars totalCost() const { return successful_cost + wasteful_cost; }
};

/** Everything a simulation run produces. */
struct SimulationMetrics
{
    std::uint64_t invocations = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t warm_starts = 0;

    /** Cold-start cause split (diagnostics for the benches). */
    std::uint64_t cold_no_container = 0;   //!< nothing warm existed
    std::uint64_t cold_all_busy = 0;       //!< instances under-provisioned
    std::uint64_t cold_setup_attach = 0;   //!< warm-up arrived too late

    double sum_service_ms = 0.0;
    double sum_wait_ms = 0.0;
    double sum_cold_ms = 0.0;
    double sum_exec_ms = 0.0;
    double sum_overhead_ms = 0.0;

    /** Every invocation's service time in ms (for CDFs/percentiles). */
    std::vector<float> service_times_ms;

    /** Service times split by executing tier. */
    std::vector<float> service_times_high_ms;
    std::vector<float> service_times_low_ms;

    /** Per-function aggregates indexed by FunctionId. */
    std::vector<FunctionMetrics> per_function;

    /** Keep-alive cost per tier. */
    TierKeepAlive keep_alive[kNumTiers];

    /** Sim-core work counters (not part of any figure's output). */
    EventLoopStats event_loop;

    double meanServiceMs() const
    {
        return invocations == 0
            ? 0.0
            : sum_service_ms / static_cast<double>(invocations);
    }
    double meanWaitMs() const
    {
        return invocations == 0
            ? 0.0
            : sum_wait_ms / static_cast<double>(invocations);
    }
    double meanColdMs() const
    {
        return invocations == 0
            ? 0.0
            : sum_cold_ms / static_cast<double>(invocations);
    }
    double meanExecMs() const
    {
        return invocations == 0
            ? 0.0
            : sum_exec_ms / static_cast<double>(invocations);
    }
    double warmStartFraction() const
    {
        return invocations == 0
            ? 0.0
            : static_cast<double>(warm_starts) /
                static_cast<double>(invocations);
    }
    Dollars totalKeepAliveCost() const
    {
        Dollars total = 0.0;
        for (const auto &tier : keep_alive)
            total += tier.totalCost();
        return total;
    }
    const TierKeepAlive &tierKeepAlive(Tier tier) const
    {
        return keep_alive[static_cast<std::size_t>(tierIndex(tier))];
    }

    /**
     * Fold another run's metrics into this one. Counts and sums add,
     * service-time samples concatenate (percentile pooling), and
     * per-function aggregates add entrywise; both runs must therefore
     * cover the same function set. Merging the per-run metrics of a
     * partitioned invocation set yields exactly the metrics of
     * collecting the whole set at once.
     */
    void merge(const SimulationMetrics &other);
};

/**
 * Accumulates metrics during a run.
 */
class MetricsCollector
{
  public:
    /** Prepare per-function slots. */
    explicit MetricsCollector(std::size_t num_functions);

    /** Record one finished invocation. */
    void recordInvocation(const InvocationOutcome &outcome);

    /** Classify a cold start's cause (see SimulationMetrics fields). */
    void recordColdCause(bool setup_attach, bool had_live_containers);

    /**
     * Record the cost of one idle-warm period.
     *
     * @param successful True when the period ended in a warm start.
     * @param rate_mb_ms Tier keep-alive rate in $/(MB*ms).
     */
    void recordKeepAlive(Tier tier, FunctionId fn, MemoryMb memory_mb,
                         TimeMs idle_ms, bool successful,
                         double rate_mb_ms);

    /**
     * Pre-size the per-sample vectors for @p invocations records, so
     * the record path never reallocates mid-run.
     */
    void reserveSamples(std::size_t invocations);

    /** Mutable access to the event-loop counters. */
    EventLoopStats &eventLoop() { return metrics_.event_loop; }

    /** Read-only view of the accumulating metrics (probe sampling). */
    const SimulationMetrics &current() const { return metrics_; }

    /** Finish and take the result. */
    SimulationMetrics take();

  private:
    SimulationMetrics metrics_;
};

} // namespace iceb::sim

#endif // ICEB_SIM_METRICS_HH
