/**
 * @file
 * Generational slot map: the container arena behind ClusterState.
 *
 * Values live in a dense vector of slots; a handle encodes
 * (generation << 32) | slot_index. Erasing a slot bumps its
 * generation and threads it onto a free list, so the next insert
 * reuses the storage under a fresh handle and any handle to the dead
 * value goes stale. A single generation comparison then replaces the
 * hash probe the simulator used for staleness checks (expired-event
 * and evict-heap entries referencing destroyed containers).
 *
 * Generations start at 1, so no valid handle is ever 0 and the
 * simulator's "no container" sentinel (ContainerId 0) stays invalid.
 * Handle values are never used as ordering keys anywhere in the
 * simulator (events and evict entries order by their own sequence
 * numbers), which is what makes slot reuse determinism-safe.
 */

#ifndef ICEB_SIM_SLOT_MAP_HH
#define ICEB_SIM_SLOT_MAP_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace iceb::sim
{

template <typename T>
class SlotMap
{
  public:
    using Id = std::uint64_t;

    static constexpr Id kNoId = 0;

    /** Slot index of a handle (valid for any live or stale handle). */
    static std::uint32_t slotOf(Id id)
    {
        return static_cast<std::uint32_t>(id & 0xffff'ffffull);
    }

    /** Pre-size the arena (and free list) for @p n live values. */
    void reserve(std::size_t n)
    {
        slots_.reserve(n);
        free_.reserve(n);
    }

    /**
     * Allocate a slot (reusing the most recently freed one first) and
     * return its handle; the value is default-initialised.
     */
    Id insert()
    {
        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            slots_[slot].value = T{};
        } else {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        ++live_;
        return makeId(slot, slots_[slot].generation);
    }

    /** Live value for @p id, or nullptr when the handle is stale. */
    T *find(Id id)
    {
        const std::uint32_t slot = slotOf(id);
        if (slot >= slots_.size() ||
            makeId(slot, slots_[slot].generation) != id) {
            return nullptr;
        }
        return &slots_[slot].value;
    }

    const T *find(Id id) const
    {
        return const_cast<SlotMap *>(this)->find(id);
    }

    /** Live value for @p id; asserts the handle is current. */
    T &at(Id id)
    {
        T *value = find(id);
        ICEB_ASSERT(value != nullptr, "stale slot-map handle");
        return *value;
    }

    const T &at(Id id) const
    {
        return const_cast<SlotMap *>(this)->at(id);
    }

    /** Hint the CPU to pull a slot's line (no-op out of range). */
    void prefetch(std::uint32_t slot) const
    {
        if (slot < slots_.size())
            __builtin_prefetch(slots_.data() + slot);
    }

    /** Direct slot access for intrusive links (caller knows liveness). */
    T &atSlot(std::uint32_t slot) { return slots_[slot].value; }
    const T &atSlot(std::uint32_t slot) const
    {
        return slots_[slot].value;
    }

    /** Erase a live handle: bump the generation, recycle the slot. */
    void erase(Id id)
    {
        const std::uint32_t slot = slotOf(id);
        ICEB_ASSERT(slot < slots_.size() &&
                        makeId(slot, slots_[slot].generation) == id,
                    "erasing stale slot-map handle");
        ++slots_[slot].generation;
        free_.push_back(slot);
        ICEB_ASSERT(live_ > 0, "slot-map live count underflow");
        --live_;
    }

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }

    /** Allocated slots (live + free), i.e. the arena's high-water mark. */
    std::size_t capacityUsed() const { return slots_.size(); }

  private:
    struct Slot
    {
        T value{};
        std::uint32_t generation = 1;
    };

    static Id makeId(std::uint32_t slot, std::uint32_t generation)
    {
        return (static_cast<Id>(generation) << 32) |
            static_cast<Id>(slot);
    }

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;
    std::size_t live_ = 0;
};

} // namespace iceb::sim

#endif // ICEB_SIM_SLOT_MAP_HH
