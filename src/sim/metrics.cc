#include "sim/metrics.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::sim
{

MetricsCollector::MetricsCollector(std::size_t num_functions)
{
    metrics_.per_function.resize(num_functions);
}

void
MetricsCollector::recordInvocation(const InvocationOutcome &outcome)
{
    ICEB_ASSERT(outcome.fn < metrics_.per_function.size(),
                "invocation for unknown function");
    ++metrics_.invocations;
    if (outcome.cold)
        ++metrics_.cold_starts;
    else
        ++metrics_.warm_starts;

    const double service = static_cast<double>(outcome.serviceMs());
    metrics_.sum_service_ms += service;
    metrics_.sum_wait_ms += static_cast<double>(outcome.wait_ms);
    metrics_.sum_cold_ms += static_cast<double>(outcome.cold_start_ms);
    metrics_.sum_exec_ms += static_cast<double>(outcome.exec_ms);
    metrics_.sum_overhead_ms += static_cast<double>(outcome.overhead_ms);

    metrics_.service_times_ms.push_back(static_cast<float>(service));
    if (outcome.tier == Tier::HighEnd)
        metrics_.service_times_high_ms.push_back(
            static_cast<float>(service));
    else
        metrics_.service_times_low_ms.push_back(
            static_cast<float>(service));

    FunctionMetrics &fm = metrics_.per_function[outcome.fn];
    ++fm.invocations;
    if (outcome.cold)
        ++fm.cold_starts;
    else
        ++fm.warm_starts;
    fm.sum_service_ms += service;
    fm.sum_wait_ms += static_cast<double>(outcome.wait_ms);
    fm.sum_cold_ms += static_cast<double>(outcome.cold_start_ms);
    fm.sum_exec_ms += static_cast<double>(outcome.exec_ms);
}

void
MetricsCollector::recordColdCause(bool setup_attach,
                                  bool had_live_containers)
{
    if (setup_attach)
        ++metrics_.cold_setup_attach;
    else if (had_live_containers)
        ++metrics_.cold_all_busy;
    else
        ++metrics_.cold_no_container;
}

void
MetricsCollector::recordKeepAlive(Tier tier, FunctionId fn,
                                  MemoryMb memory_mb, TimeMs idle_ms,
                                  bool successful, double rate_mb_ms)
{
    if (idle_ms <= 0)
        return;
    ICEB_ASSERT(fn < metrics_.per_function.size(),
                "keep-alive for unknown function");
    const Dollars cost = keepAliveCost(memory_mb, idle_ms, rate_mb_ms);
    TierKeepAlive &ka =
        metrics_.keep_alive[static_cast<std::size_t>(tierIndex(tier))];
    if (successful) {
        ka.successful_cost += cost;
    } else {
        ka.wasteful_cost += cost;
        ka.wasted_mb_ms += static_cast<double>(memory_mb) *
            static_cast<double>(idle_ms);
    }
    metrics_.per_function[fn].keep_alive_cost += cost;
}

SimulationMetrics
MetricsCollector::take()
{
    return std::move(metrics_);
}

} // namespace iceb::sim
