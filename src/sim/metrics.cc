#include "sim/metrics.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::sim
{

namespace
{
std::uint64_t
maxOf(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a : b;
}
} // namespace

void
EventLoopStats::merge(const EventLoopStats &other)
{
    for (std::size_t i = 0; i < 6; ++i)
        popped[i] += other.popped[i];
    stale_expiry_events += other.stale_expiry_events;
    stale_evict_entries += other.stale_evict_entries;
    eviction_victims_examined += other.eviction_victims_examined;
    peak_live_containers =
        maxOf(peak_live_containers, other.peak_live_containers);
    peak_pending_events =
        maxOf(peak_pending_events, other.peak_pending_events);
    peak_bucket_events =
        maxOf(peak_bucket_events, other.peak_bucket_events);
    peak_evict_entries =
        maxOf(peak_evict_entries, other.peak_evict_entries);
    peak_wait_queue = maxOf(peak_wait_queue, other.peak_wait_queue);
}

void
SimulationMetrics::merge(const SimulationMetrics &other)
{
    ICEB_ASSERT(per_function.size() == other.per_function.size(),
                "merging metrics over different function sets");

    invocations += other.invocations;
    cold_starts += other.cold_starts;
    warm_starts += other.warm_starts;
    cold_no_container += other.cold_no_container;
    cold_all_busy += other.cold_all_busy;
    cold_setup_attach += other.cold_setup_attach;

    sum_service_ms += other.sum_service_ms;
    sum_wait_ms += other.sum_wait_ms;
    sum_cold_ms += other.sum_cold_ms;
    sum_exec_ms += other.sum_exec_ms;
    sum_overhead_ms += other.sum_overhead_ms;

    service_times_ms.insert(service_times_ms.end(),
                            other.service_times_ms.begin(),
                            other.service_times_ms.end());
    service_times_high_ms.insert(service_times_high_ms.end(),
                                 other.service_times_high_ms.begin(),
                                 other.service_times_high_ms.end());
    service_times_low_ms.insert(service_times_low_ms.end(),
                                other.service_times_low_ms.begin(),
                                other.service_times_low_ms.end());

    for (std::size_t fn = 0; fn < per_function.size(); ++fn) {
        FunctionMetrics &mine = per_function[fn];
        const FunctionMetrics &theirs = other.per_function[fn];
        mine.invocations += theirs.invocations;
        mine.cold_starts += theirs.cold_starts;
        mine.warm_starts += theirs.warm_starts;
        mine.sum_service_ms += theirs.sum_service_ms;
        mine.sum_wait_ms += theirs.sum_wait_ms;
        mine.sum_cold_ms += theirs.sum_cold_ms;
        mine.sum_exec_ms += theirs.sum_exec_ms;
        mine.keep_alive_cost += theirs.keep_alive_cost;
    }

    for (std::size_t t = 0; t < kNumTiers; ++t) {
        keep_alive[t].successful_cost += other.keep_alive[t].successful_cost;
        keep_alive[t].wasteful_cost += other.keep_alive[t].wasteful_cost;
        keep_alive[t].wasted_mb_ms += other.keep_alive[t].wasted_mb_ms;
    }

    event_loop.merge(other.event_loop);
}

MetricsCollector::MetricsCollector(std::size_t num_functions)
{
    metrics_.per_function.resize(num_functions);
}

void
MetricsCollector::recordInvocation(const InvocationOutcome &outcome)
{
    ICEB_ASSERT(outcome.fn < metrics_.per_function.size(),
                "invocation for unknown function");
    ++metrics_.invocations;
    if (outcome.cold)
        ++metrics_.cold_starts;
    else
        ++metrics_.warm_starts;

    const double service = static_cast<double>(outcome.serviceMs());
    metrics_.sum_service_ms += service;
    metrics_.sum_wait_ms += static_cast<double>(outcome.wait_ms);
    metrics_.sum_cold_ms += static_cast<double>(outcome.cold_start_ms);
    metrics_.sum_exec_ms += static_cast<double>(outcome.exec_ms);
    metrics_.sum_overhead_ms += static_cast<double>(outcome.overhead_ms);

    metrics_.service_times_ms.push_back(static_cast<float>(service));
    if (outcome.tier == Tier::HighEnd)
        metrics_.service_times_high_ms.push_back(
            static_cast<float>(service));
    else
        metrics_.service_times_low_ms.push_back(
            static_cast<float>(service));

    FunctionMetrics &fm = metrics_.per_function[outcome.fn];
    ++fm.invocations;
    if (outcome.cold)
        ++fm.cold_starts;
    else
        ++fm.warm_starts;
    fm.sum_service_ms += service;
    fm.sum_wait_ms += static_cast<double>(outcome.wait_ms);
    fm.sum_cold_ms += static_cast<double>(outcome.cold_start_ms);
    fm.sum_exec_ms += static_cast<double>(outcome.exec_ms);
}

void
MetricsCollector::recordColdCause(bool setup_attach,
                                  bool had_live_containers)
{
    if (setup_attach)
        ++metrics_.cold_setup_attach;
    else if (had_live_containers)
        ++metrics_.cold_all_busy;
    else
        ++metrics_.cold_no_container;
}

void
MetricsCollector::recordKeepAlive(Tier tier, FunctionId fn,
                                  MemoryMb memory_mb, TimeMs idle_ms,
                                  bool successful, double rate_mb_ms)
{
    if (idle_ms <= 0)
        return;
    ICEB_ASSERT(fn < metrics_.per_function.size(),
                "keep-alive for unknown function");
    const Dollars cost = keepAliveCost(memory_mb, idle_ms, rate_mb_ms);
    TierKeepAlive &ka =
        metrics_.keep_alive[static_cast<std::size_t>(tierIndex(tier))];
    if (successful) {
        ka.successful_cost += cost;
    } else {
        ka.wasteful_cost += cost;
        ka.wasted_mb_ms += static_cast<double>(memory_mb) *
            static_cast<double>(idle_ms);
    }
    metrics_.per_function[fn].keep_alive_cost += cost;
}

void
MetricsCollector::reserveSamples(std::size_t invocations)
{
    metrics_.service_times_ms.reserve(invocations);
    // The per-tier split sums to the total; reserving both for the
    // full count trades a bounded overshoot for a guaranteed
    // allocation-free record path.
    metrics_.service_times_high_ms.reserve(invocations);
    metrics_.service_times_low_ms.reserve(invocations);
}

SimulationMetrics
MetricsCollector::take()
{
    return std::move(metrics_);
}

} // namespace iceb::sim
