#include "sim/metrics_summary.hh"

#include "math/stats.hh"

namespace iceb::sim
{

ValueStats
ValueStats::of(const std::vector<double> &values)
{
    ValueStats stats;
    stats.count = values.size();
    if (values.empty())
        return stats;
    stats.mean = math::mean(values);
    stats.stddev = math::stddev(values);
    stats.min = math::minValue(values);
    stats.max = math::maxValue(values);
    return stats;
}

double
MetricsSummary::pooledServicePercentileMs(double q) const
{
    std::vector<double> samples(pooled.service_times_ms.begin(),
                                pooled.service_times_ms.end());
    return math::percentile(samples, q);
}

MetricsSummary
summarizeRuns(const std::vector<SimulationMetrics> &runs)
{
    MetricsSummary summary;
    summary.runs = runs.size();
    if (runs.empty())
        return summary;

    const auto gather = [&runs](auto &&extract) {
        std::vector<double> values;
        values.reserve(runs.size());
        for (const SimulationMetrics &run : runs)
            values.push_back(extract(run));
        return ValueStats::of(values);
    };

    summary.keep_alive_cost = gather(
        [](const SimulationMetrics &m) { return m.totalKeepAliveCost(); });
    summary.mean_service_ms = gather(
        [](const SimulationMetrics &m) { return m.meanServiceMs(); });
    summary.mean_wait_ms = gather(
        [](const SimulationMetrics &m) { return m.meanWaitMs(); });
    summary.mean_cold_ms = gather(
        [](const SimulationMetrics &m) { return m.meanColdMs(); });
    summary.warm_start_fraction = gather(
        [](const SimulationMetrics &m) { return m.warmStartFraction(); });
    summary.cold_starts = gather([](const SimulationMetrics &m) {
        return static_cast<double>(m.cold_starts);
    });
    summary.invocations = gather([](const SimulationMetrics &m) {
        return static_cast<double>(m.invocations);
    });

    summary.pooled = runs.front();
    for (std::size_t i = 1; i < runs.size(); ++i)
        summary.pooled.merge(runs[i]);
    return summary;
}

} // namespace iceb::sim
