/**
 * @file
 * Discrete-event queue for the cluster simulator.
 *
 * A calendar queue (timer wheel): pending events are routed by their
 * timestamp into 2048 ring buckets of ~1/2 second each. Far-future
 * events -- the overwhelming majority under keep-alive policies,
 * which park an expiry event minutes out for every invocation --
 * cost an O(1) bucket append instead of an O(log n) sift through a
 * multi-megabyte comparison heap. The bucket being consumed is
 * drained whole into a sorted run that is read through a cursor;
 * events pushed at-or-behind the consumption point (rare) go to a
 * small side heap that the pop path merges against the cursor, so a
 * pop is one or two key comparisons instead of a heap sift. Events
 * beyond the wheel horizon (~17 minutes) wait in an overflow list
 * that is re-filed each time the wheel wraps.
 *
 * Draining a bucket costs two counting-scatter passes, not a
 * comparison sort: bucket vectors are kept sorted by sequence number
 * (pushes append in seq order; the rare overflow re-file splices in
 * at its seq position), so a stable counting sort on the 9-bit time
 * offset yields exact (time, seq) order.
 *
 * Pop order is identical to a single global heap: bucket time ranges
 * are disjoint, so nothing in a later bucket can precede anything in
 * the sorted run or side heap, and those order by the same strict
 * (time, seq) total order that keeps runs deterministic.
 *
 * Entries are 32 bytes and self-contained: timestamp, a word packing
 * the sequence number with the event type, and a 16-byte union of
 * the type-dependent fields. Keeping the payload in the entry
 * (rather than an index into a side pool) means a pop touches only
 * memory the sequential bucket drain already pulled in; a pooled
 * payload slot allocated minutes of simulated time earlier would be
 * a guaranteed cache miss by the time its event fires. The
 * power-of-two size also keeps entries from straddling cache lines.
 *
 * The public granularity is unchanged: callers push and pop fat
 * Events. A push persists only the fields its type uses; a pop
 * reconstructs those and leaves the rest defaulted.
 *
 * reserveSeqs() hands out a contiguous block of sequence numbers
 * without materialising events -- the simulator uses it to interleave
 * streamed arrivals with heap events in exactly the order the old
 * code produced by pushing every arrival.
 */

#ifndef ICEB_SIM_EVENT_QUEUE_HH
#define ICEB_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace iceb::sim
{

/** Kind of simulation event. */
enum class EventType : std::uint8_t
{
    InvocationArrival, //!< a function request arrives
    IntervalTick,      //!< decision-interval boundary
    PrewarmStart,      //!< a scheduled (Oracle-style) warm-up begins
    PrewarmReady,      //!< container finished setup, becomes idle-warm
    ExecutionComplete, //!< a running invocation finished
    ContainerExpiry,   //!< keep-alive deadline for an idle container
};

/** Number of EventType enumerators (for per-type counters). */
inline constexpr std::size_t kNumEventTypes = 6;

/** One simulation event. Fields beyond the key are type-dependent. */
struct Event
{
    TimeMs time = 0;
    std::uint64_t seq = 0; //!< tie-break for determinism
    EventType type = EventType::IntervalTick;

    FunctionId fn = kInvalidFunction;      //!< arrival / prewarm / exec
    ContainerId container = 0;             //!< container events
    IntervalIndex interval = 0;            //!< IntervalTick
    std::uint64_t token = 0;               //!< expiry invalidation
    Tier tier = Tier::HighEnd;             //!< PrewarmStart
    TimeMs expiry = 0;                     //!< PrewarmStart keep-alive
};

/**
 * Deterministic priority queue of events.
 */
class EventQueue
{
  public:
    /** The ordering key of a pending event. */
    struct Key
    {
        TimeMs time = 0;
        std::uint64_t seq = 0;
    };

    /** Schedule an event; its seq is assigned here. */
    void push(Event event);

    /** Pop the earliest event, or nullopt when drained. */
    std::optional<Event> pop();

    /** Earliest pending time without popping. */
    std::optional<TimeMs> peekTime();

    /** Earliest pending (time, seq) without popping. */
    std::optional<Key> peekKey();

    /**
     * Container referenced by the next pending event, or 0 when the
     * queue is drained or the next event carries no container. Lets
     * the event loop prefetch the container record while the current
     * event's handler is still in flight.
     */
    ContainerId peekContainer();

    /**
     * Claim @p n consecutive sequence numbers without pushing events;
     * returns the first of the block. Events pushed afterwards sort
     * behind the block at equal timestamps.
     */
    std::uint64_t reserveSeqs(std::uint64_t n)
    {
        const std::uint64_t first = next_seq_;
        next_seq_ += n;
        return first;
    }

    /**
     * Pre-size for @p n pending events, and (when non-zero) every
     * wheel bucket for @p per_bucket events. With both set to a prior
     * run's peakSize()/peakBucket(), a repeat run never reallocates.
     */
    void reserve(std::size_t n, std::size_t per_bucket = 0)
    {
        run_.reserve(n);
        side_.reserve(n);
        overflow_.reserve(n);
        if (per_bucket > 0) {
            for (auto &bucket : buckets_)
                bucket.reserve(per_bucket);
        }
    }

    /** Pending event count. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Most events ever pending at once (capacity-hint calibration). */
    std::size_t peakSize() const { return peak_size_; }

    /** Largest single-bucket occupancy (capacity-hint calibration). */
    std::size_t peakBucket() const { return peak_bucket_; }

  private:
    /** log2 of the bucket width: ~1/2 s of simulated time per bucket. */
    static constexpr int kBucketShift = 9;
    /** Ring size; horizon = width * count ~ 17.5 min of sim time. */
    static constexpr std::size_t kNumBuckets = 2048;
    static constexpr std::int64_t kBucketMask =
        static_cast<std::int64_t>(kNumBuckets) - 1;

    struct ExpiryPayload
    {
        ContainerId container;
        std::uint64_t token;
    };

    struct ContainerFnPayload //!< PrewarmReady / ExecutionComplete
    {
        ContainerId container;
        FunctionId fn;
    };

    struct PrewarmPayload
    {
        TimeMs expiry;
        FunctionId fn;
        Tier tier;
    };

    union Payload
    {
        ExpiryPayload expiry;
        ContainerFnPayload cfn;
        PrewarmPayload prewarm;
        FunctionId fn;          //!< InvocationArrival
        IntervalIndex interval; //!< IntervalTick
    };

    /**
     * Self-contained queue entry: ordering key + payload union.
     * seq_type packs (seq << 8) | type -- seq is unique, so comparing
     * the packed word at equal times is exactly the (time, seq) order.
     */
    struct Entry
    {
        TimeMs time = 0;
        std::uint64_t seq_type = 0;
        Payload payload = {};

        std::uint64_t seq() const { return seq_type >> 8; }
        EventType type() const
        {
            return static_cast<EventType>(seq_type & 0xff);
        }
    };

    static bool earlier(const Entry &a, const Entry &b)
    {
        if (a.time != b.time)
            return a.time < b.time;
        return a.seq_type < b.seq_type;
    }

    static Payload packPayload(const Event &event);
    static void unpackPayload(Event &event, const Payload &payload);
    void sideSiftUp(std::size_t i);
    void sideSiftDown(std::size_t i);
    void insertEntry(const Entry &entry);
    void ensureNear();
    void rescanOverflow();
    const Entry &front();
    void popFront();

    bool nearEmpty() const
    {
        return run_pos_ >= run_len_ && side_.empty();
    }

    std::vector<Entry> run_;   //!< current bucket, sorted
    std::size_t run_pos_ = 0;  //!< consumption cursor into run_
    std::size_t run_len_ = 0;  //!< live prefix of run_ (rest is stale)
    std::vector<Entry> side_;  //!< 4-ary heap: pushes behind epoch_
    std::vector<std::vector<Entry>> buckets_{kNumBuckets};
    std::vector<Entry> overflow_; //!< beyond the wheel horizon
    std::int64_t epoch_ = 0; //!< bucket index consumed into run_
    std::uint64_t next_seq_ = 0;
    std::size_t size_ = 0;
    std::size_t peak_size_ = 0;
    std::size_t peak_bucket_ = 0;
};

} // namespace iceb::sim

#endif // ICEB_SIM_EVENT_QUEUE_HH
