/**
 * @file
 * Discrete-event queue for the cluster simulator.
 *
 * A binary min-heap keyed on (time, sequence) so simultaneous events
 * process in insertion order, which keeps runs deterministic.
 */

#ifndef ICEB_SIM_EVENT_QUEUE_HH
#define ICEB_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace iceb::sim
{

/** Kind of simulation event. */
enum class EventType : std::uint8_t
{
    InvocationArrival, //!< a function request arrives
    IntervalTick,      //!< decision-interval boundary
    PrewarmStart,      //!< a scheduled (Oracle-style) warm-up begins
    PrewarmReady,      //!< container finished setup, becomes idle-warm
    ExecutionComplete, //!< a running invocation finished
    ContainerExpiry,   //!< keep-alive deadline for an idle container
};

/** One simulation event. Fields beyond the key are type-dependent. */
struct Event
{
    TimeMs time = 0;
    std::uint64_t seq = 0; //!< tie-break for determinism
    EventType type = EventType::IntervalTick;

    FunctionId fn = kInvalidFunction;      //!< arrival / prewarm
    ContainerId container = 0;             //!< container events
    IntervalIndex interval = 0;            //!< IntervalTick
    std::uint64_t token = 0;               //!< expiry invalidation
    Tier tier = Tier::HighEnd;             //!< PrewarmStart
    TimeMs expiry = 0;                     //!< PrewarmStart keep-alive
};

/**
 * Deterministic priority queue of events.
 */
class EventQueue
{
  public:
    /** Schedule an event; its seq is assigned here. */
    void push(Event event);

    /** Pop the earliest event, or nullopt when drained. */
    std::optional<Event> pop();

    /** Earliest pending time without popping. */
    std::optional<TimeMs> peekTime() const;

    /** Pending event count. */
    std::size_t size() const { return heap_.size(); }

    bool empty() const { return heap_.empty(); }

  private:
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

} // namespace iceb::sim

#endif // ICEB_SIM_EVENT_QUEUE_HH
