#include "sim/simulator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace iceb::sim
{

SimulatorOptions
SimulatorOptions::forRun(std::uint64_t base_seed, std::uint64_t run_index)
{
    SimulatorOptions options;
    options.seed = deriveSeed(base_seed, run_index);
    return options;
}

Simulator::Simulator(
    const trace::Trace &tr,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : trace_(tr), profiles_(profiles), config_(config), policy_(policy),
      options_(options), metrics_(tr.numFunctions()),
      cluster_(config, profiles, events_, metrics_)
{
    ICEB_ASSERT(profiles_.size() == trace_.numFunctions(),
                "one profile per trace function required");
    ICEB_ASSERT(config_.totalServers() > 0, "cluster has no servers");

    buildArrivalSchedule();

    context_.trace = &trace_;
    context_.profiles = &profiles_;
    context_.cluster = &config_;
    context_.interval_ms = trace_.intervalMs();
    context_.arrival_schedule = &arrival_schedule_;
}

void
Simulator::buildArrivalSchedule()
{
    Rng master(options_.seed);
    const TimeMs interval_ms = trace_.intervalMs();
    arrival_schedule_.resize(trace_.numFunctions());
    arrival_cursor_.assign(trace_.numFunctions(), 0);

    for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
        Rng rng = master.fork(fn);
        const auto &series = trace_.function(fn);
        auto &schedule = arrival_schedule_[fn];
        schedule.reserve(series.totalInvocations());
        for (std::size_t iv = 0; iv < series.concurrency.size(); ++iv) {
            const std::uint32_t count = series.concurrency[iv];
            if (count == 0)
                continue;
            // An interval's invocations form one burst: concurrent
            // requests land within a few seconds of each other (so
            // they genuinely need that many instances), at a jittered
            // offset inside the interval.
            const TimeMs base =
                static_cast<TimeMs>(iv) * interval_ms;
            const TimeMs span =
                std::min<TimeMs>(5000, interval_ms - 1);
            const TimeMs offset = static_cast<TimeMs>(
                rng.uniformInt(0, interval_ms - 1 - span));
            std::vector<TimeMs> times;
            times.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                times.push_back(base + offset +
                                static_cast<TimeMs>(
                                    rng.uniformInt(0, span)));
            }
            std::sort(times.begin(), times.end());
            schedule.insert(schedule.end(), times.begin(), times.end());
        }
    }
}

void
Simulator::pushIntervalArrivals(IntervalIndex interval)
{
    const TimeMs interval_end =
        (static_cast<TimeMs>(interval) + 1) * trace_.intervalMs();
    for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
        const auto &schedule = arrival_schedule_[fn];
        std::size_t &cursor = arrival_cursor_[fn];
        while (cursor < schedule.size() &&
               schedule[cursor] < interval_end) {
            Event event;
            event.time = schedule[cursor];
            event.type = EventType::InvocationArrival;
            event.fn = fn;
            events_.push(event);
            ++cursor;
        }
    }
}

SimulationMetrics
Simulator::run()
{
    policy_.initialize(context_);

    // Interval ticks are scheduled up front so, at equal timestamps,
    // they process before that interval's arrivals (lower sequence
    // numbers win).
    for (std::size_t iv = 0; iv < trace_.numIntervals(); ++iv) {
        Event tick;
        tick.time = static_cast<TimeMs>(iv) * trace_.intervalMs();
        tick.type = EventType::IntervalTick;
        tick.interval = static_cast<IntervalIndex>(iv);
        events_.push(tick);
    }

    while (auto event = events_.pop()) {
        now_ = event->time;
        cluster_.setNow(now_);
        switch (event->type) {
          case EventType::IntervalTick:
            policy_.onIntervalStart(event->interval, cluster_);
            pushIntervalArrivals(event->interval);
            break;
          case EventType::InvocationArrival:
            handleArrival(event->fn, event->time);
            break;
          case EventType::PrewarmStart:
            cluster_.handlePrewarmStart(*event, policy_);
            break;
          case EventType::PrewarmReady:
            cluster_.handlePrewarmReady(*event, policy_);
            drainQueue();
            break;
          case EventType::ExecutionComplete: {
            const Container &c = cluster_.container(event->container);
            const TimeMs keep_alive = policy_.keepAliveAfterExecutionMs(
                c.fn, c.tier, now_);
            cluster_.finishExecution(event->container, keep_alive,
                                     policy_);
            drainQueue();
            break;
          }
          case EventType::ContainerExpiry:
            cluster_.handleContainerExpiry(*event, policy_);
            drainQueue();
            break;
        }
    }

    if (!wait_queue_.empty()) {
        warn("simulation ended with ", wait_queue_.size(),
             " invocations still queued (cluster too small for trace)");
    }
    return metrics_.take();
}

void
Simulator::handleArrival(FunctionId fn, TimeMs arrival)
{
    if (!wait_queue_.empty()) {
        // Preserve FIFO order behind already-waiting invocations.
        wait_queue_.push_back(QueuedInvocation{fn, arrival});
        return;
    }
    if (!tryPlace(fn, arrival))
        wait_queue_.push_back(QueuedInvocation{fn, arrival});
}

bool
Simulator::tryPlace(FunctionId fn, TimeMs arrival)
{
    const std::array<Tier, 2> order = policy_.coldPlacementOrder(fn);

    if (auto acq = cluster_.acquireWarm(fn, order)) {
        startExecution(*acq, fn, arrival);
        return true;
    }
    if (auto acq = cluster_.acquireSetup(fn, order)) {
        if (acq->cold)
            metrics_.recordColdCause(true, true);
        startExecution(*acq, fn, arrival);
        return true;
    }
    const bool had_live = cluster_.liveCount(fn) > 0;
    if (auto acq = cluster_.acquireCold(fn, order, policy_)) {
        metrics_.recordColdCause(false, had_live);
        startExecution(*acq, fn, arrival);
        return true;
    }
    return false;
}

void
Simulator::startExecution(const ClusterState::Acquisition &acq,
                          FunctionId fn, TimeMs arrival)
{
    const workload::FunctionProfile &profile = profiles_[fn];
    const TimeMs exec_ms = profile.execMs(acq.tier);
    const TimeMs exec_start = acq.ready_at;
    const TimeMs exec_end = exec_start + exec_ms;

    cluster_.startExecution(acq.id, exec_end);
    policy_.onExecutionStart(fn, acq.tier, acq.cold, now_);

    Event done;
    done.time = exec_end;
    done.type = EventType::ExecutionComplete;
    done.container = acq.id;
    done.fn = fn;
    events_.push(done);

    InvocationOutcome outcome;
    outcome.fn = fn;
    outcome.tier = acq.tier;
    outcome.cold = acq.cold;
    outcome.arrival = arrival;
    outcome.wait_ms = now_ - arrival;
    outcome.cold_start_ms = acq.cold ? exec_start - now_ : 0;
    outcome.exec_ms = exec_ms;
    outcome.overhead_ms = policy_.overheadMs();
    metrics_.recordInvocation(outcome);
}

void
Simulator::drainQueue()
{
    while (!wait_queue_.empty()) {
        const QueuedInvocation head = wait_queue_.front();
        if (!tryPlace(head.fn, head.arrival))
            break;
        wait_queue_.pop_front();
    }
}

SimulationMetrics
runSimulation(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options)
{
    Simulator sim(tr, profiles, config, policy, options);
    return sim.run();
}

} // namespace iceb::sim
