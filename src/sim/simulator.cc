#include "sim/simulator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/probes.hh"
#include "obs/recorder.hh"
#include "sim/sharded_simulator.hh"

namespace iceb::sim
{

static_assert(kNumEventTypes == 6,
              "EventLoopStats::popped[] indexing assumes 6 event types");

SimulatorOptions
SimulatorOptions::forRun(std::uint64_t base_seed, std::uint64_t run_index)
{
    SimulatorOptions options;
    options.seed = deriveSeed(base_seed, run_index);
    return options;
}

Simulator::Simulator(
    const trace::Trace &tr,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : trace_(tr), profiles_(profiles), config_(config), policy_(policy),
      options_(options), metrics_(tr.numFunctions()),
      cluster_(config, profiles, events_, metrics_, options.hints)
{
    ICEB_ASSERT(profiles_.size() == trace_.numFunctions(),
                "one profile per trace function required");
    ICEB_ASSERT(config_.totalServers() > 0, "cluster has no servers");

    buildArrivalSchedule();

    // All capacity hints apply here, before run(): with hints from a
    // previous run's peaks, run() itself performs no allocations.
    metrics_.reserveSamples(arrival_stream_.size());
    events_.reserve(options_.hints.events,
                    options_.hints.events_per_bucket);
    wait_queue_.reserve(options_.hints.wait_queue);

    context_.num_functions = trace_.numFunctions();
    context_.profiles = &profiles_;
    context_.cluster = &config_;
    context_.interval_ms = trace_.intervalMs();
    context_.recorder = options_.recorder;

    // The privileged view exists only here; start() grants it solely
    // to OfflinePolicy schemes.
    oracle_context_.trace = &trace_;
    oracle_context_.arrival_schedule = &arrival_schedule_;

    observed_counts_.assign(trace_.numFunctions(), 0);

    if (options_.recorder != nullptr) {
        tsink_ = options_.recorder->traceSink();
        probes_ = options_.recorder->probeTable();
        cluster_.setTraceSink(tsink_);
        if (probes_ != nullptr) {
            probes_->reserve(trace_.numIntervals(),
                             trace_.numFunctions());
        }
    }
}

void
Simulator::buildArrivalSchedule()
{
    Rng master(options_.seed);
    const TimeMs interval_ms = trace_.intervalMs();
    arrival_schedule_.resize(trace_.numFunctions());

    std::size_t total_arrivals = 0;
    std::vector<TimeMs> times; // reused across (fn, interval) bursts
    for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
        Rng rng = master.fork(fn);
        const auto &series = trace_.function(fn);
        auto &schedule = arrival_schedule_[fn];
        schedule.reserve(series.totalInvocations());
        total_arrivals += series.totalInvocations();
        for (std::size_t iv = 0; iv < series.concurrency.size(); ++iv) {
            const std::uint32_t count = series.concurrency[iv];
            if (count == 0)
                continue;
            // An interval's invocations form one burst: concurrent
            // requests land within a few seconds of each other (so
            // they genuinely need that many instances), at a jittered
            // offset inside the interval.
            const TimeMs base =
                static_cast<TimeMs>(iv) * interval_ms;
            const TimeMs span =
                std::min<TimeMs>(5000, interval_ms - 1);
            const TimeMs offset = static_cast<TimeMs>(
                rng.uniformInt(0, interval_ms - 1 - span));
            times.clear();
            for (std::uint32_t i = 0; i < count; ++i) {
                times.push_back(base + offset +
                                static_cast<TimeMs>(
                                    rng.uniformInt(0, span)));
            }
            std::sort(times.begin(), times.end());
            schedule.insert(schedule.end(), times.begin(), times.end());
        }
    }

    // Flatten into per-interval blocks in the old push order
    // (function-major, time-sorted within a function), then sort each
    // block by (time, rank) so the run loop can merge it against the
    // event heap front-to-back. Every arrival of interval iv lies in
    // [iv * interval_ms, (iv + 1) * interval_ms), so the blocks
    // partition the schedule exactly as the old per-tick cursor scan
    // consumed it.
    const std::size_t num_intervals = trace_.numIntervals();
    arrival_stream_.reserve(total_arrivals);
    stream_begin_.resize(num_intervals + 1);
    std::vector<std::size_t> cursor(trace_.numFunctions(), 0);
    std::vector<StreamedArrival> scratch; // radix ping-pong buffer
    for (std::size_t iv = 0; iv < num_intervals; ++iv) {
        const std::size_t block_begin = arrival_stream_.size();
        stream_begin_[iv] = block_begin;
        const TimeMs block_base = static_cast<TimeMs>(iv) * interval_ms;
        const TimeMs interval_end = block_base + interval_ms;
        for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
            const auto &schedule = arrival_schedule_[fn];
            std::size_t &pos = cursor[fn];
            while (pos < schedule.size() &&
                   schedule[pos] < interval_end) {
                StreamedArrival arrival;
                arrival.time = schedule[pos];
                arrival.rank = static_cast<std::uint32_t>(
                    arrival_stream_.size() - block_begin);
                arrival.fn = fn;
                arrival_stream_.push_back(arrival);
                ++pos;
            }
        }
        // Sort the block by (time, rank). It is already in rank
        // order, so a STABLE sort keyed on time alone is equivalent;
        // an LSD radix sort over the in-interval offset does that in
        // a few sequential counting passes instead of an O(n log n)
        // comparison sort (this runs once per interval on the
        // simulation construction path).
        const std::size_t n = arrival_stream_.size() - block_begin;
        if (n > 1) {
            scratch.resize(n);
            StreamedArrival *src = arrival_stream_.data() + block_begin;
            StreamedArrival *dst = scratch.data();
            std::uint32_t counts[256];
            for (int shift = 0; (interval_ms - 1) >> shift != 0;
                 shift += 8) {
                std::fill(std::begin(counts), std::end(counts), 0u);
                for (std::size_t i = 0; i < n; ++i) {
                    ++counts[((src[i].time - block_base) >> shift) &
                             0xff];
                }
                std::uint32_t running = 0;
                for (std::uint32_t &count : counts) {
                    const std::uint32_t start = running;
                    running += count;
                    count = start;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    dst[counts[((src[i].time - block_base) >> shift) &
                               0xff]++] = src[i];
                }
                std::swap(src, dst);
            }
            if (src != arrival_stream_.data() + block_begin) {
                std::copy(src, src + n,
                          arrival_stream_.data() + block_begin);
            }
        }
    }
    stream_begin_[num_intervals] = arrival_stream_.size();
}

void
Simulator::openArrivalWindow(IntervalIndex interval)
{
    const std::size_t iv = static_cast<std::size_t>(interval);
    stream_pos_ = stream_begin_[iv];
    stream_end_ = stream_begin_[iv + 1];
    // Claim the sequence numbers the old code's per-arrival pushes
    // would have consumed here, so later pushes (and the merge below)
    // order identically.
    stream_seq_base_ = events_.reserveSeqs(
        static_cast<std::uint64_t>(stream_end_ - stream_pos_));
}

void
Simulator::start()
{
    ICEB_ASSERT(!started_, "Simulator::start() called twice");
    started_ = true;

    policy_.initialize(context_);
    // Only explicitly-offline policies receive the privileged
    // full-trace view; everyone else has no path to it.
    if (auto *offline = dynamic_cast<OfflinePolicy *>(&policy_))
        offline->initializeOracle(oracle_context_);

    // Interval ticks are scheduled up front so, at equal timestamps,
    // they process before that interval's arrivals (lower sequence
    // numbers win).
    for (std::size_t iv = 0; iv < trace_.numIntervals(); ++iv) {
        Event tick;
        tick.time = static_cast<TimeMs>(iv) * trace_.intervalMs();
        tick.type = EventType::IntervalTick;
        tick.interval = static_cast<IntervalIndex>(iv);
        events_.push(tick);
    }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#endif
bool
Simulator::stepImpl(EventLoopStats &stats)
{
    // Merge the open arrival window against the heap by
    // (time, seq); strict ordering because all keys are unique.
    if (stream_pos_ < stream_end_) {
        const StreamedArrival &arrival = arrival_stream_[stream_pos_];
        const std::uint64_t arrival_seq =
            stream_seq_base_ + arrival.rank;
        const auto key = events_.peekKey();
        if (!key || arrival.time < key->time ||
            (arrival.time == key->time && arrival_seq < key->seq)) {
            ++stream_pos_;
            now_ = arrival.time;
            cluster_.setNow(now_);
            ++stats.popped[static_cast<std::size_t>(
                EventType::InvocationArrival)];
            handleArrival(arrival.fn, arrival.time);
            return true;
        }
    }
    auto event = events_.pop();
    if (!event)
        return false;
    cluster_.prefetchContainer(events_.peekContainer());
    now_ = event->time;
    cluster_.setNow(now_);
    ++stats.popped[static_cast<std::size_t>(event->type)];
    switch (event->type) {
      case EventType::IntervalTick:
        ICEB_TRACE(tsink_, obs::TraceKind::IntervalStart, now_,
                   kInvalidFunction, Tier::HighEnd,
                   obs::ColdCause::None,
                   static_cast<std::uint64_t>(event->interval));
        // Sample BEFORE the policy acts: the probe row shows the
        // state the decision saw, not the one it produced.
        if (probes_ != nullptr)
            sampleIntervalProbes(event->interval);
        // Push the closed interval's observations, then let the
        // policy decide. The counts come from the arrivals actually
        // streamed, not from the trace: the policy layer is fed
        // exactly what a live ingest API would have delivered.
        if (event->interval > 0) {
            IntervalObservation closed;
            closed.interval = event->interval - 1;
            closed.arrivals = observed_counts_.data();
            closed.num_functions = observed_counts_.size();
            policy_.onIntervalObserved(closed);
            std::fill(observed_counts_.begin(),
                      observed_counts_.end(), 0u);
        }
        policy_.onIntervalStart(event->interval, cluster_);
        openArrivalWindow(event->interval);
        ++intervals_started_;
        break;
      case EventType::InvocationArrival:
        handleArrival(event->fn, event->time);
        break;
      case EventType::PrewarmStart:
        cluster_.handlePrewarmStart(*event, policy_);
        break;
      case EventType::PrewarmReady:
        cluster_.handlePrewarmReady(*event, policy_);
        drainQueue();
        break;
      case EventType::ExecutionComplete: {
        const Container &c = cluster_.container(event->container);
        const TimeMs keep_alive = policy_.keepAliveAfterExecutionMs(
            c.fn, c.tier, now_);
        cluster_.finishExecution(event->container, keep_alive,
                                 policy_);
        drainQueue();
        break;
      }
      case EventType::ContainerExpiry:
        cluster_.handleContainerExpiry(*event, policy_);
        drainQueue();
        break;
    }
    return true;
}

bool
Simulator::step()
{
    return stepImpl(metrics_.eventLoop());
}

std::optional<TimeMs>
Simulator::nextEventTime()
{
    const auto key = events_.peekKey();
    if (stream_pos_ < stream_end_) {
        const TimeMs arrival_time = arrival_stream_[stream_pos_].time;
        if (!key || arrival_time < key->time)
            return arrival_time;
        return key->time;
    }
    if (!key)
        return std::nullopt;
    return key->time;
}

SimulationMetrics
Simulator::finish()
{
    EventLoopStats &stats = metrics_.eventLoop();
    if (events_.peakSize() > stats.peak_pending_events)
        stats.peak_pending_events = events_.peakSize();
    if (events_.peakBucket() > stats.peak_bucket_events)
        stats.peak_bucket_events = events_.peakBucket();

    if (waitCount() > 0) {
        warn("simulation ended with ", waitCount(),
             " invocations still queued (cluster too small for trace)");
    }
    return metrics_.take();
}

SimulationMetrics
Simulator::run()
{
    start();
    EventLoopStats &stats = metrics_.eventLoop();
    while (stepImpl(stats)) {
    }
    return finish();
}

void
Simulator::pushWaiting(FunctionId fn, TimeMs arrival)
{
    wait_queue_.push_back(QueuedInvocation{fn, arrival});
    ICEB_TRACE(tsink_, obs::TraceKind::Enqueued, now_, fn,
               Tier::HighEnd, obs::ColdCause::None,
               static_cast<std::uint64_t>(waitCount()));
    // Peak *storage* length (head offset + population), so reserving
    // it as a hint guarantees an allocation-free repeat run.
    EventLoopStats &stats = metrics_.eventLoop();
    if (wait_queue_.size() > stats.peak_wait_queue)
        stats.peak_wait_queue = wait_queue_.size();
}

void
Simulator::popWaiting()
{
    ++wait_head_;
    if (wait_head_ == wait_queue_.size()) {
        wait_queue_.clear();
        wait_head_ = 0;
    } else if (wait_head_ >= 1024 &&
               wait_head_ * 2 >= wait_queue_.size()) {
        // Slide the live tail down so the vector's length stays
        // proportional to the queue's population (erase reuses the
        // existing capacity; amortised O(1) per pop).
        wait_queue_.erase(wait_queue_.begin(),
                          wait_queue_.begin() +
                              static_cast<std::ptrdiff_t>(wait_head_));
        wait_head_ = 0;
    }
}

void
Simulator::handleArrival(FunctionId fn, TimeMs arrival)
{
    ICEB_TRACE(tsink_, obs::TraceKind::Arrival, arrival, fn,
               Tier::HighEnd, obs::ColdCause::None, 0);
    ++observed_counts_[fn];
    if (waitCount() > 0) {
        // Preserve FIFO order behind already-waiting invocations.
        pushWaiting(fn, arrival);
        return;
    }
    if (!tryPlace(fn, arrival))
        pushWaiting(fn, arrival);
}

bool
Simulator::tryPlace(FunctionId fn, TimeMs arrival)
{
    const std::array<Tier, 2> order = policy_.coldPlacementOrder(fn);

    if (auto acq = cluster_.acquireWarm(fn, order)) {
        startExecution(*acq, fn, arrival, obs::ColdCause::None);
        return true;
    }
    if (auto acq = cluster_.acquireSetup(fn, order)) {
        if (acq->cold)
            metrics_.recordColdCause(true, true);
        startExecution(*acq, fn, arrival,
                       acq->cold ? obs::ColdCause::SetupAttach
                                 : obs::ColdCause::None);
        return true;
    }
    const bool had_live = cluster_.liveCount(fn) > 0;
    if (auto acq = cluster_.acquireCold(fn, order, policy_)) {
        metrics_.recordColdCause(false, had_live);
        startExecution(*acq, fn, arrival,
                       had_live ? obs::ColdCause::AllBusy
                                : obs::ColdCause::NoContainer);
        return true;
    }
    return false;
}

void
Simulator::startExecution(const ClusterState::Acquisition &acq,
                          FunctionId fn, TimeMs arrival,
                          obs::ColdCause cause)
{
    const workload::FunctionProfile &profile = profiles_[fn];
    const TimeMs exec_ms = profile.execMs(acq.tier);
    const TimeMs exec_start = acq.ready_at;
    const TimeMs exec_end = exec_start + exec_ms;

    cluster_.startExecution(acq.id, exec_end);
    policy_.onExecutionStart(fn, acq.tier, acq.cold, now_);

    Event done;
    done.time = exec_end;
    done.type = EventType::ExecutionComplete;
    done.container = acq.id;
    done.fn = fn;
    events_.push(done);

    InvocationOutcome outcome;
    outcome.fn = fn;
    outcome.tier = acq.tier;
    outcome.cold = acq.cold;
    outcome.arrival = arrival;
    outcome.wait_ms = now_ - arrival;
    outcome.cold_start_ms = acq.cold ? exec_start - now_ : 0;
    outcome.exec_ms = exec_ms;
    outcome.overhead_ms = policy_.overheadMs();
    metrics_.recordInvocation(outcome);

    if (outcome.cold) {
        ICEB_TRACE(tsink_, obs::TraceKind::ColdStart, now_, fn, acq.tier,
                   cause,
                   static_cast<std::uint64_t>(outcome.cold_start_ms));
    } else {
        ICEB_TRACE(tsink_, obs::TraceKind::WarmStart, now_, fn, acq.tier,
                   obs::ColdCause::None,
                   static_cast<std::uint64_t>(exec_ms));
    }
}

void
Simulator::sampleIntervalProbes(IntervalIndex interval)
{
    obs::IntervalSample sample;
    sample.interval = static_cast<std::uint32_t>(interval);
    sample.time = now_;
    cluster_.sampleOccupancy(sample.idle_warm, sample.in_setup);
    const SimulationMetrics &accrued = metrics_.current();
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        const auto tier = static_cast<Tier>(t);
        sample.total_mb[t] = cluster_.totalMemoryMb(tier);
        sample.used_mb[t] =
            sample.total_mb[t] - cluster_.vacantMemoryMb(tier);
        sample.keep_alive_cost[t] = accrued.keep_alive[t].totalCost();
    }
    sample.wait_queue = static_cast<std::int64_t>(waitCount());
    probes_->addIntervalSample(sample);
}

void
Simulator::drainQueue()
{
    while (waitCount() > 0) {
        const QueuedInvocation head = wait_queue_[wait_head_];
        if (!tryPlace(head.fn, head.arrival))
            break;
        popWaiting();
    }
}

SimulationMetrics
runSimulation(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options)
{
    if (options.shards > 0) {
        ShardedSimulator sim(tr, profiles, config, policy, options);
        return sim.run();
    }
    Simulator sim(tr, profiles, config, policy, options);
    return sim.run();
}

} // namespace iceb::sim
