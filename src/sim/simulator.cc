#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/probes.hh"
#include "obs/recorder.hh"
#include "sim/sharded_simulator.hh"

namespace iceb::sim
{

static_assert(kNumEventTypes == 6,
              "EventLoopStats::popped[] indexing assumes 6 event types");

SimulatorOptions
SimulatorOptions::forRun(std::uint64_t base_seed, std::uint64_t run_index)
{
    SimulatorOptions options;
    options.seed = deriveSeed(base_seed, run_index);
    return options;
}

Simulator::Simulator(
    const trace::Trace &tr,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : Simulator(
          std::make_unique<MaterializedTraceSource>(tr, options.seed),
          nullptr, profiles, config, policy, options)
{
}

Simulator::Simulator(
    TraceSource &source,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : Simulator(nullptr, &source, profiles, config, policy, options)
{
}

Simulator::Simulator(
    std::unique_ptr<TraceSource> owned, TraceSource *external,
    const std::vector<workload::FunctionProfile> &profiles,
    const ClusterConfig &config, Policy &policy, SimulatorOptions options)
    : owned_source_(std::move(owned)),
      source_(owned_source_ != nullptr ? owned_source_.get() : external),
      profiles_(profiles), config_(config), policy_(policy),
      options_(options), num_functions_(source_->numFunctions()),
      num_intervals_(source_->numIntervals()),
      interval_ms_(source_->intervalMs()), metrics_(num_functions_),
      cluster_(config, profiles, events_, metrics_, options.hints)
{
    ICEB_ASSERT(profiles_.size() == num_functions_,
                "one profile per workload function required");
    ICEB_ASSERT(config_.totalServers() > 0, "cluster has no servers");

    // All capacity hints apply here, before run(): with hints from a
    // previous run's peaks, run() itself performs no allocations.
    metrics_.reserveSamples(
        static_cast<std::size_t>(source_->totalArrivals()));
    events_.reserve(options_.hints.events,
                    options_.hints.events_per_bucket);
    wait_queue_.reserve(options_.hints.wait_queue);

    context_.num_functions = num_functions_;
    context_.profiles = &profiles_;
    context_.cluster = &config_;
    context_.interval_ms = interval_ms_;
    context_.recorder = options_.recorder;

    // The privileged view exists only for materialized sources;
    // start() grants it solely to OfflinePolicy schemes (and refuses
    // a streamed run, which has nothing to grant).
    oracle_context_.trace = source_->trace();
    oracle_context_.arrival_schedule = source_->arrivalSchedule();

    observed_counts_.assign(num_functions_, 0);

    if (options_.recorder != nullptr) {
        tsink_ = options_.recorder->traceSink();
        probes_ = options_.recorder->probeTable();
        hists_ = options_.recorder->histograms();
        cluster_.setTraceSink(tsink_);
        if (probes_ != nullptr)
            probes_->reserve(num_intervals_, num_functions_);
    } else {
        // Direct overrides: how the sharded coordinator threads each
        // cell's private ring / histogram set through (probes stay
        // coordinator-sampled at the barrier).
        tsink_ = options_.trace_sink;
        hists_ = options_.histograms;
        cluster_.setTraceSink(tsink_);
    }
}

/** Wall-clock µs elapsed since @p t0 (wall-timing histograms only). */
static std::uint64_t
wallUsSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(dt);
    return us.count() > 0 ? static_cast<std::uint64_t>(us.count()) : 0;
}

void
Simulator::openArrivalWindow(IntervalIndex interval)
{
    window_ = source_->intervalWindow(interval);
    window_pos_ = 0;
    // Claim the sequence numbers the old code's per-arrival pushes
    // would have consumed here, so later pushes (and the merge below)
    // order identically.
    stream_seq_base_ =
        events_.reserveSeqs(static_cast<std::uint64_t>(window_.size));
}

void
Simulator::start()
{
    ICEB_ASSERT(!started_, "Simulator::start() called twice");
    started_ = true;

    policy_.initialize(context_);
    // Only explicitly-offline policies receive the privileged
    // full-trace view; everyone else has no path to it. A streamed
    // workload has no full trace to grant at all.
    if (auto *offline = dynamic_cast<OfflinePolicy *>(&policy_)) {
        if (oracle_context_.trace == nullptr) {
            fatal("offline (oracle) scheme '", policy_.name(),
                  "' needs a materialized trace; a streamed workload "
                  "cannot grant the privileged full-trace view");
        }
        offline->initializeOracle(oracle_context_);
    }

    source_->beginRun();

    // Interval ticks are scheduled up front so, at equal timestamps,
    // they process before that interval's arrivals (lower sequence
    // numbers win).
    for (std::size_t iv = 0; iv < num_intervals_; ++iv) {
        Event tick;
        tick.time = static_cast<TimeMs>(iv) * interval_ms_;
        tick.type = EventType::IntervalTick;
        tick.interval = static_cast<IntervalIndex>(iv);
        events_.push(tick);
    }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline)) inline
#endif
bool
Simulator::stepImpl(EventLoopStats &stats)
{
    // Merge the open arrival window against the heap by
    // (time, seq); strict ordering because all keys are unique.
    if (window_pos_ < window_.size) {
        const ArrivalRecord &arrival = window_.data[window_pos_];
        const std::uint64_t arrival_seq =
            stream_seq_base_ + arrival.rank;
        const auto key = events_.peekKey();
        if (!key || arrival.time < key->time ||
            (arrival.time == key->time && arrival_seq < key->seq)) {
            ++window_pos_;
            now_ = arrival.time;
            cluster_.setNow(now_);
            ++stats.popped[static_cast<std::size_t>(
                EventType::InvocationArrival)];
            handleArrival(arrival.fn, arrival.time);
            return true;
        }
    }
    auto event = events_.pop();
    if (!event)
        return false;
    cluster_.prefetchContainer(events_.peekContainer());
    now_ = event->time;
    cluster_.setNow(now_);
    ++stats.popped[static_cast<std::size_t>(event->type)];
    switch (event->type) {
      case EventType::IntervalTick:
        ICEB_TRACE(tsink_, obs::TraceKind::IntervalStart, now_,
                   kInvalidFunction, Tier::HighEnd,
                   obs::ColdCause::None,
                   static_cast<std::uint64_t>(event->interval));
        // Sample BEFORE the policy acts: the probe row shows the
        // state the decision saw, not the one it produced.
        if (probes_ != nullptr)
            sampleIntervalProbes(event->interval);
        // Push the closed interval's observations, then let the
        // policy decide. The counts come from the arrivals actually
        // streamed, not from the trace: the policy layer is fed
        // exactly what a live ingest API would have delivered.
        {
            // Wall timers are opt-in (non-deterministic values) and
            // per-interval, so this stays off the per-event hot path.
            const bool wall = hists_ != nullptr && hists_->wall_timing;
            if (event->interval > 0) {
                IntervalObservation closed;
                closed.interval = event->interval - 1;
                closed.arrivals = observed_counts_.data();
                closed.num_functions = observed_counts_.size();
                if (wall) {
                    const auto t0 = std::chrono::steady_clock::now();
                    policy_.onIntervalObserved(closed);
                    hists_->forecast_wall_us.record(wallUsSince(t0));
                } else {
                    policy_.onIntervalObserved(closed);
                }
                std::fill(observed_counts_.begin(),
                          observed_counts_.end(), 0u);
            }
            if (wall) {
                const auto t0 = std::chrono::steady_clock::now();
                policy_.onIntervalStart(event->interval, cluster_);
                hists_->decision_wall_us.record(wallUsSince(t0));
            } else {
                policy_.onIntervalStart(event->interval, cluster_);
            }
        }
        openArrivalWindow(event->interval);
        ++intervals_started_;
        break;
      case EventType::InvocationArrival:
        handleArrival(event->fn, event->time);
        break;
      case EventType::PrewarmStart:
        cluster_.handlePrewarmStart(*event, policy_);
        break;
      case EventType::PrewarmReady:
        cluster_.handlePrewarmReady(*event, policy_);
        drainQueue();
        break;
      case EventType::ExecutionComplete: {
        const Container &c = cluster_.container(event->container);
        const TimeMs keep_alive = policy_.keepAliveAfterExecutionMs(
            c.fn, c.tier, now_);
        cluster_.finishExecution(event->container, keep_alive,
                                 policy_);
        drainQueue();
        break;
      }
      case EventType::ContainerExpiry:
        cluster_.handleContainerExpiry(*event, policy_);
        drainQueue();
        break;
    }
    return true;
}

bool
Simulator::step()
{
    return stepImpl(metrics_.eventLoop());
}

std::optional<TimeMs>
Simulator::nextEventTime()
{
    const auto key = events_.peekKey();
    if (window_pos_ < window_.size) {
        const TimeMs arrival_time = window_.data[window_pos_].time;
        if (!key || arrival_time < key->time)
            return arrival_time;
        return key->time;
    }
    if (!key)
        return std::nullopt;
    return key->time;
}

SimulationMetrics
Simulator::finish()
{
    EventLoopStats &stats = metrics_.eventLoop();
    if (events_.peakSize() > stats.peak_pending_events)
        stats.peak_pending_events = events_.peakSize();
    if (events_.peakBucket() > stats.peak_bucket_events)
        stats.peak_bucket_events = events_.peakBucket();

    if (waitCount() > 0) {
        warn("simulation ended with ", waitCount(),
             " invocations still queued (cluster too small for trace)");
    }
    return metrics_.take();
}

SimulationMetrics
Simulator::run()
{
    start();
    EventLoopStats &stats = metrics_.eventLoop();
    while (stepImpl(stats)) {
    }
    return finish();
}

void
Simulator::pushWaiting(FunctionId fn, TimeMs arrival)
{
    wait_queue_.push_back(QueuedInvocation{fn, arrival});
    ICEB_TRACE(tsink_, obs::TraceKind::Enqueued, now_, fn,
               Tier::HighEnd, obs::ColdCause::None,
               static_cast<std::uint64_t>(waitCount()));
    // Peak *storage* length (head offset + population), so reserving
    // it as a hint guarantees an allocation-free repeat run.
    EventLoopStats &stats = metrics_.eventLoop();
    if (wait_queue_.size() > stats.peak_wait_queue)
        stats.peak_wait_queue = wait_queue_.size();
}

void
Simulator::popWaiting()
{
    ++wait_head_;
    if (wait_head_ == wait_queue_.size()) {
        wait_queue_.clear();
        wait_head_ = 0;
    } else if (wait_head_ >= 1024 &&
               wait_head_ * 2 >= wait_queue_.size()) {
        // Slide the live tail down so the vector's length stays
        // proportional to the queue's population (erase reuses the
        // existing capacity; amortised O(1) per pop).
        wait_queue_.erase(wait_queue_.begin(),
                          wait_queue_.begin() +
                              static_cast<std::ptrdiff_t>(wait_head_));
        wait_head_ = 0;
    }
}

void
Simulator::handleArrival(FunctionId fn, TimeMs arrival)
{
    ICEB_TRACE(tsink_, obs::TraceKind::Arrival, arrival, fn,
               Tier::HighEnd, obs::ColdCause::None, 0);
    ++observed_counts_[fn];
    if (waitCount() > 0) {
        // Preserve FIFO order behind already-waiting invocations.
        pushWaiting(fn, arrival);
        return;
    }
    if (!tryPlace(fn, arrival))
        pushWaiting(fn, arrival);
}

bool
Simulator::tryPlace(FunctionId fn, TimeMs arrival)
{
    const std::array<Tier, 2> order = policy_.coldPlacementOrder(fn);

    if (auto acq = cluster_.acquireWarm(fn, order)) {
        startExecution(*acq, fn, arrival, obs::ColdCause::None);
        return true;
    }
    if (auto acq = cluster_.acquireSetup(fn, order)) {
        if (acq->cold)
            metrics_.recordColdCause(true, true);
        startExecution(*acq, fn, arrival,
                       acq->cold ? obs::ColdCause::SetupAttach
                                 : obs::ColdCause::None);
        return true;
    }
    const bool had_live = cluster_.liveCount(fn) > 0;
    if (auto acq = cluster_.acquireCold(fn, order, policy_)) {
        metrics_.recordColdCause(false, had_live);
        startExecution(*acq, fn, arrival,
                       had_live ? obs::ColdCause::AllBusy
                                : obs::ColdCause::NoContainer);
        return true;
    }
    return false;
}

void
Simulator::startExecution(const ClusterState::Acquisition &acq,
                          FunctionId fn, TimeMs arrival,
                          obs::ColdCause cause)
{
    const workload::FunctionProfile &profile = profiles_[fn];
    const TimeMs exec_ms = profile.execMs(acq.tier);
    const TimeMs exec_start = acq.ready_at;
    const TimeMs exec_end = exec_start + exec_ms;

    cluster_.startExecution(acq.id, exec_end);
    policy_.onExecutionStart(fn, acq.tier, acq.cold, now_);

    Event done;
    done.time = exec_end;
    done.type = EventType::ExecutionComplete;
    done.container = acq.id;
    done.fn = fn;
    events_.push(done);

    InvocationOutcome outcome;
    outcome.fn = fn;
    outcome.tier = acq.tier;
    outcome.cold = acq.cold;
    outcome.arrival = arrival;
    outcome.wait_ms = now_ - arrival;
    outcome.cold_start_ms = acq.cold ? exec_start - now_ : 0;
    outcome.exec_ms = exec_ms;
    outcome.overhead_ms = policy_.overheadMs();
    metrics_.recordInvocation(outcome);

    if (hists_ != nullptr) {
        const auto t = static_cast<std::size_t>(tierIndex(acq.tier));
        hists_->wait_queue_ms[t].record(
            static_cast<std::uint64_t>(outcome.wait_ms));
        if (outcome.cold) {
            // "Setup time" is the latency of attaching to an
            // in-setup container (a warm-up that landed late); a true
            // cold start pays the full cold penalty.
            auto &h = cause == obs::ColdCause::SetupAttach
                ? hists_->setup_attach_ms[t]
                : hists_->cold_start_ms[t];
            h.record(static_cast<std::uint64_t>(outcome.cold_start_ms));
        }
    }

    if (outcome.cold) {
        ICEB_TRACE(tsink_, obs::TraceKind::ColdStart, now_, fn, acq.tier,
                   cause,
                   static_cast<std::uint64_t>(outcome.cold_start_ms));
    } else {
        ICEB_TRACE(tsink_, obs::TraceKind::WarmStart, now_, fn, acq.tier,
                   obs::ColdCause::None,
                   static_cast<std::uint64_t>(exec_ms));
    }
}

void
Simulator::sampleIntervalProbes(IntervalIndex interval)
{
    obs::IntervalSample sample;
    sample.interval = static_cast<std::uint32_t>(interval);
    sample.time = now_;
    cluster_.sampleOccupancy(sample.idle_warm, sample.in_setup);
    const SimulationMetrics &accrued = metrics_.current();
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        const auto tier = static_cast<Tier>(t);
        sample.total_mb[t] = cluster_.totalMemoryMb(tier);
        sample.used_mb[t] =
            sample.total_mb[t] - cluster_.vacantMemoryMb(tier);
        sample.keep_alive_cost[t] = accrued.keep_alive[t].totalCost();
    }
    sample.wait_queue = static_cast<std::int64_t>(waitCount());
    probes_->addIntervalSample(sample);
}

LiveCounters
Simulator::liveCounters() const
{
    const SimulationMetrics &m = metrics_.current();
    LiveCounters c;
    c.invocations = m.invocations;
    c.cold_starts = m.cold_starts;
    c.warm_starts = m.warm_starts;
    c.wait_queue = static_cast<std::int64_t>(waitCount());
    for (std::size_t t = 0; t < kNumTiers; ++t)
        c.keep_alive_cost[t] = m.keep_alive[t].totalCost();
    return c;
}

void
Simulator::drainQueue()
{
    while (waitCount() > 0) {
        const QueuedInvocation head = wait_queue_[wait_head_];
        if (!tryPlace(head.fn, head.arrival))
            break;
        popWaiting();
    }
}

SimulationMetrics
runSimulation(const trace::Trace &tr,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options)
{
    if (options.shards > 0) {
        ShardedSimulator sim(tr, profiles, config, policy, options);
        return sim.run();
    }
    Simulator sim(tr, profiles, config, policy, options);
    return sim.run();
}

SimulationMetrics
runSimulation(TraceSource &source,
              const std::vector<workload::FunctionProfile> &profiles,
              const ClusterConfig &config, Policy &policy,
              SimulatorOptions options)
{
    if (options.shards > 0) {
        ShardedSimulator sim(source, profiles, config, policy, options);
        return sim.run();
    }
    Simulator sim(source, profiles, config, policy, options);
    return sim.run();
}

} // namespace iceb::sim
