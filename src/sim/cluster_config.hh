/**
 * @file
 * Cluster composition and the paper's budget-constant sweeps.
 *
 * The paper's default setup splits a fixed capital budget equally
 * between tiers (10 high-end + 18 low-end servers) and sweeps eleven
 * compositions from 20 high-end/0 low-end to 0/35 at constant capital
 * cost (Fig. 12), plus a sensitivity sweep over the high/low cost
 * ratio (Fig. 13).
 */

#ifndef ICEB_SIM_CLUSTER_CONFIG_HH
#define ICEB_SIM_CLUSTER_CONFIG_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"

namespace iceb::sim
{

/** Static description of one server tier. */
struct TierSpec
{
    Tier tier = Tier::HighEnd;
    std::size_t server_count = 0;
    MemoryMb memory_per_server_mb = 0;

    /** Keep-alive rate in $/GB/hour (AWS-style quote). */
    double dollars_per_gb_hour = 0.0;

    /** Relative capital cost of one server (low-end = 1.0). */
    double capital_cost = 1.0;

    /** Aggregate tier memory. */
    MemoryMb totalMemoryMb() const
    {
        return static_cast<MemoryMb>(server_count) * memory_per_server_mb;
    }
};

/** A full cluster composition. */
struct ClusterConfig
{
    std::string name;
    std::array<TierSpec, kNumTiers> tiers;

    /** Tier spec by tier. */
    const TierSpec &spec(Tier tier) const
    {
        return tiers[static_cast<std::size_t>(tierIndex(tier))];
    }
    TierSpec &spec(Tier tier)
    {
        return tiers[static_cast<std::size_t>(tierIndex(tier))];
    }

    /** Total capital cost across tiers (low-end server = 1 unit). */
    double totalCapitalCost() const;

    /** Total memory across tiers. */
    MemoryMb totalMemoryMb() const;

    /** Total server count. */
    std::size_t totalServers() const;

    /** True when only one tier has servers. */
    bool homogeneous() const;
};

/**
 * The paper's default heterogeneous cluster: 10 high-end + 18 low-end
 * servers, high-end rate $0.01475/GB/h (m5n-like), low-end rate
 * $0.0084/GB/h (t4g-like), capital cost ratio 1.75x, 32 GB / 24 GB of
 * memory per server so the low-end tier provides more aggregate
 * memory per capital dollar.
 */
ClusterConfig defaultHeterogeneousCluster();

/** Homogeneous endpoints of the Fig. 12 sweep at equal capital cost. */
ClusterConfig homogeneousHighEndCluster();
ClusterConfig homogeneousLowEndCluster();

/**
 * The Fig. 12 sweep: eleven compositions from 20/0 to 0/35 high/low
 * servers at (approximately, due to integer server counts) constant
 * capital cost.
 */
std::vector<ClusterConfig> budgetConstantSweep();

/**
 * A default-shaped cluster with the high-end keep-alive rate scaled
 * to the given cost ratio over low-end (Fig. 13; paper sweeps
 * ~1.23x - 2.4x). Capital cost ratio follows the rate ratio and server
 * counts are rebalanced to keep the equal-budget split.
 */
ClusterConfig clusterWithCostRatio(double cost_ratio);

} // namespace iceb::sim

#endif // ICEB_SIM_CLUSTER_CONFIG_HH
