#include "sim/cluster_config.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::sim
{

namespace
{

constexpr double kHighRate = 0.01475; //!< $/GB/h, AWS m5n-like
constexpr double kLowRate = 0.0084;   //!< $/GB/h, AWS t4g-like
constexpr double kHighCapital = 1.75; //!< capital cost ratio vs low-end
constexpr MemoryMb kHighMemoryMb = 32 * kMbPerGb;
constexpr MemoryMb kLowMemoryMb = 24 * kMbPerGb;
constexpr double kBudgetUnits = 35.0; //!< = 20 high-end servers

TierSpec
highSpec(std::size_t count)
{
    TierSpec spec;
    spec.tier = Tier::HighEnd;
    spec.server_count = count;
    spec.memory_per_server_mb = kHighMemoryMb;
    spec.dollars_per_gb_hour = kHighRate;
    spec.capital_cost = kHighCapital;
    return spec;
}

TierSpec
lowSpec(std::size_t count)
{
    TierSpec spec;
    spec.tier = Tier::LowEnd;
    spec.server_count = count;
    spec.memory_per_server_mb = kLowMemoryMb;
    spec.dollars_per_gb_hour = kLowRate;
    spec.capital_cost = 1.0;
    return spec;
}

ClusterConfig
makeCluster(std::string name, std::size_t high, std::size_t low)
{
    ClusterConfig config;
    config.name = std::move(name);
    config.spec(Tier::HighEnd) = highSpec(high);
    config.spec(Tier::LowEnd) = lowSpec(low);
    return config;
}

} // namespace

double
ClusterConfig::totalCapitalCost() const
{
    double total = 0.0;
    for (const auto &t : tiers)
        total += t.capital_cost * static_cast<double>(t.server_count);
    return total;
}

MemoryMb
ClusterConfig::totalMemoryMb() const
{
    MemoryMb total = 0;
    for (const auto &t : tiers)
        total += t.totalMemoryMb();
    return total;
}

std::size_t
ClusterConfig::totalServers() const
{
    std::size_t total = 0;
    for (const auto &t : tiers)
        total += t.server_count;
    return total;
}

bool
ClusterConfig::homogeneous() const
{
    std::size_t populated = 0;
    for (const auto &t : tiers)
        if (t.server_count > 0)
            ++populated;
    return populated <= 1;
}

ClusterConfig
defaultHeterogeneousCluster()
{
    // Equal budget split: 10 high-end = 17.5 units, 18 low-end = 18.
    return makeCluster("10H+18L (default)", 10, 18);
}

ClusterConfig
homogeneousHighEndCluster()
{
    return makeCluster("20H+0L (homogeneous high)", 20, 0);
}

ClusterConfig
homogeneousLowEndCluster()
{
    return makeCluster("0H+35L (homogeneous low)", 0, 35);
}

std::vector<ClusterConfig>
budgetConstantSweep()
{
    std::vector<ClusterConfig> sweep;
    for (int high = 20; high >= 0; high -= 2) {
        const double remaining =
            kBudgetUnits - kHighCapital * static_cast<double>(high);
        const auto low = static_cast<std::size_t>(
            std::llround(std::max(0.0, remaining)));
        sweep.push_back(makeCluster(
            std::to_string(high) + "H+" + std::to_string(low) + "L",
            static_cast<std::size_t>(high), low));
    }
    ICEB_ASSERT(sweep.size() == 11, "Fig. 12 sweep must have 11 configs");
    return sweep;
}

ClusterConfig
clusterWithCostRatio(double cost_ratio)
{
    ICEB_ASSERT(cost_ratio >= 1.0, "high-end must cost at least low-end");
    // Re-split the same 35-unit budget equally at the new capital
    // ratio: high count = budget/2 / ratio, low count = budget/2.
    const auto high = static_cast<std::size_t>(
        std::llround(kBudgetUnits / 2.0 / cost_ratio));
    const auto low = static_cast<std::size_t>(
        std::llround(kBudgetUnits / 2.0));
    ClusterConfig config = makeCluster(
        "ratio-" + std::to_string(cost_ratio), high, low);
    config.spec(Tier::HighEnd).capital_cost = cost_ratio;
    config.spec(Tier::HighEnd).dollars_per_gb_hour = kLowRate * cost_ratio;
    return config;
}

} // namespace iceb::sim
