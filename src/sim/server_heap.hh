/**
 * @file
 * Indexed per-tier max-heap over server free memory.
 *
 * Replaces the worst-fit linear scan: the root is always the server
 * placement would pick -- most free memory, ties broken towards the
 * lowest ServerId, which is exactly the "first maximum in id order"
 * the old strict-greater scan returned (so figure outputs stay
 * byte-identical). Every free_mb change re-sifts that one server in
 * O(log n) via a position index, so eviction loops no longer rescan
 * the whole tier per victim.
 *
 * The heap stores ServerIds and reads free_mb out of the shared
 * server table; the cluster must call update(sid) after every
 * allocation or release on that server.
 */

#ifndef ICEB_SIM_SERVER_HEAP_HH
#define ICEB_SIM_SERVER_HEAP_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace iceb::sim
{

struct Server; // cluster.hh owns the definition

/**
 * @tparam ServerTable Random-access container of Server (free_mb, id).
 * Templated only to avoid a circular include with cluster.hh.
 */
template <typename ServerTable>
class ServerFreeHeapT
{
  public:
    /**
     * Build the heap over @p members (one tier's ServerIds). @p pos_size
     * must cover the largest ServerId in the whole cluster, since the
     * position index is keyed by global id.
     */
    void init(const std::vector<ServerId> &members,
              const ServerTable &servers, std::size_t pos_size)
    {
        heap_ = members;
        pos_.assign(pos_size, kNpos);
        for (std::size_t i = 0; i < heap_.size(); ++i)
            pos_[heap_[i]] = static_cast<std::uint32_t>(i);
        // All servers start at full (equal) capacity, so sifting each
        // one up yields the id-ordered layout directly; still, build
        // bottom-up for generality.
        for (std::size_t i = heap_.size(); i-- > 0;)
            siftDown(i, servers);
    }

    bool empty() const { return heap_.empty(); }

    /** The server placement would pick, or kInvalidServer. */
    ServerId top() const
    {
        return heap_.empty() ? kInvalidServer : heap_[0];
    }

    /** Re-sift @p sid after its free_mb changed. */
    void update(ServerId sid, const ServerTable &servers)
    {
        const std::uint32_t i = pos_[sid];
        ICEB_ASSERT(i != kNpos, "server not in this tier's heap");
        if (!siftUp(i, servers))
            siftDown(i, servers);
    }

  private:
    static constexpr std::uint32_t kNpos = 0xffff'ffffu;

    /** True when @p a belongs above @p b. */
    bool above(const ServerTable &servers, ServerId a, ServerId b) const
    {
        const auto &sa = servers[a];
        const auto &sb = servers[b];
        if (sa.free_mb != sb.free_mb)
            return sa.free_mb > sb.free_mb;
        return a < b;
    }

    bool siftUp(std::size_t i, const ServerTable &servers)
    {
        bool moved = false;
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!above(servers, heap_[i], heap_[parent]))
                break;
            swapAt(i, parent);
            i = parent;
            moved = true;
        }
        return moved;
    }

    void siftDown(std::size_t i, const ServerTable &servers)
    {
        const std::size_t n = heap_.size();
        while (true) {
            std::size_t best = i;
            const std::size_t left = 2 * i + 1;
            const std::size_t right = left + 1;
            if (left < n && above(servers, heap_[left], heap_[best]))
                best = left;
            if (right < n && above(servers, heap_[right], heap_[best]))
                best = right;
            if (best == i)
                return;
            swapAt(i, best);
            i = best;
        }
    }

    void swapAt(std::size_t a, std::size_t b)
    {
        std::swap(heap_[a], heap_[b]);
        pos_[heap_[a]] = static_cast<std::uint32_t>(a);
        pos_[heap_[b]] = static_cast<std::uint32_t>(b);
    }

    std::vector<ServerId> heap_;
    std::vector<std::uint32_t> pos_; //!< heap position by global ServerId
};

} // namespace iceb::sim

#endif // ICEB_SIM_SERVER_HEAP_HH
