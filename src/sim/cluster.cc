#include "sim/cluster.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::sim
{

ClusterState::ClusterState(
    const ClusterConfig &config,
    const std::vector<workload::FunctionProfile> &profiles,
    EventQueue &events, MetricsCollector &metrics,
    const SimCapacityHints &hints)
    : config_(config), profiles_(profiles), events_(events),
      metrics_(metrics)
{
    pools_.resize(profiles_.size());
    live_per_fn_.assign(profiles_.size(), 0);
    for (int t = 0; t < kNumTiers; ++t) {
        const auto tier = static_cast<Tier>(t);
        const TierSpec &spec = config_.spec(tier);
        rate_mb_ms_[static_cast<std::size_t>(t)] =
            dollarsPerGbHourToMbMs(spec.dollars_per_gb_hour);
        for (std::size_t i = 0; i < spec.server_count; ++i) {
            Server server;
            server.id = static_cast<ServerId>(servers_.size());
            server.tier = tier;
            server.capacity_mb = spec.memory_per_server_mb;
            server.free_mb = spec.memory_per_server_mb;
            tier_servers_[static_cast<std::size_t>(t)].push_back(
                server.id);
            servers_.push_back(server);
            tier_free_[static_cast<std::size_t>(t)] +=
                spec.memory_per_server_mb;
        }
    }
    for (int t = 0; t < kNumTiers; ++t) {
        server_heaps_[static_cast<std::size_t>(t)].init(
            tier_servers_[static_cast<std::size_t>(t)], servers_,
            servers_.size());
    }

    containers_.reserve(hints.containers);
    expiry_stamps_.reserve(hints.containers);
    for (auto &heap : evict_heaps_)
        heap.reserve(hints.evict_entries);
    evict_high_water_.fill(-std::numeric_limits<double>::infinity());
    evict_spared_.reserve(hints.evict_entries);
}

const workload::FunctionProfile &
ClusterState::profileOf(FunctionId fn) const
{
    ICEB_ASSERT(fn < profiles_.size(), "unknown function profile");
    return profiles_[fn];
}

double
ClusterState::rateMbMs(Tier tier) const
{
    return rate_mb_ms_[static_cast<std::size_t>(tierIndex(tier))];
}

ServerId
ClusterState::pickServer(Tier tier, MemoryMb memory_mb) const
{
    // Worst-fit: the server with the most free memory, which balances
    // load and leaves room for large functions elsewhere. The tier
    // heap's root is that server (ties towards the lowest id, same as
    // the old first-maximum scan).
    const ServerId sid =
        server_heaps_[static_cast<std::size_t>(tierIndex(tier))].top();
    if (sid == kInvalidServer || servers_[sid].free_mb < memory_mb)
        return kInvalidServer;
    return sid;
}

// ------------------------------------------------- intrusive pool lists

void
ClusterState::poolPushBack(PoolList &list, Container &c)
{
    const std::uint32_t slot = SlotMap<Container>::slotOf(c.id);
    c.pool_prev = list.tail;
    c.pool_next = kNullSlot;
    if (list.tail != kNullSlot)
        containers_.atSlot(list.tail).pool_next = slot;
    else
        list.head = slot;
    list.tail = slot;
    ++list.size;
}

void
ClusterState::poolUnlink(PoolList &list, Container &c)
{
    const std::uint32_t slot = SlotMap<Container>::slotOf(c.id);
    if (c.pool_prev != kNullSlot) {
        containers_.atSlot(c.pool_prev).pool_next = c.pool_next;
    } else {
        ICEB_ASSERT(list.head == slot, "container not in this pool");
        list.head = c.pool_next;
    }
    if (c.pool_next != kNullSlot) {
        containers_.atSlot(c.pool_next).pool_prev = c.pool_prev;
    } else {
        ICEB_ASSERT(list.tail == slot, "container not in this pool");
        list.tail = c.pool_prev;
    }
    c.pool_prev = kNullSlot;
    c.pool_next = kNullSlot;
    ICEB_ASSERT(list.size > 0, "pool size underflow");
    --list.size;
}

void
ClusterState::setupPushBack(SetupList &list, Container &c)
{
    poolPushBack(list, c);
    // Strict less-than keeps the earlier-inserted container on ties,
    // matching the old first-minimum scan.
    if (list.min_slot == kNullSlot ||
        c.ready_at < containers_.atSlot(list.min_slot).ready_at) {
        list.min_slot = SlotMap<Container>::slotOf(c.id);
    }
}

void
ClusterState::setupUnlink(SetupList &list, Container &c)
{
    const std::uint32_t slot = SlotMap<Container>::slotOf(c.id);
    poolUnlink(list, c);
    if (list.min_slot != slot)
        return;
    // The minimum left: rescan head-to-tail (insertion order, so the
    // strict < again favours the earliest-inserted of equal
    // ready_at). Setup pools are small -- a handful of in-flight
    // warm-ups per (function, tier) -- and ready_at never changes, so
    // this stays cheap and exactly mirrors the old scan's tie-break.
    list.min_slot = list.head;
    for (std::uint32_t s = list.head; s != kNullSlot;
         s = containers_.atSlot(s).pool_next) {
        if (containers_.atSlot(s).ready_at <
            containers_.atSlot(list.min_slot).ready_at) {
            list.min_slot = s;
        }
    }
}

// ----------------------------------------------------------- lifecycle

ContainerId
ClusterState::createContainer(FunctionId fn, Tier tier, ServerId server,
                              ContainerState state)
{
    const workload::FunctionProfile &profile = profileOf(fn);
    const auto t = static_cast<std::size_t>(tierIndex(tier));
    Server &host = servers_[server];
    ICEB_ASSERT(host.free_mb >= profile.memory_mb,
                "server has no room for container");
    host.free_mb -= profile.memory_mb;
    server_heaps_[t].update(server, servers_);
    tier_free_[t] -= profile.memory_mb;

    const ContainerId id = containers_.insert();
    const std::uint32_t slot = SlotMap<Container>::slotOf(id);
    if (slot >= expiry_stamps_.size())
        expiry_stamps_.resize(slot + 1, 0);
    else
        expiry_stamps_[slot] = 0;
    Container &c = containers_.at(id);
    c.id = id;
    c.fn = fn;
    c.server = server;
    c.tier = tier;
    c.state = state;
    c.memory_mb = profile.memory_mb;
    c.ready_at = now_ + profile.coldStartMs(tier);
    c.last_used = now_;
    ++live_per_fn_[fn];

    EventLoopStats &stats = metrics_.eventLoop();
    if (containers_.size() > stats.peak_live_containers)
        stats.peak_live_containers = containers_.size();
    return id;
}

void
ClusterState::scheduleExpiry(Container &c)
{
    ++c.expiry_token;
    const std::uint64_t stamp = ++next_expiry_stamp_;
    expiry_stamps_[SlotMap<Container>::slotOf(c.id)] = stamp;
    Event event;
    event.time = c.expiry;
    event.type = EventType::ContainerExpiry;
    event.container = c.id;
    event.token = stamp;
    events_.push(event);
}

void
ClusterState::pushEvictEntry(const Container &c, double priority)
{
    const auto t = static_cast<std::size_t>(tierIndex(c.tier));
    const std::uint32_t slot = SlotMap<Container>::slotOf(c.id);
    EvictEntry entry;
    entry.priority = priority;
    entry.stamp = expiry_stamps_[slot];
    entry.slot = slot;
    entry.seq = static_cast<std::uint32_t>(next_evict_seq_++);
    ICEB_ASSERT(entry.stamp != 0,
                "evict candidate pushed without a scheduled expiry");
    EvictHeap &heap = evict_heaps_[t];
    heap.push_back(entry);
    if (priority >= evict_high_water_[t]) {
        // Outranks (priority, then the fresh seq) everything ever
        // pushed, hence everything still pending: the tail slot
        // already satisfies the heap invariant, and std::pop_heap's
        // victim order is layout-independent because the comparator
        // is a strict total order.
        evict_high_water_[t] = priority;
    } else {
        std::push_heap(heap.begin(), heap.end(), EvictLater{});
    }

    EventLoopStats &stats = metrics_.eventLoop();
    if (heap.size() > stats.peak_evict_entries)
        stats.peak_evict_entries = heap.size();
}

std::size_t
ClusterState::ensureWarm(FunctionId fn, Tier tier, std::size_t count,
                         TimeMs expiry)
{
    return ensureWarmImpl(fn, tier, count, expiry, nullptr);
}

std::size_t
ClusterState::ensureWarmEvicting(FunctionId fn, Tier tier,
                                 std::size_t count, TimeMs expiry,
                                 Policy &policy)
{
    return ensureWarmImpl(fn, tier, count, expiry, &policy);
}

std::size_t
ClusterState::ensureWarmImpl(FunctionId fn, Tier tier, std::size_t count,
                             TimeMs expiry, Policy *evict_with)
{
    ICEB_ASSERT(fn < pools_.size(), "ensureWarm for unknown function");
    FunctionPools &pools = pools_[fn];
    const auto t = static_cast<std::size_t>(tierIndex(tier));
    PoolList &idle = pools.idle[t];
    SetupList &setup = pools.setup[t];

    std::size_t provisioned = 0;

    // Renew existing instances, newest first (tail to head), up to the
    // target count.
    for (std::uint32_t s = idle.tail;
         s != kNullSlot && provisioned < count;
         s = containers_.atSlot(s).pool_prev) {
        Container &c = containers_.atSlot(s);
        if (expiry > c.expiry) {
            c.expiry = expiry;
            scheduleExpiry(c);
        }
        ++provisioned;
    }
    for (std::uint32_t s = setup.tail;
         s != kNullSlot && provisioned < count;
         s = containers_.atSlot(s).pool_prev) {
        Container &c = containers_.atSlot(s);
        if (expiry > c.expiry)
            c.expiry = expiry;
        ++provisioned;
    }

    // Create the shortfall from vacant memory (optionally evicting
    // lower-priority idle containers of other functions).
    const workload::FunctionProfile &profile = profileOf(fn);
    std::size_t created = 0;
    while (provisioned < count) {
        ServerId server = pickServer(tier, profile.memory_mb);
        if (server == kInvalidServer && evict_with &&
            evictToFit(tier, profile.memory_mb, *evict_with, fn)) {
            server = pickServer(tier, profile.memory_mb);
        }
        if (server == kInvalidServer)
            break;
        const ContainerId id =
            createContainer(fn, tier, server, ContainerState::Setup);
        Container &c = containers_.at(id);
        c.expiry = expiry;
        c.prewarmed_unused = true;
        setupPushBack(setup, c);

        Event ready;
        ready.time = c.ready_at;
        ready.type = EventType::PrewarmReady;
        ready.container = id;
        events_.push(ready);
        ++provisioned;
        ++created;
    }
    if (created > 0) {
        ICEB_TRACE(tsink_, obs::TraceKind::WarmupIssued, now_, fn, tier,
                   obs::ColdCause::None, created);
    }
    return provisioned;
}

void
ClusterState::schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                              TimeMs expiry)
{
    ICEB_ASSERT(start_time >= now_, "prewarm scheduled in the past");
    Event event;
    event.time = start_time;
    event.type = EventType::PrewarmStart;
    event.fn = fn;
    event.tier = tier;
    event.expiry = expiry;
    events_.push(event);
}

MemoryMb
ClusterState::vacantMemoryMb(Tier tier) const
{
    return tier_free_[static_cast<std::size_t>(tierIndex(tier))];
}

MemoryMb
ClusterState::totalMemoryMb(Tier tier) const
{
    return config_.spec(tier).totalMemoryMb();
}

std::size_t
ClusterState::warmCount(FunctionId fn, Tier tier) const
{
    ICEB_ASSERT(fn < pools_.size(), "warmCount for unknown function");
    const auto t = static_cast<std::size_t>(tierIndex(tier));
    return static_cast<std::size_t>(pools_[fn].idle[t].size) +
        static_cast<std::size_t>(pools_[fn].setup[t].size);
}

std::optional<ClusterState::Acquisition>
ClusterState::acquireWarm(FunctionId fn, const std::array<Tier, 2> &order)
{
    FunctionPools &pools = pools_[fn];
    for (Tier tier : order) {
        PoolList &idle =
            pools.idle[static_cast<std::size_t>(tierIndex(tier))];
        if (idle.size == 0)
            continue;
        // LIFO: take the most recently idled container so older ones
        // drain out through expiry.
        Container &c = containers_.atSlot(idle.tail);
        poolUnlink(idle, c);
        ICEB_ASSERT(c.state == ContainerState::IdleWarm,
                    "idle pool out of sync");
        metrics_.recordKeepAlive(c.tier, fn, c.memory_mb,
                                 now_ - c.idle_since, true,
                                 rateMbMs(c.tier));
        if (c.prewarmed_unused) {
            ICEB_TRACE(tsink_, obs::TraceKind::WarmupConsumed, now_, fn,
                       c.tier, obs::ColdCause::None, 0);
        }
        c.state = ContainerState::Running;
        c.prewarmed_unused = false;
        c.last_used = now_;
        ++c.expiry_token; // cancel any pending expiry
        expiry_stamps_[SlotMap<Container>::slotOf(c.id)] = 0;
        return Acquisition{c.id, c.tier, now_, false};
    }
    return std::nullopt;
}

std::optional<ClusterState::Acquisition>
ClusterState::acquireSetup(FunctionId fn, const std::array<Tier, 2> &order)
{
    FunctionPools &pools = pools_[fn];
    for (Tier tier : order) {
        SetupList &setup =
            pools.setup[static_cast<std::size_t>(tierIndex(tier))];
        if (setup.size == 0)
            continue;
        // Pick the container closest to readiness (cached minimum).
        Container &c = containers_.atSlot(setup.min_slot);
        setupUnlink(setup, c);
        ICEB_ASSERT(c.state == ContainerState::Setup,
                    "setup pool out of sync");
        if (c.prewarmed_unused) {
            ICEB_TRACE(tsink_, obs::TraceKind::WarmupConsumed, now_, fn,
                       c.tier, obs::ColdCause::None, 0);
        }
        c.state = ContainerState::Running;
        c.prewarmed_unused = false;
        c.last_used = now_;
        ++c.expiry_token;
        expiry_stamps_[SlotMap<Container>::slotOf(c.id)] = 0;
        const bool still_cold = c.ready_at > now_;
        return Acquisition{c.id, c.tier, std::max(c.ready_at, now_),
                           still_cold};
    }
    return std::nullopt;
}

std::optional<ClusterState::Acquisition>
ClusterState::acquireCold(FunctionId fn, const std::array<Tier, 2> &order,
                          Policy &policy)
{
    const workload::FunctionProfile &profile = profileOf(fn);
    // First pass: vacant memory only; second pass: allow eviction.
    for (int pass = 0; pass < 2; ++pass) {
        for (Tier tier : order) {
            if (config_.spec(tier).server_count == 0)
                continue;
            if (pass == 1 &&
                !evictToFit(tier, profile.memory_mb, policy)) {
                continue;
            }
            const ServerId server = pickServer(tier, profile.memory_mb);
            if (server == kInvalidServer)
                continue;
            const ContainerId id = createContainer(
                fn, tier, server, ContainerState::Running);
            Container &c = containers_.at(id);
            c.prewarmed_unused = false;
            return Acquisition{id, tier, c.ready_at, true};
        }
    }
    return std::nullopt;
}

void
ClusterState::startExecution(ContainerId id, TimeMs exec_end)
{
    Container &c = containers_.at(id);
    ICEB_ASSERT(c.state == ContainerState::Running,
                "container not acquired for execution");
    (void)c;
    (void)exec_end; // completion is scheduled by the simulator
}

void
ClusterState::finishExecution(ContainerId id, TimeMs keep_alive_ms,
                              Policy &policy)
{
    Container &c = containers_.at(id);
    ICEB_ASSERT(c.state == ContainerState::Running,
                "finishExecution on non-running container");
    if (keep_alive_ms <= 0) {
        destroyContainer(c, false, &policy);
        return;
    }
    becomeIdle(c, now_ + keep_alive_ms, &policy);
}

void
ClusterState::becomeIdle(Container &c, TimeMs expiry, Policy *policy)
{
    c.state = ContainerState::IdleWarm;
    c.idle_since = now_;
    c.expiry = expiry;
    scheduleExpiry(c);
    poolPushBack(
        pools_[c.fn].idle[static_cast<std::size_t>(tierIndex(c.tier))],
        c);
    const double priority = policy
        ? policy->evictionPriority(c.fn, c.tier, c.last_used, now_)
        : static_cast<double>(c.last_used);
    pushEvictEntry(c, priority);
}

void
ClusterState::destroyContainer(Container &c, bool wasteful,
                               Policy *policy)
{
    const auto t = static_cast<std::size_t>(tierIndex(c.tier));
    if (c.state == ContainerState::IdleWarm) {
        poolUnlink(pools_[c.fn].idle[t], c);
        if (wasteful) {
            metrics_.recordKeepAlive(c.tier, c.fn, c.memory_mb,
                                     now_ - c.idle_since, false,
                                     rateMbMs(c.tier));
        }
    } else if (c.state == ContainerState::Setup) {
        setupUnlink(pools_[c.fn].setup[t], c);
    }
    if (wasteful && c.prewarmed_unused) {
        ICEB_TRACE(tsink_, obs::TraceKind::WarmupWasted, now_, c.fn,
                   c.tier, obs::ColdCause::None, 0);
        if (policy)
            policy->onWarmupWasted(c.fn, c.tier, now_);
    }

    Server &host = servers_[c.server];
    host.free_mb += c.memory_mb;
    ICEB_ASSERT(host.free_mb <= host.capacity_mb,
                "server memory over-freed");
    server_heaps_[t].update(c.server, servers_);
    tier_free_[t] += c.memory_mb;
    ICEB_ASSERT(live_per_fn_[c.fn] > 0, "live count underflow");
    --live_per_fn_[c.fn];
    expiry_stamps_[SlotMap<Container>::slotOf(c.id)] = 0;
    containers_.erase(c.id); // invalidates c
}

bool
ClusterState::evictToFit(Tier tier, MemoryMb memory_mb, Policy &policy,
                         FunctionId exclude_fn)
{
    EvictHeap &heap =
        evict_heaps_[static_cast<std::size_t>(tierIndex(tier))];
    EventLoopStats &stats = metrics_.eventLoop();
    // Scratch window for this call's spared entries; index-based so
    // re-entrant calls (none today) would still compose.
    const std::size_t spared_base = evict_spared_.size();
    bool fits = true;
    while (pickServer(tier, memory_mb) == kInvalidServer) {
        bool evicted = false;
        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), EvictLater{});
            const EvictEntry entry = heap.back();
            heap.pop_back();
            ++stats.eviction_victims_examined;
            if (entry.stamp != expiry_stamps_[entry.slot]) {
                ++stats.stale_evict_entries;
                continue; // acquired, destroyed, or re-idled since
            }
            Container *victim = &containers_.atSlot(entry.slot);
            ICEB_ASSERT(victim->state == ContainerState::IdleWarm,
                        "evict stamp out of sync");
            if (victim->fn == exclude_fn) {
                evict_spared_.push_back(entry);
                continue;
            }
            policy.onEviction(victim->fn, victim->tier, now_);
            ICEB_TRACE(tsink_, obs::TraceKind::Eviction, now_,
                       victim->fn, victim->tier, obs::ColdCause::None,
                       static_cast<std::uint64_t>(
                           now_ - victim->idle_since));
            destroyContainer(*victim, true, &policy);
            evicted = true;
            break;
        }
        if (!evicted) {
            fits = false;
            break;
        }
    }
    for (std::size_t i = spared_base; i < evict_spared_.size(); ++i) {
        heap.push_back(evict_spared_[i]);
        std::push_heap(heap.begin(), heap.end(), EvictLater{});
    }
    evict_spared_.resize(spared_base);
    return fits;
}

void
ClusterState::handlePrewarmStart(const Event &event, Policy &policy)
{
    const workload::FunctionProfile &profile = profileOf(event.fn);
    // Prefer the requested tier; fall back to the other one, then to
    // eviction, so a full cluster does not forfeit the warm-up.
    Tier tier = event.tier;
    ServerId server = pickServer(tier, profile.memory_mb);
    if (server == kInvalidServer) {
        tier = otherTier(tier);
        server = pickServer(tier, profile.memory_mb);
    }
    if (server == kInvalidServer &&
        evictToFit(event.tier, profile.memory_mb, policy, event.fn)) {
        tier = event.tier;
        server = pickServer(tier, profile.memory_mb);
    }
    if (server == kInvalidServer) {
        ++prewarm_failures_;
        return;
    }
    const ContainerId id = createContainer(event.fn, tier, server,
                                           ContainerState::Setup);
    Container &c = containers_.at(id);
    c.expiry = event.expiry;
    c.prewarmed_unused = true;
    setupPushBack(
        pools_[event.fn]
            .setup[static_cast<std::size_t>(tierIndex(tier))],
        c);

    Event ready;
    ready.time = c.ready_at;
    ready.type = EventType::PrewarmReady;
    ready.container = id;
    events_.push(ready);
    ICEB_TRACE(tsink_, obs::TraceKind::WarmupIssued, now_, event.fn,
               tier, obs::ColdCause::None, 1);
}

void
ClusterState::handlePrewarmReady(const Event &event, Policy &policy)
{
    Container *cp = containers_.find(event.container);
    if (cp == nullptr || cp->state != ContainerState::Setup)
        return; // attached or destroyed while in setup
    Container &c = *cp;
    if (c.expiry <= now_) {
        // Keep-alive lapsed during setup: destroy straight from the
        // setup pool. A zero-length idle period records nothing (the
        // collector ignores idle_ms <= 0) and the wasted-warmup
        // callback still fires inside destroyContainer, so this is
        // equivalent to -- and cheaper than -- the old push-into-idle
        // -then-destroy dance.
        destroyContainer(c, true, &policy);
        return;
    }
    setupUnlink(
        pools_[c.fn].setup[static_cast<std::size_t>(tierIndex(c.tier))],
        c);
    c.state = ContainerState::IdleWarm;
    c.idle_since = now_;
    scheduleExpiry(c);
    poolPushBack(
        pools_[c.fn].idle[static_cast<std::size_t>(tierIndex(c.tier))],
        c);
    pushEvictEntry(c, static_cast<double>(c.last_used));
}

void
ClusterState::handleContainerExpiry(const Event &event, Policy &policy)
{
    // Stamps are globally unique and zeroed on acquire/destroy, so a
    // match certifies the container is alive, idle, and that this is
    // its newest scheduled expiry -- without touching the arena.
    const std::uint32_t slot =
        SlotMap<Container>::slotOf(event.container);
    if (slot >= expiry_stamps_.size() ||
        expiry_stamps_[slot] != event.token) {
        ++metrics_.eventLoop().stale_expiry_events;
        return; // renewed, in use, or already gone
    }
    Container &c = containers_.atSlot(slot);
    ICEB_ASSERT(c.id == event.container &&
                    c.state == ContainerState::IdleWarm,
                "expiry stamp out of sync");
    ICEB_TRACE(tsink_, obs::TraceKind::Expiry, now_, c.fn, c.tier,
               obs::ColdCause::None,
               static_cast<std::uint64_t>(now_ - c.idle_since));
    destroyContainer(c, true, &policy);
}

const Container &
ClusterState::container(ContainerId id) const
{
    return containers_.at(id);
}

void
ClusterState::sampleOccupancy(
    std::array<std::int64_t, kNumTiers> &idle_warm,
    std::array<std::int64_t, kNumTiers> &in_setup) const
{
    idle_warm.fill(0);
    in_setup.fill(0);
    for (const FunctionPools &pools : pools_) {
        for (std::size_t t = 0; t < kNumTiers; ++t) {
            idle_warm[t] += pools.idle[t].size;
            in_setup[t] += pools.setup[t].size;
        }
    }
}

} // namespace iceb::sim
