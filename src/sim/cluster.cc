#include "sim/cluster.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::sim
{

ClusterState::ClusterState(
    const ClusterConfig &config,
    const std::vector<workload::FunctionProfile> &profiles,
    EventQueue &events, MetricsCollector &metrics)
    : config_(config), profiles_(profiles), events_(events),
      metrics_(metrics)
{
    pools_.resize(profiles_.size());
    live_per_fn_.assign(profiles_.size(), 0);
    for (int t = 0; t < kNumTiers; ++t) {
        const auto tier = static_cast<Tier>(t);
        const TierSpec &spec = config_.spec(tier);
        rate_mb_ms_[static_cast<std::size_t>(t)] =
            dollarsPerGbHourToMbMs(spec.dollars_per_gb_hour);
        for (std::size_t i = 0; i < spec.server_count; ++i) {
            Server server;
            server.id = static_cast<ServerId>(servers_.size());
            server.tier = tier;
            server.capacity_mb = spec.memory_per_server_mb;
            server.free_mb = spec.memory_per_server_mb;
            tier_servers_[static_cast<std::size_t>(t)].push_back(
                server.id);
            servers_.push_back(server);
        }
    }
}

const workload::FunctionProfile &
ClusterState::profileOf(FunctionId fn) const
{
    ICEB_ASSERT(fn < profiles_.size(), "unknown function profile");
    return profiles_[fn];
}

double
ClusterState::rateMbMs(Tier tier) const
{
    return rate_mb_ms_[static_cast<std::size_t>(tierIndex(tier))];
}

ServerId
ClusterState::pickServer(Tier tier, MemoryMb memory_mb) const
{
    // Worst-fit: the server with the most free memory, which balances
    // load and leaves room for large functions elsewhere.
    ServerId best = kInvalidServer;
    MemoryMb best_free = memory_mb - 1;
    for (ServerId sid :
         tier_servers_[static_cast<std::size_t>(tierIndex(tier))]) {
        const Server &server = servers_[sid];
        if (server.free_mb > best_free) {
            best_free = server.free_mb;
            best = sid;
        }
    }
    return best;
}

ContainerId
ClusterState::createContainer(FunctionId fn, Tier tier, ServerId server,
                              ContainerState state)
{
    const workload::FunctionProfile &profile = profileOf(fn);
    Server &host = servers_[server];
    ICEB_ASSERT(host.free_mb >= profile.memory_mb,
                "server has no room for container");
    host.free_mb -= profile.memory_mb;

    Container c;
    c.id = next_container_id_++;
    c.fn = fn;
    c.server = server;
    c.tier = tier;
    c.state = state;
    c.memory_mb = profile.memory_mb;
    c.ready_at = now_ + profile.coldStartMs(tier);
    c.last_used = now_;
    const ContainerId id = c.id;
    containers_.emplace(id, c);
    ++live_per_fn_[fn];
    return id;
}

void
ClusterState::removeFromPool(std::vector<ContainerId> &pool,
                             ContainerId id)
{
    const auto it = std::find(pool.begin(), pool.end(), id);
    ICEB_ASSERT(it != pool.end(), "container missing from pool");
    pool.erase(it);
}

void
ClusterState::scheduleExpiry(Container &c)
{
    ++c.expiry_token;
    Event event;
    event.time = c.expiry;
    event.type = EventType::ContainerExpiry;
    event.container = c.id;
    event.token = c.expiry_token;
    events_.push(event);
}

void
ClusterState::pushEvictEntry(const Container &c, double priority)
{
    EvictEntry entry;
    entry.priority = priority;
    entry.seq = next_evict_seq_++;
    entry.id = c.id;
    entry.token = c.expiry_token;
    evict_heaps_[static_cast<std::size_t>(tierIndex(c.tier))].push(entry);
}

std::size_t
ClusterState::ensureWarm(FunctionId fn, Tier tier, std::size_t count,
                         TimeMs expiry)
{
    return ensureWarmImpl(fn, tier, count, expiry, nullptr);
}

std::size_t
ClusterState::ensureWarmEvicting(FunctionId fn, Tier tier,
                                 std::size_t count, TimeMs expiry,
                                 Policy &policy)
{
    return ensureWarmImpl(fn, tier, count, expiry, &policy);
}

std::size_t
ClusterState::ensureWarmImpl(FunctionId fn, Tier tier, std::size_t count,
                             TimeMs expiry, Policy *evict_with)
{
    ICEB_ASSERT(fn < pools_.size(), "ensureWarm for unknown function");
    FunctionPools &pools = pools_[fn];
    const auto t = static_cast<std::size_t>(tierIndex(tier));
    auto &idle = pools.idle[t];
    auto &setup = pools.setup[t];

    std::size_t provisioned = 0;

    // Renew existing instances, newest first, up to the target count.
    for (auto it = idle.rbegin();
         it != idle.rend() && provisioned < count; ++it) {
        Container &c = containers_.at(*it);
        if (expiry > c.expiry) {
            c.expiry = expiry;
            scheduleExpiry(c);
        }
        ++provisioned;
    }
    for (auto it = setup.rbegin();
         it != setup.rend() && provisioned < count; ++it) {
        Container &c = containers_.at(*it);
        if (expiry > c.expiry)
            c.expiry = expiry;
        ++provisioned;
    }

    // Create the shortfall from vacant memory (optionally evicting
    // lower-priority idle containers of other functions).
    const workload::FunctionProfile &profile = profileOf(fn);
    while (provisioned < count) {
        ServerId server = pickServer(tier, profile.memory_mb);
        if (server == kInvalidServer && evict_with &&
            evictToFit(tier, profile.memory_mb, *evict_with, fn)) {
            server = pickServer(tier, profile.memory_mb);
        }
        if (server == kInvalidServer)
            break;
        const ContainerId id =
            createContainer(fn, tier, server, ContainerState::Setup);
        Container &c = containers_.at(id);
        c.expiry = expiry;
        c.prewarmed_unused = true;
        setup.push_back(id);

        Event ready;
        ready.time = c.ready_at;
        ready.type = EventType::PrewarmReady;
        ready.container = id;
        events_.push(ready);
        ++provisioned;
    }
    return provisioned;
}

void
ClusterState::schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                              TimeMs expiry)
{
    ICEB_ASSERT(start_time >= now_, "prewarm scheduled in the past");
    Event event;
    event.time = start_time;
    event.type = EventType::PrewarmStart;
    event.fn = fn;
    event.tier = tier;
    event.expiry = expiry;
    events_.push(event);
}

MemoryMb
ClusterState::vacantMemoryMb(Tier tier) const
{
    MemoryMb total = 0;
    for (ServerId sid :
         tier_servers_[static_cast<std::size_t>(tierIndex(tier))]) {
        total += servers_[sid].free_mb;
    }
    return total;
}

MemoryMb
ClusterState::totalMemoryMb(Tier tier) const
{
    return config_.spec(tier).totalMemoryMb();
}

std::size_t
ClusterState::warmCount(FunctionId fn, Tier tier) const
{
    ICEB_ASSERT(fn < pools_.size(), "warmCount for unknown function");
    const auto t = static_cast<std::size_t>(tierIndex(tier));
    return pools_[fn].idle[t].size() + pools_[fn].setup[t].size();
}

std::optional<ClusterState::Acquisition>
ClusterState::acquireWarm(FunctionId fn, const std::array<Tier, 2> &order)
{
    FunctionPools &pools = pools_[fn];
    for (Tier tier : order) {
        auto &idle = pools.idle[static_cast<std::size_t>(tierIndex(tier))];
        if (idle.empty())
            continue;
        // LIFO: take the most recently idled container so older ones
        // drain out through expiry.
        const ContainerId id = idle.back();
        idle.pop_back();
        Container &c = containers_.at(id);
        ICEB_ASSERT(c.state == ContainerState::IdleWarm,
                    "idle pool out of sync");
        metrics_.recordKeepAlive(c.tier, fn, c.memory_mb,
                                 now_ - c.idle_since, true,
                                 rateMbMs(c.tier));
        c.state = ContainerState::Running;
        c.prewarmed_unused = false;
        c.last_used = now_;
        ++c.expiry_token; // cancel any pending expiry
        return Acquisition{id, c.tier, now_, false};
    }
    return std::nullopt;
}

std::optional<ClusterState::Acquisition>
ClusterState::acquireSetup(FunctionId fn, const std::array<Tier, 2> &order)
{
    FunctionPools &pools = pools_[fn];
    for (Tier tier : order) {
        auto &setup =
            pools.setup[static_cast<std::size_t>(tierIndex(tier))];
        if (setup.empty())
            continue;
        // Pick the container closest to readiness.
        auto best = setup.begin();
        for (auto it = setup.begin(); it != setup.end(); ++it) {
            if (containers_.at(*it).ready_at <
                containers_.at(*best).ready_at) {
                best = it;
            }
        }
        const ContainerId id = *best;
        setup.erase(best);
        Container &c = containers_.at(id);
        ICEB_ASSERT(c.state == ContainerState::Setup,
                    "setup pool out of sync");
        c.state = ContainerState::Running;
        c.prewarmed_unused = false;
        c.last_used = now_;
        ++c.expiry_token;
        const bool still_cold = c.ready_at > now_;
        return Acquisition{id, c.tier, std::max(c.ready_at, now_),
                           still_cold};
    }
    return std::nullopt;
}

std::optional<ClusterState::Acquisition>
ClusterState::acquireCold(FunctionId fn, const std::array<Tier, 2> &order,
                          Policy &policy)
{
    const workload::FunctionProfile &profile = profileOf(fn);
    // First pass: vacant memory only; second pass: allow eviction.
    for (int pass = 0; pass < 2; ++pass) {
        for (Tier tier : order) {
            if (config_.spec(tier).server_count == 0)
                continue;
            if (pass == 1 &&
                !evictToFit(tier, profile.memory_mb, policy)) {
                continue;
            }
            const ServerId server = pickServer(tier, profile.memory_mb);
            if (server == kInvalidServer)
                continue;
            const ContainerId id = createContainer(
                fn, tier, server, ContainerState::Running);
            Container &c = containers_.at(id);
            c.prewarmed_unused = false;
            return Acquisition{id, tier, c.ready_at, true};
        }
    }
    return std::nullopt;
}

void
ClusterState::startExecution(ContainerId id, TimeMs exec_end)
{
    Container &c = containers_.at(id);
    ICEB_ASSERT(c.state == ContainerState::Running,
                "container not acquired for execution");
    (void)exec_end; // completion is scheduled by the simulator
}

void
ClusterState::finishExecution(ContainerId id, TimeMs keep_alive_ms,
                              Policy &policy)
{
    Container &c = containers_.at(id);
    ICEB_ASSERT(c.state == ContainerState::Running,
                "finishExecution on non-running container");
    if (keep_alive_ms <= 0) {
        destroyContainer(c, false, &policy);
        return;
    }
    becomeIdle(c, now_ + keep_alive_ms, &policy);
}

void
ClusterState::becomeIdle(Container &c, TimeMs expiry, Policy *policy)
{
    c.state = ContainerState::IdleWarm;
    c.idle_since = now_;
    c.expiry = expiry;
    scheduleExpiry(c);
    pools_[c.fn].idle[static_cast<std::size_t>(tierIndex(c.tier))]
        .push_back(c.id);
    const double priority = policy
        ? policy->evictionPriority(c.fn, c.tier, c.last_used, now_)
        : static_cast<double>(c.last_used);
    pushEvictEntry(c, priority);
}

void
ClusterState::destroyContainer(Container &c, bool wasteful,
                               Policy *policy)
{
    if (c.state == ContainerState::IdleWarm) {
        removeFromPool(
            pools_[c.fn].idle[static_cast<std::size_t>(
                tierIndex(c.tier))],
            c.id);
        if (wasteful) {
            metrics_.recordKeepAlive(c.tier, c.fn, c.memory_mb,
                                     now_ - c.idle_since, false,
                                     rateMbMs(c.tier));
        }
    } else if (c.state == ContainerState::Setup) {
        removeFromPool(
            pools_[c.fn].setup[static_cast<std::size_t>(
                tierIndex(c.tier))],
            c.id);
    }
    if (wasteful && c.prewarmed_unused && policy)
        policy->onWarmupWasted(c.fn, c.tier, now_);

    servers_[c.server].free_mb += c.memory_mb;
    ICEB_ASSERT(servers_[c.server].free_mb <=
                    servers_[c.server].capacity_mb,
                "server memory over-freed");
    ICEB_ASSERT(live_per_fn_[c.fn] > 0, "live count underflow");
    --live_per_fn_[c.fn];
    containers_.erase(c.id);
}

bool
ClusterState::evictToFit(Tier tier, MemoryMb memory_mb, Policy &policy,
                         FunctionId exclude_fn)
{
    EvictHeap &heap =
        evict_heaps_[static_cast<std::size_t>(tierIndex(tier))];
    std::vector<EvictEntry> spared;
    while (pickServer(tier, memory_mb) == kInvalidServer) {
        bool evicted = false;
        while (!heap.empty()) {
            const EvictEntry entry = heap.top();
            heap.pop();
            const auto it = containers_.find(entry.id);
            if (it == containers_.end() ||
                it->second.state != ContainerState::IdleWarm ||
                it->second.expiry_token != entry.token) {
                continue; // stale heap entry
            }
            if (it->second.fn == exclude_fn) {
                spared.push_back(entry);
                continue;
            }
            Container &victim = it->second;
            policy.onEviction(victim.fn, victim.tier, now_);
            destroyContainer(victim, true, &policy);
            evicted = true;
            break;
        }
        if (!evicted) {
            for (const EvictEntry &entry : spared)
                heap.push(entry);
            return false;
        }
    }
    for (const EvictEntry &entry : spared)
        heap.push(entry);
    return true;
}

void
ClusterState::handlePrewarmStart(const Event &event, Policy &policy)
{
    const workload::FunctionProfile &profile = profileOf(event.fn);
    // Prefer the requested tier; fall back to the other one, then to
    // eviction, so a full cluster does not forfeit the warm-up.
    Tier tier = event.tier;
    ServerId server = pickServer(tier, profile.memory_mb);
    if (server == kInvalidServer) {
        tier = otherTier(tier);
        server = pickServer(tier, profile.memory_mb);
    }
    if (server == kInvalidServer &&
        evictToFit(event.tier, profile.memory_mb, policy, event.fn)) {
        tier = event.tier;
        server = pickServer(tier, profile.memory_mb);
    }
    if (server == kInvalidServer) {
        ++prewarm_failures_;
        return;
    }
    const ContainerId id = createContainer(event.fn, tier, server,
                                           ContainerState::Setup);
    Container &c = containers_.at(id);
    c.expiry = event.expiry;
    c.prewarmed_unused = true;
    pools_[event.fn]
        .setup[static_cast<std::size_t>(tierIndex(tier))]
        .push_back(id);

    Event ready;
    ready.time = c.ready_at;
    ready.type = EventType::PrewarmReady;
    ready.container = id;
    events_.push(ready);
}

void
ClusterState::handlePrewarmReady(const Event &event, Policy &policy)
{
    const auto it = containers_.find(event.container);
    if (it == containers_.end() ||
        it->second.state != ContainerState::Setup) {
        return; // attached or destroyed while in setup
    }
    Container &c = it->second;
    removeFromPool(
        pools_[c.fn].setup[static_cast<std::size_t>(tierIndex(c.tier))],
        c.id);
    if (c.expiry <= now_) {
        // Keep-alive lapsed during setup; zero-length idle period.
        c.state = ContainerState::IdleWarm;
        c.idle_since = now_;
        pools_[c.fn].idle[static_cast<std::size_t>(tierIndex(c.tier))]
            .push_back(c.id);
        destroyContainer(c, true, &policy);
        return;
    }
    c.state = ContainerState::IdleWarm;
    c.idle_since = now_;
    scheduleExpiry(c);
    pools_[c.fn].idle[static_cast<std::size_t>(tierIndex(c.tier))]
        .push_back(c.id);
    pushEvictEntry(c, static_cast<double>(c.last_used));
}

void
ClusterState::handleContainerExpiry(const Event &event, Policy &policy)
{
    const auto it = containers_.find(event.container);
    if (it == containers_.end() ||
        it->second.state != ContainerState::IdleWarm ||
        it->second.expiry_token != event.token) {
        return; // renewed, in use, or already gone
    }
    destroyContainer(it->second, true, &policy);
}

const Container &
ClusterState::container(ContainerId id) const
{
    const auto it = containers_.find(id);
    ICEB_ASSERT(it != containers_.end(), "unknown container");
    return it->second;
}

} // namespace iceb::sim
