/**
 * @file
 * The workload boundary of the simulator: per-interval arrival
 * windows, produced either from a materialized trace::Trace or from
 * an out-of-core streaming pipeline — with byte-identical results.
 *
 * PR 4 turned arrivals into a precomputed radix-sorted stream merged
 * against the event heap by (time, seq). A TraceSource generalizes
 * who owns that stream: the engine asks for one interval's window at
 * a time — a (time, rank)-sorted block of ArrivalRecords whose ranks
 * replay the legacy push order — and never needs the whole schedule
 * at once. MaterializedTraceSource is the in-memory producer (the
 * verbatim PR 4 construction, windows served as slices of one
 * prebuilt stream). StreamingWorkloadSource is the external-memory
 * producer: it ingests function rows once, spills fixed-size sorted
 * chunks of 16-byte arrival records to a temp file, and k-way-merges
 * them back per interval — peak RSS stays bounded by the chunk and
 * read-buffer sizes regardless of trace size, and the merge loop
 * performs no steady-state allocations.
 */

#ifndef ICEB_SIM_TRACE_SOURCE_HH
#define ICEB_SIM_TRACE_SOURCE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/stream_reader.hh"
#include "trace/trace.hh"
#include "workload/profile_matcher.hh"

namespace iceb::sim
{

/**
 * One arrival of the streamed schedule. @c rank is its position in
 * the order the pre-PR 4 code pushed the containing interval's
 * arrivals (function-major, time-sorted within a function); its
 * effective sequence number is the interval's reserved block base +
 * rank, which is what keeps streamed pops bit-identical to the old
 * per-arrival heap pushes.
 */
struct ArrivalRecord
{
    TimeMs time = 0;
    std::uint32_t rank = 0;
    FunctionId fn = kInvalidFunction;
};

/** A borrowed view of one interval's (time, rank)-sorted arrivals. */
struct ArrivalWindow
{
    const ArrivalRecord *data = nullptr;
    std::size_t size = 0;
};

/**
 * Stable-sort an interval block of arrivals by time (LSD radix over
 * the in-interval offset). The block must already be in rank order;
 * stability then makes the result (time, rank)-ordered. @p scratch is
 * the ping-pong buffer and must hold at least @p n records.
 */
void sortArrivalBlockByTime(ArrivalRecord *block, ArrivalRecord *scratch,
                            std::size_t n, TimeMs block_base,
                            TimeMs interval_ms);

/**
 * Produces a workload's arrival windows for one simulation run.
 *
 * Contract: beginRun() rewinds the source; intervalWindow(iv) is then
 * called for ascending intervals (a streaming source may refuse
 * random access; the materialized one never does) and the returned
 * view stays valid until the next intervalWindow()/beginRun() call.
 * Windows are (time, rank)-sorted with ranks dense in [0, size).
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    virtual std::size_t numFunctions() const = 0;
    virtual std::size_t numIntervals() const = 0;
    virtual TimeMs intervalMs() const = 0;

    /** Total arrivals over the whole horizon (metrics pre-sizing). */
    virtual std::uint64_t totalArrivals() const = 0;

    /** Arrivals in the busiest single interval (buffer pre-sizing). */
    virtual std::size_t maxIntervalArrivals() const = 0;

    /** Rewind to the start of the horizon. */
    virtual void beginRun() = 0;

    /** The given interval's arrival window (see class contract). */
    virtual ArrivalWindow intervalWindow(IntervalIndex interval) = 0;

    /**
     * The materialized trace behind this source, or nullptr for a
     * streamed workload. Offline (oracle) policies require it: a
     * streamed run cannot grant privileged full-trace access.
     */
    virtual const trace::Trace *trace() const { return nullptr; }

    /**
     * Exact per-function arrival times (the OracleContext input), or
     * nullptr for a streamed workload.
     */
    virtual const std::vector<std::vector<TimeMs>> *
    arrivalSchedule() const
    {
        return nullptr;
    }
};

/**
 * TraceSource over a materialized trace::Trace: builds the full
 * jittered per-function schedule and the per-interval radix-sorted
 * stream once at construction (the verbatim PR 4 path), then serves
 * windows as slices. Random access and repeated runs are free.
 */
class MaterializedTraceSource final : public TraceSource
{
  public:
    /** @p tr must outlive the source; @p seed is the jitter seed
     * (SimulatorOptions::seed). */
    MaterializedTraceSource(const trace::Trace &tr, std::uint64_t seed);

    std::size_t numFunctions() const override;
    std::size_t numIntervals() const override;
    TimeMs intervalMs() const override;
    std::uint64_t totalArrivals() const override;
    std::size_t maxIntervalArrivals() const override;
    void beginRun() override {}
    ArrivalWindow intervalWindow(IntervalIndex interval) override;

    const trace::Trace *trace() const override { return &trace_; }
    const std::vector<std::vector<TimeMs>> *
    arrivalSchedule() const override
    {
        return &arrival_schedule_;
    }

  private:
    void build(std::uint64_t seed);

    const trace::Trace &trace_;

    /** Exact arrival times per function (sorted); Oracle's input. */
    std::vector<std::vector<TimeMs>> arrival_schedule_;

    /** All arrivals, grouped per interval, each group sorted by
     * (time, rank); indexed via stream_begin_. */
    std::vector<ArrivalRecord> stream_;
    std::vector<std::size_t> stream_begin_;
    std::size_t max_interval_arrivals_ = 0;
};

/** Resource/identity metadata of one streamed function (the profile
 * matcher's input; O(functions), independent of the horizon). */
struct StreamedFunctionMeta
{
    std::string name;
    MemoryMb memory_mb = 0;
    TimeMs avg_exec_ms = 0;
    trace::FunctionClass cls = trace::FunctionClass::Unknown;
};

/** Knobs for the external-memory arrival generator. */
struct StreamingSourceOptions
{
    /** Jitter seed; MUST equal the SimulatorOptions::seed of the runs
     * this source feeds, or streamed arrivals will not match the
     * materialized path. */
    std::uint64_t seed = 0x51AB'1CEBull;

    /**
     * Arrival records per sort chunk (16 bytes each). A full chunk is
     * sorted and spilled to the temp file; this bounds ingest-side
     * memory at chunk_records * 16 bytes regardless of trace size.
     */
    std::size_t chunk_records = std::size_t{1} << 22; // 64 MiB

    /** Records per spill-run read buffer during the k-way merge. */
    std::size_t read_records = std::size_t{1} << 14; // 256 KiB / run
};

/**
 * The out-of-core arrival generator. Construction ingests the row
 * source once: every function's jittered burst times are generated
 * exactly as the materialized path generates them (same per-function
 * RNG forks, same bursts) and encoded as 16-byte
 * (interval, fn, seq, offset) records; full chunks are sorted by
 * (interval, fn, seq) and spilled to an anonymous temp file. Runs
 * then k-way-merge the spill runs: intervalWindow(iv) pops every
 * record of interval iv in (fn, seq) order — which IS the legacy rank
 * order — into a reusable block, radix-sorts it by time, and returns
 * it. All merge-loop buffers are sized during ingest, so repeated
 * runs and the merge loop itself allocate nothing.
 *
 * A workload that never overflows one chunk skips the file entirely
 * and serves windows from the single in-memory sorted run.
 */
class StreamingWorkloadSource final : public TraceSource
{
  public:
    /** Ingests @p rows fully (the row source is not retained). */
    explicit StreamingWorkloadSource(trace::FunctionRowSource &rows,
                                     StreamingSourceOptions options = {});
    ~StreamingWorkloadSource() override;

    StreamingWorkloadSource(const StreamingWorkloadSource &) = delete;
    StreamingWorkloadSource &
    operator=(const StreamingWorkloadSource &) = delete;

    std::size_t numFunctions() const override;
    std::size_t numIntervals() const override;
    TimeMs intervalMs() const override;
    std::uint64_t totalArrivals() const override;
    std::size_t maxIntervalArrivals() const override;
    void beginRun() override;
    ArrivalWindow intervalWindow(IntervalIndex interval) override;

    /** Per-function metadata collected during ingest. */
    const std::vector<StreamedFunctionMeta> &functions() const
    {
        return metas_;
    }

    /** Sorted chunks spilled to the temp file (0 = in-memory mode). */
    std::size_t spillRuns() const { return runs_.size(); }

    /** Bytes written to the spill file during ingest. */
    std::uint64_t spilledBytes() const { return spilled_bytes_; }

  private:
    /** 16-byte external-sort record; offset = time - iv * interval_ms
     * (always < interval_ms, so it fits 32 bits for any sane width). */
    struct SpillRecord
    {
        std::uint32_t interval = 0;
        std::uint32_t fn = 0;
        std::uint32_t seq = 0;
        std::uint32_t offset = 0;
    };

    /** One sorted spill run and its merge cursor state. */
    struct Run
    {
        std::uint64_t first_record = 0; //!< offset into the spill file
        std::uint64_t count = 0;
        // Merge state (reset by beginRun):
        std::uint64_t consumed = 0;  //!< records read from the file
        std::size_t buf_pos = 0;
        std::size_t buf_len = 0;
        std::vector<SpillRecord> buffer;
    };

    void ingest(trace::FunctionRowSource &rows);
    void spillChunk();
    void refill(Run &run);
    bool advanceRun(std::size_t run_index);
    void heapSiftDown(std::size_t slot);
    void fillBlock(std::size_t iv);

    StreamingSourceOptions options_;
    TimeMs interval_ms_ = 0;
    std::size_t num_intervals_ = 0;
    std::uint64_t total_arrivals_ = 0;
    std::size_t max_interval_arrivals_ = 0;

    std::vector<StreamedFunctionMeta> metas_;
    std::vector<std::uint64_t> interval_totals_;

    /** Ingest chunk; in in-memory mode it stays as the single run. */
    std::vector<SpillRecord> chunk_;
    std::FILE *spill_ = nullptr;
    std::uint64_t spilled_records_ = 0;
    std::uint64_t spilled_bytes_ = 0;
    std::vector<Run> runs_;

    /** Merge heap: run indices ordered by (interval, fn, seq). */
    std::vector<std::uint32_t> heap_;
    std::size_t mem_cursor_ = 0; //!< in-memory mode merge cursor

    /** Current interval's window (block_ sorted by time). */
    std::vector<ArrivalRecord> block_;
    std::vector<ArrivalRecord> block_scratch_;
    std::size_t next_interval_ = 0;
    bool run_open_ = false;
};

/**
 * Per-function profiles for a streamed workload: every ingested
 * function's metadata through @p matcher, indexed by FunctionId —
 * the streamed twin of ProfileMatcher::profilesFor(trace), producing
 * identical profiles for identical metadata.
 */
std::vector<workload::FunctionProfile>
matchStreamedProfiles(const StreamingWorkloadSource &source,
                      const workload::ProfileMatcher &matcher);

} // namespace iceb::sim

#endif // ICEB_SIM_TRACE_SOURCE_HH
