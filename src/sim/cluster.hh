/**
 * @file
 * Live cluster state: servers, containers, warm pools, eviction.
 *
 * Containers move through Setup -> IdleWarm -> Running and back to
 * IdleWarm (or destruction) exactly like OpenWhisk's Docker container
 * lifecycle the paper builds on. All memory accounting and keep-alive
 * cost attribution happens here:
 *
 *  - an idle-warm period that ends in a warm start is a *successful*
 *    warm-up cost;
 *  - an idle-warm period that ends in expiry or eviction is a
 *    *wasteful* warm-up cost (and memory wastage);
 *  - setup and execution time occupy memory but are not keep-alive
 *    cost (so the Oracle's just-in-time scheme is genuinely free, as
 *    the paper defines it).
 */

#ifndef ICEB_SIM_CLUSTER_HH
#define ICEB_SIM_CLUSTER_HH

#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/cluster_config.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/policy.hh"
#include "workload/function_profile.hh"

namespace iceb::sim
{

/** Lifecycle state of a container. */
enum class ContainerState : std::uint8_t
{
    Setup,    //!< image fetch + container creation (cold-start work)
    IdleWarm, //!< warm, waiting for an invocation; accrues cost
    Running,  //!< executing an invocation
};

/** One container instance. */
struct Container
{
    ContainerId id = 0;
    FunctionId fn = kInvalidFunction;
    ServerId server = kInvalidServer;
    Tier tier = Tier::HighEnd;
    ContainerState state = ContainerState::Setup;
    MemoryMb memory_mb = 0;

    TimeMs ready_at = 0;    //!< when setup completes/completed
    TimeMs idle_since = 0;  //!< start of the current idle period
    TimeMs expiry = 0;      //!< keep-alive deadline while idle
    TimeMs last_used = 0;   //!< last execution start (or ready time)
    std::uint64_t expiry_token = 0; //!< invalidates stale expiry events
    bool prewarmed_unused = false;  //!< warmed by policy, not yet used
};

/** One physical server's memory ledger. */
struct Server
{
    ServerId id = kInvalidServer;
    Tier tier = Tier::HighEnd;
    MemoryMb capacity_mb = 0;
    MemoryMb free_mb = 0;
};

/**
 * The mutable cluster: implements the policy-facing WarmupInterface
 * and the simulator-facing placement/lifecycle operations.
 */
class ClusterState : public WarmupInterface
{
  public:
    ClusterState(const ClusterConfig &config,
                 const std::vector<workload::FunctionProfile> &profiles,
                 EventQueue &events, MetricsCollector &metrics);

    /** Advance the cluster's notion of "now". */
    void setNow(TimeMs now) { now_ = now; }

    // WarmupInterface
    TimeMs now() const override { return now_; }
    std::size_t ensureWarm(FunctionId fn, Tier tier, std::size_t count,
                           TimeMs expiry) override;
    std::size_t ensureWarmEvicting(FunctionId fn, Tier tier,
                                   std::size_t count, TimeMs expiry,
                                   Policy &policy) override;
    void schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                         TimeMs expiry) override;
    MemoryMb vacantMemoryMb(Tier tier) const override;
    MemoryMb totalMemoryMb(Tier tier) const override;
    std::size_t warmCount(FunctionId fn, Tier tier) const override;

    /** Result of acquiring a container for an invocation. */
    struct Acquisition
    {
        ContainerId id = 0;
        Tier tier = Tier::HighEnd;
        TimeMs ready_at = 0; //!< when execution may begin
        bool cold = false;   //!< counts as a cold start
    };

    /**
     * Take an idle-warm container (high tier first per @p order).
     * Marks it Running and records the successful keep-alive period.
     */
    std::optional<Acquisition>
    acquireWarm(FunctionId fn, const std::array<Tier, 2> &order);

    /**
     * Attach to an in-setup container (soonest-ready within the tier
     * order); the invocation pays the remaining setup latency as its
     * cold-start time.
     */
    std::optional<Acquisition>
    acquireSetup(FunctionId fn, const std::array<Tier, 2> &order);

    /**
     * Start a fresh cold container, evicting idle containers (in
     * @p policy's priority order) if needed. Fails only when running
     * and in-setup containers exhaust the memory of both tiers.
     */
    std::optional<Acquisition>
    acquireCold(FunctionId fn, const std::array<Tier, 2> &order,
                Policy &policy);

    /** Mark a container as executing until @p exec_end. */
    void startExecution(ContainerId id, TimeMs exec_end);

    /**
     * Execution finished: keep the container warm for
     * @p keep_alive_ms (0 destroys it immediately).
     */
    void finishExecution(ContainerId id, TimeMs keep_alive_ms,
                         Policy &policy);

    /** Event handlers driven by the simulator. */
    void handlePrewarmStart(const Event &event, Policy &policy);
    void handlePrewarmReady(const Event &event, Policy &policy);
    void handleContainerExpiry(const Event &event, Policy &policy);

    /** Container lookup (asserts existence). */
    const Container &container(ContainerId id) const;

    /** Live container count (all states). */
    std::size_t liveContainers() const { return containers_.size(); }

    /** Live containers (any state) of one function. */
    std::uint32_t liveCount(FunctionId fn) const
    {
        return live_per_fn_[fn];
    }

    /** Prewarm requests dropped because no memory was vacant. */
    std::uint64_t prewarmFailures() const { return prewarm_failures_; }

  private:
    struct EvictEntry
    {
        double priority = 0.0;
        std::uint64_t seq = 0;
        ContainerId id = 0;
        std::uint64_t token = 0;

        bool operator>(const EvictEntry &other) const
        {
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    using EvictHeap = std::priority_queue<EvictEntry,
                                          std::vector<EvictEntry>,
                                          std::greater<EvictEntry>>;

    /** Per-function per-tier container-id pools. */
    struct FunctionPools
    {
        std::array<std::vector<ContainerId>, kNumTiers> idle;
        std::array<std::vector<ContainerId>, kNumTiers> setup;
    };

    const workload::FunctionProfile &profileOf(FunctionId fn) const;
    double rateMbMs(Tier tier) const;
    ServerId pickServer(Tier tier, MemoryMb memory_mb) const;
    ContainerId createContainer(FunctionId fn, Tier tier, ServerId server,
                                ContainerState state);
    void becomeIdle(Container &c, TimeMs expiry, Policy *policy);
    void destroyContainer(Container &c, bool wasteful, Policy *policy);
    bool evictToFit(Tier tier, MemoryMb memory_mb, Policy &policy,
                    FunctionId exclude_fn = kInvalidFunction);
    std::size_t ensureWarmImpl(FunctionId fn, Tier tier,
                               std::size_t count, TimeMs expiry,
                               Policy *evict_with);
    void removeFromPool(std::vector<ContainerId> &pool, ContainerId id);
    void scheduleExpiry(Container &c);
    void pushEvictEntry(const Container &c, double priority);

    const ClusterConfig &config_;
    const std::vector<workload::FunctionProfile> &profiles_;
    EventQueue &events_;
    MetricsCollector &metrics_;

    TimeMs now_ = 0;
    std::vector<Server> servers_;
    std::array<std::vector<ServerId>, kNumTiers> tier_servers_;
    std::array<double, kNumTiers> rate_mb_ms_{0.0, 0.0};

    std::unordered_map<ContainerId, Container> containers_;
    std::vector<FunctionPools> pools_; //!< indexed by FunctionId
    std::array<EvictHeap, kNumTiers> evict_heaps_;

    std::vector<std::uint32_t> live_per_fn_;
    ContainerId next_container_id_ = 1;
    std::uint64_t next_evict_seq_ = 0;
    std::uint64_t prewarm_failures_ = 0;
};

} // namespace iceb::sim

#endif // ICEB_SIM_CLUSTER_HH
