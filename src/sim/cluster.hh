/**
 * @file
 * Live cluster state: servers, containers, warm pools, eviction.
 *
 * Containers move through Setup -> IdleWarm -> Running and back to
 * IdleWarm (or destruction) exactly like OpenWhisk's Docker container
 * lifecycle the paper builds on. All memory accounting and keep-alive
 * cost attribution happens here:
 *
 *  - an idle-warm period that ends in a warm start is a *successful*
 *    warm-up cost;
 *  - an idle-warm period that ends in expiry or eviction is a
 *    *wasteful* warm-up cost (and memory wastage);
 *  - setup and execution time occupy memory but are not keep-alive
 *    cost (so the Oracle's just-in-time scheme is genuinely free, as
 *    the paper defines it).
 *
 * Hot-path data structures (PR 4, all preserving byte-identical
 * outputs -- see DESIGN.md section 9):
 *
 *  - containers live in a generational SlotMap arena; stale event and
 *    evict-heap references fail a generation check instead of a hash
 *    probe;
 *  - each tier keeps an indexed max-heap over server free memory, so
 *    worst-fit placement and the evictToFit loop are O(log servers)
 *    instead of O(servers) per step;
 *  - the idle/setup pools are intrusive doubly-linked lists threaded
 *    through the containers (O(1) removal anywhere). Linked lists --
 *    not swap-and-pop -- because the pools are *ordered*: acquireWarm
 *    takes the LIFO tail and ensureWarm renews newest-first, so
 *    scrambling the order would change which containers serve and
 *    which expire, and with them every figure's cost attribution.
 */

#ifndef ICEB_SIM_CLUSTER_HH
#define ICEB_SIM_CLUSTER_HH

#include <optional>
#include <vector>

#include "common/types.hh"
#include "obs/trace_sink.hh"
#include "sim/cluster_config.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/policy.hh"
#include "sim/server_heap.hh"
#include "sim/slot_map.hh"
#include "workload/function_profile.hh"

namespace iceb::sim
{

/** Lifecycle state of a container. */
enum class ContainerState : std::uint8_t
{
    Setup,    //!< image fetch + container creation (cold-start work)
    IdleWarm, //!< warm, waiting for an invocation; accrues cost
    Running,  //!< executing an invocation
};

/** "No slot" sentinel for the intrusive pool links. */
inline constexpr std::uint32_t kNullSlot = 0xffff'ffffu;

/** One container instance. */
struct Container
{
    ContainerId id = 0;
    FunctionId fn = kInvalidFunction;
    ServerId server = kInvalidServer;
    Tier tier = Tier::HighEnd;
    ContainerState state = ContainerState::Setup;
    MemoryMb memory_mb = 0;

    TimeMs ready_at = 0;    //!< when setup completes/completed
    TimeMs idle_since = 0;  //!< start of the current idle period
    TimeMs expiry = 0;      //!< keep-alive deadline while idle
    TimeMs last_used = 0;   //!< last execution start (or ready time)
    std::uint64_t expiry_token = 0; //!< invalidates stale expiry events
    bool prewarmed_unused = false;  //!< warmed by policy, not yet used

    /** Intrusive idle/setup pool links (slot indices). */
    std::uint32_t pool_prev = kNullSlot;
    std::uint32_t pool_next = kNullSlot;
};

/** One physical server's memory ledger. */
struct Server
{
    ServerId id = kInvalidServer;
    Tier tier = Tier::HighEnd;
    MemoryMb capacity_mb = 0;
    MemoryMb free_mb = 0;
};

/**
 * Pre-sizing hints for a run's dynamic structures; with all four set
 * to a previous run's peaks (SimulationMetrics::event_loop), a repeat
 * run performs zero steady-state allocations. Zero means "grow on
 * demand" (amortised, exactly as before).
 */
struct SimCapacityHints
{
    std::size_t containers = 0;    //!< slot-map arena slots
    std::size_t events = 0;        //!< pending-event queue + payload pool
    std::size_t events_per_bucket = 0; //!< calendar-queue bucket depth
    std::size_t evict_entries = 0; //!< per-tier eviction heap entries
    std::size_t wait_queue = 0;    //!< FIFO wait-queue ring capacity
};

/**
 * The mutable cluster: implements the policy-facing WarmupInterface
 * and the simulator-facing placement/lifecycle operations.
 */
class ClusterState : public WarmupInterface
{
  public:
    ClusterState(const ClusterConfig &config,
                 const std::vector<workload::FunctionProfile> &profiles,
                 EventQueue &events, MetricsCollector &metrics,
                 const SimCapacityHints &hints = {});

    /** Advance the cluster's notion of "now". */
    void setNow(TimeMs now) { now_ = now; }

    /** Attach this run's trace sink (null = tracing off). */
    void setTraceSink(obs::TraceSink *sink) { tsink_ = sink; }

    /**
     * Sum the idle-warm / in-setup pool sizes per tier (probe
     * sampling; O(functions)).
     */
    void sampleOccupancy(
        std::array<std::int64_t, kNumTiers> &idle_warm,
        std::array<std::int64_t, kNumTiers> &in_setup) const;

    // WarmupInterface
    TimeMs now() const override { return now_; }
    std::size_t ensureWarm(FunctionId fn, Tier tier, std::size_t count,
                           TimeMs expiry) override;
    std::size_t ensureWarmEvicting(FunctionId fn, Tier tier,
                                   std::size_t count, TimeMs expiry,
                                   Policy &policy) override;
    void schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                         TimeMs expiry) override;
    MemoryMb vacantMemoryMb(Tier tier) const override;
    MemoryMb totalMemoryMb(Tier tier) const override;
    std::size_t warmCount(FunctionId fn, Tier tier) const override;

    /** Result of acquiring a container for an invocation. */
    struct Acquisition
    {
        ContainerId id = 0;
        Tier tier = Tier::HighEnd;
        TimeMs ready_at = 0; //!< when execution may begin
        bool cold = false;   //!< counts as a cold start
    };

    /**
     * Take an idle-warm container (high tier first per @p order).
     * Marks it Running and records the successful keep-alive period.
     */
    std::optional<Acquisition>
    acquireWarm(FunctionId fn, const std::array<Tier, 2> &order);

    /**
     * Attach to an in-setup container (soonest-ready within the tier
     * order); the invocation pays the remaining setup latency as its
     * cold-start time.
     */
    std::optional<Acquisition>
    acquireSetup(FunctionId fn, const std::array<Tier, 2> &order);

    /**
     * Start a fresh cold container, evicting idle containers (in
     * @p policy's priority order) if needed. Fails only when running
     * and in-setup containers exhaust the memory of both tiers.
     */
    std::optional<Acquisition>
    acquireCold(FunctionId fn, const std::array<Tier, 2> &order,
                Policy &policy);

    /** Mark a container as executing until @p exec_end. */
    void startExecution(ContainerId id, TimeMs exec_end);

    /**
     * Execution finished: keep the container warm for
     * @p keep_alive_ms (0 destroys it immediately).
     */
    void finishExecution(ContainerId id, TimeMs keep_alive_ms,
                         Policy &policy);

    /** Event handlers driven by the simulator. */
    void handlePrewarmStart(const Event &event, Policy &policy);
    void handlePrewarmReady(const Event &event, Policy &policy);
    void handleContainerExpiry(const Event &event, Policy &policy);

    /** Container lookup (asserts existence). */
    const Container &container(ContainerId id) const;

    /**
     * Prefetch the arena record behind @p id (possibly stale; 0 is
     * fine). Pure performance hint -- the event loop issues it for
     * the next pending event so the line arrives while the current
     * handler's work is still in flight.
     */
    void prefetchContainer(ContainerId id) const
    {
        containers_.prefetch(SlotMap<Container>::slotOf(id));
    }

    /** Live container count (all states). */
    std::size_t liveContainers() const { return containers_.size(); }

    /** Live containers (any state) of one function. */
    std::uint32_t liveCount(FunctionId fn) const
    {
        return live_per_fn_[fn];
    }

    /** Prewarm requests dropped because no memory was vacant. */
    std::uint64_t prewarmFailures() const { return prewarm_failures_; }

  private:
    /**
     * Lazy eviction-candidate record, 24 bytes: every idle spell
     * pushes one and stale ones are skipped at pop. Validity is one
     * stamp compare -- the entry snapshots the container's expiry
     * stamp, which changes at exactly the moments the candidacy dies
     * (acquired, destroyed, or idled again with a fresh entry).
     */
    struct EvictEntry
    {
        double priority = 0.0;
        std::uint64_t stamp = 0; //!< expiry stamp snapshot
        std::uint32_t slot = 0;  //!< container arena slot
        std::uint32_t seq = 0;   //!< push order, for deterministic ties

        bool operator>(const EvictEntry &other) const
        {
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    /** Min-heap order (lowest priority evicted first). */
    struct EvictLater
    {
        bool operator()(const EvictEntry &a, const EvictEntry &b) const
        {
            return a > b;
        }
    };

    using EvictHeap = std::vector<EvictEntry>;

    /** Intrusive container list in insertion order. */
    struct PoolList
    {
        std::uint32_t head = kNullSlot;
        std::uint32_t tail = kNullSlot;
        std::uint32_t size = 0;
    };

    /** Setup pool: insertion-ordered list + cached min-ready_at slot. */
    struct SetupList : PoolList
    {
        std::uint32_t min_slot = kNullSlot;
    };

    /** Per-function per-tier container pools. */
    struct FunctionPools
    {
        std::array<PoolList, kNumTiers> idle;
        std::array<SetupList, kNumTiers> setup;
    };

    const workload::FunctionProfile &profileOf(FunctionId fn) const;
    double rateMbMs(Tier tier) const;
    ServerId pickServer(Tier tier, MemoryMb memory_mb) const;
    ContainerId createContainer(FunctionId fn, Tier tier, ServerId server,
                                ContainerState state);
    void becomeIdle(Container &c, TimeMs expiry, Policy *policy);
    void destroyContainer(Container &c, bool wasteful, Policy *policy);
    bool evictToFit(Tier tier, MemoryMb memory_mb, Policy &policy,
                    FunctionId exclude_fn = kInvalidFunction);
    std::size_t ensureWarmImpl(FunctionId fn, Tier tier,
                               std::size_t count, TimeMs expiry,
                               Policy *evict_with);
    void scheduleExpiry(Container &c);
    void pushEvictEntry(const Container &c, double priority);

    void poolPushBack(PoolList &list, Container &c);
    void poolUnlink(PoolList &list, Container &c);
    void setupPushBack(SetupList &list, Container &c);
    void setupUnlink(SetupList &list, Container &c);

    const ClusterConfig &config_;
    const std::vector<workload::FunctionProfile> &profiles_;
    EventQueue &events_;
    MetricsCollector &metrics_;
    obs::TraceSink *tsink_ = nullptr;

    TimeMs now_ = 0;
    std::vector<Server> servers_;
    std::array<std::vector<ServerId>, kNumTiers> tier_servers_;
    std::array<ServerFreeHeapT<std::vector<Server>>, kNumTiers>
        server_heaps_;
    std::array<MemoryMb, kNumTiers> tier_free_{0, 0};
    std::array<double, kNumTiers> rate_mb_ms_{0.0, 0.0};

    SlotMap<Container> containers_;
    std::vector<FunctionPools> pools_; //!< indexed by FunctionId
    std::array<EvictHeap, kNumTiers> evict_heaps_;
    /**
     * High-water mark of the priorities ever pushed per tier. Default
     * policies emit monotone priorities (last-used time), so a new
     * entry usually outranks everything pending and can sit at the
     * heap's tail without a sift -- std::push_heap would place it
     * there too, but only after a parent read that misses cache in a
     * multi-million-entry lazy heap.
     */
    std::array<double, kNumTiers> evict_high_water_;
    EvictHeap evict_spared_; //!< evictToFit scratch (exclude_fn entries)

    std::vector<std::uint32_t> live_per_fn_;
    /**
     * Per-slot stamp of the newest scheduled expiry, from a global
     * never-reused counter; zeroed whenever the occupant is acquired
     * or destroyed. A ContainerExpiry event carries its stamp, so the
     * stale check -- the common case by far, since every warm reuse
     * strands one pending expiry -- is one 8-byte read in a dense
     * array instead of a generation probe into the (much larger)
     * container arena.
     */
    std::vector<std::uint64_t> expiry_stamps_;
    std::uint64_t next_expiry_stamp_ = 0;
    std::uint64_t next_evict_seq_ = 0;
    std::uint64_t prewarm_failures_ = 0;
};

} // namespace iceb::sim

#endif // ICEB_SIM_CLUSTER_HH
