/**
 * @file
 * The warm-up / keep-alive policy interface.
 *
 * A Policy is the pluggable brain of the simulator: it decides at
 * every interval which functions to warm where (the paper's
 * inter-server dispatcher), how long containers stay alive after
 * execution, the tier order for cold placements, and the eviction
 * order under memory pressure. IceBreaker, OpenWhisk, Serverless in
 * the Wild, FaasCache and the Oracle all implement this interface.
 *
 * Observation contract: an online policy sees the workload only
 * through the streaming feed — the driver pushes each closed
 * interval's per-function arrival counts (onIntervalObserved) and
 * individual execution outcomes (onExecutionStart) as they happen.
 * This header deliberately knows nothing about trace::Trace, so a
 * policy written against it has no compile-time path to future
 * arrivals; the offline Oracle's privileged full-trace view lives in
 * the separate sim/oracle.hh and must be opted into explicitly.
 */

#ifndef ICEB_SIM_POLICY_HH
#define ICEB_SIM_POLICY_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "sim/cluster_config.hh"
#include "workload/function_profile.hh"

namespace iceb::obs
{
class RunRecorder;
} // namespace iceb::obs

namespace iceb::sim
{

/**
 * Everything an online policy may know at initialisation time. Note
 * the absence of any trace handle: arrivals reach the policy only
 * through the streaming observation feed, exactly the information a
 * real controller has at each point in time.
 */
struct SimContext
{
    /** Number of functions the driver will ever observe. */
    std::size_t num_functions = 0;

    const std::vector<workload::FunctionProfile> *profiles = nullptr;
    const ClusterConfig *cluster = nullptr;
    TimeMs interval_ms = 0;

    /**
     * This run's observability sinks, or null when observation is off.
     * Policies may append forecast probes; they must not base any
     * decision on it (observation never changes results).
     */
    obs::RunRecorder *recorder = nullptr;
};

/**
 * One closed decision interval's arrival observations, pushed by the
 * driver at the following interval boundary. The span is borrowed and
 * only valid for the duration of the onIntervalObserved call; policies
 * fold it into their own history state (predictor windows, histograms,
 * frequency counters) rather than retaining the pointer.
 */
struct IntervalObservation
{
    /** Index of the interval that just closed. */
    IntervalIndex interval = 0;

    /** Per-function arrival counts for that interval. */
    const std::uint32_t *arrivals = nullptr;
    std::size_t num_functions = 0;

    std::uint32_t arrivalsFor(FunctionId fn) const
    {
        return arrivals[fn];
    }
};

class Policy;

/**
 * Actions a policy can take on the cluster, plus the occupancy
 * signals the PDM's dynamic cut-offs need.
 */
class WarmupInterface
{
  public:
    virtual ~WarmupInterface() = default;

    /**
     * Ensure @p count warm (idle or in-setup) instances of @p fn on
     * @p tier, each kept alive until @p expiry. Missing instances are
     * created from vacant memory (never by eviction); existing ones
     * get their expiry extended. Returns the number of instances
     * provisioned (may be less than @p count under memory pressure).
     */
    virtual std::size_t ensureWarm(FunctionId fn, Tier tier,
                                   std::size_t count, TimeMs expiry) = 0;

    /**
     * Like ensureWarm, but a shortfall may evict other functions'
     * idle containers in @p policy's eviction-priority order (never
     * @p fn's own). This is how higher-utility warm-ups preempt
     * lower-priority ones under memory pressure.
     */
    virtual std::size_t ensureWarmEvicting(FunctionId fn, Tier tier,
                                           std::size_t count,
                                           TimeMs expiry,
                                           Policy &policy) = 0;

    /**
     * Schedule a warm-up to begin at @p start_time (>= now); used by
     * the Oracle's just-in-time strategy.
     */
    virtual void schedulePrewarm(FunctionId fn, Tier tier,
                                 TimeMs start_time, TimeMs expiry) = 0;

    /** Currently unallocated memory on a tier. */
    virtual MemoryMb vacantMemoryMb(Tier tier) const = 0;

    /** Total memory of a tier. */
    virtual MemoryMb totalMemoryMb(Tier tier) const = 0;

    /** Idle or in-setup instances of fn on a tier. */
    virtual std::size_t warmCount(FunctionId fn, Tier tier) const = 0;

    /** Current simulation time. */
    virtual TimeMs now() const = 0;
};

/**
 * Abstract warm-up / keep-alive policy.
 */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

    /** Called once before the run. Default stores the context. */
    virtual void initialize(const SimContext &ctx) { ctx_ = &ctx; }

    /**
     * A decision interval closed: the driver pushes its per-function
     * arrival counts. Called before onIntervalStart of the following
     * interval; deliberately has no cluster access (observation hooks
     * cannot act, decision hooks cannot peek).
     */
    virtual void onIntervalObserved(const IntervalObservation &closed)
    {
        (void)closed;
    }

    /**
     * Called at every decision-interval boundary, before that
     * interval's invocations arrive.
     */
    virtual void
    onIntervalStart(IntervalIndex interval, WarmupInterface &cluster)
    {
        (void)interval;
        (void)cluster;
    }

    /** An invocation began executing (cold or warm) on a tier. */
    virtual void
    onExecutionStart(FunctionId fn, Tier tier, bool cold, TimeMs now)
    {
        (void)fn;
        (void)tier;
        (void)cold;
        (void)now;
    }

    /**
     * Keep-alive duration granted to a container whose execution just
     * finished; 0 destroys it immediately.
     */
    virtual TimeMs keepAliveAfterExecutionMs(FunctionId fn, Tier tier,
                                             TimeMs now) = 0;

    /** Tier order to try for a cold placement (first = preferred). */
    virtual std::array<Tier, 2>
    coldPlacementOrder(FunctionId fn)
    {
        (void)fn;
        // The paper found competing schemes perform best when
        // prioritising high-end servers; that is the default.
        return {Tier::HighEnd, Tier::LowEnd};
    }

    /**
     * Eviction priority for an idle container under memory pressure;
     * the lowest value is reclaimed first. Default approximates LRU.
     */
    virtual double
    evictionPriority(FunctionId fn, Tier tier, TimeMs last_used,
                     TimeMs now)
    {
        (void)fn;
        (void)tier;
        (void)now;
        return static_cast<double>(last_used);
    }

    /** A warmed-up instance was destroyed without ever being used. */
    virtual void onWarmupWasted(FunctionId fn, Tier tier, TimeMs now)
    {
        (void)fn;
        (void)tier;
        (void)now;
    }

    /** An idle container was evicted to make room for a cold start. */
    virtual void onEviction(FunctionId fn, Tier tier, TimeMs now)
    {
        (void)fn;
        (void)tier;
        (void)now;
    }

    /**
     * Fixed per-invocation decision latency charged to every service
     * time (the paper accounts its 30 ms FIP+PDM overhead this way,
     * pessimistically on the critical path).
     */
    virtual TimeMs overheadMs() const { return 0; }

    /**
     * Opt-in for the sharded engine's parallel phase. Return true only
     * when every mid-interval hook — onExecutionStart,
     * keepAliveAfterExecutionMs, coldPlacementOrder, evictionPriority,
     * onWarmupWasted, onEviction, overheadMs — touches nothing but
     * per-function state (disjoint across functions) and state that is
     * written exclusively from the interval hooks (initialize /
     * onIntervalObserved / onIntervalStart). The sharded engine runs
     * its cells concurrently between interval barriers and may invoke
     * the mid-interval hooks from several threads at once for
     * functions in different cells; the interval hooks always run
     * serially on the coordinator at the barrier, so barrier-written
     * shared state may be read freely mid-interval. Policies that
     * cannot promise this keep the default: the sharded engine then
     * executes its cells serially in cell order — results stay
     * deterministic and identical for every worker count, there is
     * just no intra-run speedup.
     */
    virtual bool shardCompatible() const { return false; }

  protected:
    const SimContext *ctx_ = nullptr;
};

} // namespace iceb::sim

#endif // ICEB_SIM_POLICY_HH
