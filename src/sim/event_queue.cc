#include "sim/event_queue.hh"

#include <algorithm>

namespace iceb::sim
{

EventQueue::Payload
EventQueue::packPayload(const Event &event)
{
    Payload p = {};
    switch (event.type) {
      case EventType::InvocationArrival:
        p.fn = event.fn;
        break;
      case EventType::IntervalTick:
        p.interval = event.interval;
        break;
      case EventType::PrewarmStart:
        p.prewarm = PrewarmPayload{event.expiry, event.fn, event.tier};
        break;
      case EventType::PrewarmReady:
      case EventType::ExecutionComplete:
        p.cfn = ContainerFnPayload{event.container, event.fn};
        break;
      case EventType::ContainerExpiry:
        p.expiry = ExpiryPayload{event.container, event.token};
        break;
    }
    return p;
}

void
EventQueue::unpackPayload(Event &event, const Payload &p)
{
    switch (event.type) {
      case EventType::InvocationArrival:
        event.fn = p.fn;
        break;
      case EventType::IntervalTick:
        event.interval = p.interval;
        break;
      case EventType::PrewarmStart:
        event.expiry = p.prewarm.expiry;
        event.fn = p.prewarm.fn;
        event.tier = p.prewarm.tier;
        break;
      case EventType::PrewarmReady:
      case EventType::ExecutionComplete:
        event.container = p.cfn.container;
        event.fn = p.cfn.fn;
        break;
      case EventType::ContainerExpiry:
        event.container = p.expiry.container;
        event.token = p.expiry.token;
        break;
    }
}

void
EventQueue::sideSiftUp(std::size_t i)
{
    const Entry entry = side_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!earlier(entry, side_[parent]))
            break;
        side_[i] = side_[parent];
        i = parent;
    }
    side_[i] = entry;
}

void
EventQueue::sideSiftDown(std::size_t i)
{
    const std::size_t n = side_.size();
    const Entry entry = side_[i];
    while (true) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n)
            break;
        const std::size_t last_child =
            first_child + 4 <= n ? first_child + 4 : n;
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (earlier(side_[c], side_[best]))
                best = c;
        }
        if (!earlier(side_[best], entry))
            break;
        side_[i] = side_[best];
        i = best;
    }
    side_[i] = entry;
}

/**
 * Route an entry to the side heap (its bucket has already been
 * consumed), its wheel bucket, or the overflow list. Does not touch
 * size_: callers account separately, so rescans can re-file entries.
 */
void
EventQueue::insertEntry(const Entry &entry)
{
    const std::int64_t bucket = entry.time >> kBucketShift;
    if (bucket <= epoch_) {
        side_.push_back(entry);
        sideSiftUp(side_.size() - 1);
    } else if (bucket <
               epoch_ + static_cast<std::int64_t>(kNumBuckets)) {
        auto &slot = buckets_[static_cast<std::size_t>(
            bucket & kBucketMask)];
        slot.push_back(entry);
        if (slot.size() > peak_bucket_)
            peak_bucket_ = slot.size();
    } else {
        overflow_.push_back(entry);
    }
}

/**
 * Re-file overflow entries that now fall inside the wheel horizon.
 * The counting-scatter drain relies on bucket vectors being
 * seq-sorted, so a re-file splices into its bucket at the seq
 * position instead of appending. That position is always ahead of
 * every direct push: an entry overflowed for bucket b was pushed
 * while epoch <= b - kNumBuckets, whereas direct pushes to b happen
 * strictly later, so re-files (themselves in push order) belong to a
 * prefix. The splice is O(bucket) but runs once per wheel revolution
 * for the handful of events parked beyond the horizon.
 */
void
EventQueue::rescanOverflow()
{
    std::size_t keep = 0;
    const std::size_t count = overflow_.size();
    for (std::size_t i = 0; i < count; ++i) {
        const Entry entry = overflow_[i];
        const std::int64_t bucket = entry.time >> kBucketShift;
        if (bucket >= epoch_ + static_cast<std::int64_t>(kNumBuckets)) {
            overflow_[keep++] = entry;
        } else if (bucket <= epoch_) {
            // At or behind the bucket being consumed: the side heap
            // orders by the full key and the pop path merges it.
            side_.push_back(entry);
            sideSiftUp(side_.size() - 1);
        } else {
            auto &slot = buckets_[static_cast<std::size_t>(
                bucket & kBucketMask)];
            const auto pos = std::lower_bound(
                slot.begin(), slot.end(), entry,
                [](const Entry &a, const Entry &b) {
                    return a.seq_type < b.seq_type;
                });
            slot.insert(pos, entry);
            if (slot.size() > peak_bucket_)
                peak_bucket_ = slot.size();
        }
    }
    overflow_.resize(keep);
}

/**
 * Advance the wheel until the sorted run or side heap holds the next
 * event. Buckets are consumed whole: everything in bucket epoch_
 * precedes everything in later buckets, so ordering one bucket at a
 * time preserves the global (time, seq) pop order exactly. A wrap
 * rescan can re-file overflow entries into the side heap mid-loop;
 * the current bucket is still drained in the same iteration, and the
 * pop path merges the two.
 *
 * The drain is a stable counting sort on the in-bucket time offset:
 * bucket vectors hold direct pushes only, in ascending seq order, so
 * the stable scatter lands them in exact (time, seq) order without a
 * single key comparison.
 */
void
EventQueue::ensureNear()
{
    while (nearEmpty() && size_ > 0) {
        ++epoch_;
        // Each full wheel revolution brings ~17 more minutes of sim
        // time inside the horizon; re-file what now fits.
        if ((epoch_ & kBucketMask) == 0 && !overflow_.empty())
            rescanOverflow();
        auto &bucket =
            buckets_[static_cast<std::size_t>(epoch_ & kBucketMask)];
        if (!bucket.empty()) {
            const std::size_t n = bucket.size();
            if (run_.size() < n)
                run_.resize(n);
            const TimeMs base = epoch_ << kBucketShift;
            std::uint32_t counts[std::size_t{1} << kBucketShift] = {};
            for (const Entry &entry : bucket)
                ++counts[entry.time - base];
            std::uint32_t running = 0;
            for (std::uint32_t &count : counts) {
                const std::uint32_t start = running;
                running += count;
                count = start;
            }
            for (const Entry &entry : bucket)
                run_[counts[entry.time - base]++] = entry;
            bucket.clear();
            run_pos_ = 0;
            run_len_ = n;
        }
    }
}

/** Earliest pending entry; requires size_ > 0 (runs ensureNear). */
const EventQueue::Entry &
EventQueue::front()
{
    ensureNear();
    if (run_pos_ < run_len_ &&
        (side_.empty() || earlier(run_[run_pos_], side_.front()))) {
        return run_[run_pos_];
    }
    return side_.front();
}

/** Remove the entry front() returned. */
void
EventQueue::popFront()
{
    if (run_pos_ < run_len_ &&
        (side_.empty() || earlier(run_[run_pos_], side_.front()))) {
        ++run_pos_;
    } else {
        side_.front() = side_.back();
        side_.pop_back();
        if (!side_.empty())
            sideSiftDown(0);
    }
    --size_;
}

void
EventQueue::push(Event event)
{
    Entry entry;
    entry.time = event.time;
    entry.seq_type = (next_seq_++ << 8) |
        static_cast<std::uint64_t>(event.type);
    entry.payload = packPayload(event);
    insertEntry(entry);
    ++size_;
    if (size_ > peak_size_)
        peak_size_ = size_;
}

std::optional<Event>
EventQueue::pop()
{
    if (size_ == 0)
        return std::nullopt;
    const Entry entry = front();

    Event event;
    event.time = entry.time;
    event.seq = entry.seq();
    event.type = entry.type();
    unpackPayload(event, entry.payload);

    popFront();
    return event;
}

std::optional<TimeMs>
EventQueue::peekTime()
{
    if (size_ == 0)
        return std::nullopt;
    return front().time;
}

ContainerId
EventQueue::peekContainer()
{
    if (size_ == 0)
        return 0;
    const Entry &entry = front();
    switch (entry.type()) {
      case EventType::PrewarmReady:
      case EventType::ExecutionComplete:
        return entry.payload.cfn.container;
      case EventType::ContainerExpiry:
        return entry.payload.expiry.container;
      default:
        return 0;
    }
}

std::optional<EventQueue::Key>
EventQueue::peekKey()
{
    if (size_ == 0)
        return std::nullopt;
    const Entry &entry = front();
    return Key{entry.time, entry.seq()};
}

} // namespace iceb::sim
