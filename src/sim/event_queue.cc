#include "sim/event_queue.hh"

namespace iceb::sim
{

void
EventQueue::push(Event event)
{
    event.seq = next_seq_++;
    heap_.push(event);
}

std::optional<Event>
EventQueue::pop()
{
    if (heap_.empty())
        return std::nullopt;
    Event event = heap_.top();
    heap_.pop();
    return event;
}

std::optional<TimeMs>
EventQueue::peekTime() const
{
    if (heap_.empty())
        return std::nullopt;
    return heap_.top().time;
}

} // namespace iceb::sim
