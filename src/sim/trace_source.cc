#include "sim/trace_source.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace iceb::sim
{

void
sortArrivalBlockByTime(ArrivalRecord *block, ArrivalRecord *scratch,
                       std::size_t n, TimeMs block_base,
                       TimeMs interval_ms)
{
    // The block is already in rank order, so a STABLE sort keyed on
    // time alone yields (time, rank); an LSD radix sort over the
    // in-interval offset does that in a few sequential counting
    // passes instead of an O(n log n) comparison sort.
    if (n <= 1)
        return;
    ArrivalRecord *src = block;
    ArrivalRecord *dst = scratch;
    std::uint32_t counts[256];
    for (int shift = 0; (interval_ms - 1) >> shift != 0; shift += 8) {
        std::fill(std::begin(counts), std::end(counts), 0u);
        for (std::size_t i = 0; i < n; ++i)
            ++counts[((src[i].time - block_base) >> shift) & 0xff];
        std::uint32_t running = 0;
        for (std::uint32_t &count : counts) {
            const std::uint32_t start = running;
            running += count;
            count = start;
        }
        for (std::size_t i = 0; i < n; ++i) {
            dst[counts[((src[i].time - block_base) >> shift) & 0xff]++] =
                src[i];
        }
        std::swap(src, dst);
    }
    if (src != block)
        std::copy(src, src + n, block);
}

// ------------------------------------------------- MaterializedTraceSource

MaterializedTraceSource::MaterializedTraceSource(const trace::Trace &tr,
                                                 std::uint64_t seed)
    : trace_(tr)
{
    build(seed);
}

std::size_t
MaterializedTraceSource::numFunctions() const
{
    return trace_.numFunctions();
}

std::size_t
MaterializedTraceSource::numIntervals() const
{
    return trace_.numIntervals();
}

TimeMs
MaterializedTraceSource::intervalMs() const
{
    return trace_.intervalMs();
}

std::uint64_t
MaterializedTraceSource::totalArrivals() const
{
    return stream_.size();
}

std::size_t
MaterializedTraceSource::maxIntervalArrivals() const
{
    return max_interval_arrivals_;
}

ArrivalWindow
MaterializedTraceSource::intervalWindow(IntervalIndex interval)
{
    const std::size_t iv = static_cast<std::size_t>(interval);
    const std::size_t begin = stream_begin_[iv];
    return ArrivalWindow{stream_.data() + begin,
                         stream_begin_[iv + 1] - begin};
}

void
MaterializedTraceSource::build(std::uint64_t seed)
{
    Rng master(seed);
    const TimeMs interval_ms = trace_.intervalMs();
    arrival_schedule_.resize(trace_.numFunctions());

    std::size_t total_arrivals = 0;
    std::vector<TimeMs> times; // reused across (fn, interval) bursts
    for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
        Rng rng = master.fork(fn);
        const auto &series = trace_.function(fn);
        auto &schedule = arrival_schedule_[fn];
        schedule.reserve(series.totalInvocations());
        total_arrivals += series.totalInvocations();
        for (std::size_t iv = 0; iv < series.concurrency.size(); ++iv) {
            const std::uint32_t count = series.concurrency[iv];
            if (count == 0)
                continue;
            // An interval's invocations form one burst: concurrent
            // requests land within a few seconds of each other (so
            // they genuinely need that many instances), at a jittered
            // offset inside the interval.
            const TimeMs base =
                static_cast<TimeMs>(iv) * interval_ms;
            const TimeMs span =
                std::min<TimeMs>(5000, interval_ms - 1);
            const TimeMs offset = static_cast<TimeMs>(
                rng.uniformInt(0, interval_ms - 1 - span));
            times.clear();
            for (std::uint32_t i = 0; i < count; ++i) {
                times.push_back(base + offset +
                                static_cast<TimeMs>(
                                    rng.uniformInt(0, span)));
            }
            std::sort(times.begin(), times.end());
            schedule.insert(schedule.end(), times.begin(), times.end());
        }
    }

    // Flatten into per-interval blocks in the old push order
    // (function-major, time-sorted within a function), then sort each
    // block by (time, rank) so the run loop can merge it against the
    // event heap front-to-back. Every arrival of interval iv lies in
    // [iv * interval_ms, (iv + 1) * interval_ms), so the blocks
    // partition the schedule exactly as the old per-tick cursor scan
    // consumed it.
    const std::size_t num_intervals = trace_.numIntervals();
    stream_.reserve(total_arrivals);
    stream_begin_.resize(num_intervals + 1);
    std::vector<std::size_t> cursor(trace_.numFunctions(), 0);
    std::vector<ArrivalRecord> scratch; // radix ping-pong buffer
    for (std::size_t iv = 0; iv < num_intervals; ++iv) {
        const std::size_t block_begin = stream_.size();
        stream_begin_[iv] = block_begin;
        const TimeMs block_base = static_cast<TimeMs>(iv) * interval_ms;
        const TimeMs interval_end = block_base + interval_ms;
        for (FunctionId fn = 0; fn < trace_.numFunctions(); ++fn) {
            const auto &schedule = arrival_schedule_[fn];
            std::size_t &pos = cursor[fn];
            while (pos < schedule.size() &&
                   schedule[pos] < interval_end) {
                ArrivalRecord arrival;
                arrival.time = schedule[pos];
                arrival.rank = static_cast<std::uint32_t>(
                    stream_.size() - block_begin);
                arrival.fn = fn;
                stream_.push_back(arrival);
                ++pos;
            }
        }
        const std::size_t n = stream_.size() - block_begin;
        if (n > max_interval_arrivals_)
            max_interval_arrivals_ = n;
        if (n > 1) {
            scratch.resize(n);
            sortArrivalBlockByTime(stream_.data() + block_begin,
                                   scratch.data(), n, block_base,
                                   interval_ms);
        }
    }
    stream_begin_[num_intervals] = stream_.size();
}

// ------------------------------------------------ StreamingWorkloadSource

namespace
{

/** (interval, fn) packed as one 64-bit merge key; seq breaks ties. */
inline std::uint64_t
majorKey(std::uint32_t interval, std::uint32_t fn)
{
    return (static_cast<std::uint64_t>(interval) << 32) | fn;
}

} // namespace

StreamingWorkloadSource::StreamingWorkloadSource(
    trace::FunctionRowSource &rows, StreamingSourceOptions options)
    : options_(options), interval_ms_(rows.intervalMs())
{
    ICEB_ASSERT(options_.chunk_records > 0 && options_.read_records > 0,
                "streaming source buffers must be non-empty");
    ICEB_ASSERT(interval_ms_ > 0 &&
                    interval_ms_ <=
                        std::numeric_limits<std::uint32_t>::max(),
                "interval width must fit the 32-bit spill offset");
    ingest(rows);
}

StreamingWorkloadSource::~StreamingWorkloadSource()
{
    if (spill_ != nullptr)
        std::fclose(spill_);
}

std::size_t
StreamingWorkloadSource::numFunctions() const
{
    return metas_.size();
}

std::size_t
StreamingWorkloadSource::numIntervals() const
{
    return num_intervals_;
}

TimeMs
StreamingWorkloadSource::intervalMs() const
{
    return interval_ms_;
}

std::uint64_t
StreamingWorkloadSource::totalArrivals() const
{
    return total_arrivals_;
}

std::size_t
StreamingWorkloadSource::maxIntervalArrivals() const
{
    return max_interval_arrivals_;
}

void
StreamingWorkloadSource::ingest(trace::FunctionRowSource &rows)
{
    Rng master(options_.seed);
    chunk_.reserve(options_.chunk_records);

    trace::FunctionRow row;
    std::vector<TimeMs> times; // reused across (fn, interval) bursts
    while (rows.next(row)) {
        ICEB_ASSERT(row.id == metas_.size(),
                    "row ids must be dense and ascending");
        // Fork for EVERY function, in id order: forking advances the
        // master stream, so the fork order is part of the determinism
        // contract shared with MaterializedTraceSource::build.
        Rng rng = master.fork(row.id);

        if (metas_.empty()) {
            num_intervals_ = row.num_intervals;
            interval_totals_.assign(num_intervals_, 0);
        } else if (row.num_intervals != num_intervals_) {
            fatal("workload stream row ", row.id, " has ",
                  row.num_intervals, " intervals, expected ",
                  num_intervals_);
        }

        StreamedFunctionMeta meta;
        meta.name.assign(row.name);
        meta.memory_mb = row.memory_mb;
        meta.avg_exec_ms = row.avg_exec_ms;
        meta.cls = row.cls;
        metas_.push_back(std::move(meta));

        for (std::size_t iv = 0; iv < num_intervals_; ++iv) {
            const std::uint32_t count = row.counts[iv];
            if (count == 0)
                continue;
            // Same burst model (and RNG draws) as the materialized
            // builder: one jittered burst per active interval.
            const TimeMs span =
                std::min<TimeMs>(5000, interval_ms_ - 1);
            const TimeMs offset = static_cast<TimeMs>(
                rng.uniformInt(0, interval_ms_ - 1 - span));
            times.clear();
            for (std::uint32_t i = 0; i < count; ++i) {
                times.push_back(offset +
                                static_cast<TimeMs>(
                                    rng.uniformInt(0, span)));
            }
            std::sort(times.begin(), times.end());
            for (std::uint32_t i = 0; i < count; ++i) {
                SpillRecord record;
                record.interval = static_cast<std::uint32_t>(iv);
                record.fn = row.id;
                record.seq = i;
                record.offset =
                    static_cast<std::uint32_t>(times[i]);
                chunk_.push_back(record);
                if (chunk_.size() == options_.chunk_records)
                    spillChunk();
            }
            interval_totals_[iv] += count;
            total_arrivals_ += count;
        }
    }
    if (metas_.empty())
        fatal("workload stream contained no functions");

    const auto record_less = [](const SpillRecord &a,
                                const SpillRecord &b) {
        const std::uint64_t ka = majorKey(a.interval, a.fn);
        const std::uint64_t kb = majorKey(b.interval, b.fn);
        return ka < kb || (ka == kb && a.seq < b.seq);
    };
    if (spill_ == nullptr) {
        // Everything fits one chunk: keep it as the single sorted
        // in-memory run and never touch the filesystem.
        std::sort(chunk_.begin(), chunk_.end(), record_less);
    } else {
        if (!chunk_.empty())
            spillChunk();
        chunk_.clear();
        chunk_.shrink_to_fit(); // the merge reads through run buffers
        for (Run &run : runs_) {
            run.buffer.resize(std::min<std::uint64_t>(
                options_.read_records, run.count));
        }
        heap_.reserve(runs_.size());
    }

    for (std::uint64_t n : interval_totals_) {
        if (n > max_interval_arrivals_)
            max_interval_arrivals_ = static_cast<std::size_t>(n);
    }
    block_.reserve(max_interval_arrivals_);
    block_scratch_.resize(max_interval_arrivals_);
}

void
StreamingWorkloadSource::spillChunk()
{
    std::sort(chunk_.begin(), chunk_.end(),
              [](const SpillRecord &a, const SpillRecord &b) {
                  const std::uint64_t ka = majorKey(a.interval, a.fn);
                  const std::uint64_t kb = majorKey(b.interval, b.fn);
                  return ka < kb || (ka == kb && a.seq < b.seq);
              });
    if (spill_ == nullptr) {
        spill_ = std::tmpfile();
        if (spill_ == nullptr)
            fatal("cannot create the arrival spill temp file");
    }
    if (std::fseek(spill_, 0, SEEK_END) != 0)
        fatal("seek failed on the arrival spill file");
    const std::size_t written = std::fwrite(
        chunk_.data(), sizeof(SpillRecord), chunk_.size(), spill_);
    if (written != chunk_.size())
        fatal("short write to the arrival spill file (disk full?)");

    Run run;
    run.first_record = spilled_records_;
    run.count = chunk_.size();
    runs_.push_back(std::move(run));
    spilled_records_ += chunk_.size();
    spilled_bytes_ +=
        static_cast<std::uint64_t>(chunk_.size()) * sizeof(SpillRecord);
    chunk_.clear();
}

void
StreamingWorkloadSource::refill(Run &run)
{
    const std::uint64_t remaining = run.count - run.consumed;
    const std::size_t to_read = static_cast<std::size_t>(
        std::min<std::uint64_t>(run.buffer.size(), remaining));
    if (to_read == 0) {
        run.buf_pos = run.buf_len = 0;
        return;
    }
    const auto byte_offset = static_cast<long>(
        (run.first_record + run.consumed) * sizeof(SpillRecord));
    if (std::fseek(spill_, byte_offset, SEEK_SET) != 0)
        fatal("seek failed on the arrival spill file");
    const std::size_t got = std::fread(
        run.buffer.data(), sizeof(SpillRecord), to_read, spill_);
    if (got != to_read)
        fatal("short read from the arrival spill file");
    run.buf_pos = 0;
    run.buf_len = to_read;
    run.consumed += to_read;
}

/** Advance run @p run_index past its current record; false when the
 * run is exhausted. */
bool
StreamingWorkloadSource::advanceRun(std::size_t run_index)
{
    Run &run = runs_[run_index];
    ++run.buf_pos;
    if (run.buf_pos < run.buf_len)
        return true;
    if (run.consumed < run.count) {
        refill(run);
        return run.buf_len > 0;
    }
    return false;
}

void
StreamingWorkloadSource::heapSiftDown(std::size_t slot)
{
    const auto less = [this](std::uint32_t ra, std::uint32_t rb) {
        const SpillRecord &a = runs_[ra].buffer[runs_[ra].buf_pos];
        const SpillRecord &b = runs_[rb].buffer[runs_[rb].buf_pos];
        const std::uint64_t ka = majorKey(a.interval, a.fn);
        const std::uint64_t kb = majorKey(b.interval, b.fn);
        return ka < kb || (ka == kb && a.seq < b.seq);
    };
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t left = 2 * slot + 1;
        if (left >= n)
            return;
        std::size_t best = left;
        const std::size_t right = left + 1;
        if (right < n && less(heap_[right], heap_[left]))
            best = right;
        if (!less(heap_[best], heap_[slot]))
            return;
        std::swap(heap_[best], heap_[slot]);
        slot = best;
    }
}

void
StreamingWorkloadSource::beginRun()
{
    run_open_ = true;
    next_interval_ = 0;
    mem_cursor_ = 0;
    if (spill_ == nullptr)
        return;
    heap_.clear();
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        Run &run = runs_[i];
        run.consumed = 0;
        run.buf_pos = run.buf_len = 0;
        refill(run);
        if (run.buf_len > 0)
            heap_.push_back(static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = heap_.size() / 2; i-- > 0;)
        heapSiftDown(i);
}

void
StreamingWorkloadSource::fillBlock(std::size_t iv)
{
    block_.clear();
    const TimeMs base = static_cast<TimeMs>(iv) * interval_ms_;
    if (spill_ == nullptr) {
        while (mem_cursor_ < chunk_.size() &&
               chunk_[mem_cursor_].interval == iv) {
            const SpillRecord &rec = chunk_[mem_cursor_++];
            ArrivalRecord arrival;
            arrival.time = base + static_cast<TimeMs>(rec.offset);
            arrival.rank = static_cast<std::uint32_t>(block_.size());
            arrival.fn = rec.fn;
            block_.push_back(arrival);
        }
    } else {
        // Pop every record of this interval off the k-way merge in
        // (fn, seq) order — which IS the legacy function-major rank
        // order the materialized builder assigns.
        while (!heap_.empty()) {
            const std::uint32_t r = heap_[0];
            const Run &run = runs_[r];
            const SpillRecord &rec = run.buffer[run.buf_pos];
            if (rec.interval != iv)
                break;
            ArrivalRecord arrival;
            arrival.time = base + static_cast<TimeMs>(rec.offset);
            arrival.rank = static_cast<std::uint32_t>(block_.size());
            arrival.fn = rec.fn;
            block_.push_back(arrival);
            if (advanceRun(r)) {
                heapSiftDown(0);
            } else {
                heap_[0] = heap_.back();
                heap_.pop_back();
                if (!heap_.empty())
                    heapSiftDown(0);
            }
        }
    }
    ICEB_ASSERT(block_.size() == interval_totals_[iv],
                "interval window lost arrivals in the merge");
    sortArrivalBlockByTime(block_.data(), block_scratch_.data(),
                           block_.size(), base, interval_ms_);
}

ArrivalWindow
StreamingWorkloadSource::intervalWindow(IntervalIndex interval)
{
    ICEB_ASSERT(run_open_,
                "beginRun() must precede intervalWindow()");
    const std::size_t iv = static_cast<std::size_t>(interval);
    ICEB_ASSERT(iv == next_interval_,
                "a streaming source serves strictly ascending "
                "intervals");
    fillBlock(iv);
    ++next_interval_;
    return ArrivalWindow{block_.data(), block_.size()};
}

std::vector<workload::FunctionProfile>
matchStreamedProfiles(const StreamingWorkloadSource &source,
                      const workload::ProfileMatcher &matcher)
{
    std::vector<workload::FunctionProfile> out;
    out.reserve(source.functions().size());
    for (const StreamedFunctionMeta &meta : source.functions()) {
        out.push_back(matcher.profileFor(meta.name, meta.memory_mb,
                                         meta.avg_exec_ms));
    }
    return out;
}

} // namespace iceb::sim
