#include "trace/azure_loader.hh"

#include <fstream>
#include <memory>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::trace
{

Trace
loadAzureCsv(std::istream &in, const AzureLoadOptions &options)
{
    CsvReader reader(in);

    if (options.has_header) {
        if (!reader.nextRow())
            fatal("Azure CSV is empty");
    }

    std::unique_ptr<Trace> trace;
    std::size_t minute_columns = 0;

    while (auto row = reader.nextRow()) {
        if (row->size() <= options.metadata_columns) {
            fatal("Azure CSV row ", reader.rowsRead(),
                  " has no invocation columns");
        }
        const std::size_t counts = row->size() - options.metadata_columns;
        if (!trace) {
            minute_columns = counts;
            trace = std::make_unique<Trace>(minute_columns, kMsPerMinute);
        } else if (counts != minute_columns) {
            fatal("Azure CSV row ", reader.rowsRead(), " has ", counts,
                  " minute columns, expected ", minute_columns);
        }

        FunctionSeries series;
        series.name = options.metadata_columns > 0 ? (*row)[0]
                                                   : std::string("fn");
        series.memory_mb = options.default_memory_mb;
        series.avg_exec_ms = options.default_exec_ms;
        // Optional numeric metadata: col 1 = memory MB, col 2 = avg
        // execution ms (the layout writeAzureCsv produces).
        if (options.metadata_columns >= 2 && !(*row)[1].empty()) {
            series.memory_mb =
                csvToInt((*row)[1], "Azure CSV memory column");
        }
        if (options.metadata_columns >= 3 && !(*row)[2].empty()) {
            series.avg_exec_ms =
                csvToInt((*row)[2], "Azure CSV exec-time column");
        }

        series.concurrency.reserve(minute_columns);
        for (std::size_t i = 0; i < minute_columns; ++i) {
            const std::int64_t count = csvToInt(
                (*row)[options.metadata_columns + i],
                "Azure CSV invocation count");
            if (count < 0)
                fatal("negative invocation count in Azure CSV");
            series.concurrency.push_back(
                static_cast<std::uint32_t>(count));
        }
        trace->addFunction(std::move(series));
        if (options.max_functions > 0 &&
            trace->numFunctions() >= options.max_functions) {
            break;
        }
    }

    if (!trace)
        fatal("Azure CSV contained no data rows");
    return std::move(*trace);
}

Trace
loadAzureCsvFile(const std::string &path, const AzureLoadOptions &options)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open Azure trace file '", path, "'");
    return loadAzureCsv(in, options);
}

void
writeAzureCsv(std::ostream &out, const Trace &trace)
{
    CsvWriter writer(out);
    CsvRow header = {"name", "memory_mb", "avg_exec_ms"};
    for (std::size_t i = 1; i <= trace.numIntervals(); ++i)
        header.push_back("m" + std::to_string(i));
    writer.writeRow(header);

    for (const auto &fn : trace.functions()) {
        CsvRow row = {fn.name, std::to_string(fn.memory_mb),
                      std::to_string(fn.avg_exec_ms)};
        for (std::uint32_t count : fn.concurrency)
            row.push_back(std::to_string(count));
        writer.writeRow(row);
    }
}

} // namespace iceb::trace
