#include "trace/azure_loader.hh"

#include <fstream>
#include <optional>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "trace/stream_reader.hh"

namespace iceb::trace
{

namespace
{

/** Materialize every row of an Azure CSV row stream into a Trace. */
Trace
materializeRows(AzureCsvRowStream &rows, const std::string &source_name)
{
    std::optional<Trace> trace;
    FunctionRow row;
    while (rows.next(row)) {
        if (!trace)
            trace.emplace(row.num_intervals, kMsPerMinute);
        FunctionSeries series;
        series.name.assign(row.name);
        series.memory_mb = row.memory_mb;
        series.avg_exec_ms = row.avg_exec_ms;
        series.concurrency.assign(row.counts,
                                  row.counts + row.num_intervals);
        trace->addFunction(std::move(series));
    }
    if (!trace)
        fatal(source_name, " contained no data rows");
    return std::move(*trace);
}

} // namespace

Trace
loadAzureCsv(std::istream &in, const AzureLoadOptions &options)
{
    AzureCsvRowStream rows(in, options);
    return materializeRows(rows, "Azure CSV");
}

Trace
loadAzureCsvFile(const std::string &path, const AzureLoadOptions &options)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open Azure trace file '", path, "'");
    AzureCsvRowStream rows(in, options, path);
    return materializeRows(rows, path);
}

void
writeAzureCsv(std::ostream &out, const Trace &trace)
{
    CsvWriter writer(out);
    CsvRow header = {"name", "memory_mb", "avg_exec_ms"};
    for (std::size_t i = 1; i <= trace.numIntervals(); ++i)
        header.push_back("m" + std::to_string(i));
    writer.writeRow(header);

    for (const auto &fn : trace.functions()) {
        CsvRow row = {fn.name, std::to_string(fn.memory_mb),
                      std::to_string(fn.avg_exec_ms)};
        for (std::uint32_t count : fn.concurrency)
            row.push_back(std::to_string(count));
        writer.writeRow(row);
    }
}

} // namespace iceb::trace
