/**
 * @file
 * Synthetic Azure-like trace generation.
 *
 * The real Microsoft Azure Functions trace is not redistributable, so
 * experiments are driven by a generator that reproduces the trace
 * properties the paper's mechanisms depend on (Sec. 2-3 and Figs. 4-5):
 *
 *  - ~98% of functions show periodic invocation concurrency;
 *  - 25% have more than one significant harmonic, 98% fewer than ten;
 *  - periodicity and concurrency levels drift over time;
 *  - a diurnal / low-order polynomial trend underlies many series;
 *  - some functions are infrequent (about once a day);
 *  - some functions are effectively random (hard-to-predict);
 *  - some functions exhibit sudden concurrency spikes.
 *
 * Generation is fully deterministic given the seed.
 */

#ifndef ICEB_TRACE_SYNTHETIC_HH
#define ICEB_TRACE_SYNTHETIC_HH

#include <cstdint>

#include "common/rng.hh"
#include "trace/stream_reader.hh"
#include "trace/trace.hh"

namespace iceb::trace
{

/** Knobs for the synthetic generator; defaults mirror DESIGN.md. */
struct SyntheticConfig
{
    std::size_t num_functions = 400;
    std::size_t num_intervals = 2880; //!< 48 hours of 1-minute slots
    TimeMs interval_ms = 60'000;
    std::uint64_t seed = 0x1CEB'5EEDull;

    // Class mix (fractions of num_functions; remainder -> Periodic).
    double frac_multi_harmonic = 0.25; //!< Fig. 5(b): 25% >= 1 harmonic
    double frac_period_shift = 0.10;
    double frac_spiky = 0.08;
    double frac_infrequent = 0.10;
    double frac_random = 0.02; //!< Fig. 4(a): ~98% periodic overall

    // Burst concurrency amplitude range (log-uniform).
    double min_level = 1.0;
    double max_level = 8.0;

    // Burst-train period range in intervals (minutes, log-uniform).
    // Most functions repeat within the hour, like the Azure trace;
    // rarer-than-hourly behaviour is covered by the infrequent class.
    double min_period = 8.0;
    double max_period = 90.0;

    // Period of the slow amplitude modulation that gives series
    // their extra harmonics (Fig. 5a), in intervals.
    double min_mod_period = 120.0;
    double max_mod_period = 720.0;

    // Gaussian noise applied to burst amplitudes.
    double noise_fraction = 0.10;

    // Resource hint distributions (match the profile pool's spread).
    // Execution times skew short, like the Azure trace (median well
    // under a second), which keeps cold starts a significant fraction
    // of service time -- the regime the paper targets.
    MemoryMb min_memory_mb = 128;
    MemoryMb max_memory_mb = 4096;
    TimeMs min_exec_ms = 100;
    TimeMs max_exec_ms = 3500;
};

/**
 * Generates traces per SyntheticConfig. Each call to generate() is
 * independent and deterministic.
 */
class SyntheticTraceGenerator
{
  public:
    explicit SyntheticTraceGenerator(SyntheticConfig config = {});

    /** Produce a full trace. */
    Trace generate() const;

    /**
     * Produce a single series of the given class over the configured
     * horizon (used by predictor benches that want one controlled
     * signal, e.g. the Fig. 4 period-switch series).
     */
    FunctionSeries generateSeries(FunctionClass cls,
                                  std::uint64_t stream_id) const;

    const SyntheticConfig &config() const { return config_; }

  private:
    friend class SyntheticRowStream;

    std::vector<FunctionClass> classPlan(Rng &master) const;
    FunctionSeries makeSeries(FunctionClass cls, Rng rng) const;
    void fillResourceHints(FunctionSeries &series, Rng &rng) const;

    SyntheticConfig config_;
};

/**
 * Streams the exact functions generate() would produce, one at a
 * time, without materializing the trace: function i of the stream is
 * byte-identical (name, hints, concurrency) to function i of the
 * generated Trace for the same config. This is the workload source
 * for Azure-scale runs that would not fit in memory as a Trace.
 */
class SyntheticRowStream final : public FunctionRowSource
{
  public:
    explicit SyntheticRowStream(SyntheticConfig config = {});

    TimeMs intervalMs() const override;
    bool next(FunctionRow &row) override;

    std::size_t numFunctions() const
    {
        return generator_.config().num_functions;
    }

  private:
    SyntheticTraceGenerator generator_;
    Rng master_;
    std::vector<FunctionClass> classes_;
    FunctionSeries scratch_;
    std::string name_;
    std::size_t next_fn_ = 0;
};

/**
 * Synthetic preset shaped like the full Azure Functions trace
 * (Shahrad et al., ATC'20) rather than the small figure workloads:
 * a heavy tail of rarely-invoked functions, a skewed head of hot
 * periodic ones, day-scale periods, and memory/exec hint ranges that
 * span all four SeBS application categories
 * (workload::sebsCategoryProfiles) so the profile matcher exercises
 * the whole pool. Deterministic for a given function count.
 */
SyntheticConfig azureScaleConfig(std::size_t num_functions = 100'000,
                                 std::size_t num_intervals = 1440);

/**
 * The specific series used by Figs. 4(b) and 10: a sinusoidal
 * concurrency pattern whose period switches at @p switch_interval
 * (e.g. 24 -> 36 minutes), exercising predictor re-convergence.
 */
std::vector<double> makePeriodSwitchSignal(std::size_t num_intervals,
                                           double period_before,
                                           double period_after,
                                           std::size_t switch_interval,
                                           double level, double amplitude);

/** One periodic burst train (the building block of the generator). */
struct BurstTrain
{
    double period = 30.0;    //!< intervals between burst starts
    double phase = 0.0;      //!< offset of the first burst
    int burst_len = 1;       //!< consecutive active intervals
    double amplitude = 2.0;  //!< concurrency at burst peak
    double mod_period = 360; //!< slow amplitude-modulation period
    double mod_phase = 0.0;
    double mod_depth = 0.4;  //!< modulation depth in [0, 1)
};

/**
 * Evaluate a burst train at interval @p t: the (real-valued)
 * concurrency contributed by this train, zero between bursts.
 */
double evaluateBurstTrain(const BurstTrain &train, double t);

/**
 * A sparse burst train whose period switches at @p switch_interval
 * (the hard case of Figs. 4(b)/10: a one-step predictor must know
 * *when* the next burst lands, which takes period knowledge, not
 * just local smoothness).
 */
std::vector<double> makePeriodSwitchPulseTrain(
    std::size_t num_intervals, double period_before,
    double period_after, std::size_t switch_interval, int burst_width,
    double amplitude);

} // namespace iceb::trace

#endif // ICEB_TRACE_SYNTHETIC_HH
