/**
 * @file
 * Loader for the Microsoft Azure Functions trace CSV schema.
 *
 * The paper drives its evaluation with the public Azure Functions
 * trace (Shahrad et al., ATC'20). That dataset is not bundled here,
 * but this loader accepts its published invocation-counts schema --
 * metadata columns followed by 1440 per-minute invocation counts per
 * day file -- so the real trace can be substituted for the synthetic
 * generator without code changes.
 */

#ifndef ICEB_TRACE_AZURE_LOADER_HH
#define ICEB_TRACE_AZURE_LOADER_HH

#include <istream>
#include <string>

#include "trace/trace.hh"

namespace iceb::trace
{

/** Options controlling Azure CSV ingestion. */
struct AzureLoadOptions
{
    /** Number of leading metadata columns before the minute counts. */
    std::size_t metadata_columns = 3;

    /** Whether the first row is a header to skip. */
    bool has_header = true;

    /** Cap on functions to load (0 = all). */
    std::size_t max_functions = 0;

    /** Default memory hint when the CSV carries none. */
    MemoryMb default_memory_mb = 512;

    /** Default execution-time hint when the CSV carries none. */
    TimeMs default_exec_ms = 1000;
};

/**
 * Parse an Azure-style invocation-counts CSV from a stream. Each data
 * row is: <metadata columns...>, count_minute_1, ..., count_minute_N.
 * All rows must carry the same number of minute columns.
 */
Trace loadAzureCsv(std::istream &in, const AzureLoadOptions &options = {});

/** Convenience overload reading from a file path; fatal() if absent. */
Trace loadAzureCsvFile(const std::string &path,
                       const AzureLoadOptions &options = {});

/**
 * Serialise a trace back to the same CSV schema (metadata columns:
 * name, memory_mb, avg_exec_ms). Round-trips with loadAzureCsv.
 */
void writeAzureCsv(std::ostream &out, const Trace &trace);

} // namespace iceb::trace

#endif // ICEB_TRACE_AZURE_LOADER_HH
