#include "trace/stream_reader.hh"

#include <charconv>
#include <cstring>

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::trace
{

AzureCsvRowStream::AzureCsvRowStream(std::istream &in,
                                     AzureLoadOptions options,
                                     std::string source_name,
                                     std::size_t buffer_bytes)
    : in_(in), options_(options), source_name_(std::move(source_name)),
      buffer_(buffer_bytes > 0 ? buffer_bytes : 1)
{
}

TimeMs
AzureCsvRowStream::intervalMs() const
{
    return kMsPerMinute;
}

bool
AzureCsvRowStream::nextLine()
{
    line_.clear();
    while (true) {
        if (buf_pos_ == buf_len_) {
            if (eof_)
                break;
            in_.read(buffer_.data(),
                     static_cast<std::streamsize>(buffer_.size()));
            buf_len_ = static_cast<std::size_t>(in_.gcount());
            buf_pos_ = 0;
            if (buf_len_ == 0) {
                eof_ = true;
                break;
            }
        }
        const char *base = buffer_.data() + buf_pos_;
        const auto *nl = static_cast<const char *>(
            std::memchr(base, '\n', buf_len_ - buf_pos_));
        if (nl == nullptr) {
            line_.append(base, buf_len_ - buf_pos_);
            buf_pos_ = buf_len_;
            continue;
        }
        line_.append(base, static_cast<std::size_t>(nl - base));
        buf_pos_ += static_cast<std::size_t>(nl - base) + 1;
        ++line_no_;
        if (!line_.empty() && line_.back() == '\r')
            line_.pop_back();
        return true;
    }
    // Final line without a trailing newline.
    if (line_.empty())
        return false;
    ++line_no_;
    if (!line_.empty() && line_.back() == '\r')
        line_.pop_back();
    return true;
}

void
AzureCsvRowStream::splitFields()
{
    // Same grammar as common/csv.hh's CsvReader, but compacted in
    // place: unescaping only ever shrinks a field, so kept characters
    // are written back into line_ at the write cursor and each field
    // becomes a view of the compacted range.
    fields_.clear();
    char *data = line_.data();
    std::size_t w = 0;           // write cursor
    std::size_t field_start = 0; // first kept char of current field
    bool in_quotes = false;
    for (std::size_t i = 0; i < line_.size(); ++i) {
        const char c = data[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line_.size() && data[i + 1] == '"') {
                    data[w++] = '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                data[w++] = c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields_.emplace_back(data + field_start, w - field_start);
            field_start = w;
        } else {
            data[w++] = c;
        }
    }
    fields_.emplace_back(data + field_start, w - field_start);
}

void
AzureCsvRowStream::failAt(std::size_t column,
                          const std::string &message) const
{
    fatal(source_name_, " line ", line_no_, ", column ", column + 1,
          ": ", message);
}

std::int64_t
AzureCsvRowStream::fieldToInt(std::size_t column, const char *what) const
{
    const std::string_view field = fields_[column];
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size()) {
        failAt(column, std::string("malformed ") + what + " '" +
                           std::string(field) + "'");
    }
    return value;
}

bool
AzureCsvRowStream::next(FunctionRow &row)
{
    if (!header_skipped_ && options_.has_header) {
        header_skipped_ = true;
        if (!nextLine())
            fatal(source_name_, " is empty");
    }
    if (options_.max_functions > 0 &&
        rows_read_ >= options_.max_functions) {
        return false;
    }
    if (!nextLine())
        return false;

    splitFields();
    if (fields_.size() <= options_.metadata_columns) {
        fatal(source_name_, " line ", line_no_, ": row ",
              rows_read_ + 1, " has no invocation columns");
    }
    const std::size_t counts = fields_.size() - options_.metadata_columns;
    if (minute_columns_ == 0) {
        minute_columns_ = counts;
    } else if (counts != minute_columns_) {
        fatal(source_name_, " line ", line_no_, ": row ",
              rows_read_ + 1, " has ", counts,
              " minute columns, expected ", minute_columns_);
    }

    row.id = static_cast<FunctionId>(rows_read_);
    row.name = options_.metadata_columns > 0 ? fields_[0]
                                             : std::string_view("fn");
    row.cls = FunctionClass::Unknown;
    row.memory_mb = options_.default_memory_mb;
    row.avg_exec_ms = options_.default_exec_ms;
    // Optional numeric metadata: col 1 = memory MB, col 2 = avg
    // execution ms (the layout writeAzureCsv produces).
    if (options_.metadata_columns >= 2 && !fields_[1].empty())
        row.memory_mb = fieldToInt(1, "memory column value");
    if (options_.metadata_columns >= 3 && !fields_[2].empty())
        row.avg_exec_ms = fieldToInt(2, "exec-time column value");

    counts_.resize(minute_columns_);
    for (std::size_t i = 0; i < minute_columns_; ++i) {
        const std::size_t column = options_.metadata_columns + i;
        const std::int64_t count =
            fieldToInt(column, "invocation count");
        if (count < 0)
            failAt(column, "negative invocation count");
        counts_[i] = static_cast<std::uint32_t>(count);
    }
    row.counts = counts_.data();
    row.num_intervals = minute_columns_;
    ++rows_read_;
    return true;
}

} // namespace iceb::trace
