#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace iceb::trace
{

namespace
{

/** Clamp-and-round a real-valued concurrency sample to a count. */
std::uint32_t
toCount(double value)
{
    if (value <= 0.0)
        return 0;
    return static_cast<std::uint32_t>(value + 0.5);
}

} // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticConfig config)
    : config_(std::move(config))
{
    const double total = config_.frac_multi_harmonic +
        config_.frac_period_shift + config_.frac_spiky +
        config_.frac_infrequent + config_.frac_random;
    if (total > 1.0)
        fatal("synthetic class fractions exceed 1.0");
}

std::vector<FunctionClass>
SyntheticTraceGenerator::classPlan(Rng &master) const
{
    const std::size_t n = config_.num_functions;
    const auto count_of = [n](double frac) {
        return static_cast<std::size_t>(frac * static_cast<double>(n) + 0.5);
    };
    std::vector<FunctionClass> classes;
    classes.reserve(n);
    for (std::size_t i = 0; i < count_of(config_.frac_multi_harmonic); ++i)
        classes.push_back(FunctionClass::MultiHarmonic);
    for (std::size_t i = 0; i < count_of(config_.frac_period_shift); ++i)
        classes.push_back(FunctionClass::PeriodShift);
    for (std::size_t i = 0; i < count_of(config_.frac_spiky); ++i)
        classes.push_back(FunctionClass::Spiky);
    for (std::size_t i = 0; i < count_of(config_.frac_infrequent); ++i)
        classes.push_back(FunctionClass::Infrequent);
    for (std::size_t i = 0; i < count_of(config_.frac_random); ++i)
        classes.push_back(FunctionClass::Random);
    while (classes.size() < n)
        classes.push_back(FunctionClass::Periodic);
    classes.resize(n);

    // Interleave classes deterministically so cohort ids are spread.
    Rng shuffler = master.fork(0xC1A55);
    for (std::size_t i = n; i-- > 1;) {
        const auto j = static_cast<std::size_t>(
            shuffler.uniformInt(0, static_cast<std::int64_t>(i)));
        std::swap(classes[i], classes[j]);
    }
    return classes;
}

Trace
SyntheticTraceGenerator::generate() const
{
    Trace trace(config_.num_intervals, config_.interval_ms);
    Rng master(config_.seed);

    const std::size_t n = config_.num_functions;
    const std::vector<FunctionClass> classes = classPlan(master);

    for (std::size_t i = 0; i < n; ++i) {
        FunctionSeries series = makeSeries(classes[i], master.fork(i + 1));
        series.name = "fn-" + std::to_string(i);
        trace.addFunction(std::move(series));
    }
    return trace;
}

FunctionSeries
SyntheticTraceGenerator::generateSeries(FunctionClass cls,
                                        std::uint64_t stream_id) const
{
    Rng master(config_.seed);
    FunctionSeries series = makeSeries(cls, master.fork(stream_id));
    series.name = std::string("single-") + functionClassName(cls);
    return series;
}

void
SyntheticTraceGenerator::fillResourceHints(FunctionSeries &series,
                                           Rng &rng) const
{
    // Log-uniform so small functions dominate, like the Azure trace.
    const double log_mem = rng.uniform(
        std::log(static_cast<double>(config_.min_memory_mb)),
        std::log(static_cast<double>(config_.max_memory_mb)));
    series.memory_mb = static_cast<MemoryMb>(std::exp(log_mem));
    const double log_exec = rng.uniform(
        std::log(static_cast<double>(config_.min_exec_ms)),
        std::log(static_cast<double>(config_.max_exec_ms)));
    series.avg_exec_ms = static_cast<TimeMs>(std::exp(log_exec));
}

double
evaluateBurstTrain(const BurstTrain &train, double t)
{
    const double offset =
        std::fmod(t - train.phase + 1e6 * train.period, train.period);
    const double width = static_cast<double>(train.burst_len);
    if (offset >= width)
        return 0.0;
    // Raised-cosine hump: concurrency ramps up and back down across
    // the burst (the smooth multi-minute humps of the paper's
    // Fig. 4b / 5a), degenerating to a single full-height pulse at
    // width 1.
    const double shape =
        0.5 * (1.0 - std::cos(2.0 * M_PI * (offset + 0.5) / width));
    const double modulation = 1.0 +
        train.mod_depth *
            std::sin(2.0 * M_PI * t / train.mod_period +
                     train.mod_phase);
    return train.amplitude * shape * modulation;
}

FunctionSeries
SyntheticTraceGenerator::makeSeries(FunctionClass cls, Rng rng) const
{
    const std::size_t n = config_.num_intervals;
    FunctionSeries series;
    series.cls = cls;
    series.concurrency.assign(n, 0);
    fillResourceHints(series, rng);

    // Log-uniform burst amplitude: most functions invoke with small
    // concurrency, a few with large (Azure-trace-like skew).
    const double level = std::exp(rng.uniform(
        std::log(config_.min_level), std::log(config_.max_level)));
    const double noise_sd = config_.noise_fraction * level;

    const auto draw_train = [&](double amplitude) {
        BurstTrain train;
        train.period = std::exp(rng.uniform(
            std::log(config_.min_period), std::log(config_.max_period)));
        train.phase = rng.uniform(0.0, train.period);
        // Burst width in minutes: mostly multi-minute humps with a
        // tail of sharp single-minute pulses, never wider than half
        // the period.
        const double burst_draw = rng.uniform();
        int width;
        if (burst_draw < 0.15)
            width = 1;
        else if (burst_draw < 0.40)
            width = static_cast<int>(rng.uniformInt(2, 3));
        else
            width = static_cast<int>(rng.uniformInt(4, 8));
        train.burst_len = std::max(
            1, std::min(width, static_cast<int>(train.period / 2.0)));
        train.amplitude = amplitude;
        train.mod_period = rng.uniform(config_.min_mod_period,
                                       config_.max_mod_period);
        train.mod_phase = rng.uniform(0.0, 2.0 * M_PI);
        // Shallow modulation: the paper observes function behaviour
        // is stable across invocations (memory changes 0.77%,
        // speedup 1.1% on average), and invocation amplitudes drift
        // rather than jump.
        train.mod_depth = rng.uniform(0.1, 0.35);
        return train;
    };

    const auto render_trains =
        [&](const std::vector<BurstTrain> &trains) {
            for (std::size_t t = 0; t < n; ++t) {
                double value = 0.0;
                for (const auto &train : trains)
                    value += evaluateBurstTrain(
                        train, static_cast<double>(t));
                if (value > 0.0)
                    value += rng.gaussian(0.0, noise_sd);
                series.concurrency[t] = toCount(value);
            }
        };

    switch (cls) {
      case FunctionClass::Periodic: {
        render_trains({draw_train(level)});
        break;
      }
      case FunctionClass::MultiHarmonic: {
        // Several superposed trains with decaying amplitudes: the
        // concurrency spectrum carries one component per train plus
        // the burst-shape harmonics (Fig. 5a).
        const int trains_count = static_cast<int>(rng.uniformInt(2, 4));
        std::vector<BurstTrain> trains;
        double amp = level;
        for (int i = 0; i < trains_count; ++i) {
            trains.push_back(draw_train(std::max(1.0, amp)));
            amp *= rng.uniform(0.4, 0.7);
        }
        render_trains(trains);
        break;
      }
      case FunctionClass::PeriodShift: {
        // The burst period lengthens mid-trace (Fig. 4b): exercises
        // predictor re-convergence.
        BurstTrain before = draw_train(level);
        before.period = rng.uniform(10.0, 40.0);
        BurstTrain after = before;
        after.period = before.period * rng.uniform(1.3, 2.2);
        const std::size_t switch_at = n / 2;
        after.phase = std::fmod(
            static_cast<double>(switch_at), after.period);
        for (std::size_t t = 0; t < n; ++t) {
            const BurstTrain &train = t < switch_at ? before : after;
            double value =
                evaluateBurstTrain(train, static_cast<double>(t));
            if (value > 0.0)
                value += rng.gaussian(0.0, noise_sd);
            series.concurrency[t] = toCount(value);
        }
        break;
      }
      case FunctionClass::Spiky: {
        // A regular low-amplitude train plus rare concurrency spikes
        // (the paper's "unexpected invocation concurrency" cohort).
        BurstTrain base = draw_train(std::max(1.0, 0.5 * level));
        for (std::size_t t = 0; t < n; ++t) {
            double value =
                evaluateBurstTrain(base, static_cast<double>(t));
            if (rng.bernoulli(0.008))
                value += level * rng.uniform(5.0, 12.0);
            if (value > 0.0)
                value += rng.gaussian(0.0, noise_sd);
            series.concurrency[t] = toCount(value);
        }
        break;
      }
      case FunctionClass::Infrequent: {
        // Roughly once a day at a jittered preferred minute.
        const std::size_t day = static_cast<std::size_t>(
            24 * kMsPerHour / config_.interval_ms);
        const std::size_t preferred = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(
                                  std::min(day, n) - 1)));
        for (std::size_t start = 0; start < n; start += day) {
            const std::int64_t jitter = rng.uniformInt(-20, 20);
            const std::int64_t slot =
                static_cast<std::int64_t>(start + preferred) + jitter;
            if (slot >= 0 && static_cast<std::size_t>(slot) < n)
                series.concurrency[static_cast<std::size_t>(slot)] = 1;
        }
        break;
      }
      case FunctionClass::Random: {
        // Sparse Poisson arrivals with no structure to learn.
        const double rate = rng.uniform(0.01, 0.08);
        for (std::size_t t = 0; t < n; ++t) {
            series.concurrency[t] =
                static_cast<std::uint32_t>(rng.poisson(rate));
        }
        break;
      }
      case FunctionClass::Unknown:
        panic("cannot generate an Unknown-class series");
    }
    return series;
}

SyntheticRowStream::SyntheticRowStream(SyntheticConfig config)
    : generator_(std::move(config)), master_(generator_.config().seed)
{
    // Same RNG choreography as generate(): the class-plan shuffle
    // forks (and thereby advances) the master stream once, then every
    // function forks it in id order — so function i's series here is
    // byte-identical to function i of the materialized trace.
    classes_ = generator_.classPlan(master_);
}

TimeMs
SyntheticRowStream::intervalMs() const
{
    return generator_.config().interval_ms;
}

bool
SyntheticRowStream::next(FunctionRow &row)
{
    const std::size_t i = next_fn_;
    if (i >= generator_.config().num_functions)
        return false;
    scratch_ =
        generator_.makeSeries(classes_[i], master_.fork(i + 1));
    name_ = "fn-" + std::to_string(i);
    ++next_fn_;

    row.id = static_cast<FunctionId>(i);
    row.name = name_;
    row.cls = scratch_.cls;
    row.memory_mb = scratch_.memory_mb;
    row.avg_exec_ms = scratch_.avg_exec_ms;
    row.counts = scratch_.concurrency.data();
    row.num_intervals = scratch_.concurrency.size();
    return true;
}

SyntheticConfig
azureScaleConfig(std::size_t num_functions, std::size_t num_intervals)
{
    SyntheticConfig config;
    config.num_functions = num_functions;
    config.num_intervals = num_intervals;
    config.seed = 0xA2A5'CA1Eull;

    // The published trace shape (Shahrad et al., Figs. 1-3): nearly
    // half of all functions are invoked about once a day, the hot
    // head is strongly periodic at sub-day periods, and a small
    // hard-to-predict remainder carries Poisson-like arrivals. The
    // fractions below put the mean at a few dozen invocations per
    // function-day with a heavy head/tail skew.
    config.frac_infrequent = 0.45;
    config.frac_multi_harmonic = 0.12;
    config.frac_period_shift = 0.04;
    config.frac_spiky = 0.04;
    config.frac_random = 0.05; // remainder (0.30) -> Periodic

    // Day-scale burst periods instead of the figure workloads'
    // within-the-hour cadence.
    config.min_period = 30.0;
    config.max_period = 720.0;
    config.min_mod_period = 180.0;
    config.max_mod_period = 1440.0;

    // Resource hints spanning the four SeBS application categories
    // (web: tiny/fast ... inference: multi-GB, tens of seconds), so
    // the matcher spreads functions across the whole pool.
    config.min_memory_mb = 128;
    config.max_memory_mb = 3008; // the Lambda/Azure allocation cap
    config.min_exec_ms = 50;
    config.max_exec_ms = 30'000;
    return config;
}

std::vector<double>
makePeriodSwitchPulseTrain(std::size_t num_intervals,
                           double period_before, double period_after,
                           std::size_t switch_interval, int burst_width,
                           double amplitude)
{
    ICEB_ASSERT(period_before > 0.0 && period_after > 0.0,
                "periods must be positive");
    BurstTrain before;
    before.period = period_before;
    before.phase = 0.0;
    before.burst_len = burst_width;
    before.amplitude = amplitude;
    before.mod_depth = 0.0;
    BurstTrain after = before;
    after.period = period_after;
    after.phase = std::fmod(static_cast<double>(switch_interval),
                            period_after);
    std::vector<double> signal(num_intervals, 0.0);
    for (std::size_t t = 0; t < num_intervals; ++t) {
        const BurstTrain &train =
            t < switch_interval ? before : after;
        signal[t] = evaluateBurstTrain(train, static_cast<double>(t));
    }
    return signal;
}

std::vector<double>
makePeriodSwitchSignal(std::size_t num_intervals, double period_before,
                       double period_after, std::size_t switch_interval,
                       double level, double amplitude)
{
    ICEB_ASSERT(period_before > 0.0 && period_after > 0.0,
                "periods must be positive");
    std::vector<double> signal(num_intervals, 0.0);
    // Keep the waveform phase-continuous across the switch so the
    // change is in periodicity only, as in the paper's Fig. 4(b).
    double phase = 0.0;
    for (std::size_t t = 0; t < num_intervals; ++t) {
        const double period =
            t < switch_interval ? period_before : period_after;
        signal[t] = level + amplitude * std::cos(phase);
        phase += 2.0 * M_PI / period;
    }
    return signal;
}

} // namespace iceb::trace
