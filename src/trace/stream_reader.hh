/**
 * @file
 * Incremental (out-of-core) workload row sources.
 *
 * A FunctionRowSource hands out one function's full invocation series
 * at a time — the unit the streaming arrival generator consumes — so
 * an Azure-scale CSV (or an equally large synthetic preset) never has
 * to be materialized as a whole trace::Trace. AzureCsvRowStream is
 * the chunked CSV implementation: it reads the stream through a
 * fixed-size buffer, tokenizes each row in place, and reports parse
 * errors with the line and column they occurred at (at 100k+ rows a
 * context-free error is undebuggable).
 */

#ifndef ICEB_TRACE_STREAM_READER_HH
#define ICEB_TRACE_STREAM_READER_HH

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "trace/azure_loader.hh"
#include "trace/trace.hh"

namespace iceb::trace
{

/**
 * One streamed function row: a borrowed view of the function's full
 * concurrency series plus its resource hints. Views stay valid only
 * until the next FunctionRowSource::next() call.
 */
struct FunctionRow
{
    FunctionId id = kInvalidFunction;
    std::string_view name;
    MemoryMb memory_mb = 0;
    TimeMs avg_exec_ms = 0;
    FunctionClass cls = FunctionClass::Unknown;

    /** Invocation counts, one per interval. */
    const std::uint32_t *counts = nullptr;
    std::size_t num_intervals = 0;
};

/**
 * Pull-based source of function rows. Every row must carry the same
 * number of intervals; consumers may assume row ids are dense and
 * ascending from 0.
 */
class FunctionRowSource
{
  public:
    virtual ~FunctionRowSource() = default;

    /** Width of one interval in milliseconds. */
    virtual TimeMs intervalMs() const = 0;

    /**
     * Produce the next row, or return false at end of input. The
     * row's views are valid until the next call.
     */
    virtual bool next(FunctionRow &row) = 0;
};

/**
 * Chunked reader for the Azure invocation-counts CSV schema: same
 * grammar as common/csv.hh (RFC-4180-ish quoting, CRLF tolerant) but
 * parsed through a fixed-size buffer with zero steady-state
 * allocations, emitting one FunctionRow per data row.
 */
class AzureCsvRowStream final : public FunctionRowSource
{
  public:
    /**
     * @param in      Stream to parse; must outlive the reader.
     * @param options Same knobs as loadAzureCsv (header, metadata
     *                columns, defaults, max_functions).
     * @param source_name Name used in error messages (file path for
     *                loadAzureCsvFile; "Azure CSV" for bare streams).
     * @param buffer_bytes Size of the fixed read buffer.
     */
    explicit AzureCsvRowStream(std::istream &in,
                               AzureLoadOptions options = {},
                               std::string source_name = "Azure CSV",
                               std::size_t buffer_bytes = 256 * 1024);

    TimeMs intervalMs() const override;
    bool next(FunctionRow &row) override;

    /** Data rows emitted so far. */
    std::size_t rowsRead() const { return rows_read_; }

    /** Physical line number (1-based) of the last row returned. */
    std::size_t lineNumber() const { return line_no_; }

  private:
    bool nextLine();
    void splitFields();
    [[noreturn]] void failAt(std::size_t column,
                             const std::string &message) const;
    std::int64_t fieldToInt(std::size_t column, const char *what) const;

    std::istream &in_;
    AzureLoadOptions options_;
    std::string source_name_;

    std::vector<char> buffer_; //!< fixed-size read chunk
    std::size_t buf_pos_ = 0;
    std::size_t buf_len_ = 0;
    bool eof_ = false;

    std::string line_;                    //!< current physical line
    std::vector<std::string_view> fields_;//!< views into line_
    std::vector<std::uint32_t> counts_;   //!< reused per row

    std::size_t line_no_ = 0;
    std::size_t rows_read_ = 0;
    std::size_t minute_columns_ = 0; //!< fixed by the first data row
    bool header_skipped_ = false;
};

} // namespace iceb::trace

#endif // ICEB_TRACE_STREAM_READER_HH
