#include "trace/trace_stats.hh"

#include <algorithm>
#include <cmath>

#include "math/harmonics.hh"
#include "math/polyfit.hh"

namespace iceb::trace
{

TraceCharacter
characterizeTrace(const Trace &trace, double harmonic_threshold,
                  double periodicity_threshold)
{
    TraceCharacter out;
    out.functions.reserve(trace.numFunctions());

    std::size_t periodic = 0;
    std::size_t multi = 0;
    std::size_t under_ten = 0;
    std::vector<double> harmonic_counts;
    harmonic_counts.reserve(trace.numFunctions());

    for (const auto &fn : trace.functions()) {
        FunctionCharacter ch;
        ch.id = fn.id;
        ch.invocations = fn.totalInvocations();

        std::vector<double> series(fn.concurrency.begin(),
                                   fn.concurrency.end());
        ch.mean_concurrency = math::mean(series);
        ch.max_concurrency = math::maxValue(series);

        // Detrend before the spectral census so a strong slope does
        // not masquerade as a long-period harmonic.
        const math::Polynomial trend = math::polyfitSeries(series, 2);
        const std::vector<double> residual = math::detrend(series, trend);

        ch.harmonics = math::countSignificantHarmonics(
            residual, harmonic_threshold);
        ch.dominant_period = math::dominantPeriod(residual);

        const double sd = math::stddev(residual);
        const auto top = math::decompose(residual, 1);
        const double top_amp = top.empty() ? 0.0 : top.front().amplitude;
        ch.periodic = ch.invocations > 0 && sd > 1e-9 &&
            top_amp >= periodicity_threshold * sd;

        if (ch.periodic)
            ++periodic;
        if (ch.harmonics >= 2)
            ++multi;
        if (ch.harmonics < 10)
            ++under_ten;
        harmonic_counts.push_back(static_cast<double>(ch.harmonics));
        out.functions.push_back(ch);
    }

    const double n = std::max<std::size_t>(1, trace.numFunctions());
    out.fraction_periodic = static_cast<double>(periodic) / n;
    out.fraction_multi_harmonic = static_cast<double>(multi) / n;
    out.fraction_under_ten = static_cast<double>(under_ten) / n;
    out.harmonic_cdf = math::buildCdf(std::move(harmonic_counts));
    return out;
}

std::vector<double>
interArrivalIntervals(const FunctionSeries &series)
{
    std::vector<double> gaps;
    std::ptrdiff_t last = -1;
    for (std::size_t t = 0; t < series.concurrency.size(); ++t) {
        if (series.concurrency[t] == 0)
            continue;
        if (last >= 0) {
            gaps.push_back(static_cast<double>(
                static_cast<std::ptrdiff_t>(t) - last));
        }
        last = static_cast<std::ptrdiff_t>(t);
    }
    return gaps;
}

} // namespace iceb::trace
