#include "trace/trace.hh"

#include <numeric>

#include "common/logging.hh"

namespace iceb::trace
{

const char *
functionClassName(FunctionClass cls)
{
    switch (cls) {
      case FunctionClass::Unknown:
        return "unknown";
      case FunctionClass::Periodic:
        return "periodic";
      case FunctionClass::MultiHarmonic:
        return "multi-harmonic";
      case FunctionClass::PeriodShift:
        return "period-shift";
      case FunctionClass::Spiky:
        return "spiky";
      case FunctionClass::Infrequent:
        return "infrequent";
      case FunctionClass::Random:
        return "random";
    }
    return "invalid";
}

std::uint64_t
FunctionSeries::totalInvocations() const
{
    return std::accumulate(concurrency.begin(), concurrency.end(),
                           std::uint64_t{0});
}

std::size_t
FunctionSeries::activeIntervals() const
{
    std::size_t count = 0;
    for (std::uint32_t c : concurrency)
        if (c > 0)
            ++count;
    return count;
}

std::uint32_t
FunctionSeries::at(IntervalIndex interval) const
{
    if (interval < 0 ||
        static_cast<std::size_t>(interval) >= concurrency.size()) {
        return 0;
    }
    return concurrency[static_cast<std::size_t>(interval)];
}

Trace::Trace(std::size_t num_intervals, TimeMs interval_ms)
    : num_intervals_(num_intervals), interval_ms_(interval_ms)
{
    ICEB_ASSERT(num_intervals > 0, "trace needs at least one interval");
    ICEB_ASSERT(interval_ms > 0, "interval width must be positive");
}

FunctionId
Trace::addFunction(FunctionSeries series)
{
    ICEB_ASSERT(series.concurrency.size() == num_intervals_,
                "series length must match the trace horizon");
    const FunctionId id = static_cast<FunctionId>(functions_.size());
    series.id = id;
    functions_.push_back(std::move(series));
    return id;
}

TimeMs
Trace::horizonMs() const
{
    return static_cast<TimeMs>(num_intervals_) * interval_ms_;
}

const FunctionSeries &
Trace::function(FunctionId id) const
{
    ICEB_ASSERT(id < functions_.size(), "function id out of range");
    return functions_[id];
}

FunctionSeries &
Trace::function(FunctionId id)
{
    ICEB_ASSERT(id < functions_.size(), "function id out of range");
    return functions_[id];
}

std::uint64_t
Trace::totalInvocations() const
{
    std::uint64_t total = 0;
    for (const auto &fn : functions_)
        total += fn.totalInvocations();
    return total;
}

} // namespace iceb::trace
