/**
 * @file
 * Trace characterisation used by the paper's motivation figures:
 * periodicity census (Fig. 4a: ~98% of functions periodic) and the
 * harmonic-count distribution (Fig. 5b).
 */

#ifndef ICEB_TRACE_TRACE_STATS_HH
#define ICEB_TRACE_TRACE_STATS_HH

#include <vector>

#include "math/stats.hh"
#include "trace/trace.hh"

namespace iceb::trace
{

/** Per-function characterisation record. */
struct FunctionCharacter
{
    FunctionId id = kInvalidFunction;
    std::uint64_t invocations = 0;
    std::size_t harmonics = 0;     //!< significant spectral peaks
    double dominant_period = 0.0;  //!< intervals; 0 when aperiodic
    bool periodic = false;         //!< has a meaningful dominant peak
    double mean_concurrency = 0.0;
    double max_concurrency = 0.0;
};

/** Whole-trace characterisation summary. */
struct TraceCharacter
{
    std::vector<FunctionCharacter> functions;
    double fraction_periodic = 0.0;       //!< paper: ~0.98
    double fraction_multi_harmonic = 0.0; //!< paper: ~0.25
    double fraction_under_ten = 0.0;      //!< paper: ~0.98
    math::Cdf harmonic_cdf;               //!< Fig. 5(b)
};

/**
 * Characterise every function in a trace. A function counts as
 * periodic when its dominant harmonic's amplitude exceeds
 * @p periodicity_threshold of the series' standard deviation and it
 * has invocations at all.
 */
TraceCharacter characterizeTrace(const Trace &trace,
                                 double harmonic_threshold = 0.4,
                                 double periodicity_threshold = 0.3);

/**
 * Per-function inter-arrival times in intervals (gaps between
 * non-zero concurrency slots); used by histogram predictors and the
 * Fig. 2 keep-alive sweep.
 */
std::vector<double> interArrivalIntervals(const FunctionSeries &series);

} // namespace iceb::trace

#endif // ICEB_TRACE_TRACE_STATS_HH
