/**
 * @file
 * In-memory representation of a serverless invocation trace.
 *
 * Mirrors the Microsoft Azure Functions trace schema the paper uses:
 * per function, a count of invocations (the "invocation concurrency")
 * for every fixed-width interval (one minute), plus the per-function
 * memory allocation and average execution time that the paper's
 * profile matcher consumes.
 */

#ifndef ICEB_TRACE_TRACE_HH
#define ICEB_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace iceb::trace
{

/**
 * Behavioural class a synthetic function was generated from. Loaded
 * traces mark functions Unknown; the classes let benches build the
 * paper's cohorts (infrequent, hard-to-predict, spiky) exactly.
 */
enum class FunctionClass : std::uint8_t
{
    Unknown = 0,
    Periodic,      //!< single dominant harmonic
    MultiHarmonic, //!< 2-10 harmonics (Fig. 5a)
    PeriodShift,   //!< periodicity changes mid-trace (Fig. 4)
    Spiky,         //!< sporadic concurrency spikes
    Infrequent,    //!< ~once per day
    Random,        //!< hard-to-predict Poisson arrivals
};

/** Human-readable class name. */
const char *functionClassName(FunctionClass cls);

/**
 * One function's invocation series plus the trace-supplied resource
 * hints used to match it to a benchmark profile.
 */
struct FunctionSeries
{
    FunctionId id = kInvalidFunction;
    std::string name;
    FunctionClass cls = FunctionClass::Unknown;

    /** Invocation concurrency per interval (index = interval). */
    std::vector<std::uint32_t> concurrency;

    /** Memory the trace says the function was allocated. */
    MemoryMb memory_mb = 0;

    /** Average execution duration the trace reports. */
    TimeMs avg_exec_ms = 0;

    /** Total invocations across the whole trace. */
    std::uint64_t totalInvocations() const;

    /** Number of intervals with at least one invocation. */
    std::size_t activeIntervals() const;

    /** Concurrency at an interval (0 beyond the end). */
    std::uint32_t at(IntervalIndex interval) const;
};

/**
 * A complete trace: every function series over a common horizon.
 */
class Trace
{
  public:
    /** Construct an empty trace with the given geometry. */
    Trace(std::size_t num_intervals, TimeMs interval_ms);

    /** Append a function; assigns its dense id. Returns the id. */
    FunctionId addFunction(FunctionSeries series);

    /** Number of functions. */
    std::size_t numFunctions() const { return functions_.size(); }

    /** Number of intervals in the horizon. */
    std::size_t numIntervals() const { return num_intervals_; }

    /** Width of one interval in milliseconds. */
    TimeMs intervalMs() const { return interval_ms_; }

    /** Total simulated duration. */
    TimeMs horizonMs() const;

    /** Function by id. */
    const FunctionSeries &function(FunctionId id) const;

    /** Mutable function by id (used by loaders to backfill hints). */
    FunctionSeries &function(FunctionId id);

    /** All functions. */
    const std::vector<FunctionSeries> &functions() const
    {
        return functions_;
    }

    /** Total invocations across all functions. */
    std::uint64_t totalInvocations() const;

  private:
    std::size_t num_intervals_;
    TimeMs interval_ms_;
    std::vector<FunctionSeries> functions_;
};

} // namespace iceb::trace

#endif // ICEB_TRACE_TRACE_HH
