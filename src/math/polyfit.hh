/**
 * @file
 * Least-squares polynomial fitting and detrending.
 *
 * IceBreaker's FIP fits a second-order polynomial a*t^2 + b*t + c to
 * the invocation-concurrency window to capture the overall trend,
 * subtracts it, and hands the residual to the FFT (Sec. 3.1 of the
 * paper).
 */

#ifndef ICEB_MATH_POLYFIT_HH
#define ICEB_MATH_POLYFIT_HH

#include <cstddef>
#include <vector>

namespace iceb::math
{

/**
 * Polynomial with coefficients stored lowest-order first:
 * coeffs[0] + coeffs[1]*t + coeffs[2]*t^2 + ...
 */
class Polynomial
{
  public:
    /** Zero polynomial of the given degree. */
    explicit Polynomial(std::size_t degree = 0);

    /** Construct from coefficients (lowest order first). */
    explicit Polynomial(std::vector<double> coeffs);

    /** Polynomial degree (number of coefficients minus one). */
    std::size_t degree() const { return coeffs_.size() - 1; }

    /** Coefficient of t^power (0 when beyond the stored degree). */
    double coeff(std::size_t power) const;

    /**
     * Replace the coefficients (lowest order first) in place. Does
     * not allocate once the internal capacity covers @p count, which
     * is what lets fit workspaces reuse one Polynomial per window.
     */
    void assign(const double *coeffs, std::size_t count);

    /** Evaluate at t via Horner's rule. */
    double evaluate(double t) const;

  private:
    std::vector<double> coeffs_;
};

/**
 * Reusable scratch for polyfitSeries: normal-equation power sums and
 * the augmented solver system. Buffers grow on first use and are
 * reused afterwards, so steady-state fits allocate nothing.
 */
struct PolyfitWorkspace
{
    std::vector<double> powers; //!< sum_i x_i^k, k <= 2*degree
    std::vector<double> aty;    //!< sum_i x_i^k * y_i, k <= degree
    std::vector<double> aug;    //!< augmented normal equations
    std::vector<double> coeffs; //!< solver output
};

/**
 * Fit a least-squares polynomial of the given degree to the points
 * (x[i], y[i]). Uses the normal equations solved by Gaussian
 * elimination; adequate for the low degrees (<= 3) used here.
 *
 * If the system is singular (e.g. fewer distinct x values than
 * coefficients) the fit degrades gracefully to the mean of y.
 */
Polynomial polyfit(const std::vector<double> &x,
                   const std::vector<double> &y, std::size_t degree);

/**
 * Fit over implicit x = 0, 1, ..., y.size()-1; the form the FIP uses
 * on its local window.
 */
Polynomial polyfitSeries(const std::vector<double> &y, std::size_t degree);

/**
 * Allocation-free polyfitSeries: fits y[0..n) over implicit
 * x = 0..n-1 into @p out, using @p ws for every intermediate. The
 * arithmetic (and therefore the result) is bit-identical to the
 * vector overload, which delegates here.
 */
void polyfitSeries(const double *y, std::size_t n, std::size_t degree,
                   Polynomial &out, PolyfitWorkspace &ws);

/**
 * Shared per-(n, degree) tables for fitting many equal-length series
 * at once: the Vandermonde powers i^k for every sample index (the
 * exact doubles polyfitSeries' xk *= xi recurrence produces, stored
 * so batched fits can reuse them per function), and the power sums
 * sum_i i^k that form the normal matrix - which is identical for
 * every series of the same length, so the batched forecaster factors
 * it once (FactoredSystem) and replays the solve per function.
 */
struct SeriesPowerTable
{
    std::size_t n = 0;
    std::size_t degree = 0;
    /** i^k for k <= degree, row-major: xpow[i * (degree+1) + k]. */
    std::vector<double> xpow;
    /** sum_i i^k for k <= 2*degree (normal-matrix entries). */
    std::vector<double> powers;
};

/**
 * Build the shared tables for series of length @p n. Uses the same
 * multiplication chain and accumulation order as polyfitSeries, so a
 * fit assembled from these tables is bit-identical to a direct one.
 */
void buildSeriesPowerTable(std::size_t n, std::size_t degree,
                           SeriesPowerTable &out);

/** Subtract a polynomial trend evaluated at x = 0..n-1 from y. */
std::vector<double> detrend(const std::vector<double> &y,
                            const Polynomial &trend);

/** detrend into a reused output buffer (no allocation once sized). */
void detrendInto(const double *y, std::size_t n, const Polynomial &trend,
                 std::vector<double> &out);

/** Residual sum of squares of a fit over implicit x = 0..n-1. */
double residualSumOfSquares(const std::vector<double> &y,
                            const Polynomial &trend);

} // namespace iceb::math

#endif // ICEB_MATH_POLYFIT_HH
