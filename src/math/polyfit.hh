/**
 * @file
 * Least-squares polynomial fitting and detrending.
 *
 * IceBreaker's FIP fits a second-order polynomial a*t^2 + b*t + c to
 * the invocation-concurrency window to capture the overall trend,
 * subtracts it, and hands the residual to the FFT (Sec. 3.1 of the
 * paper).
 */

#ifndef ICEB_MATH_POLYFIT_HH
#define ICEB_MATH_POLYFIT_HH

#include <cstddef>
#include <vector>

namespace iceb::math
{

/**
 * Polynomial with coefficients stored lowest-order first:
 * coeffs[0] + coeffs[1]*t + coeffs[2]*t^2 + ...
 */
class Polynomial
{
  public:
    /** Zero polynomial of the given degree. */
    explicit Polynomial(std::size_t degree = 0);

    /** Construct from coefficients (lowest order first). */
    explicit Polynomial(std::vector<double> coeffs);

    /** Polynomial degree (number of coefficients minus one). */
    std::size_t degree() const { return coeffs_.size() - 1; }

    /** Coefficient of t^power (0 when beyond the stored degree). */
    double coeff(std::size_t power) const;

    /** Evaluate at t via Horner's rule. */
    double evaluate(double t) const;

  private:
    std::vector<double> coeffs_;
};

/**
 * Fit a least-squares polynomial of the given degree to the points
 * (x[i], y[i]). Uses the normal equations solved by Gaussian
 * elimination; adequate for the low degrees (<= 3) used here.
 *
 * If the system is singular (e.g. fewer distinct x values than
 * coefficients) the fit degrades gracefully to the mean of y.
 */
Polynomial polyfit(const std::vector<double> &x,
                   const std::vector<double> &y, std::size_t degree);

/**
 * Fit over implicit x = 0, 1, ..., y.size()-1; the form the FIP uses
 * on its local window.
 */
Polynomial polyfitSeries(const std::vector<double> &y, std::size_t degree);

/** Subtract a polynomial trend evaluated at x = 0..n-1 from y. */
std::vector<double> detrend(const std::vector<double> &y,
                            const Polynomial &trend);

/** Residual sum of squares of a fit over implicit x = 0..n-1. */
double residualSumOfSquares(const std::vector<double> &y,
                            const Polynomial &trend);

} // namespace iceb::math

#endif // ICEB_MATH_POLYFIT_HH
