/**
 * @file
 * Shared implementation of the extrapolation-grade harmonic fit.
 *
 * decomposeFromMagnitudes' body lives here as an internal-linkage
 * function so two translation units can instantiate it with different
 * codegen flags: math/harmonics.cc compiles the portable baseline
 * copy (the public API), and predictors/forecast_kernels.cc compiles
 * a SIMD copy for the batched forecaster's hot loop. The function
 * contains no reductions the vectorizer may reorder and the SIMD unit
 * is built with -ffp-contract=off, so both copies execute the same
 * IEEE operation sequence and produce bit-identical results (enforced
 * by ForecastPool's batched-vs-scalar equality tests).
 *
 * `static` (not `inline`) is deliberate: inline copies would share
 * one linker-chosen definition across translation units, silently
 * discarding one set of codegen flags.
 */

#ifndef ICEB_MATH_HARMONICS_IMPL_HH
#define ICEB_MATH_HARMONICS_IMPL_HH

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "math/harmonics.hh"
#include "math/matrix.hh"

namespace iceb::math::detail
{

/** See decomposeFromMagnitudes in harmonics.hh for the contract. */
static void
decomposeFromMagnitudesImpl(const double *series, std::size_t n,
                            std::size_t max_components,
                            std::vector<Harmonic> &out,
                            HarmonicsWorkspace &ws, bool fast_trig)
{
    ICEB_ASSERT(n >= 8 && max_components >= 1,
                "decomposeFromMagnitudes needs n >= 8 and components >= 1");
    const std::size_t half = n / 2;
    ICEB_ASSERT(ws.magnitude.size() == half + 1,
                "magnitude buffer must cover bins 0..n/2");
    out.clear();

    // Spectral peak picking over k = 1..n/2.
    const std::vector<double> &magnitude = ws.magnitude;
    std::vector<SpectralPeak> &peaks = ws.peaks;
    peaks.clear();
    for (std::size_t k = 1; k <= half; ++k) {
        const double left = k > 1 ? magnitude[k - 1] : 0.0;
        const double right = k < half ? magnitude[k + 1] : 0.0;
        if (magnitude[k] >= left && magnitude[k] >= right &&
            magnitude[k] > 1e-12) {
            peaks.push_back(SpectralPeak{k, magnitude[k]});
        }
    }
    if (peaks.empty())
        return;
    std::sort(peaks.begin(), peaks.end(),
              [](const SpectralPeak &a, const SpectralPeak &b) {
                  return a.magnitude > b.magnitude;
              });
    if (peaks.size() > max_components)
        peaks.resize(max_components);

    // Quadratic interpolation of log-magnitudes refines each peak's
    // frequency off the bin grid.
    std::vector<double> &frequencies = ws.frequencies;
    frequencies.clear();
    for (const SpectralPeak &peak : peaks) {
        double delta = 0.0;
        const std::size_t k = peak.bin;
        if (k > 1 && k < half) {
            const double lm = std::log(magnitude[k - 1] + 1e-12);
            const double cm = std::log(magnitude[k] + 1e-12);
            const double rm = std::log(magnitude[k + 1] + 1e-12);
            const double denom = lm - 2.0 * cm + rm;
            if (std::fabs(denom) > 1e-12)
                delta = std::clamp(0.5 * (lm - rm) / denom, -0.5, 0.5);
        }
        frequencies.push_back(
            (static_cast<double>(k) + delta) / static_cast<double>(n));
    }

    // Least-squares fit of a_i*cos + b_i*sin at the refined
    // frequencies over the window. X^T X is symmetric, so only the
    // upper triangle is accumulated and mirrored afterwards (the
    // mirrored entries are the exact same products in the exact same
    // order, so this matches the full accumulation bit for bit).
    const std::size_t m = frequencies.size();
    const std::size_t terms = 2 * m;
    ws.xtx.assign(terms * terms, 0.0);
    ws.xty.assign(terms, 0.0);
    ws.row.resize(terms);
    double *xtx = ws.xtx.data();
    double *xty = ws.xty.data();
    double *row = ws.row.data();
    if (fast_trig) {
        // cos/sin of 2*pi*f*t via one complex rotation per sample:
        // ~1 ulp of drift per step, orders of magnitude below the
        // incremental mode's 1e-6 agreement budget.
        ws.rot_state.assign(m, Complex(1.0, 0.0));
        ws.rot_step.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            const double angle = 2.0 * M_PI * frequencies[i];
            ws.rot_step[i] = Complex(std::cos(angle), std::sin(angle));
        }
    }
    for (std::size_t t = 0; t < n; ++t) {
        if (fast_trig) {
            for (std::size_t i = 0; i < m; ++i) {
                row[2 * i] = ws.rot_state[i].real();
                row[2 * i + 1] = ws.rot_state[i].imag();
                ws.rot_state[i] *= ws.rot_step[i];
            }
        } else {
            for (std::size_t i = 0; i < m; ++i) {
                const double angle = 2.0 * M_PI * frequencies[i] *
                    static_cast<double>(t);
                row[2 * i] = std::cos(angle);
                row[2 * i + 1] = std::sin(angle);
            }
        }
        for (std::size_t a = 0; a < terms; ++a) {
            xty[a] += row[a] * series[t];
            double *xtx_row = xtx + a * terms;
            const double ra = row[a];
            for (std::size_t b = a; b < terms; ++b)
                xtx_row[b] += ra * row[b];
        }
    }
    for (std::size_t a = 0; a < terms; ++a)
        for (std::size_t b = a + 1; b < terms; ++b)
            xtx[b * terms + a] = xtx[a * terms + b];
    for (std::size_t a = 0; a < terms; ++a)
        xtx[a * terms + a] += 1e-9;

    ws.aug.assign(terms * (terms + 1), 0.0);
    for (std::size_t r = 0; r < terms; ++r) {
        for (std::size_t c = 0; c < terms; ++c)
            ws.aug[r * (terms + 1) + c] = xtx[r * terms + c];
        ws.aug[r * (terms + 1) + terms] = xty[r];
    }
    bool singular = false;
    solveLinearSystemInPlace(ws.aug, terms, ws.coeffs, &singular);
    if (singular) {
        out = decompose(std::vector<double>(series, series + n),
                        max_components);
        return;
    }

    for (std::size_t i = 0; i < m; ++i) {
        const double a = ws.coeffs[2 * i];
        const double b = ws.coeffs[2 * i + 1];
        Harmonic h;
        h.amplitude = std::sqrt(a * a + b * b);
        h.frequency = frequencies[i];
        // a*cos(wt) + b*sin(wt) = A*cos(wt + phase).
        h.phase = std::atan2(-b, a);
        out.push_back(h);
    }
    std::sort(out.begin(), out.end(),
              [](const Harmonic &x, const Harmonic &y) {
                  return x.amplitude > y.amplitude;
              });
}

} // namespace iceb::math::detail

#endif // ICEB_MATH_HARMONICS_IMPL_HH
