/**
 * @file
 * Spectral (harmonic) decomposition of real time series.
 *
 * IceBreaker's FIP models a detrended invocation-concurrency window as
 * a sum of its top-n harmonics, each a cosine with amplitude,
 * frequency and phase taken from the FFT, then extrapolates one
 * interval into the future (Sec. 3.1, Eq. for f(t_k + 1)).
 */

#ifndef ICEB_MATH_HARMONICS_HH
#define ICEB_MATH_HARMONICS_HH

#include <cstddef>
#include <vector>

namespace iceb::math
{

/** One sinusoidal component: amplitude * cos(2*pi*frequency*t + phase). */
struct Harmonic
{
    double amplitude = 0.0; //!< peak amplitude in concurrency units
    double frequency = 0.0; //!< cycles per interval (k / N)
    double phase = 0.0;     //!< radians

    /** Evaluate this component at (continuous) time t. */
    double evaluate(double t) const;
};

/**
 * Decompose a real series into its harmonics sorted by descending
 * amplitude. The DC bin is excluded (the FIP's polynomial trend
 * carries the level); for even N the Nyquist bin is included with the
 * appropriate 1/N scaling.
 *
 * @param series Detrended samples at t = 0..N-1.
 * @param max_components Keep at most this many (0 keeps all).
 */
std::vector<Harmonic> decompose(const std::vector<double> &series,
                                std::size_t max_components);

/** Sum of harmonic contributions at time t. */
double evaluateHarmonics(const std::vector<Harmonic> &harmonics, double t);

/**
 * Count "significant" harmonics: spectral peaks whose amplitude is at
 * least @p relative_threshold of the largest component. Reproduces the
 * paper's Fig. 5(b) census (25% of functions have >= 1 extra harmonic,
 * 98% have < 10).
 */
std::size_t countSignificantHarmonics(const std::vector<double> &series,
                                      double relative_threshold = 0.2);

/**
 * Dominant period of the series in intervals (1 / frequency of the
 * largest harmonic); 0 when the series has no oscillatory component.
 */
double dominantPeriod(const std::vector<double> &series);

/**
 * Extrapolation-grade decomposition. Harmonics at exact FFT bin
 * frequencies k/N all wrap at t = N (the "forecast" would equal the
 * window's first sample), so this variant: (1) finds the top spectral
 * peaks, (2) refines each peak frequency by quadratic interpolation
 * of the log-magnitude spectrum, and (3) least-squares fits
 * amplitude and phase at the refined frequencies. The result
 * genuinely extrapolates beyond the window.
 *
 * @param series Detrended samples at t = 0..N-1.
 * @param max_components Keep at most this many peaks.
 */
std::vector<Harmonic>
decomposeForExtrapolation(const std::vector<double> &series,
                          std::size_t max_components);

} // namespace iceb::math

#endif // ICEB_MATH_HARMONICS_HH
