#include "math/chi2.hh"

#include <cmath>

#include "common/logging.hh"

namespace iceb::math
{

namespace
{

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

/** Series representation of P(a, x), valid for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < kMaxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * kEpsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Continued-fraction representation of Q(a, x), valid for x >= a+1. */
double
gammaQContinuedFraction(double a, double x)
{
    double b = x + 1.0 - a;
    double c = 1.0 / 1e-300;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIterations; ++i) {
        const double an = -static_cast<double>(i) *
            (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < 1e-300)
            d = 1e-300;
        c = b + an / c;
        if (std::fabs(c) < 1e-300)
            c = 1e-300;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < kEpsilon)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // namespace

double
regularizedLowerGamma(double a, double x)
{
    ICEB_ASSERT(a > 0.0, "gamma shape must be positive");
    ICEB_ASSERT(x >= 0.0, "gamma argument must be non-negative");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
chiSquareCdf(double x, double dof)
{
    ICEB_ASSERT(dof > 0.0, "chi-square dof must be positive");
    if (x <= 0.0)
        return 0.0;
    return regularizedLowerGamma(dof / 2.0, x / 2.0);
}

double
pearsonChiSquareStatistic(const std::vector<double> &observed,
                          const std::vector<double> &expected)
{
    ICEB_ASSERT(observed.size() == expected.size(),
                "chi-square bin count mismatch");
    double statistic = 0.0;
    double pooled_obs = 0.0;
    double pooled_exp = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        pooled_obs += observed[i];
        pooled_exp += expected[i];
        // Pool consecutive bins until the expected mass is meaningful;
        // avoids division blow-ups from near-empty model bins.
        if (pooled_exp > 1e-9) {
            const double diff = pooled_obs - pooled_exp;
            statistic += diff * diff / pooled_exp;
            pooled_obs = 0.0;
            pooled_exp = 0.0;
        }
    }
    if (pooled_exp > 1e-9) {
        const double diff = pooled_obs - pooled_exp;
        statistic += diff * diff / pooled_exp;
    }
    return statistic;
}

GoodnessOfFit
chiSquareGoodnessOfFit(const std::vector<double> &observed,
                       const std::vector<double> &expected,
                       std::size_t fitted_params)
{
    GoodnessOfFit result;
    result.statistic = pearsonChiSquareStatistic(observed, expected);
    const double bins = static_cast<double>(observed.size());
    result.dof = std::max(1.0,
                          bins - 1.0 - static_cast<double>(fitted_params));
    result.p_value = 1.0 - chiSquareCdf(result.statistic, result.dof);
    result.confidence = result.p_value;
    return result;
}

} // namespace iceb::math
