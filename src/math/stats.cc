#include "math/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace iceb::math
{

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
        static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - mu) * (v - mu);
    return acc / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
minValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
median(const std::vector<double> &values)
{
    return percentile(values, 0.5);
}

double
percentile(const std::vector<double> &values, double q)
{
    if (values.empty())
        return 0.0;
    ICEB_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double>
minMaxNormalize(const std::vector<double> &values)
{
    if (values.empty())
        return {};
    const double lo = minValue(values);
    const double hi = maxValue(values);
    std::vector<double> out(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = minMaxNormalizeValue(values[i], lo, hi);
    return out;
}

double
minMaxNormalizeValue(double value, double lo, double hi)
{
    if (hi - lo < 1e-12)
        return 0.5;
    const double norm = (value - lo) / (hi - lo);
    return std::clamp(norm, 0.0, 1.0);
}

double
Cdf::at(double x) const
{
    if (values.empty())
        return 0.0;
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    if (it == values.begin())
        return 0.0;
    const std::size_t idx =
        static_cast<std::size_t>(it - values.begin()) - 1;
    return probabilities[idx];
}

double
Cdf::quantile(double q) const
{
    if (values.empty())
        return 0.0;
    const auto it =
        std::lower_bound(probabilities.begin(), probabilities.end(), q);
    if (it == probabilities.end())
        return values.back();
    return values[static_cast<std::size_t>(it - probabilities.begin())];
}

Cdf
buildCdf(std::vector<double> values)
{
    Cdf cdf;
    if (values.empty())
        return cdf;
    std::sort(values.begin(), values.end());
    cdf.values = std::move(values);
    cdf.probabilities.resize(cdf.values.size());
    const double n = static_cast<double>(cdf.values.size());
    for (std::size_t i = 0; i < cdf.values.size(); ++i)
        cdf.probabilities[i] = static_cast<double>(i + 1) / n;
    return cdf;
}

double
meanAbsoluteError(const std::vector<double> &a, const std::vector<double> &b)
{
    ICEB_ASSERT(a.size() == b.size(), "MAE size mismatch");
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += std::fabs(a[i] - b[i]);
    return acc / static_cast<double>(a.size());
}

double
rootMeanSquaredError(const std::vector<double> &a,
                     const std::vector<double> &b)
{
    ICEB_ASSERT(a.size() == b.size(), "RMSE size mismatch");
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc / static_cast<double>(a.size()));
}

} // namespace iceb::math
