#include "math/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace iceb::math
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
    ICEB_ASSERT(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    ICEB_ASSERT(!rows.empty() && !rows.front().empty(),
                "fromRows needs at least one element");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ICEB_ASSERT(rows[r].size() == m.cols_, "ragged matrix rows");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    ICEB_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    ICEB_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    ICEB_ASSERT(cols_ == rhs.rows_, "matrix product shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double lhs_val = at(r, k);
            if (lhs_val == 0.0)
                continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c)
                out.at(r, c) += lhs_val * rhs.at(k, c);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &vec) const
{
    ICEB_ASSERT(cols_ == vec.size(), "matrix-vector shape mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[r] += at(r, c) * vec[c];
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

void
solveLinearSystemInPlace(std::vector<double> &aug, std::size_t n,
                         std::vector<double> &x, bool *singular)
{
    const std::size_t stride = n + 1;
    ICEB_ASSERT(aug.size() == n * stride, "augmented system shape mismatch");
    if (singular)
        *singular = false;
    double *work = aug.data();

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: largest absolute value in this column.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(work[r * stride + col]) >
                std::fabs(work[pivot * stride + col]))
                pivot = r;
        if (std::fabs(work[pivot * stride + col]) < 1e-12) {
            if (singular) {
                *singular = true;
                x.assign(n, 0.0);
                return;
            }
            panic("singular system in solveLinearSystem");
        }
        if (pivot != col) {
            std::swap_ranges(work + col * stride,
                             work + (col + 1) * stride,
                             work + pivot * stride);
        }

        const double *prow = work + col * stride;
        for (std::size_t r = col + 1; r < n; ++r) {
            double *row = work + r * stride;
            const double factor = row[col] / prow[col];
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c <= n; ++c)
                row[c] -= factor * prow[c];
        }
    }

    x.assign(n, 0.0);
    for (std::size_t r = n; r-- > 0;) {
        const double *row = work + r * stride;
        double acc = row[n];
        for (std::size_t c = r + 1; c < n; ++c)
            acc -= row[c] * x[c];
        x[r] = acc / row[r];
    }
}

std::vector<double>
solveLinearSystem(const Matrix &a, const std::vector<double> &b,
                  bool *singular)
{
    ICEB_ASSERT(a.rows() == a.cols(), "solve needs a square system");
    ICEB_ASSERT(a.rows() == b.size(), "rhs size mismatch");
    const std::size_t n = a.rows();

    std::vector<double> aug(n * (n + 1));
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            aug[r * (n + 1) + c] = a.at(r, c);
        aug[r * (n + 1) + n] = b[r];
    }
    std::vector<double> x;
    solveLinearSystemInPlace(aug, n, x, singular);
    return x;
}

void
FactoredSystem::factor(const double *a, std::size_t n)
{
    ICEB_ASSERT(n >= 1, "FactoredSystem needs a positive size");
    n_ = n;
    singular_ = false;
    upper_.assign(a, a + n * n);
    pivot_.assign(n, 0);
    factors_.clear();
    factors_.reserve(n * (n - 1) / 2);
    double *work = upper_.data();

    // Same pivot selection, tolerance and elimination order as
    // solveLinearSystemInPlace, restricted to the matrix columns (the
    // rhs column of the augmented algorithm is what solve() replays).
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(work[r * n + col]) >
                std::fabs(work[pivot * n + col]))
                pivot = r;
        if (std::fabs(work[pivot * n + col]) < 1e-12) {
            singular_ = true;
            return;
        }
        pivot_[col] = static_cast<std::uint32_t>(pivot);
        if (pivot != col) {
            std::swap_ranges(work + col * n, work + (col + 1) * n,
                             work + pivot * n);
        }

        const double *prow = work + col * n;
        for (std::size_t r = col + 1; r < n; ++r) {
            double *row = work + r * n;
            const double factor = row[col] / prow[col];
            factors_.push_back(factor);
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                row[c] -= factor * prow[c];
        }
    }
}

void
FactoredSystem::solve(const double *b, double *x) const
{
    const std::size_t n = n_;
    ICEB_ASSERT(n >= 1, "FactoredSystem::solve before factor");
    if (singular_) {
        for (std::size_t i = 0; i < n; ++i)
            x[i] = 0.0;
        return;
    }
    if (x != b) {
        for (std::size_t i = 0; i < n; ++i)
            x[i] = b[i];
    }

    // Replay the recorded swaps and factor subtractions in the exact
    // order the augmented elimination applied them to its rhs column.
    const double *tape = factors_.data();
    for (std::size_t col = 0; col < n; ++col) {
        const std::size_t pivot = pivot_[col];
        if (pivot != col)
            std::swap(x[col], x[pivot]);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = *tape++;
            if (factor == 0.0)
                continue;
            x[r] -= factor * x[col];
        }
    }

    const double *work = upper_.data();
    for (std::size_t r = n; r-- > 0;) {
        const double *row = work + r * n;
        double acc = x[r];
        for (std::size_t c = r + 1; c < n; ++c)
            acc -= row[c] * x[c];
        x[r] = acc / row[r];
    }
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    ICEB_ASSERT(a.size() == b.size(), "dot product size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace iceb::math
