/**
 * @file
 * Fast Fourier Transform.
 *
 * Iterative radix-2 Cooley-Tukey for power-of-two lengths, with
 * Bluestein's chirp-z algorithm for arbitrary lengths so callers never
 * need to pad (padding would shift harmonic frequencies, which matters
 * for IceBreaker's FIP).
 *
 * Two tiers of API:
 *
 *  - Plain functions (fft/ifft/fftReal): allocate their result, fine
 *    for tests and one-off analysis.
 *  - FftPlan + FftScratch: a transform plan cached per length that
 *    precomputes bit-reversal permutations, twiddle tables and (for
 *    non-power-of-two lengths) the Bluestein chirp and its
 *    pre-transformed convolution kernel. With a caller-owned
 *    FftScratch, steady-state transforms perform zero heap
 *    allocations. Plan transforms execute the exact operation
 *    sequence of the plain functions, so their results are
 *    bit-identical (enforced by a golden test over lengths 1-64).
 *
 * SlidingDft maintains the spectrum of a fixed-length window
 * incrementally: O(1) work per retained bin per new sample, with a
 * full-FFT resync available to bound floating-point drift.
 */

#ifndef ICEB_MATH_FFT_HH
#define ICEB_MATH_FFT_HH

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

namespace iceb::math
{

using Complex = std::complex<double>;

/** True when n is a power of two (n >= 1). */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place forward FFT of a power-of-two-length complex signal.
 * X[k] = sum_t x[t] * exp(-2*pi*i*k*t/N).
 */
void fftPow2(std::vector<Complex> &data);

/** In-place inverse FFT of a power-of-two-length complex spectrum. */
void ifftPow2(std::vector<Complex> &data);

/**
 * Forward DFT of an arbitrary-length complex signal. Dispatches to
 * radix-2 when possible and to Bluestein's algorithm otherwise;
 * O(n log n) in both cases.
 */
std::vector<Complex> fft(const std::vector<Complex> &data);

/** Inverse DFT of an arbitrary-length complex spectrum. */
std::vector<Complex> ifft(const std::vector<Complex> &data);

/**
 * Forward DFT of a real signal. For even lengths the samples are
 * packed into an N/2-point complex transform (half the work of the
 * generic path); odd lengths fall back to the complex transform.
 * Served by the process-wide plan cache.
 */
std::vector<Complex> fftReal(const std::vector<double> &data);

/**
 * Direct O(n^2) DFT. Exists as the oracle the FFT implementations are
 * property-tested against; never used on hot paths.
 */
std::vector<Complex> dftDirect(const std::vector<Complex> &data);

/**
 * Caller-owned scratch for plan-based transforms. Buffers grow to the
 * plan's working-set size on first use and are reused afterwards, so
 * steady-state transforms allocate nothing. A scratch may be shared
 * across plans of different lengths (it simply keeps the largest
 * size seen).
 */
struct FftScratch
{
    std::vector<Complex> work;   //!< Bluestein convolution buffer
    std::vector<Complex> packed; //!< real-input packing buffer
};

/**
 * Precomputed transform plan for one length.
 *
 * Holds the bit-reversal permutation and per-stage twiddle tables of
 * the radix-2 kernel (generated with the same recurrence the plain
 * functions use, so plan transforms are bit-identical to them), plus
 * - for non-power-of-two lengths - the Bluestein chirp vectors and
 * the forward transform of the convolution kernel b, for both
 * transform directions.
 *
 * Plans are immutable after construction and safe to share across
 * threads; all mutable state lives in the caller's FftScratch.
 */
class FftPlan
{
  public:
    /** Build a plan for length @p n (n >= 1). */
    explicit FftPlan(std::size_t n);

    /** Transform length. */
    std::size_t size() const { return n_; }

    /**
     * Forward DFT: reads n complex values from @p in, writes n to
     * @p out. in == out is allowed.
     */
    void forward(const Complex *in, Complex *out,
                 FftScratch &scratch) const;

    /** Inverse DFT (1/n scaled); in == out is allowed. */
    void inverse(const Complex *in, Complex *out,
                 FftScratch &scratch) const;

    /**
     * Forward DFT of n real samples (the fftReal fast path): even
     * lengths run one n/2-point complex transform plus an O(n)
     * unpacking pass; odd lengths fall back to forward().
     */
    void forwardReal(const double *in, Complex *out,
                     FftScratch &scratch) const;

    /**
     * @name Plan-table access for batched (structure-of-arrays)
     * transform kernels.
     *
     * The batched forecaster (src/predictors/forecast_kernels.cc)
     * runs the exact butterfly/chirp operation sequence of forward()
     * and forwardReal() over many same-length series at once. It
     * reads the plan's precomputed tables through these accessors, so
     * batched transforms stay bit-identical to the scalar plan paths
     * by construction. All tables are immutable after construction.
     */
    ///@{
    /** True when the transform length itself is a power of two. */
    bool isPow2() const { return is_pow2_; }
    /** Radix-2 kernel length: n for pow2 plans, Bluestein m else. */
    std::size_t pow2Length() const { return pow2_len_; }
    /** Bit-reversal permutation over pow2Length() points. */
    const std::vector<std::uint32_t> &bitrev() const { return bitrev_; }
    /** Concatenated per-stage butterfly twiddles (w *= w_len chain). */
    const std::vector<Complex> &twiddles(bool inverse) const
    {
        return inverse ? tw_inv_ : tw_fwd_;
    }
    /** Forward-direction Bluestein chirp (empty for pow2 plans). */
    const std::vector<Complex> &chirp() const { return chirp_fwd_; }
    /** FFT of the forward Bluestein kernel b (empty for pow2 plans). */
    const std::vector<Complex> &kernelFft() const { return bfft_fwd_; }
    /** n/2 sub-plan driving the packed real path (null for odd n). */
    const FftPlan *halfPlan() const { return half_.get(); }
    /** Real-path unpack twiddles exp(-2*pi*i*k/n), k < n/2. */
    const std::vector<Complex> &realTwiddles() const { return real_tw_; }
    ///@}

  private:
    FftPlan(std::size_t n, bool build_real_path);

    void buildPow2Tables();
    void buildBluestein();
    /** Radix-2 kernel over pow2_len_ points using the plan tables. */
    void pow2InPlace(Complex *data, bool inverse) const;

    std::size_t n_;
    bool is_pow2_;
    std::size_t pow2_len_; //!< n_ when power of two, else Bluestein m
    std::vector<std::uint32_t> bitrev_;
    std::vector<Complex> tw_fwd_; //!< concatenated per-stage twiddles
    std::vector<Complex> tw_inv_;
    std::vector<Complex> chirp_fwd_;
    std::vector<Complex> chirp_inv_;
    std::vector<Complex> bfft_fwd_; //!< FFT of the Bluestein kernel b
    std::vector<Complex> bfft_inv_;
    std::unique_ptr<const FftPlan> half_; //!< n/2 plan (real path)
    std::vector<Complex> real_tw_; //!< exp(-2*pi*i*k/n), k < n/2
};

/**
 * Fetch (building on first use) the shared plan for length @p n from
 * the process-wide cache. Thread-safe; hot paths should hold on to
 * the returned pointer rather than re-looking it up per transform.
 */
std::shared_ptr<const FftPlan> fftPlanFor(std::size_t n);

/**
 * Sliding DFT of a fixed-length real window, retaining bins
 * 0..n/2 (a real window's upper bins are conjugate mirrors).
 *
 * After a resync() from the full window, each slide() updates every
 * retained bin in O(1):
 *
 *   S_k <- (S_k - oldest + newest) * exp(+2*pi*i*k/n)
 *
 * Rotation error accumulates at ~1 ulp per slide, so callers resync
 * periodically (IceBreaker's FIP does so every resync_every
 * intervals) to stay within 1e-6 of the full recompute.
 */
class SlidingDft
{
  public:
    SlidingDft() = default;

    /** Prepare for windows of length @p n (spectrum starts invalid). */
    explicit SlidingDft(std::size_t n);

    /** Window length (0 when default-constructed). */
    std::size_t windowLength() const { return n_; }

    /** True when bins() reflects the current window. */
    bool valid() const { return valid_; }

    /** Drop the tracked spectrum (next use must resync). */
    void invalidate() { valid_ = false; }

    /**
     * Full recompute from @p window (n samples, oldest first) through
     * the plan cache; zero allocations after the first call.
     */
    void resync(const double *window, std::size_t n, FftScratch &scratch);

    /** O(1)-per-bin update: @p oldest leaves the window, @p newest enters. */
    void slide(double oldest, double newest);

    /** Retained spectrum, bins 0..n/2. Valid only after a resync. */
    const std::vector<Complex> &bins() const { return bins_; }

  private:
    std::size_t n_ = 0;
    std::shared_ptr<const FftPlan> plan_;
    std::vector<Complex> rot_;  //!< exp(+2*pi*i*k/n) per retained bin
    std::vector<Complex> bins_;
    std::vector<Complex> full_; //!< resync spectrum scratch
    bool valid_ = false;
};

} // namespace iceb::math

#endif // ICEB_MATH_FFT_HH
