/**
 * @file
 * Fast Fourier Transform.
 *
 * Iterative radix-2 Cooley-Tukey for power-of-two lengths, with
 * Bluestein's chirp-z algorithm for arbitrary lengths so callers never
 * need to pad (padding would shift harmonic frequencies, which matters
 * for IceBreaker's FIP).
 */

#ifndef ICEB_MATH_FFT_HH
#define ICEB_MATH_FFT_HH

#include <complex>
#include <vector>

namespace iceb::math
{

using Complex = std::complex<double>;

/** True when n is a power of two (n >= 1). */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place forward FFT of a power-of-two-length complex signal.
 * X[k] = sum_t x[t] * exp(-2*pi*i*k*t/N).
 */
void fftPow2(std::vector<Complex> &data);

/** In-place inverse FFT of a power-of-two-length complex spectrum. */
void ifftPow2(std::vector<Complex> &data);

/**
 * Forward DFT of an arbitrary-length complex signal. Dispatches to
 * radix-2 when possible and to Bluestein's algorithm otherwise;
 * O(n log n) in both cases.
 */
std::vector<Complex> fft(const std::vector<Complex> &data);

/** Inverse DFT of an arbitrary-length complex spectrum. */
std::vector<Complex> ifft(const std::vector<Complex> &data);

/** Forward DFT of a real signal (convenience wrapper). */
std::vector<Complex> fftReal(const std::vector<double> &data);

/**
 * Direct O(n^2) DFT. Exists as the oracle the FFT implementations are
 * property-tested against; never used on hot paths.
 */
std::vector<Complex> dftDirect(const std::vector<Complex> &data);

} // namespace iceb::math

#endif // ICEB_MATH_FFT_HH
