/**
 * @file
 * Descriptive statistics used throughout the library: moments,
 * percentiles, min-max normalisation (the paper normalises every
 * utility-score component this way), and empirical CDF construction
 * for the figure reproductions.
 */

#ifndef ICEB_MATH_STATS_HH
#define ICEB_MATH_STATS_HH

#include <cstddef>
#include <vector>

namespace iceb::math
{

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Population variance; 0 for fewer than two samples. */
double variance(const std::vector<double> &values);

/** Population standard deviation. */
double stddev(const std::vector<double> &values);

/** Smallest element; 0 for empty input. */
double minValue(const std::vector<double> &values);

/** Largest element; 0 for empty input. */
double maxValue(const std::vector<double> &values);

/** Median (50th percentile). */
double median(const std::vector<double> &values);

/**
 * Percentile with linear interpolation between order statistics.
 * @param q Quantile in [0, 1]; e.g. 0.95 for the paper's tail latency.
 */
double percentile(const std::vector<double> &values, double q);

/**
 * Min-max normalise into [0, 1]. A constant vector maps to all 0.5
 * (no information to rank on, so everything is "average").
 */
std::vector<double> minMaxNormalize(const std::vector<double> &values);

/** Min-max normalise one value given precomputed bounds. */
double minMaxNormalizeValue(double value, double lo, double hi);

/**
 * Empirical CDF: sorted sample values paired with cumulative
 * probability, suitable for printing the paper's CDF figures.
 */
struct Cdf
{
    std::vector<double> values;        //!< sorted sample points
    std::vector<double> probabilities; //!< P(X <= values[i])

    /** P(X <= x) by binary search. */
    double at(double x) const;

    /** Inverse CDF (quantile) lookup. */
    double quantile(double q) const;
};

/** Build the empirical CDF of a sample. */
Cdf buildCdf(std::vector<double> values);

/** Mean absolute error between two equal-length series. */
double meanAbsoluteError(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Root mean squared error between two equal-length series. */
double rootMeanSquaredError(const std::vector<double> &a,
                            const std::vector<double> &b);

} // namespace iceb::math

#endif // ICEB_MATH_STATS_HH
