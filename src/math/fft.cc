#include "math/fft.hh"

#include <cmath>

#include "common/logging.hh"

namespace iceb::math
{

namespace
{

/** Reverse the low log2(n) bits of i. */
std::size_t
bitReverse(std::size_t i, int log2n)
{
    std::size_t out = 0;
    for (int b = 0; b < log2n; ++b) {
        out = (out << 1) | (i & 1);
        i >>= 1;
    }
    return out;
}

/** Core radix-2 butterfly pass; inverse selects conjugate twiddles. */
void
fftPow2Impl(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    ICEB_ASSERT(isPowerOfTwo(n), "fftPow2 needs power-of-two length");
    int log2n = 0;
    while ((std::size_t{1} << log2n) < n)
        ++log2n;

    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = bitReverse(i, log2n);
        if (j > i)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const Complex w_len(std::cos(angle), std::sin(angle));
        for (std::size_t start = 0; start < n; start += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex even = data[start + k];
                const Complex odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w *= w_len;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &value : data)
            value *= scale;
    }
}

/**
 * Bluestein's chirp-z transform: express the DFT as a convolution and
 * evaluate it with power-of-two FFTs.
 */
std::vector<Complex>
bluestein(const std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    std::size_t m = 1;
    while (m < 2 * n + 1)
        m <<= 1;

    const double sign = inverse ? 1.0 : -1.0;
    std::vector<Complex> chirp(n);
    for (std::size_t i = 0; i < n; ++i) {
        // i*i may overflow for huge n; series lengths here are small.
        const double angle = sign * M_PI *
            static_cast<double>(i) * static_cast<double>(i) /
            static_cast<double>(n);
        chirp[i] = Complex(std::cos(angle), std::sin(angle));
    }

    std::vector<Complex> a(m, Complex(0.0, 0.0));
    std::vector<Complex> b(m, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        a[i] = data[i] * chirp[i];
    b[0] = std::conj(chirp[0]);
    for (std::size_t i = 1; i < n; ++i)
        b[i] = b[m - i] = std::conj(chirp[i]);

    fftPow2Impl(a, false);
    fftPow2Impl(b, false);
    for (std::size_t i = 0; i < m; ++i)
        a[i] *= b[i];
    fftPow2Impl(a, true);

    std::vector<Complex> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] * chirp[i];
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &value : out)
            value *= scale;
    }
    return out;
}

} // namespace

bool
isPowerOfTwo(std::size_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

void
fftPow2(std::vector<Complex> &data)
{
    fftPow2Impl(data, false);
}

void
ifftPow2(std::vector<Complex> &data)
{
    fftPow2Impl(data, true);
}

std::vector<Complex>
fft(const std::vector<Complex> &data)
{
    ICEB_ASSERT(!data.empty(), "fft of empty signal");
    if (isPowerOfTwo(data.size())) {
        std::vector<Complex> copy = data;
        fftPow2Impl(copy, false);
        return copy;
    }
    return bluestein(data, false);
}

std::vector<Complex>
ifft(const std::vector<Complex> &data)
{
    ICEB_ASSERT(!data.empty(), "ifft of empty spectrum");
    if (isPowerOfTwo(data.size())) {
        std::vector<Complex> copy = data;
        fftPow2Impl(copy, true);
        return copy;
    }
    return bluestein(data, true);
}

std::vector<Complex>
fftReal(const std::vector<double> &data)
{
    std::vector<Complex> complex_data;
    complex_data.reserve(data.size());
    for (double value : data)
        complex_data.emplace_back(value, 0.0);
    return fft(complex_data);
}

std::vector<Complex>
dftDirect(const std::vector<Complex> &data)
{
    const std::size_t n = data.size();
    std::vector<Complex> out(n, Complex(0.0, 0.0));
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * M_PI *
                static_cast<double>(k) * static_cast<double>(t) /
                static_cast<double>(n);
            out[k] += data[t] * Complex(std::cos(angle), std::sin(angle));
        }
    }
    return out;
}

} // namespace iceb::math
