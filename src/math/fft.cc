#include "math/fft.hh"

#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"

namespace iceb::math
{

namespace
{

/** Reverse the low log2(n) bits of i. */
std::size_t
bitReverse(std::size_t i, int log2n)
{
    std::size_t out = 0;
    for (int b = 0; b < log2n; ++b) {
        out = (out << 1) | (i & 1);
        i >>= 1;
    }
    return out;
}

/** Core radix-2 butterfly pass; inverse selects conjugate twiddles. */
void
fftPow2Impl(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    ICEB_ASSERT(isPowerOfTwo(n), "fftPow2 needs power-of-two length");
    int log2n = 0;
    while ((std::size_t{1} << log2n) < n)
        ++log2n;

    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = bitReverse(i, log2n);
        if (j > i)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const Complex w_len(std::cos(angle), std::sin(angle));
        for (std::size_t start = 0; start < n; start += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex even = data[start + k];
                const Complex odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w *= w_len;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &value : data)
            value *= scale;
    }
}

/**
 * Bluestein's chirp-z transform: express the DFT as a convolution and
 * evaluate it with power-of-two FFTs.
 */
std::vector<Complex>
bluestein(const std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    std::size_t m = 1;
    while (m < 2 * n + 1)
        m <<= 1;

    const double sign = inverse ? 1.0 : -1.0;
    std::vector<Complex> chirp(n);
    for (std::size_t i = 0; i < n; ++i) {
        // i*i may overflow for huge n; series lengths here are small.
        const double angle = sign * M_PI *
            static_cast<double>(i) * static_cast<double>(i) /
            static_cast<double>(n);
        chirp[i] = Complex(std::cos(angle), std::sin(angle));
    }

    std::vector<Complex> a(m, Complex(0.0, 0.0));
    std::vector<Complex> b(m, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        a[i] = data[i] * chirp[i];
    b[0] = std::conj(chirp[0]);
    for (std::size_t i = 1; i < n; ++i)
        b[i] = b[m - i] = std::conj(chirp[i]);

    fftPow2Impl(a, false);
    fftPow2Impl(b, false);
    for (std::size_t i = 0; i < m; ++i)
        a[i] *= b[i];
    fftPow2Impl(a, true);

    std::vector<Complex> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] * chirp[i];
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto &value : out)
            value *= scale;
    }
    return out;
}

} // namespace

bool
isPowerOfTwo(std::size_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

void
fftPow2(std::vector<Complex> &data)
{
    fftPow2Impl(data, false);
}

void
ifftPow2(std::vector<Complex> &data)
{
    fftPow2Impl(data, true);
}

std::vector<Complex>
fft(const std::vector<Complex> &data)
{
    ICEB_ASSERT(!data.empty(), "fft of empty signal");
    if (isPowerOfTwo(data.size())) {
        std::vector<Complex> copy = data;
        fftPow2Impl(copy, false);
        return copy;
    }
    return bluestein(data, false);
}

std::vector<Complex>
ifft(const std::vector<Complex> &data)
{
    ICEB_ASSERT(!data.empty(), "ifft of empty spectrum");
    if (isPowerOfTwo(data.size())) {
        std::vector<Complex> copy = data;
        fftPow2Impl(copy, true);
        return copy;
    }
    return bluestein(data, true);
}

std::vector<Complex>
fftReal(const std::vector<double> &data)
{
    ICEB_ASSERT(!data.empty(), "fft of empty signal");
    const std::shared_ptr<const FftPlan> plan = fftPlanFor(data.size());
    FftScratch scratch;
    std::vector<Complex> out(data.size());
    plan->forwardReal(data.data(), out.data(), scratch);
    return out;
}

std::vector<Complex>
dftDirect(const std::vector<Complex> &data)
{
    const std::size_t n = data.size();
    std::vector<Complex> out(n, Complex(0.0, 0.0));
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * M_PI *
                static_cast<double>(k) * static_cast<double>(t) /
                static_cast<double>(n);
            out[k] += data[t] * Complex(std::cos(angle), std::sin(angle));
        }
    }
    return out;
}

// --------------------------------------------------------------- FftPlan

FftPlan::FftPlan(std::size_t n)
    : FftPlan(n, true)
{
}

FftPlan::FftPlan(std::size_t n, bool build_real_path)
    : n_(n), is_pow2_(isPowerOfTwo(n))
{
    ICEB_ASSERT(n >= 1, "FftPlan needs a positive length");
    if (is_pow2_) {
        pow2_len_ = n_;
    } else {
        pow2_len_ = 1;
        while (pow2_len_ < 2 * n_ + 1)
            pow2_len_ <<= 1;
    }
    buildPow2Tables();
    if (!is_pow2_)
        buildBluestein();

    if (build_real_path && n_ >= 2 && n_ % 2 == 0) {
        // The n/2 sub-plan only needs complex transforms, so it skips
        // its own real path (bounds the construction recursion).
        half_.reset(new FftPlan(n_ / 2, false));
        real_tw_.resize(n_ / 2);
        for (std::size_t k = 0; k < n_ / 2; ++k) {
            const double angle =
                -2.0 * M_PI * static_cast<double>(k) /
                static_cast<double>(n_);
            real_tw_[k] = Complex(std::cos(angle), std::sin(angle));
        }
    }
}

void
FftPlan::buildPow2Tables()
{
    const std::size_t p = pow2_len_;
    int log2n = 0;
    while ((std::size_t{1} << log2n) < p)
        ++log2n;

    bitrev_.resize(p);
    for (std::size_t i = 0; i < p; ++i)
        bitrev_[i] = static_cast<std::uint32_t>(bitReverse(i, log2n));

    // Per-stage twiddles, generated with the same incremental
    // w *= w_len recurrence as fftPow2Impl so table-driven butterflies
    // reproduce its results bit for bit.
    tw_fwd_.reserve(p > 1 ? p - 1 : 0);
    tw_inv_.reserve(p > 1 ? p - 1 : 0);
    for (std::size_t len = 2; len <= p; len <<= 1) {
        for (const bool inverse : {false, true}) {
            const double angle =
                (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
            const Complex w_len(std::cos(angle), std::sin(angle));
            std::vector<Complex> &table = inverse ? tw_inv_ : tw_fwd_;
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                table.push_back(w);
                w *= w_len;
            }
        }
    }
}

void
FftPlan::buildBluestein()
{
    const std::size_t n = n_;
    const std::size_t m = pow2_len_;
    chirp_fwd_.resize(n);
    chirp_inv_.resize(n);
    for (const bool inverse : {false, true}) {
        const double sign = inverse ? 1.0 : -1.0;
        std::vector<Complex> &chirp = inverse ? chirp_inv_ : chirp_fwd_;
        for (std::size_t i = 0; i < n; ++i) {
            // i*i may overflow for huge n; series lengths here are
            // small. Same expression order as bluestein() above, so
            // the cached chirp is bit-identical to the fresh one.
            const double angle = sign * M_PI *
                static_cast<double>(i) * static_cast<double>(i) /
                static_cast<double>(n);
            chirp[i] = Complex(std::cos(angle), std::sin(angle));
        }
    }

    // The convolution kernel b depends only on the chirp, so its
    // forward transform is computed once here instead of per call.
    for (const bool inverse : {false, true}) {
        const std::vector<Complex> &chirp =
            inverse ? chirp_inv_ : chirp_fwd_;
        std::vector<Complex> b(m, Complex(0.0, 0.0));
        b[0] = std::conj(chirp[0]);
        for (std::size_t i = 1; i < n; ++i)
            b[i] = b[m - i] = std::conj(chirp[i]);
        pow2InPlace(b.data(), false);
        (inverse ? bfft_inv_ : bfft_fwd_) = std::move(b);
    }
}

void
FftPlan::pow2InPlace(Complex *data, bool inverse) const
{
    const std::size_t n = pow2_len_;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = bitrev_[i];
        if (j > i)
            std::swap(data[i], data[j]);
    }

    const Complex *table = (inverse ? tw_inv_ : tw_fwd_).data();
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t start = 0; start < n; start += len) {
            for (std::size_t k = 0; k < half; ++k) {
                const Complex even = data[start + k];
                const Complex odd = data[start + k + half] * table[k];
                data[start + k] = even + odd;
                data[start + k + half] = even - odd;
            }
        }
        table += half;
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] *= scale;
    }
}

void
FftPlan::forward(const Complex *in, Complex *out, FftScratch &scratch) const
{
    if (is_pow2_) {
        if (out != in) {
            for (std::size_t i = 0; i < n_; ++i)
                out[i] = in[i];
        }
        pow2InPlace(out, false);
        return;
    }
    const std::size_t n = n_;
    const std::size_t m = pow2_len_;
    std::vector<Complex> &a = scratch.work;
    a.assign(m, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        a[i] = in[i] * chirp_fwd_[i];
    pow2InPlace(a.data(), false);
    for (std::size_t i = 0; i < m; ++i)
        a[i] *= bfft_fwd_[i];
    pow2InPlace(a.data(), true);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] * chirp_fwd_[i];
}

void
FftPlan::inverse(const Complex *in, Complex *out, FftScratch &scratch) const
{
    if (is_pow2_) {
        if (out != in) {
            for (std::size_t i = 0; i < n_; ++i)
                out[i] = in[i];
        }
        pow2InPlace(out, true);
        return;
    }
    const std::size_t n = n_;
    const std::size_t m = pow2_len_;
    std::vector<Complex> &a = scratch.work;
    a.assign(m, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        a[i] = in[i] * chirp_inv_[i];
    pow2InPlace(a.data(), false);
    for (std::size_t i = 0; i < m; ++i)
        a[i] *= bfft_inv_[i];
    pow2InPlace(a.data(), true);
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] * chirp_inv_[i] * scale;
}

void
FftPlan::forwardReal(const double *in, Complex *out,
                     FftScratch &scratch) const
{
    if (!half_) {
        // Odd or unit length: no packing, run the complex transform.
        std::vector<Complex> &c = scratch.packed;
        c.resize(n_);
        for (std::size_t i = 0; i < n_; ++i)
            c[i] = Complex(in[i], 0.0);
        forward(c.data(), out, scratch);
        return;
    }

    // Pack pairs of real samples into one complex signal of length
    // h = n/2, transform once, then split the result into the even-
    // and odd-sample spectra E and O: X_k = E_k + W^k O_k and
    // X_{k+h} = E_k - W^k O_k with W = exp(-2*pi*i/n).
    const std::size_t h = n_ / 2;
    std::vector<Complex> &z = scratch.packed;
    z.resize(h);
    for (std::size_t j = 0; j < h; ++j)
        z[j] = Complex(in[2 * j], in[2 * j + 1]);
    half_->forward(z.data(), z.data(), scratch);

    for (std::size_t k = 0; k < h; ++k) {
        const Complex zk = z[k];
        const Complex zs = std::conj(z[(h - k) % h]);
        const Complex even = 0.5 * (zk + zs);
        const Complex odd = Complex(0.0, -0.5) * (zk - zs);
        const Complex rotated = real_tw_[k] * odd;
        out[k] = even + rotated;
        out[k + h] = even - rotated;
    }
}

std::shared_ptr<const FftPlan>
fftPlanFor(std::size_t n)
{
    static std::mutex mutex;
    static std::unordered_map<std::size_t,
                              std::shared_ptr<const FftPlan>> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    auto plan = std::make_shared<const FftPlan>(n);
    cache.emplace(n, plan);
    return plan;
}

// ------------------------------------------------------------ SlidingDft

SlidingDft::SlidingDft(std::size_t n)
    : n_(n), plan_(fftPlanFor(n))
{
    ICEB_ASSERT(n >= 1, "SlidingDft needs a positive window");
    const std::size_t bins = n / 2 + 1;
    rot_.resize(bins);
    for (std::size_t k = 0; k < bins; ++k) {
        const double angle =
            2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
        rot_[k] = Complex(std::cos(angle), std::sin(angle));
    }
    bins_.assign(bins, Complex(0.0, 0.0));
}

void
SlidingDft::resync(const double *window, std::size_t n, FftScratch &scratch)
{
    ICEB_ASSERT(n == n_ && n_ >= 1, "SlidingDft window length mismatch");
    full_.resize(n_);
    plan_->forwardReal(window, full_.data(), scratch);
    for (std::size_t k = 0; k < bins_.size(); ++k)
        bins_[k] = full_[k];
    valid_ = true;
}

void
SlidingDft::slide(double oldest, double newest)
{
    ICEB_ASSERT(valid_, "SlidingDft::slide before resync");
    const double delta = newest - oldest;
    for (std::size_t k = 0; k < bins_.size(); ++k)
        bins_[k] = Complex(bins_[k].real() + delta, bins_[k].imag()) *
            rot_[k];
}

} // namespace iceb::math
