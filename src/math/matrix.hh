/**
 * @file
 * Small dense matrix/vector helpers.
 *
 * Sized for the library's needs: normal equations for polynomial
 * fitting (3x3), Yule-Walker systems for ARIMA (order <= ~8), and the
 * LSTM's weight matrices (tens of rows). Row-major storage.
 */

#ifndef ICEB_MATH_MATRIX_HH
#define ICEB_MATH_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iceb::math
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Construct a rows x cols matrix of zeros. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Construct from nested initializer-style data (row major). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Mutable element access (no bounds check in release builds). */
    double &at(std::size_t r, std::size_t c);

    /** Const element access. */
    double at(std::size_t r, std::size_t c) const;

    /** Matrix product this * rhs. */
    Matrix multiply(const Matrix &rhs) const;

    /** Matrix-vector product. */
    std::vector<double> multiply(const std::vector<double> &vec) const;

    /** Transpose. */
    Matrix transposed() const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve the linear system A x = b using Gaussian elimination with
 * partial pivoting. @p a must be square and non-singular (within
 * numerical tolerance); returns the solution vector.
 *
 * @param a System matrix (copied; not modified).
 * @param b Right-hand side; size must equal a.rows().
 * @param singular Optional out-flag set true when the system is
 *                 numerically singular (the returned vector is then
 *                 all zeros instead of garbage).
 */
std::vector<double> solveLinearSystem(const Matrix &a,
                                      const std::vector<double> &b,
                                      bool *singular = nullptr);

/**
 * Allocation-free Gaussian elimination over a caller-built augmented
 * system: @p aug holds n rows of (n + 1) columns row-major, the last
 * column being the right-hand side. @p aug is destroyed; the solution
 * is written to @p x (resized to n, no allocation once capacity
 * exists). Pivoting, tolerances and operation order match
 * solveLinearSystem exactly (which delegates here), so both produce
 * bit-identical solutions.
 */
void solveLinearSystemInPlace(std::vector<double> &aug, std::size_t n,
                              std::vector<double> &x,
                              bool *singular = nullptr);

/**
 * Record/replay Gaussian elimination for solving one matrix against
 * many right-hand sides.
 *
 * factor() runs the pivoting and elimination sequence of
 * solveLinearSystemInPlace on the matrix alone, recording the pivot
 * row chosen at each column and every elimination factor in execution
 * order. solve() replays that recording against a right-hand side:
 * the same row swaps at the same steps, the same factor values in the
 * same subtraction order, the same back-substitution over the
 * recorded upper triangle. Pivot selection in the augmented algorithm
 * depends only on matrix columns, so a replayed solve performs the
 * exact floating-point operation sequence that
 * solveLinearSystemInPlace would on the corresponding augmented
 * system - solutions are bit-identical (enforced by test).
 *
 * This is what lets the batched forecaster factor one shared
 * polyfit normal matrix per (window, degree) group and then solve
 * thousands of per-function right-hand sides cheaply.
 */
class FactoredSystem
{
  public:
    /** Factor the n x n row-major matrix @p a (copied). */
    void factor(const double *a, std::size_t n);

    /** System size (0 until factor() is called). */
    std::size_t size() const { return n_; }

    /** True when the matrix was numerically singular. */
    bool singular() const { return singular_; }

    /**
     * Solve A x = b by replaying the recorded elimination. @p b and
     * @p x are n values; b == x is allowed. A singular system writes
     * all zeros (matching solveLinearSystemInPlace's singular path).
     */
    void solve(const double *b, double *x) const;

  private:
    std::size_t n_ = 0;
    bool singular_ = false;
    std::vector<std::uint32_t> pivot_; //!< pivot row per column
    std::vector<double> factors_;      //!< elimination tape, exec order
    std::vector<double> upper_;        //!< post-elimination matrix rows
};

/** Dot product of two equal-length vectors. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

} // namespace iceb::math

#endif // ICEB_MATH_MATRIX_HH
