#include "math/polyfit.hh"

#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "math/matrix.hh"

namespace iceb::math
{

Polynomial::Polynomial(std::size_t degree)
    : coeffs_(degree + 1, 0.0)
{
}

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs))
{
    ICEB_ASSERT(!coeffs_.empty(), "polynomial needs a coefficient");
}

double
Polynomial::coeff(std::size_t power) const
{
    return power < coeffs_.size() ? coeffs_[power] : 0.0;
}

void
Polynomial::assign(const double *coeffs, std::size_t count)
{
    ICEB_ASSERT(count >= 1, "polynomial needs a coefficient");
    coeffs_.assign(coeffs, coeffs + count);
}

double
Polynomial::evaluate(double t) const
{
    double acc = 0.0;
    for (std::size_t i = coeffs_.size(); i-- > 0;)
        acc = acc * t + coeffs_[i];
    return acc;
}

Polynomial
polyfit(const std::vector<double> &x, const std::vector<double> &y,
        std::size_t degree)
{
    ICEB_ASSERT(x.size() == y.size(), "polyfit size mismatch");
    ICEB_ASSERT(!x.empty(), "polyfit of empty data");
    const std::size_t terms = degree + 1;

    // Normal equations: (V^T V) c = V^T y with Vandermonde V. Only the
    // power sums sum_i x_i^k (k <= 2*degree) and sum_i x_i^k * y_i
    // (k <= degree) are needed.
    Matrix ata(terms, terms);
    std::vector<double> aty(terms, 0.0);
    std::vector<double> powers(2 * degree + 1, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        double xk = 1.0;
        for (std::size_t k = 0; k < powers.size(); ++k) {
            powers[k] += xk;
            if (k < terms)
                aty[k] += xk * y[i];
            xk *= x[i];
        }
    }
    for (std::size_t r = 0; r < terms; ++r)
        for (std::size_t c = 0; c < terms; ++c)
            ata.at(r, c) = powers[r + c];

    bool singular = false;
    std::vector<double> coeffs = solveLinearSystem(ata, aty, &singular);
    if (singular) {
        // Degenerate sample (e.g. constant x): fall back to mean level.
        const double mean =
            std::accumulate(y.begin(), y.end(), 0.0) /
            static_cast<double>(y.size());
        std::vector<double> fallback(terms, 0.0);
        fallback[0] = mean;
        return Polynomial(std::move(fallback));
    }
    return Polynomial(std::move(coeffs));
}

Polynomial
polyfitSeries(const std::vector<double> &y, std::size_t degree)
{
    Polynomial out;
    PolyfitWorkspace ws;
    polyfitSeries(y.data(), y.size(), degree, out, ws);
    return out;
}

void
polyfitSeries(const double *y, std::size_t n, std::size_t degree,
              Polynomial &out, PolyfitWorkspace &ws)
{
    ICEB_ASSERT(n >= 1, "polyfit of empty data");
    const std::size_t terms = degree + 1;

    // Same normal-equation power sums as polyfit() over the implicit
    // sample points x_i = i (iota yields the exact same doubles), so
    // the fit is bit-identical to polyfit(iota, y, degree).
    ws.powers.assign(2 * degree + 1, 0.0);
    ws.aty.assign(terms, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double xi = static_cast<double>(i);
        double xk = 1.0;
        for (std::size_t k = 0; k < ws.powers.size(); ++k) {
            ws.powers[k] += xk;
            if (k < terms)
                ws.aty[k] += xk * y[i];
            xk *= xi;
        }
    }
    ws.aug.assign(terms * (terms + 1), 0.0);
    for (std::size_t r = 0; r < terms; ++r) {
        for (std::size_t c = 0; c < terms; ++c)
            ws.aug[r * (terms + 1) + c] = ws.powers[r + c];
        ws.aug[r * (terms + 1) + terms] = ws.aty[r];
    }

    bool singular = false;
    solveLinearSystemInPlace(ws.aug, terms, ws.coeffs, &singular);
    if (singular) {
        // Degenerate sample (e.g. a single point): fall back to the
        // mean level, matching polyfit().
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            sum += y[i];
        ws.coeffs.assign(terms, 0.0);
        ws.coeffs[0] = sum / static_cast<double>(n);
    }
    out.assign(ws.coeffs.data(), terms);
}

void
buildSeriesPowerTable(std::size_t n, std::size_t degree,
                      SeriesPowerTable &out)
{
    ICEB_ASSERT(n >= 1, "power table of empty series");
    const std::size_t terms = degree + 1;
    out.n = n;
    out.degree = degree;
    out.xpow.assign(n * terms, 0.0);
    out.powers.assign(2 * degree + 1, 0.0);
    // The same xk *= xi chain as polyfitSeries, so the stored powers
    // (and the sums built from them) are the identical doubles.
    for (std::size_t i = 0; i < n; ++i) {
        const double xi = static_cast<double>(i);
        double xk = 1.0;
        for (std::size_t k = 0; k < out.powers.size(); ++k) {
            out.powers[k] += xk;
            if (k < terms)
                out.xpow[i * terms + k] = xk;
            xk *= xi;
        }
    }
}

std::vector<double>
detrend(const std::vector<double> &y, const Polynomial &trend)
{
    std::vector<double> out;
    detrendInto(y.data(), y.size(), trend, out);
    return out;
}

void
detrendInto(const double *y, std::size_t n, const Polynomial &trend,
            std::vector<double> &out)
{
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = y[i] - trend.evaluate(static_cast<double>(i));
}

double
residualSumOfSquares(const std::vector<double> &y, const Polynomial &trend)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double r = y[i] - trend.evaluate(static_cast<double>(i));
        acc += r * r;
    }
    return acc;
}

} // namespace iceb::math
