#include "math/harmonics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "math/fft.hh"
#include "math/matrix.hh"

namespace iceb::math
{

double
Harmonic::evaluate(double t) const
{
    return amplitude * std::cos(2.0 * M_PI * frequency * t + phase);
}

std::vector<Harmonic>
decompose(const std::vector<double> &series, std::size_t max_components)
{
    const std::size_t n = series.size();
    if (n < 2)
        return {};

    const std::vector<Complex> spectrum = fftReal(series);
    std::vector<Harmonic> harmonics;
    harmonics.reserve(n / 2);

    // Real input: bins k and N-k are conjugate pairs that combine into
    // one cosine of amplitude 2|X_k|/N. The Nyquist bin (even N only)
    // is self-conjugate and scales by 1/N.
    const double scale = 2.0 / static_cast<double>(n);
    for (std::size_t k = 1; k <= n / 2; ++k) {
        const bool nyquist = (n % 2 == 0) && (k == n / 2);
        const double amp =
            std::abs(spectrum[k]) * (nyquist ? 0.5 * scale : scale);
        if (amp < 1e-12)
            continue;
        Harmonic h;
        h.amplitude = amp;
        h.frequency = static_cast<double>(k) / static_cast<double>(n);
        h.phase = std::arg(spectrum[k]);
        harmonics.push_back(h);
    }

    std::sort(harmonics.begin(), harmonics.end(),
              [](const Harmonic &a, const Harmonic &b) {
                  return a.amplitude > b.amplitude;
              });
    if (max_components > 0 && harmonics.size() > max_components)
        harmonics.resize(max_components);
    return harmonics;
}

double
evaluateHarmonics(const std::vector<Harmonic> &harmonics, double t)
{
    double acc = 0.0;
    for (const auto &h : harmonics)
        acc += h.evaluate(t);
    return acc;
}

std::size_t
countSignificantHarmonics(const std::vector<double> &series,
                          double relative_threshold)
{
    ICEB_ASSERT(relative_threshold > 0.0 && relative_threshold <= 1.0,
                "threshold must be in (0, 1]");
    const std::size_t n = series.size();
    if (n < 4)
        return 0;
    const std::vector<Complex> spectrum = fftReal(series);
    const std::size_t half = n / 2;
    std::vector<double> magnitude(half + 1, 0.0);
    double peak = 0.0;
    for (std::size_t k = 1; k <= half; ++k) {
        magnitude[k] = std::abs(spectrum[k]);
        peak = std::max(peak, magnitude[k]);
    }
    if (peak < 1e-9)
        return 0;
    // Count spectral *peaks* (local maxima) above the relative
    // threshold; plateau bins and the noise floor do not count as
    // separate harmonics.
    const double cutoff = peak * relative_threshold;
    std::size_t count = 0;
    for (std::size_t k = 1; k <= half; ++k) {
        const double left = k > 1 ? magnitude[k - 1] : 0.0;
        const double right = k < half ? magnitude[k + 1] : 0.0;
        if (magnitude[k] >= cutoff && magnitude[k] >= left &&
            magnitude[k] > right) {
            ++count;
        }
    }
    return count;
}

std::vector<Harmonic>
decomposeForExtrapolation(const std::vector<double> &series,
                          std::size_t max_components)
{
    std::vector<Harmonic> out;
    HarmonicsWorkspace ws;
    decomposeForExtrapolation(series.data(), series.size(),
                              max_components, out, ws);
    return out;
}

void
decomposeForExtrapolation(const double *series, std::size_t n,
                          std::size_t max_components,
                          std::vector<Harmonic> &out,
                          HarmonicsWorkspace &ws)
{
    if (n < 8 || max_components == 0) {
        out = decompose(std::vector<double>(series, series + n),
                        max_components);
        return;
    }

    if (!ws.plan || ws.plan->size() != n)
        ws.plan = fftPlanFor(n);
    ws.spectrum.resize(n);
    ws.plan->forwardReal(series, ws.spectrum.data(), ws.fft);

    const std::size_t half = n / 2;
    ws.magnitude.assign(half + 1, 0.0);
    for (std::size_t k = 1; k <= half; ++k)
        ws.magnitude[k] = std::abs(ws.spectrum[k]);

    decomposeFromMagnitudes(series, n, max_components, out, ws,
                            /*fast_trig=*/false);
}

void
decomposeFromMagnitudes(const double *series, std::size_t n,
                        std::size_t max_components,
                        std::vector<Harmonic> &out,
                        HarmonicsWorkspace &ws, bool fast_trig)
{
    ICEB_ASSERT(n >= 8 && max_components >= 1,
                "decomposeFromMagnitudes needs n >= 8 and components >= 1");
    const std::size_t half = n / 2;
    ICEB_ASSERT(ws.magnitude.size() == half + 1,
                "magnitude buffer must cover bins 0..n/2");
    out.clear();

    // Spectral peak picking over k = 1..n/2.
    const std::vector<double> &magnitude = ws.magnitude;
    std::vector<SpectralPeak> &peaks = ws.peaks;
    peaks.clear();
    for (std::size_t k = 1; k <= half; ++k) {
        const double left = k > 1 ? magnitude[k - 1] : 0.0;
        const double right = k < half ? magnitude[k + 1] : 0.0;
        if (magnitude[k] >= left && magnitude[k] >= right &&
            magnitude[k] > 1e-12) {
            peaks.push_back(SpectralPeak{k, magnitude[k]});
        }
    }
    if (peaks.empty())
        return;
    std::sort(peaks.begin(), peaks.end(),
              [](const SpectralPeak &a, const SpectralPeak &b) {
                  return a.magnitude > b.magnitude;
              });
    if (peaks.size() > max_components)
        peaks.resize(max_components);

    // Quadratic interpolation of log-magnitudes refines each peak's
    // frequency off the bin grid.
    std::vector<double> &frequencies = ws.frequencies;
    frequencies.clear();
    for (const SpectralPeak &peak : peaks) {
        double delta = 0.0;
        const std::size_t k = peak.bin;
        if (k > 1 && k < half) {
            const double lm = std::log(magnitude[k - 1] + 1e-12);
            const double cm = std::log(magnitude[k] + 1e-12);
            const double rm = std::log(magnitude[k + 1] + 1e-12);
            const double denom = lm - 2.0 * cm + rm;
            if (std::fabs(denom) > 1e-12)
                delta = std::clamp(0.5 * (lm - rm) / denom, -0.5, 0.5);
        }
        frequencies.push_back(
            (static_cast<double>(k) + delta) / static_cast<double>(n));
    }

    // Least-squares fit of a_i*cos + b_i*sin at the refined
    // frequencies over the window. X^T X is symmetric, so only the
    // upper triangle is accumulated and mirrored afterwards (the
    // mirrored entries are the exact same products in the exact same
    // order, so this matches the full accumulation bit for bit).
    const std::size_t m = frequencies.size();
    const std::size_t terms = 2 * m;
    ws.xtx.assign(terms * terms, 0.0);
    ws.xty.assign(terms, 0.0);
    ws.row.resize(terms);
    double *xtx = ws.xtx.data();
    double *xty = ws.xty.data();
    double *row = ws.row.data();
    if (fast_trig) {
        // cos/sin of 2*pi*f*t via one complex rotation per sample:
        // ~1 ulp of drift per step, orders of magnitude below the
        // incremental mode's 1e-6 agreement budget.
        ws.rot_state.assign(m, Complex(1.0, 0.0));
        ws.rot_step.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            const double angle = 2.0 * M_PI * frequencies[i];
            ws.rot_step[i] = Complex(std::cos(angle), std::sin(angle));
        }
    }
    for (std::size_t t = 0; t < n; ++t) {
        if (fast_trig) {
            for (std::size_t i = 0; i < m; ++i) {
                row[2 * i] = ws.rot_state[i].real();
                row[2 * i + 1] = ws.rot_state[i].imag();
                ws.rot_state[i] *= ws.rot_step[i];
            }
        } else {
            for (std::size_t i = 0; i < m; ++i) {
                const double angle = 2.0 * M_PI * frequencies[i] *
                    static_cast<double>(t);
                row[2 * i] = std::cos(angle);
                row[2 * i + 1] = std::sin(angle);
            }
        }
        for (std::size_t a = 0; a < terms; ++a) {
            xty[a] += row[a] * series[t];
            double *xtx_row = xtx + a * terms;
            const double ra = row[a];
            for (std::size_t b = a; b < terms; ++b)
                xtx_row[b] += ra * row[b];
        }
    }
    for (std::size_t a = 0; a < terms; ++a)
        for (std::size_t b = a + 1; b < terms; ++b)
            xtx[b * terms + a] = xtx[a * terms + b];
    for (std::size_t a = 0; a < terms; ++a)
        xtx[a * terms + a] += 1e-9;

    ws.aug.assign(terms * (terms + 1), 0.0);
    for (std::size_t r = 0; r < terms; ++r) {
        for (std::size_t c = 0; c < terms; ++c)
            ws.aug[r * (terms + 1) + c] = xtx[r * terms + c];
        ws.aug[r * (terms + 1) + terms] = xty[r];
    }
    bool singular = false;
    solveLinearSystemInPlace(ws.aug, terms, ws.coeffs, &singular);
    if (singular) {
        out = decompose(std::vector<double>(series, series + n),
                        max_components);
        return;
    }

    for (std::size_t i = 0; i < m; ++i) {
        const double a = ws.coeffs[2 * i];
        const double b = ws.coeffs[2 * i + 1];
        Harmonic h;
        h.amplitude = std::sqrt(a * a + b * b);
        h.frequency = frequencies[i];
        // a*cos(wt) + b*sin(wt) = A*cos(wt + phase).
        h.phase = std::atan2(-b, a);
        out.push_back(h);
    }
    std::sort(out.begin(), out.end(),
              [](const Harmonic &x, const Harmonic &y) {
                  return x.amplitude > y.amplitude;
              });
}

double
dominantPeriod(const std::vector<double> &series)
{
    const std::vector<Harmonic> top = decompose(series, 1);
    if (top.empty() || top.front().amplitude < 1e-9)
        return 0.0;
    return 1.0 / top.front().frequency;
}

} // namespace iceb::math
