#include "math/harmonics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "math/fft.hh"
#include "math/harmonics_impl.hh"
#include "math/matrix.hh"

namespace iceb::math
{

double
Harmonic::evaluate(double t) const
{
    return amplitude * std::cos(2.0 * M_PI * frequency * t + phase);
}

std::vector<Harmonic>
decompose(const std::vector<double> &series, std::size_t max_components)
{
    const std::size_t n = series.size();
    if (n < 2)
        return {};

    const std::vector<Complex> spectrum = fftReal(series);
    std::vector<Harmonic> harmonics;
    harmonics.reserve(n / 2);

    // Real input: bins k and N-k are conjugate pairs that combine into
    // one cosine of amplitude 2|X_k|/N. The Nyquist bin (even N only)
    // is self-conjugate and scales by 1/N.
    const double scale = 2.0 / static_cast<double>(n);
    for (std::size_t k = 1; k <= n / 2; ++k) {
        const bool nyquist = (n % 2 == 0) && (k == n / 2);
        const double amp =
            std::abs(spectrum[k]) * (nyquist ? 0.5 * scale : scale);
        if (amp < 1e-12)
            continue;
        Harmonic h;
        h.amplitude = amp;
        h.frequency = static_cast<double>(k) / static_cast<double>(n);
        h.phase = std::arg(spectrum[k]);
        harmonics.push_back(h);
    }

    std::sort(harmonics.begin(), harmonics.end(),
              [](const Harmonic &a, const Harmonic &b) {
                  return a.amplitude > b.amplitude;
              });
    if (max_components > 0 && harmonics.size() > max_components)
        harmonics.resize(max_components);
    return harmonics;
}

double
evaluateHarmonics(const std::vector<Harmonic> &harmonics, double t)
{
    double acc = 0.0;
    for (const auto &h : harmonics)
        acc += h.evaluate(t);
    return acc;
}

std::size_t
countSignificantHarmonics(const std::vector<double> &series,
                          double relative_threshold)
{
    ICEB_ASSERT(relative_threshold > 0.0 && relative_threshold <= 1.0,
                "threshold must be in (0, 1]");
    const std::size_t n = series.size();
    if (n < 4)
        return 0;
    const std::vector<Complex> spectrum = fftReal(series);
    const std::size_t half = n / 2;
    std::vector<double> magnitude(half + 1, 0.0);
    double peak = 0.0;
    for (std::size_t k = 1; k <= half; ++k) {
        magnitude[k] = std::abs(spectrum[k]);
        peak = std::max(peak, magnitude[k]);
    }
    if (peak < 1e-9)
        return 0;
    // Count spectral *peaks* (local maxima) above the relative
    // threshold; plateau bins and the noise floor do not count as
    // separate harmonics.
    const double cutoff = peak * relative_threshold;
    std::size_t count = 0;
    for (std::size_t k = 1; k <= half; ++k) {
        const double left = k > 1 ? magnitude[k - 1] : 0.0;
        const double right = k < half ? magnitude[k + 1] : 0.0;
        if (magnitude[k] >= cutoff && magnitude[k] >= left &&
            magnitude[k] > right) {
            ++count;
        }
    }
    return count;
}

std::vector<Harmonic>
decomposeForExtrapolation(const std::vector<double> &series,
                          std::size_t max_components)
{
    std::vector<Harmonic> out;
    HarmonicsWorkspace ws;
    decomposeForExtrapolation(series.data(), series.size(),
                              max_components, out, ws);
    return out;
}

void
decomposeForExtrapolation(const double *series, std::size_t n,
                          std::size_t max_components,
                          std::vector<Harmonic> &out,
                          HarmonicsWorkspace &ws)
{
    if (n < 8 || max_components == 0) {
        out = decompose(std::vector<double>(series, series + n),
                        max_components);
        return;
    }

    if (!ws.plan || ws.plan->size() != n)
        ws.plan = fftPlanFor(n);
    ws.spectrum.resize(n);
    ws.plan->forwardReal(series, ws.spectrum.data(), ws.fft);

    const std::size_t half = n / 2;
    ws.magnitude.assign(half + 1, 0.0);
    for (std::size_t k = 1; k <= half; ++k)
        ws.magnitude[k] = std::abs(ws.spectrum[k]);

    decomposeFromMagnitudes(series, n, max_components, out, ws,
                            /*fast_trig=*/false);
}

void
decomposeFromMagnitudes(const double *series, std::size_t n,
                        std::size_t max_components,
                        std::vector<Harmonic> &out,
                        HarmonicsWorkspace &ws, bool fast_trig)
{
    // Body shared with the batched forecaster's SIMD translation unit
    // (see harmonics_impl.hh); this is the portable baseline copy.
    detail::decomposeFromMagnitudesImpl(series, n, max_components, out,
                                        ws, fast_trig);
}

double
dominantPeriod(const std::vector<double> &series)
{
    const std::vector<Harmonic> top = decompose(series, 1);
    if (top.empty() || top.front().amplitude < 1e-9)
        return 0.0;
    return 1.0 / top.front().frequency;
}

} // namespace iceb::math
