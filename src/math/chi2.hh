/**
 * @file
 * Pearson chi-square goodness-of-fit test.
 *
 * The paper validates the FIP's second-order polynomial trend model
 * with the Pearson chi^2 goodness-of-fit test (99.2% average
 * confidence). This module provides the test statistic, the
 * chi-square CDF (via the regularised lower incomplete gamma
 * function), and the resulting confidence level.
 */

#ifndef ICEB_MATH_CHI2_HH
#define ICEB_MATH_CHI2_HH

#include <cstddef>
#include <vector>

namespace iceb::math
{

/**
 * Regularised lower incomplete gamma function P(a, x) computed with
 * the series expansion for x < a+1 and the continued fraction
 * otherwise (Numerical Recipes style).
 */
double regularizedLowerGamma(double a, double x);

/** CDF of the chi-square distribution with @p dof degrees of freedom. */
double chiSquareCdf(double x, double dof);

/**
 * Pearson chi-square statistic sum((obs-exp)^2 / exp) over bins with
 * positive expected counts. Bins with expected <= epsilon are pooled
 * into their neighbours to keep the statistic defined.
 */
double pearsonChiSquareStatistic(const std::vector<double> &observed,
                                 const std::vector<double> &expected);

/** Result of a goodness-of-fit evaluation. */
struct GoodnessOfFit
{
    double statistic = 0.0;  //!< Pearson chi-square statistic
    double dof = 0.0;        //!< degrees of freedom used
    double p_value = 0.0;    //!< P(chi2 >= statistic)
    double confidence = 0.0; //!< fit confidence = p-value of the test
};

/**
 * Test how well @p expected (a fitted model evaluated at the sample
 * points) explains @p observed. @p fitted_params is subtracted from
 * the degrees of freedom (3 for a quadratic fit).
 */
GoodnessOfFit chiSquareGoodnessOfFit(const std::vector<double> &observed,
                                     const std::vector<double> &expected,
                                     std::size_t fitted_params);

} // namespace iceb::math

#endif // ICEB_MATH_CHI2_HH
