#include "predictors/lstm.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace iceb::predictors
{

namespace
{

inline double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

inline double
clip(double x, double bound)
{
    return std::clamp(x, -bound, bound);
}

} // namespace

LstmPredictor::LstmPredictor(LstmConfig config)
    : config_(config)
{
    ICEB_ASSERT(config_.hidden >= 2, "LSTM hidden width too small");
    ICEB_ASSERT(config_.window >= 4, "LSTM window too small");
    initWeights();
}

void
LstmPredictor::initWeights()
{
    Rng rng(config_.seed);
    const std::size_t h = config_.hidden;
    const std::size_t in = 1 + h; // [x, h_prev]
    const double bound = 1.0 / std::sqrt(static_cast<double>(in));
    auto init_matrix = [&](std::vector<double> &w) {
        w.resize(h * in);
        for (double &value : w)
            value = rng.uniform(-bound, bound);
    };
    init_matrix(w_i_);
    init_matrix(w_f_);
    init_matrix(w_o_);
    init_matrix(w_g_);
    b_i_.assign(h, 0.0);
    b_f_.assign(h, 1.0); // standard forget-gate bias init
    b_o_.assign(h, 0.0);
    b_g_.assign(h, 0.0);
    w_y_.resize(h);
    for (double &value : w_y_)
        value = rng.uniform(-bound, bound);
    b_y_ = 0.0;
}

double
LstmPredictor::normalize(double value) const
{
    return value / scale_;
}

double
LstmPredictor::denormalize(double value) const
{
    return value * scale_;
}

void
LstmPredictor::observe(double concurrency)
{
    concurrency = std::max(0.0, concurrency);
    if (window_.size() == config_.window)
        window_.erase(window_.begin());
    window_.push_back(concurrency);
    scale_ = std::max({scale_, concurrency, 1.0});

    if (window_.size() >= 4) {
        for (std::size_t e = 0; e < config_.epochs_per_observe; ++e)
            trainOneEpoch();
    }
}

double
LstmPredictor::forward(const std::vector<double> &inputs,
                       std::vector<StepCache> *caches) const
{
    const std::size_t h = config_.hidden;
    const std::size_t in = 1 + h;
    std::vector<double> h_prev(h, 0.0);
    std::vector<double> c_prev(h, 0.0);

    double output = 0.0;
    for (std::size_t t = 0; t < inputs.size(); ++t) {
        StepCache cache;
        cache.x_h.resize(in);
        cache.x_h[0] = normalize(inputs[t]);
        for (std::size_t j = 0; j < h; ++j)
            cache.x_h[1 + j] = h_prev[j];

        cache.i.resize(h);
        cache.f.resize(h);
        cache.o.resize(h);
        cache.g.resize(h);
        cache.c.resize(h);
        cache.h.resize(h);
        cache.tanh_c.resize(h);
        for (std::size_t j = 0; j < h; ++j) {
            double zi = b_i_[j], zf = b_f_[j], zo = b_o_[j],
                   zg = b_g_[j];
            const std::size_t row = j * in;
            for (std::size_t k = 0; k < in; ++k) {
                const double x = cache.x_h[k];
                zi += w_i_[row + k] * x;
                zf += w_f_[row + k] * x;
                zo += w_o_[row + k] * x;
                zg += w_g_[row + k] * x;
            }
            cache.i[j] = sigmoid(zi);
            cache.f[j] = sigmoid(zf);
            cache.o[j] = sigmoid(zo);
            cache.g[j] = std::tanh(zg);
            cache.c[j] = cache.f[j] * c_prev[j] +
                cache.i[j] * cache.g[j];
            cache.tanh_c[j] = std::tanh(cache.c[j]);
            cache.h[j] = cache.o[j] * cache.tanh_c[j];
        }
        h_prev = cache.h;
        c_prev = cache.c;

        output = b_y_;
        for (std::size_t j = 0; j < h; ++j)
            output += w_y_[j] * cache.h[j];
        if (caches)
            caches->push_back(std::move(cache));
    }
    return output;
}

void
LstmPredictor::trainOneEpoch()
{
    const std::size_t h = config_.hidden;
    const std::size_t in = 1 + h;
    const std::size_t steps = window_.size();
    if (steps < 2)
        return;

    // Forward with caches; target at step t is the (normalised) value
    // at t+1, so the prediction error is defined for t < steps-1.
    std::vector<StepCache> caches;
    caches.reserve(steps);
    forward(window_, &caches);

    // Gradient accumulators.
    std::vector<double> gw_i(h * in, 0.0), gw_f(h * in, 0.0),
        gw_o(h * in, 0.0), gw_g(h * in, 0.0);
    std::vector<double> gb_i(h, 0.0), gb_f(h, 0.0), gb_o(h, 0.0),
        gb_g(h, 0.0);
    std::vector<double> gw_y(h, 0.0);
    double gb_y = 0.0;

    std::vector<double> dh_next(h, 0.0);
    std::vector<double> dc_next(h, 0.0);

    for (std::size_t t = steps; t-- > 0;) {
        const StepCache &cache = caches[t];
        std::vector<double> dh = dh_next;

        if (t + 1 < steps) {
            // Output-layer error at this step.
            double y = b_y_;
            for (std::size_t j = 0; j < h; ++j)
                y += w_y_[j] * cache.h[j];
            const double target = normalize(window_[t + 1]);
            const double dy = 2.0 * (y - target) /
                static_cast<double>(steps - 1);
            gb_y += dy;
            for (std::size_t j = 0; j < h; ++j) {
                gw_y[j] += dy * cache.h[j];
                dh[j] += dy * w_y_[j];
            }
        }

        std::vector<double> dx_h(in, 0.0);
        std::vector<double> dc(h, 0.0);
        for (std::size_t j = 0; j < h; ++j) {
            const double do_ = dh[j] * cache.tanh_c[j];
            dc[j] = dc_next[j] +
                dh[j] * cache.o[j] *
                    (1.0 - cache.tanh_c[j] * cache.tanh_c[j]);
            const double di = dc[j] * cache.g[j];
            const double dg = dc[j] * cache.i[j];
            const double c_prev =
                t > 0 ? caches[t - 1].c[j] : 0.0;
            const double df = dc[j] * c_prev;

            const double zi = di * cache.i[j] * (1.0 - cache.i[j]);
            const double zf = df * cache.f[j] * (1.0 - cache.f[j]);
            const double zo = do_ * cache.o[j] * (1.0 - cache.o[j]);
            const double zg = dg * (1.0 - cache.g[j] * cache.g[j]);

            gb_i[j] += zi;
            gb_f[j] += zf;
            gb_o[j] += zo;
            gb_g[j] += zg;
            const std::size_t row = j * in;
            for (std::size_t k = 0; k < in; ++k) {
                const double x = cache.x_h[k];
                gw_i[row + k] += zi * x;
                gw_f[row + k] += zf * x;
                gw_o[row + k] += zo * x;
                gw_g[row + k] += zg * x;
                dx_h[k] += zi * w_i_[row + k] + zf * w_f_[row + k] +
                    zo * w_o_[row + k] + zg * w_g_[row + k];
            }
        }
        for (std::size_t j = 0; j < h; ++j) {
            dh_next[j] = dx_h[1 + j];
            dc_next[j] = dc[j] * cache.f[j];
        }
    }

    // Clipped SGD step.
    const double lr = config_.learning_rate;
    const double gc = config_.grad_clip;
    auto apply = [&](std::vector<double> &w,
                     const std::vector<double> &g) {
        for (std::size_t k = 0; k < w.size(); ++k)
            w[k] -= lr * clip(g[k], gc);
    };
    apply(w_i_, gw_i);
    apply(w_f_, gw_f);
    apply(w_o_, gw_o);
    apply(w_g_, gw_g);
    apply(b_i_, gb_i);
    apply(b_f_, gb_f);
    apply(b_o_, gb_o);
    apply(b_g_, gb_g);
    apply(w_y_, gw_y);
    b_y_ -= lr * clip(gb_y, gc);
}

double
LstmPredictor::predictNext()
{
    if (window_.empty())
        return 0.0;
    const double normalized = forward(window_, nullptr);
    return std::max(0.0, denormalize(normalized));
}

void
LstmPredictor::reset()
{
    window_.clear();
    scale_ = 1.0;
    initWeights();
}

} // namespace iceb::predictors
