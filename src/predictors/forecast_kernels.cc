#include "predictors/forecast_kernels.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "math/harmonics_impl.hh"

namespace iceb::predictors::kernels
{

namespace
{

constexpr std::size_t L = kLanes;

/**
 * Radix-2 kernel over plan.pow2Length() points for all lanes at once,
 * mirroring FftPlan::pow2InPlace: same bit-reversal swaps, same
 * table-driven butterflies, complex products written in the operand
 * order std::complex multiplication lowers to (re = a.re*b.re -
 * a.im*b.im, im = a.re*b.im + a.im*b.re for finite values), so each
 * lane's values match the scalar transform bit for bit.
 */
void
pow2BatchInPlace(const math::FftPlan &plan, double *re, double *im,
                 bool inverse)
{
    const std::size_t p = plan.pow2Length();
    const std::uint32_t *bitrev = plan.bitrev().data();
    for (std::size_t i = 0; i < p; ++i) {
        const std::size_t j = bitrev[i];
        if (j > i) {
            for (std::size_t l = 0; l < L; ++l) {
                std::swap(re[i * L + l], re[j * L + l]);
                std::swap(im[i * L + l], im[j * L + l]);
            }
        }
    }

    const math::Complex *table = plan.twiddles(inverse).data();
    for (std::size_t len = 2; len <= p; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t start = 0; start < p; start += len) {
            for (std::size_t k = 0; k < half; ++k) {
                const double wr = table[k].real();
                const double wi = table[k].imag();
                double *er = re + (start + k) * L;
                double *ei = im + (start + k) * L;
                double *odr = re + (start + k + half) * L;
                double *odi = im + (start + k + half) * L;
                for (std::size_t l = 0; l < L; ++l) {
                    const double ar = odr[l];
                    const double ai = odi[l];
                    const double oddr = ar * wr - ai * wi;
                    const double oddi = ar * wi + ai * wr;
                    const double br = er[l];
                    const double bi = ei[l];
                    er[l] = br + oddr;
                    ei[l] = bi + oddi;
                    odr[l] = br - oddr;
                    odi[l] = bi - oddi;
                }
            }
        }
        table += half;
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(p);
        for (std::size_t idx = 0; idx < p * L; ++idx) {
            re[idx] *= scale;
            im[idx] *= scale;
        }
    }
}

/**
 * Batched Bluestein forward transform (the FftPlan::forward non-pow2
 * path): chirp-multiply into a zero-padded buffer, pow2 forward,
 * kernel multiply, pow2 inverse (1/m-scaled), chirp-multiply out.
 * in_im may be null for real input (treated as literal 0.0 so the
 * operation sequence matches the scalar complex transform of a
 * zero-imaginary signal). out may alias in. Writes all n bins.
 */
void
bluesteinForwardBatch(const math::FftPlan &plan, const double *in_re,
                      const double *in_im, double *out_re,
                      double *out_im, BlockScratch &s)
{
    const std::size_t n = plan.size();
    const std::size_t m = plan.pow2Length();
    const math::Complex *chirp = plan.chirp().data();
    const math::Complex *kernel = plan.kernelFft().data();

    std::fill(s.fft_re.begin(), s.fft_re.end(), 0.0);
    std::fill(s.fft_im.begin(), s.fft_im.end(), 0.0);
    double *ar = s.fft_re.data();
    double *ai = s.fft_im.data();
    for (std::size_t i = 0; i < n; ++i) {
        const double cr = chirp[i].real();
        const double ci = chirp[i].imag();
        for (std::size_t l = 0; l < L; ++l) {
            const double xr = in_re[i * L + l];
            const double xi = in_im != nullptr ? in_im[i * L + l] : 0.0;
            ar[i * L + l] = xr * cr - xi * ci;
            ai[i * L + l] = xr * ci + xi * cr;
        }
    }

    pow2BatchInPlace(plan, ar, ai, false);
    for (std::size_t i = 0; i < m; ++i) {
        const double br = kernel[i].real();
        const double bi = kernel[i].imag();
        for (std::size_t l = 0; l < L; ++l) {
            const double xr = ar[i * L + l];
            const double xi = ai[i * L + l];
            ar[i * L + l] = xr * br - xi * bi;
            ai[i * L + l] = xr * bi + xi * br;
        }
    }
    pow2BatchInPlace(plan, ar, ai, true);

    for (std::size_t i = 0; i < n; ++i) {
        const double cr = chirp[i].real();
        const double ci = chirp[i].imag();
        for (std::size_t l = 0; l < L; ++l) {
            const double xr = ar[i * L + l];
            const double xi = ai[i * L + l];
            out_re[i * L + l] = xr * cr - xi * ci;
            out_im[i * L + l] = xr * ci + xi * cr;
        }
    }
}

} // namespace

void
BlockScratch::prepare(const BlockContext &ctx)
{
    const std::size_t n = ctx.window;
    const std::size_t terms = ctx.degree + 1;
    window.resize(n * L);
    resid.resize(n * L);
    coeffs.resize(terms * L);
    aty.resize(terms * L);
    spec_re.resize((n / 2 + 1) * L);
    spec_im.resize((n / 2 + 1) * L);
    packed_re.resize(n * L);
    packed_im.resize(n * L);
    lane_rhs.resize(terms);
    lane_series.resize(n);

    const math::FftPlan *half = ctx.plan->halfPlan();
    std::size_t pow2_work = 0;
    if (half != nullptr) {
        if (!half->isPow2())
            pow2_work = half->pow2Length();
    } else if (!ctx.plan->isPow2()) {
        pow2_work = ctx.plan->pow2Length();
    }
    fft_re.resize(pow2_work * L);
    fft_im.resize(pow2_work * L);
}

void
forwardRealBatch(const math::FftPlan &plan, const double *in,
                 double *out_re, double *out_im, BlockScratch &scratch)
{
    const std::size_t n = plan.size();
    ICEB_ASSERT(n >= 2, "batched real FFT needs n >= 2");
    const math::FftPlan *half_plan = plan.halfPlan();
    if (half_plan == nullptr) {
        // Odd length: complex transform of the (zero-imaginary) real
        // signal, then keep bins 0..n/2 (mirrors forwardReal's
        // fallback through forward()).
        bluesteinForwardBatch(plan, in, nullptr,
                              scratch.packed_re.data(),
                              scratch.packed_im.data(), scratch);
        const std::size_t bins = n / 2 + 1;
        std::copy(scratch.packed_re.begin(),
                  scratch.packed_re.begin() +
                      static_cast<std::ptrdiff_t>(bins * L),
                  out_re);
        std::copy(scratch.packed_im.begin(),
                  scratch.packed_im.begin() +
                      static_cast<std::ptrdiff_t>(bins * L),
                  out_im);
        return;
    }

    // Pack sample pairs into an n/2-point complex signal, transform,
    // and unpack - the same split-spectrum identities as
    // FftPlan::forwardReal, restricted to the bins 0..n/2 the
    // magnitude pass consumes.
    const std::size_t h = n / 2;
    double *zr = scratch.packed_re.data();
    double *zi = scratch.packed_im.data();
    for (std::size_t j = 0; j < h; ++j) {
        for (std::size_t l = 0; l < L; ++l) {
            zr[j * L + l] = in[(2 * j) * L + l];
            zi[j * L + l] = in[(2 * j + 1) * L + l];
        }
    }
    if (half_plan->isPow2())
        pow2BatchInPlace(*half_plan, zr, zi, false);
    else
        bluesteinForwardBatch(*half_plan, zr, zi, zr, zi, scratch);

    const math::Complex *rtw = plan.realTwiddles().data();
    for (std::size_t k = 0; k < h; ++k) {
        const std::size_t ks = (h - k) % h;
        const double twr = rtw[k].real();
        const double twi = rtw[k].imag();
        for (std::size_t l = 0; l < L; ++l) {
            const double zkr = zr[k * L + l];
            const double zki = zi[k * L + l];
            const double zsr = zr[ks * L + l];
            const double zsi = -zi[ks * L + l];
            const double evr = 0.5 * (zkr + zsr);
            const double evi = 0.5 * (zki + zsi);
            const double dr = zkr - zsr;
            const double di = zki - zsi;
            // odd = Complex(0.0, -0.5) * (zk - zs), written in the
            // lowered operand order; the 0.0 products are kept so the
            // signed-zero behaviour matches the scalar path exactly.
            const double odr = 0.0 * dr - (-0.5) * di;
            const double odi = 0.0 * di + (-0.5) * dr;
            const double ror = twr * odr - twi * odi;
            const double roi = twr * odi + twi * odr;
            out_re[k * L + l] = evr + ror;
            out_im[k * L + l] = evi + roi;
            if (k == 0) {
                out_re[h * L + l] = evr - ror;
                out_im[h * L + l] = evi - roi;
            }
        }
    }
}

void
forecastBlock(const BlockContext &ctx, const bool *active,
              std::size_t horizon, BlockScratch &scratch, double *out)
{
    const std::size_t n = ctx.window;
    const std::size_t terms = ctx.degree + 1;
    ICEB_ASSERT(n >= 8, "forecastBlock needs window >= 8");
    ICEB_ASSERT(ctx.plan != nullptr && ctx.powers != nullptr &&
                    ctx.trend_system != nullptr,
                "forecastBlock needs prepared group caches");

    double *window = scratch.window.data();
    double *aty = scratch.aty.data();
    double *coeffs = scratch.coeffs.data();
    double *resid = scratch.resid.data();

    // Trend fit: the normal-equation rhs sum_i i^k * y_i per lane,
    // accumulated in the same ascending-i order (and from the same
    // chain powers) as polyfitSeries.
    std::fill(scratch.aty.begin(), scratch.aty.end(), 0.0);
    const double *xpow = ctx.powers->xpow.data();
    for (std::size_t i = 0; i < n; ++i) {
        const double *xrow = xpow + i * terms;
        const double *w = window + i * L;
        for (std::size_t k = 0; k < terms; ++k) {
            const double xk = xrow[k];
            double *dst = aty + k * L;
            for (std::size_t l = 0; l < L; ++l)
                dst[l] += xk * w[l];
        }
    }
    if (ctx.trend_system->singular()) {
        // Degenerate normal matrix: every lane falls back to its mean
        // level, matching polyfitSeries' singular path (ascending
        // accumulation order).
        for (std::size_t l = 0; l < L; ++l) {
            double sum = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                sum += window[i * L + l];
            for (std::size_t k = 0; k < terms; ++k)
                coeffs[k * L + l] = 0.0;
            coeffs[l] = sum / static_cast<double>(n);
        }
    } else {
        double *rhs = scratch.lane_rhs.data();
        for (std::size_t l = 0; l < L; ++l) {
            for (std::size_t k = 0; k < terms; ++k)
                rhs[k] = aty[k * L + l];
            ctx.trend_system->solve(rhs, rhs);
            for (std::size_t k = 0; k < terms; ++k)
                coeffs[k * L + l] = rhs[k];
        }
    }

    // Detrend: per-lane Horner evaluation with the scalar
    // Polynomial::evaluate recurrence (including the leading
    // acc = 0*t + c_top step, for exactness).
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        double acc[L];
        for (std::size_t l = 0; l < L; ++l)
            acc[l] = 0.0;
        for (std::size_t k = terms; k-- > 0;) {
            const double *ck = coeffs + k * L;
            for (std::size_t l = 0; l < L; ++l)
                acc[l] = acc[l] * t + ck[l];
        }
        const double *w = window + i * L;
        double *r = resid + i * L;
        for (std::size_t l = 0; l < L; ++l)
            r[l] = w[l] - acc[l];
    }

    forwardRealBatch(*ctx.plan, resid, scratch.spec_re.data(),
                     scratch.spec_im.data(), scratch);

    // Harmonic fit + horizon evaluation per active lane.
    const std::size_t half = n / 2;
    const double *spec_re = scratch.spec_re.data();
    const double *spec_im = scratch.spec_im.data();
    scratch.horizon.resize(horizon);
    for (std::size_t l = 0; l < L; ++l) {
        if (!active[l])
            continue;
        scratch.hws.magnitude.assign(half + 1, 0.0);
        for (std::size_t k = 1; k <= half; ++k) {
            scratch.hws.magnitude[k] = std::abs(
                math::Complex(spec_re[k * L + l], spec_im[k * L + l]));
        }
        double *series = scratch.lane_series.data();
        for (std::size_t i = 0; i < n; ++i)
            series[i] = resid[i * L + l];
        if (ctx.fast_trig) {
            // Local SIMD instantiation with rotation-recurrence rows.
            math::detail::decomposeFromMagnitudesImpl(
                series, n, ctx.harmonics, scratch.harm, scratch.hws,
                /*fast_trig=*/true);
        } else {
            // Exact mode routes through the same baseline-compiled
            // function the scalar predictor calls.
            math::decomposeFromMagnitudes(series, n, ctx.harmonics,
                                          scratch.harm, scratch.hws,
                                          /*fast_trig=*/false);
        }

        double *rhs = scratch.lane_rhs.data();
        for (std::size_t k = 0; k < terms; ++k)
            rhs[k] = coeffs[k * L + l];
        scratch.trend_poly.assign(rhs, terms);
        double *hor = scratch.horizon.data();
        if (!ctx.fast_trig) {
            for (std::size_t step = 0; step < horizon; ++step) {
                const double t = static_cast<double>(n + step);
                hor[step] = scratch.trend_poly.evaluate(t) +
                    math::evaluateHarmonics(scratch.harm, t);
            }
        } else {
            // Fast mode: two cos/sin calls per harmonic seed a complex
            // rotation across the horizon instead of one cos per
            // (harmonic, step).
            for (std::size_t step = 0; step < horizon; ++step) {
                hor[step] = scratch.trend_poly.evaluate(
                    static_cast<double>(n + step));
            }
            for (const math::Harmonic &h : scratch.harm) {
                const double w = 2.0 * M_PI * h.frequency;
                const double theta0 =
                    w * static_cast<double>(n) + h.phase;
                double c = std::cos(theta0);
                double s = std::sin(theta0);
                const double rc = std::cos(w);
                const double rs = std::sin(w);
                for (std::size_t step = 0; step < horizon; ++step) {
                    hor[step] += h.amplitude * c;
                    const double nc = c * rc - s * rs;
                    s = c * rs + s * rc;
                    c = nc;
                }
            }
        }
        for (std::size_t step = 0; step < horizon; ++step)
            out[step * L + l] = std::max(0.0, hor[step]);
    }
}

} // namespace iceb::predictors::kernels
