/**
 * @file
 * Hybrid-histogram inter-arrival predictor ("Serverless in the
 * Wild", Shahrad et al., ATC'20).
 *
 * Keeps a per-function histogram of idle times (minutes between
 * invocations). When the histogram is "representative", the policy
 * pre-warms at the head percentile after the last invocation and
 * keeps the function alive until the tail percentile. Otherwise it
 * falls back to an ARIMA forecast of the next idle time, and when
 * even that is unusable, to a standard fixed keep-alive.
 */

#ifndef ICEB_PREDICTORS_HYBRID_HISTOGRAM_HH
#define ICEB_PREDICTORS_HYBRID_HISTOGRAM_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "predictors/arima.hh"

namespace iceb::predictors
{

/** Hybrid-histogram configuration (defaults follow the ATC'20 paper). */
struct HybridHistogramConfig
{
    std::size_t max_idle_minutes = 240; //!< histogram range (4 hours)
    double head_quantile = 0.05;        //!< pre-warm margin
    double tail_quantile = 0.99;        //!< keep-alive bound
    std::size_t min_samples = 8;        //!< representativeness gate
    double max_cv = 2.0;                //!< coefficient-of-variation gate
    double max_oob_fraction = 0.5;      //!< out-of-bounds tolerance
};

/** What the hybrid scheme recommends for the next idle period. */
struct IdleWindowForecast
{
    bool usable = false;        //!< false -> use the standard keep-alive
    double head_minutes = 0.0;  //!< start warming this long after idle
    double tail_minutes = 0.0;  //!< stop keeping alive after this long
};

/**
 * Per-function hybrid histogram state.
 */
class HybridHistogram
{
  public:
    explicit HybridHistogram(HybridHistogramConfig config = {});

    /**
     * Record an invocation at the given interval index; idle time is
     * derived from the previous recorded arrival.
     */
    void observeArrival(IntervalIndex interval);

    /** True when the histogram passes the representativeness gates. */
    bool representative() const;

    /** Recommendation for the idle period that starts now. */
    IdleWindowForecast forecast();

    /** Total idle-time samples observed. */
    std::size_t sampleCount() const { return total_samples_; }

    /** Histogram quantile in minutes (linear within the range). */
    double quantileMinutes(double q) const;

  private:
    double histogramMean() const;
    double histogramStddev() const;

    HybridHistogramConfig config_;
    std::vector<std::uint32_t> bins_; //!< bins_[m] = count of m-minute idles
    std::size_t total_samples_ = 0;
    std::size_t oob_samples_ = 0;
    std::optional<IntervalIndex> last_arrival_;
    ArimaPredictor arima_; //!< fallback on idle-time series
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_HYBRID_HISTOGRAM_HH
