/**
 * @file
 * Common interface for function-invocation predictors.
 *
 * A predictor consumes the invocation concurrency of each completed
 * decision interval and forecasts the concurrency of the next one.
 * Inter-arrival time prediction falls out of it: it is the gap
 * between two non-zero concurrency predictions (paper Sec. 3.1).
 */

#ifndef ICEB_PREDICTORS_PREDICTOR_HH
#define ICEB_PREDICTORS_PREDICTOR_HH

#include <memory>

namespace iceb::predictors
{

/**
 * One-step-ahead time-series predictor.
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

    /** Feed the actual concurrency of the interval that just ended. */
    virtual void observe(double concurrency) = 0;

    /**
     * Forecast the next interval's concurrency. Never negative;
     * callers round to a whole instance count.
     */
    virtual double predictNext() = 0;

    /** Drop all learned state. */
    virtual void reset() = 0;
};

/** Owning predictor handle. */
using PredictorPtr = std::unique_ptr<Predictor>;

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_PREDICTOR_HH
