/**
 * @file
 * Batched (structure-of-arrays) forecast kernels for the FIP.
 *
 * One block forecasts kLanes functions at a time: every pipeline
 * stage (trend fit, detrend, real FFT, harmonic fit, horizon
 * evaluation) walks lane-major SoA arrays so the per-sample inner
 * loops run over the kLanes axis and vectorize. The translation unit
 * is compiled with wider codegen (-march=x86-64-v3 when available,
 * see src/predictors/CMakeLists.txt) but always with
 * -ffp-contract=off and without value-unsafe optimisations, so every
 * lane executes the exact IEEE operation sequence of the scalar
 * FftPredictor path:
 *
 *  - the trend fit reuses the shared SeriesPowerTable chain powers
 *    and replays one FactoredSystem per group (bit-identical to
 *    polyfitSeries, see math/matrix.hh);
 *  - the batched FFT runs the same butterfly/chirp sequence as
 *    FftPlan::forwardReal from the plan's own tables, with complex
 *    arithmetic written out in the operand order std::complex lowers
 *    to;
 *  - the harmonic fit calls the same decomposeFromMagnitudes
 *    implementation the scalar predictor uses.
 *
 * In the default exact mode the result is therefore bit-identical to
 * FftPredictor::forecastHorizon (enforced by test). The opt-in fast
 * mode swaps per-sample cos/sin for complex-rotation recurrences in
 * the harmonic fit and the horizon evaluation (~1 ulp/sample, well
 * inside the 1e-9 agreement budget) and is the batch bench's
 * headline configuration.
 */

#ifndef ICEB_PREDICTORS_FORECAST_KERNELS_HH
#define ICEB_PREDICTORS_FORECAST_KERNELS_HH

#include <cstddef>
#include <vector>

#include "math/fft.hh"
#include "math/harmonics.hh"
#include "math/matrix.hh"
#include "math/polyfit.hh"

namespace iceb::predictors::kernels
{

/** Functions forecast together per block (the SoA lane count). */
constexpr std::size_t kLanes = 8;

/**
 * Immutable per-group inputs shared by every block of a pool group:
 * the cached plan and fit tables for one (window, config) class.
 */
struct BlockContext
{
    const math::FftPlan *plan = nullptr; //!< plan for length window
    std::size_t window = 0;              //!< samples per function
    std::size_t degree = 2;              //!< trend polynomial order
    std::size_t harmonics = 10;          //!< top-n components kept
    /** Shared Vandermonde powers/power sums for the trend fit. */
    const math::SeriesPowerTable *powers = nullptr;
    /** Factored normal matrix, replayed per lane. */
    const math::FactoredSystem *trend_system = nullptr;
    /** Fast mode: rotation-recurrence trig (<= 1e-9 divergence). */
    bool fast_trig = false;
};

/**
 * Per-thread scratch for one block. SoA arrays are indexed
 * [sample * kLanes + lane]; prepare() sizes everything for a context
 * and allocates nothing once capacities cover the largest group.
 */
struct BlockScratch
{
    std::vector<double> window;  //!< gathered input, filled by caller
    std::vector<double> resid;   //!< detrended residual
    std::vector<double> coeffs;  //!< trend coefficients, [k*kLanes+l]
    std::vector<double> aty;     //!< normal-equation rhs, [k*kLanes+l]
    std::vector<double> spec_re; //!< spectrum bins 0..n/2
    std::vector<double> spec_im;
    std::vector<double> fft_re;  //!< Bluestein pow2 work buffer
    std::vector<double> fft_im;
    std::vector<double> packed_re; //!< packed half-length signal
    std::vector<double> packed_im;
    std::vector<double> lane_rhs;    //!< contiguous per-lane solve buffer
    std::vector<double> lane_series; //!< contiguous per-lane residual
    std::vector<double> horizon;     //!< per-lane horizon accumulator
    math::HarmonicsWorkspace hws;
    math::Polynomial trend_poly;
    std::vector<math::Harmonic> harm;

    /** Size all buffers for @p ctx (no-op once capacity exists). */
    void prepare(const BlockContext &ctx);
};

/**
 * Forecast the active lanes of one gathered block. The caller fills
 * scratch.window for every active lane (inactive lane columns must be
 * zero-filled) and receives out[step * kLanes + lane] for each of the
 * @p horizon steps of each active lane; inactive lanes are left
 * untouched. Requires window >= 8.
 */
void forecastBlock(const BlockContext &ctx, const bool *active,
                   std::size_t horizon, BlockScratch &scratch,
                   double *out);

/**
 * SoA forward real DFT of kLanes series at once: reads
 * in[i * kLanes + lane] for i < n and writes spectrum bins 0..n/2 to
 * out_re/out_im (same indexing). Runs the exact operation sequence of
 * FftPlan::forwardReal per lane (exposed for the golden tests).
 */
void forwardRealBatch(const math::FftPlan &plan, const double *in,
                      double *out_re, double *out_im,
                      BlockScratch &scratch);

} // namespace iceb::predictors::kernels

#endif // ICEB_PREDICTORS_FORECAST_KERNELS_HH
