#include "predictors/fft_predictor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "math/harmonics.hh"
#include "math/polyfit.hh"
#include "math/stats.hh"

namespace iceb::predictors
{

FftPredictor::FftPredictor(FftPredictorConfig config)
    : config_(config)
{
    ICEB_ASSERT(config_.window >= 4, "FIP window too small");
    ICEB_ASSERT(config_.harmonics >= 1, "FIP needs >= 1 harmonic");
    window_.reserve(config_.window);
}

void
FftPredictor::observe(double concurrency)
{
    if (window_.size() == config_.window)
        window_.erase(window_.begin());
    window_.push_back(std::max(0.0, concurrency));
}

double
FftPredictor::predictNext()
{
    return forecastHorizon(1).front();
}

std::vector<double>
FftPredictor::forecastHorizon(std::size_t horizon)
{
    ICEB_ASSERT(horizon >= 1, "horizon must be positive");
    std::vector<double> out(horizon, 0.0);
    if (window_.empty())
        return out;
    // Fast path: a silent window forecasts silence (this is the
    // common case for infrequent functions and keeps per-interval
    // overhead low across large traces).
    const bool all_zero = std::all_of(
        window_.begin(), window_.end(),
        [](double v) { return v == 0.0; });
    if (all_zero)
        return out;
    if (window_.size() < config_.min_samples) {
        std::fill(out.begin(), out.end(),
                  std::max(0.0, math::mean(window_)));
        return out;
    }

    // Trend + top-n harmonics of the detrended residual, extrapolated
    // past the window (t = window length onward).
    const math::Polynomial trend =
        math::polyfitSeries(window_, config_.poly_degree);
    const std::vector<double> residual = math::detrend(window_, trend);
    const std::vector<math::Harmonic> harmonics =
        math::decomposeForExtrapolation(residual, config_.harmonics);

    for (std::size_t step = 0; step < horizon; ++step) {
        const double t =
            static_cast<double>(window_.size() + step);
        const double forecast = trend.evaluate(t) +
            math::evaluateHarmonics(harmonics, t);
        out[step] = std::max(0.0, forecast);
    }
    return out;
}

void
FftPredictor::reset()
{
    window_.clear();
}

} // namespace iceb::predictors
