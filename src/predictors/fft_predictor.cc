#include "predictors/fft_predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "math/stats.hh"

namespace iceb::predictors
{

FftPredictor::FftPredictor(FftPredictorConfig config)
    : config_(config)
{
    ICEB_ASSERT(config_.window >= 4, "FIP window too small");
    ICEB_ASSERT(config_.harmonics >= 1, "FIP needs >= 1 harmonic");
    ICEB_ASSERT(config_.resync_every >= 1, "FIP resync cadence too small");
    ring_.resize(config_.window, 0.0);
    if (config_.incremental_spectrum)
        sdft_ = math::SlidingDft(config_.window);
}

void
FftPredictor::observe(double concurrency)
{
    const double value = std::max(0.0, concurrency);
    if (size_ < config_.window) {
        // Filling up: entries 0..size_-1 are already in arrival order.
        ring_[size_++] = value;
        return;
    }
    const double oldest = ring_[head_];
    ring_[head_] = value;
    head_ = head_ + 1 == config_.window ? 0 : head_ + 1;
    if (config_.incremental_spectrum && sdft_.valid()) {
        sdft_.slide(oldest, value);
        if (++since_resync_ >= config_.resync_every) {
            // Bound sliding-DFT drift: force a full-FFT resync at the
            // next forecast.
            sdft_.invalidate();
        }
    }
}

double
FftPredictor::predictNext()
{
    forecastHorizon(1, next_scratch_);
    return next_scratch_.front();
}

std::vector<double>
FftPredictor::forecastHorizon(std::size_t horizon)
{
    std::vector<double> out;
    forecastHorizon(horizon, out);
    return out;
}

void
FftPredictor::forecastHorizon(std::size_t horizon, std::vector<double> &out)
{
    ICEB_ASSERT(horizon >= 1, "horizon must be positive");
    out.assign(horizon, 0.0);
    if (size_ == 0)
        return;
    // Fast path: a silent window forecasts silence (this is the
    // common case for infrequent functions and keeps per-interval
    // overhead low across large traces).
    bool all_zero = true;
    for (std::size_t i = 0; i < size_; ++i) {
        if (ring_[i] != 0.0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero)
        return;
    linearizeWindow();
    if (size_ < config_.min_samples) {
        std::fill(out.begin(), out.end(),
                  std::max(0.0, math::mean(window_scratch_)));
        return;
    }

    // Trend + top-n harmonics of the detrended residual, extrapolated
    // past the window (t = window length onward).
    const std::size_t n = size_;
    math::polyfitSeries(window_scratch_.data(), n, config_.poly_degree,
                        trend_, poly_ws_);
    math::detrendInto(window_scratch_.data(), n, trend_, residual_);

    const bool incremental = config_.incremental_spectrum &&
        n == config_.window && n >= 8 && config_.harmonics >= 1;
    if (incremental) {
        if (!sdft_.valid()) {
            sdft_.resync(window_scratch_.data(), n, harm_ws_.fft);
            since_resync_ = 0;
        }
        incrementalMagnitudes();
        math::decomposeFromMagnitudes(residual_.data(), n,
                                      config_.harmonics, harmonics_,
                                      harm_ws_, /*fast_trig=*/true);
    } else {
        math::decomposeForExtrapolation(residual_.data(), n,
                                        config_.harmonics, harmonics_,
                                        harm_ws_);
    }

    for (std::size_t step = 0; step < horizon; ++step) {
        const double t = static_cast<double>(n + step);
        const double forecast = trend_.evaluate(t) +
            math::evaluateHarmonics(harmonics_, t);
        out[step] = std::max(0.0, forecast);
    }
}

void
FftPredictor::linearizeWindow()
{
    window_scratch_.resize(size_);
    if (size_ < config_.window || head_ == 0) {
        std::copy(ring_.begin(), ring_.begin() + size_,
                  window_scratch_.begin());
        return;
    }
    const std::size_t tail = config_.window - head_;
    std::copy(ring_.begin() + head_, ring_.end(),
              window_scratch_.begin());
    std::copy(ring_.begin(), ring_.begin() + head_,
              window_scratch_.begin() + tail);
}

void
FftPredictor::incrementalMagnitudes()
{
    const std::size_t n = config_.window;
    const std::size_t half = n / 2;

    if (trend_basis_.empty()) {
        // DFTs of the monomials t^p, computed once: by linearity the
        // residual spectrum is FFT(window) - sum_p c_p * FFT(t^p).
        trend_basis_.resize(config_.poly_degree + 1);
        std::vector<double> monomial(n);
        std::vector<math::Complex> spectrum(n);
        for (std::size_t p = 0; p <= config_.poly_degree; ++p) {
            for (std::size_t t = 0; t < n; ++t)
                monomial[t] = std::pow(static_cast<double>(t),
                                       static_cast<double>(p));
            const auto plan = math::fftPlanFor(n);
            plan->forwardReal(monomial.data(), spectrum.data(),
                              harm_ws_.fft);
            trend_basis_[p].assign(spectrum.begin(),
                                   spectrum.begin() + half + 1);
        }
    }

    const std::vector<math::Complex> &bins = sdft_.bins();
    harm_ws_.magnitude.assign(half + 1, 0.0);
    for (std::size_t k = 1; k <= half; ++k) {
        math::Complex residual_bin = bins[k];
        for (std::size_t p = 0; p <= config_.poly_degree; ++p)
            residual_bin -= trend_.coeff(p) * trend_basis_[p][k];
        harm_ws_.magnitude[k] = std::abs(residual_bin);
    }
}

void
FftPredictor::reset()
{
    head_ = 0;
    size_ = 0;
    sdft_.invalidate();
    since_resync_ = 0;
}

} // namespace iceb::predictors
