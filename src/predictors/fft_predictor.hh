/**
 * @file
 * IceBreaker's Fourier-based function-invocation predictor (FIP).
 *
 * Over a local window (one hour = 60 one-minute intervals by
 * default) the FIP: (1) fits a second-order polynomial trend
 * a*t^2 + b*t + c, (2) detrends the window, (3) takes an FFT of the
 * residual, (4) keeps the top-n harmonics (n = 10), and (5) forecasts
 *
 *   f(t_k + 1) = a(t_k+1)^2 + b(t_k+1) + c
 *              + sum_i A_i * cos(2*pi*f_i*(t_k+1) + theta_i)
 *
 * exactly as Sec. 3.1 of the paper describes.
 *
 * The implementation is built for trace scale (every active function
 * re-forecasts every interval): the window is a ring buffer (O(1)
 * observe), the FFT runs through a cached FftPlan, and all fit
 * intermediates live in per-predictor workspaces, so the steady-state
 * forecast path performs zero heap allocations when callers use the
 * in-place forecastHorizon overload.
 */

#ifndef ICEB_PREDICTORS_FFT_PREDICTOR_HH
#define ICEB_PREDICTORS_FFT_PREDICTOR_HH

#include <vector>

#include "math/fft.hh"
#include "math/harmonics.hh"
#include "math/polyfit.hh"
#include "predictors/predictor.hh"

namespace iceb::predictors
{

/**
 * FIP tuning knobs. The paper uses a one-hour local window and
 * reports < 2% sensitivity for any window below ten hours; the
 * default here is two hours, which resolves periods up to ~an hour
 * (two full cycles in the window).
 */
struct FftPredictorConfig
{
    std::size_t window = 120;       //!< local window (intervals)
    std::size_t harmonics = 10;     //!< top-n components kept
    std::size_t poly_degree = 2;    //!< trend model order
    std::size_t min_samples = 8;    //!< below this, predict the mean

    /**
     * Opt-in incremental spectrum: once the window is full, maintain
     * its DFT bins with an O(1)-per-bin sliding update on every
     * observe() instead of a fresh FFT per forecast, and subtract the
     * trend's spectrum analytically (the DFTs of t^0..t^degree are
     * precomputed, so the residual spectrum follows by linearity).
     * Agrees with the full recompute within 1e-6; the default (off)
     * keeps the forecast arithmetic bit-identical to the original
     * implementation.
     */
    bool incremental_spectrum = false;

    /**
     * Full-FFT resync cadence (in observed samples) for the
     * incremental mode, bounding sliding-DFT floating-point drift.
     */
    std::size_t resync_every = 64;
};

/**
 * The FFT-based predictor.
 */
class FftPredictor : public Predictor
{
  public:
    explicit FftPredictor(FftPredictorConfig config = {});

    const char *name() const override { return "fft-fip"; }
    void observe(double concurrency) override;
    double predictNext() override;
    void reset() override;

    /**
     * Forecast the next @p horizon intervals in one shot (one trend +
     * harmonic fit, @p horizon evaluations). Element 0 equals
     * predictNext(). IceBreaker uses the horizon to set keep-alive
     * durations: a container stays warm until the next interval with
     * predicted activity.
     */
    std::vector<double> forecastHorizon(std::size_t horizon);

    /**
     * Allocation-free forecastHorizon: writes the @p horizon forecasts
     * into @p out (resized, which allocates nothing once its capacity
     * covers the horizon). This is the per-interval hot path.
     */
    void forecastHorizon(std::size_t horizon, std::vector<double> &out);

    /** Samples currently held in the local window. */
    std::size_t sampleCount() const { return size_; }

    const FftPredictorConfig &config() const { return config_; }

  private:
    /** Copy the ring contents, oldest first, into window_scratch_. */
    void linearizeWindow();

    /** Residual-spectrum magnitudes from the sliding DFT + trend fit. */
    void incrementalMagnitudes();

    FftPredictorConfig config_;
    std::vector<double> ring_;   //!< circular window storage
    std::size_t head_ = 0;       //!< oldest element when full
    std::size_t size_ = 0;       //!< samples held (<= config_.window)

    std::vector<double> window_scratch_;  //!< linearized window
    std::vector<double> residual_;        //!< detrended window
    math::Polynomial trend_;
    math::PolyfitWorkspace poly_ws_;
    math::HarmonicsWorkspace harm_ws_;
    std::vector<math::Harmonic> harmonics_;
    std::vector<double> next_scratch_;    //!< predictNext() output

    // Incremental (sliding-DFT) mode state.
    math::SlidingDft sdft_;
    std::size_t since_resync_ = 0;
    /** DFT bins 0..n/2 of t^p for p = 0..poly_degree. */
    std::vector<std::vector<math::Complex>> trend_basis_;
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_FFT_PREDICTOR_HH
