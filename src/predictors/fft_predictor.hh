/**
 * @file
 * IceBreaker's Fourier-based function-invocation predictor (FIP).
 *
 * Over a local window (one hour = 60 one-minute intervals by
 * default) the FIP: (1) fits a second-order polynomial trend
 * a*t^2 + b*t + c, (2) detrends the window, (3) takes an FFT of the
 * residual, (4) keeps the top-n harmonics (n = 10), and (5) forecasts
 *
 *   f(t_k + 1) = a(t_k+1)^2 + b(t_k+1) + c
 *              + sum_i A_i * cos(2*pi*f_i*(t_k+1) + theta_i)
 *
 * exactly as Sec. 3.1 of the paper describes.
 */

#ifndef ICEB_PREDICTORS_FFT_PREDICTOR_HH
#define ICEB_PREDICTORS_FFT_PREDICTOR_HH

#include <vector>

#include "predictors/predictor.hh"

namespace iceb::predictors
{

/**
 * FIP tuning knobs. The paper uses a one-hour local window and
 * reports < 2% sensitivity for any window below ten hours; the
 * default here is two hours, which resolves periods up to ~an hour
 * (two full cycles in the window).
 */
struct FftPredictorConfig
{
    std::size_t window = 120;       //!< local window (intervals)
    std::size_t harmonics = 10;     //!< top-n components kept
    std::size_t poly_degree = 2;    //!< trend model order
    std::size_t min_samples = 8;    //!< below this, predict the mean
};

/**
 * The FFT-based predictor.
 */
class FftPredictor : public Predictor
{
  public:
    explicit FftPredictor(FftPredictorConfig config = {});

    const char *name() const override { return "fft-fip"; }
    void observe(double concurrency) override;
    double predictNext() override;
    void reset() override;

    /**
     * Forecast the next @p horizon intervals in one shot (one trend +
     * harmonic fit, @p horizon evaluations). Element 0 equals
     * predictNext(). IceBreaker uses the horizon to set keep-alive
     * durations: a container stays warm until the next interval with
     * predicted activity.
     */
    std::vector<double> forecastHorizon(std::size_t horizon);

    /** Samples currently held in the local window. */
    std::size_t sampleCount() const { return window_.size(); }

    const FftPredictorConfig &config() const { return config_; }

  private:
    FftPredictorConfig config_;
    std::vector<double> window_; //!< ring buffer, oldest first
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_FFT_PREDICTOR_HH
