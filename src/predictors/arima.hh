/**
 * @file
 * ARIMA(p, d, q) predictor.
 *
 * This is the invocation-concurrency predictor the paper attributes
 * to "Serverless in the Wild" (enhanced, as the paper did, to predict
 * counts and with tunable lags/differencing/moving-average order).
 * Fitting uses the Hannan-Rissanen two-stage procedure: a long
 * autoregression estimates the innovations, then the final AR + MA
 * coefficients come from one least-squares regression.
 */

#ifndef ICEB_PREDICTORS_ARIMA_HH
#define ICEB_PREDICTORS_ARIMA_HH

#include <vector>

#include "predictors/predictor.hh"

namespace iceb::predictors
{

/** ARIMA order and window configuration. */
struct ArimaConfig
{
    std::size_t p = 3;        //!< autoregressive lags
    std::size_t d = 1;        //!< degree of differencing
    std::size_t q = 2;        //!< moving-average order
    std::size_t window = 120; //!< history kept for refitting
    /**
     * Refit cadence in observations. ARIMA fitting is the expensive
     * part, so deployed controllers refit sparingly (hourly here);
     * between refits the stale model keeps forecasting -- which is
     * precisely why it is slow to adapt when the invocation
     * periodicity changes (paper Figs. 4 and 10).
     */
    std::size_t refit_every = 60;
};

/**
 * ARIMA predictor over a sliding window.
 */
class ArimaPredictor : public Predictor
{
  public:
    explicit ArimaPredictor(ArimaConfig config = {});

    const char *name() const override { return "arima"; }
    void observe(double concurrency) override;
    double predictNext() override;
    void reset() override;

    const ArimaConfig &config() const { return config_; }

  private:
    /** Difference a series @p d times. */
    static std::vector<double> difference(const std::vector<double> &y,
                                          std::size_t d);
    void refit();

    ArimaConfig config_;
    std::vector<double> history_;
    std::vector<double> ar_coeffs_; //!< phi_1..phi_p
    std::vector<double> ma_coeffs_; //!< theta_1..theta_q
    std::vector<double> residuals_; //!< innovations of the last fit
    double intercept_ = 0.0;
    bool fitted_ = false;
    std::size_t since_refit_ = 0;
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_ARIMA_HH
