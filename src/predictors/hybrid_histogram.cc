#include "predictors/hybrid_histogram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace iceb::predictors
{

HybridHistogram::HybridHistogram(HybridHistogramConfig config)
    : config_(config), bins_(config.max_idle_minutes + 1, 0),
      arima_(ArimaConfig{2, 1, 1, 64, 1})
{
    ICEB_ASSERT(config_.max_idle_minutes >= 2, "histogram range too small");
    ICEB_ASSERT(config_.head_quantile < config_.tail_quantile,
                "head quantile must precede tail quantile");
}

void
HybridHistogram::observeArrival(IntervalIndex interval)
{
    if (last_arrival_) {
        const IntervalIndex gap = interval - *last_arrival_;
        if (gap >= 1) {
            ++total_samples_;
            if (static_cast<std::size_t>(gap) <=
                config_.max_idle_minutes) {
                ++bins_[static_cast<std::size_t>(gap)];
            } else {
                ++oob_samples_;
            }
            arima_.observe(static_cast<double>(gap));
        }
    }
    last_arrival_ = interval;
}

bool
HybridHistogram::representative() const
{
    if (total_samples_ < config_.min_samples)
        return false;
    const double oob = static_cast<double>(oob_samples_) /
        static_cast<double>(total_samples_);
    if (oob > config_.max_oob_fraction)
        return false;
    const double mu = histogramMean();
    if (mu <= 0.0)
        return false;
    return histogramStddev() / mu <= config_.max_cv;
}

double
HybridHistogram::histogramMean() const
{
    const std::size_t in_bounds = total_samples_ - oob_samples_;
    if (in_bounds == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t m = 0; m < bins_.size(); ++m)
        acc += static_cast<double>(m) * bins_[m];
    return acc / static_cast<double>(in_bounds);
}

double
HybridHistogram::histogramStddev() const
{
    const std::size_t in_bounds = total_samples_ - oob_samples_;
    if (in_bounds < 2)
        return 0.0;
    const double mu = histogramMean();
    double acc = 0.0;
    for (std::size_t m = 0; m < bins_.size(); ++m) {
        const double diff = static_cast<double>(m) - mu;
        acc += diff * diff * bins_[m];
    }
    return std::sqrt(acc / static_cast<double>(in_bounds));
}

double
HybridHistogram::quantileMinutes(double q) const
{
    const std::size_t in_bounds = total_samples_ - oob_samples_;
    if (in_bounds == 0)
        return 0.0;
    const double target = q * static_cast<double>(in_bounds);
    double cumulative = 0.0;
    for (std::size_t m = 0; m < bins_.size(); ++m) {
        cumulative += bins_[m];
        if (cumulative >= target)
            return static_cast<double>(m);
    }
    return static_cast<double>(config_.max_idle_minutes);
}

IdleWindowForecast
HybridHistogram::forecast()
{
    IdleWindowForecast out;
    if (representative()) {
        const double head = quantileMinutes(config_.head_quantile);
        const double tail = std::max(
            quantileMinutes(config_.tail_quantile), head + 1.0);
        // A window wider than the standard keep-alive would cost more
        // than it saves; treat it as non-representative.
        if (tail - head <= 20.0) {
            out.usable = true;
            out.head_minutes = head;
            out.tail_minutes = tail;
            return out;
        }
        return out;
    }
    // ARIMA fallback: centre a window on the predicted next idle.
    if (total_samples_ >= 4) {
        const double predicted = arima_.predictNext();
        if (predicted > 0.0 &&
            predicted <=
                2.0 * static_cast<double>(config_.max_idle_minutes)) {
            out.usable = true;
            out.head_minutes = std::max(0.0, 0.85 * predicted);
            out.tail_minutes = 1.3 * predicted + 1.0;
            return out;
        }
    }
    return out; // not usable: caller applies the standard keep-alive
}

} // namespace iceb::predictors
