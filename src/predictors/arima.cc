#include "predictors/arima.hh"

#include <algorithm>

#include "common/logging.hh"
#include "math/matrix.hh"
#include "math/stats.hh"

namespace iceb::predictors
{

namespace
{

/**
 * Ordinary least squares: regress y on the rows of the design matrix
 * (each row one observation). Returns the coefficient vector, or an
 * empty vector when the normal equations are singular.
 */
std::vector<double>
leastSquares(const std::vector<std::vector<double>> &rows,
             const std::vector<double> &y)
{
    ICEB_ASSERT(!rows.empty() && rows.size() == y.size(),
                "least-squares shape mismatch");
    const std::size_t k = rows.front().size();
    math::Matrix xtx(k, k);
    std::vector<double> xty(k, 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        ICEB_ASSERT(rows[i].size() == k, "ragged design matrix");
        for (std::size_t a = 0; a < k; ++a) {
            xty[a] += rows[i][a] * y[i];
            for (std::size_t b = 0; b < k; ++b)
                xtx.at(a, b) += rows[i][a] * rows[i][b];
        }
    }
    // Proportional ridge regularisation: lagged-regressor columns of
    // periodic series are near-collinear, and an unregularised fit
    // produces wild coefficients.
    for (std::size_t a = 0; a < k; ++a)
        xtx.at(a, a) += 1e-3 * xtx.at(a, a) + 1e-8;
    bool singular = false;
    std::vector<double> coeffs =
        math::solveLinearSystem(xtx, xty, &singular);
    if (singular)
        return {};
    return coeffs;
}

} // namespace

ArimaPredictor::ArimaPredictor(ArimaConfig config)
    : config_(config)
{
    ICEB_ASSERT(config_.p >= 1, "ARIMA needs p >= 1");
    ICEB_ASSERT(config_.window > config_.p + config_.q + config_.d + 5,
                "ARIMA window too small for its order");
}

std::vector<double>
ArimaPredictor::difference(const std::vector<double> &y, std::size_t d)
{
    std::vector<double> out = y;
    for (std::size_t round = 0; round < d; ++round) {
        if (out.size() < 2)
            return {};
        std::vector<double> next(out.size() - 1);
        for (std::size_t i = 1; i < out.size(); ++i)
            next[i - 1] = out[i] - out[i - 1];
        out = std::move(next);
    }
    return out;
}

void
ArimaPredictor::observe(double concurrency)
{
    if (history_.size() == config_.window)
        history_.erase(history_.begin());
    history_.push_back(std::max(0.0, concurrency));
    ++since_refit_;
    if (since_refit_ >= config_.refit_every) {
        refit();
        since_refit_ = 0;
    }
}

void
ArimaPredictor::refit()
{
    fitted_ = false;
    const std::vector<double> w = difference(history_, config_.d);
    const std::size_t min_len =
        std::max(config_.p, config_.q) + config_.p + config_.q + 5;
    if (w.size() < min_len)
        return;

    // Stage 1: long autoregression to estimate innovations.
    const std::size_t long_order =
        std::min(config_.p + config_.q + 3, w.size() / 3);
    std::vector<std::vector<double>> rows1;
    std::vector<double> y1;
    for (std::size_t t = long_order; t < w.size(); ++t) {
        std::vector<double> row;
        row.push_back(1.0);
        for (std::size_t lag = 1; lag <= long_order; ++lag)
            row.push_back(w[t - lag]);
        rows1.push_back(std::move(row));
        y1.push_back(w[t]);
    }
    const std::vector<double> long_coeffs = leastSquares(rows1, y1);
    if (long_coeffs.empty())
        return;

    std::vector<double> innovations(w.size(), 0.0);
    for (std::size_t t = long_order; t < w.size(); ++t) {
        double fit = long_coeffs[0];
        for (std::size_t lag = 1; lag <= long_order; ++lag)
            fit += long_coeffs[lag] * w[t - lag];
        innovations[t] = w[t] - fit;
    }

    // Stage 2: regress on p AR lags and q lagged innovations.
    const std::size_t start =
        std::max(config_.p, config_.q) + long_order;
    if (start >= w.size())
        return;
    std::vector<std::vector<double>> rows2;
    std::vector<double> y2;
    for (std::size_t t = start; t < w.size(); ++t) {
        std::vector<double> row;
        row.push_back(1.0);
        for (std::size_t lag = 1; lag <= config_.p; ++lag)
            row.push_back(w[t - lag]);
        for (std::size_t lag = 1; lag <= config_.q; ++lag)
            row.push_back(innovations[t - lag]);
        rows2.push_back(std::move(row));
        y2.push_back(w[t]);
    }
    const std::vector<double> coeffs = leastSquares(rows2, y2);
    if (coeffs.empty())
        return;

    intercept_ = coeffs[0];
    ar_coeffs_.assign(coeffs.begin() + 1,
                      coeffs.begin() + 1 +
                          static_cast<std::ptrdiff_t>(config_.p));
    ma_coeffs_.assign(
        coeffs.begin() + 1 + static_cast<std::ptrdiff_t>(config_.p),
        coeffs.end());
    // Keep the MA part invertible; a recursive residual filter with
    // |theta| >= 1 diverges.
    for (double &theta : ma_coeffs_)
        theta = std::clamp(theta, -0.95, 0.95);

    // Standard Hannan-Rissanen: the stage-1 innovations serve as the
    // estimated shocks for forecasting.
    residuals_ = innovations;
    fitted_ = true;
}

double
ArimaPredictor::predictNext()
{
    if (history_.empty())
        return 0.0;
    if (!fitted_)
        return std::max(0.0, math::mean(history_));

    const std::vector<double> w = difference(history_, config_.d);
    if (w.size() < config_.p)
        return std::max(0.0, history_.back());

    double w_hat = intercept_;
    for (std::size_t lag = 1; lag <= config_.p; ++lag)
        w_hat += ar_coeffs_[lag - 1] * w[w.size() - lag];
    for (std::size_t lag = 1;
         lag <= config_.q && lag <= residuals_.size(); ++lag) {
        w_hat += ma_coeffs_[lag - 1] * residuals_[residuals_.size() - lag];
    }

    // Undifference: fold the forecast back up through each level.
    double forecast = w_hat;
    for (std::size_t level = config_.d; level-- > 0;) {
        const std::vector<double> series =
            difference(history_, level);
        ICEB_ASSERT(!series.empty(), "undifference underflow");
        forecast += series.back();
    }
    // An unstable fit (e.g. right after a regime change) can produce
    // runaway forecasts; clamp to a multiple of the observed range,
    // as any deployed controller would.
    const double ceiling =
        2.0 * *std::max_element(history_.begin(), history_.end()) + 1.0;
    return std::clamp(forecast, 0.0, ceiling);
}

void
ArimaPredictor::reset()
{
    history_.clear();
    ar_coeffs_.clear();
    ma_coeffs_.clear();
    residuals_.clear();
    intercept_ = 0.0;
    fitted_ = false;
    since_refit_ = 0;
}

} // namespace iceb::predictors
