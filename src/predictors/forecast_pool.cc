#include "predictors/forecast_pool.hh"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "math/stats.hh"

namespace iceb::predictors
{

namespace
{

constexpr std::uint32_t kInvalid = 0xffffffffu;
constexpr std::size_t L = kernels::kLanes;

bool
sameConfig(const FftPredictorConfig &a, const FftPredictorConfig &b)
{
    return a.window == b.window && a.harmonics == b.harmonics &&
        a.poly_degree == b.poly_degree &&
        a.min_samples == b.min_samples &&
        a.incremental_spectrum == b.incremental_spectrum &&
        a.resync_every == b.resync_every;
}

} // namespace

ForecastPool::ForecastPool(ForecastPoolOptions options)
    : options_(options)
{
    if (options_.threads == 0)
        options_.threads = 1;
}

std::size_t
ForecastPool::groupFor(const FftPredictorConfig &config)
{
    for (std::size_t g = 0; g < groups_.size(); ++g)
        if (sameConfig(groups_[g].cfg, config))
            return g;
    Group group;
    group.cfg = config;
    groups_.push_back(std::move(group));
    return groups_.size() - 1;
}

std::size_t
ForecastPool::addFunction(const FftPredictorConfig &config)
{
    ICEB_ASSERT(config.window >= 4, "FIP window too small");
    ICEB_ASSERT(config.harmonics >= 1, "FIP needs >= 1 harmonic");
    ICEB_ASSERT(config.resync_every >= 1, "FIP resync cadence too small");

    const std::size_t g = groupFor(config);
    Group &group = groups_[g];

    std::uint32_t lane;
    if (!group.free_lanes.empty()) {
        lane = group.free_lanes.back();
        group.free_lanes.pop_back();
    } else {
        lane = static_cast<std::uint32_t>(group.lanes);
        ++group.lanes;
        group.ring.resize(group.lanes * config.window, 0.0);
        group.head.push_back(0);
        group.count.push_back(0);
        group.slot_of_lane.push_back(kInvalid);
        if (config.incremental_spectrum)
            group.scalar.emplace_back();
    }
    group.head[lane] = 0;
    group.count[lane] = 0;
    std::fill(group.ring.begin() +
                  static_cast<std::ptrdiff_t>(lane * config.window),
              group.ring.begin() +
                  static_cast<std::ptrdiff_t>((lane + 1) * config.window),
              0.0);
    if (config.incremental_spectrum)
        group.scalar[lane] = std::make_unique<FftPredictor>(config);

    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(SlotRef{});
    }
    slots_[slot] = SlotRef{static_cast<std::uint32_t>(g), lane};
    group.slot_of_lane[lane] = slot;
    ++live_count_;
    return slot;
}

void
ForecastPool::removeFunction(std::size_t slot)
{
    ICEB_ASSERT(slot < slots_.size(), "forecast pool slot out of range");
    SlotRef &ref = slots_[slot];
    ICEB_ASSERT(ref.lane != kInvalid, "double-retire of a pool slot");
    Group &group = groups_[ref.group];
    group.slot_of_lane[ref.lane] = kInvalid;
    group.head[ref.lane] = 0;
    group.count[ref.lane] = 0;
    if (group.cfg.incremental_spectrum)
        group.scalar[ref.lane].reset();
    group.free_lanes.push_back(ref.lane);
    ref.lane = kInvalid;
    free_slots_.push_back(static_cast<std::uint32_t>(slot));
    --live_count_;
}

void
ForecastPool::observe(std::size_t slot, double concurrency)
{
    ICEB_ASSERT(slot < slots_.size(), "forecast pool slot out of range");
    const SlotRef ref = slots_[slot];
    ICEB_ASSERT(ref.lane != kInvalid, "observe on a retired pool slot");
    Group &group = groups_[ref.group];
    if (group.cfg.incremental_spectrum) {
        group.scalar[ref.lane]->observe(concurrency);
        return;
    }
    // Mirror of FftPredictor::observe over the lane's ring column.
    const std::size_t w = group.cfg.window;
    double *ring = group.ring.data() + ref.lane * w;
    const double value = std::max(0.0, concurrency);
    std::uint32_t &count = group.count[ref.lane];
    if (count < w) {
        ring[count++] = value;
        return;
    }
    std::uint32_t &head = group.head[ref.lane];
    ring[head] = value;
    head = head + 1 == w ? 0 : head + 1;
}

void
ForecastPool::reset(std::size_t slot)
{
    ICEB_ASSERT(slot < slots_.size(), "forecast pool slot out of range");
    const SlotRef ref = slots_[slot];
    ICEB_ASSERT(ref.lane != kInvalid, "reset of a retired pool slot");
    Group &group = groups_[ref.group];
    group.head[ref.lane] = 0;
    group.count[ref.lane] = 0;
    if (group.cfg.incremental_spectrum)
        group.scalar[ref.lane]->reset();
}

std::size_t
ForecastPool::sampleCount(std::size_t slot) const
{
    ICEB_ASSERT(slot < slots_.size(), "forecast pool slot out of range");
    const SlotRef ref = slots_[slot];
    ICEB_ASSERT(ref.lane != kInvalid, "sampleCount on a retired slot");
    const Group &group = groups_[ref.group];
    if (group.cfg.incremental_spectrum)
        return group.scalar[ref.lane]->sampleCount();
    return group.count[ref.lane];
}

void
ForecastPool::ensureGroupCaches(Group &group)
{
    if (group.caches_ready)
        return;
    const FftPredictorConfig &cfg = group.cfg;
    // Only full-window lanes of non-incremental groups with a usable
    // spectrum ever run the batched pipeline; other groups forecast
    // through the scalar mirror and need no shared tables.
    if (cfg.incremental_spectrum || cfg.window < 8 ||
        cfg.window < cfg.min_samples)
        return;
    group.plan = math::fftPlanFor(cfg.window);
    math::buildSeriesPowerTable(cfg.window, cfg.poly_degree,
                                group.powers);
    // The polyfit normal matrix depends only on (window, degree):
    // factor it once and replay per lane.
    const std::size_t terms = cfg.poly_degree + 1;
    std::vector<double> normal(terms * terms);
    for (std::size_t r = 0; r < terms; ++r)
        for (std::size_t c = 0; c < terms; ++c)
            normal[r * terms + c] = group.powers.powers[r + c];
    group.trend_system.factor(normal.data(), terms);
    group.caches_ready = true;
}

void
ForecastPool::forecastAll(std::size_t horizon)
{
    ICEB_ASSERT(horizon >= 1, "horizon must be positive");
    horizon_ = horizon;
    forecasts_.assign(slots_.size() * horizon, 0.0);
    if (live_count_ == 0)
        return;

    // Deterministic task list: groups in creation order, blocks of
    // kLanes lanes ascending. Shared caches are built serially here
    // so workers only ever read them.
    tasks_.clear();
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        Group &group = groups_[g];
        if (group.lanes == 0)
            continue;
        ensureGroupCaches(group);
        for (std::size_t first = 0; first < group.lanes; first += L) {
            tasks_.push_back(
                BlockTask{static_cast<std::uint32_t>(g),
                          static_cast<std::uint32_t>(first)});
        }
    }

    std::size_t threads = std::min(options_.threads, tasks_.size());
    if (threads == 0)
        threads = 1;
    workers_.resize(std::max(workers_.size(), threads));

    if (threads == 1) {
        for (const BlockTask &task : tasks_)
            runBlock(groups_[task.group], task, workers_[0]);
        return;
    }
    // Fixed interleaved assignment: worker t takes tasks t, t+T,
    // t+2T, ... Every lane's output region is disjoint, so the
    // partition affects scheduling only, never values.
    const auto worker_fn = [this, threads](std::size_t t) {
        for (std::size_t i = t; i < tasks_.size(); i += threads)
            runBlock(groups_[tasks_[i].group], tasks_[i], workers_[t]);
    };
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (std::size_t t = 1; t < threads; ++t)
        pool.emplace_back(worker_fn, t);
    worker_fn(0);
    for (std::thread &th : pool)
        th.join();
}

const double *
ForecastPool::forecast(std::size_t slot) const
{
    ICEB_ASSERT(slot < slots_.size(), "forecast pool slot out of range");
    ICEB_ASSERT(horizon_ >= 1, "forecast() before forecastAll()");
    return forecasts_.data() + slot * horizon_;
}

void
ForecastPool::runBlock(const Group &group_const, const BlockTask &task,
                       WorkerScratch &scratch)
{
    // Lanes are thread-private even though the group is shared:
    // incremental lanes mutate only their own predictor, batch lanes
    // only read the ring and shared caches.
    Group &group = const_cast<Group &>(group_const);
    const FftPredictorConfig &cfg = group.cfg;
    const std::size_t w = cfg.window;
    const std::size_t lane_end =
        std::min<std::size_t>(task.first_lane + L, group.lanes);

    if (cfg.incremental_spectrum) {
        for (std::size_t lane = task.first_lane; lane < lane_end;
             ++lane) {
            const std::uint32_t slot = group.slot_of_lane[lane];
            if (slot == kInvalid)
                continue;
            group.scalar[lane]->forecastHorizon(horizon_,
                                                scratch.horizon_tmp);
            std::copy(scratch.horizon_tmp.begin(),
                      scratch.horizon_tmp.end(),
                      forecasts_.begin() +
                          static_cast<std::ptrdiff_t>(slot * horizon_));
        }
        return;
    }

    const bool can_batch =
        group.caches_ready && w >= 8 && w >= cfg.min_samples;
    bool active[L] = {};
    bool any_active = false;
    if (can_batch)
        scratch.block.prepare(kernels::BlockContext{
            group.plan.get(), w, cfg.poly_degree, cfg.harmonics,
            &group.powers, &group.trend_system, options_.fast_path});

    for (std::size_t lane = task.first_lane; lane < lane_end; ++lane) {
        const std::size_t l = lane - task.first_lane;
        const std::uint32_t slot = group.slot_of_lane[lane];
        if (slot == kInvalid)
            continue;
        double *out = forecasts_.data() + slot * horizon_;
        const std::uint32_t count = group.count[lane];
        if (!can_batch || count < w) {
            // Warm-up / short-window lanes: scalar mirror (the
            // forecasts_ row is already zeroed, matching the scalar
            // out.assign(horizon, 0.0) prologue).
            forecastLaneScalar(group, static_cast<std::uint32_t>(lane),
                               scratch, out);
            continue;
        }
        // Gather the full window, oldest first, into the lane column;
        // a silent window forecasts silence without entering the
        // batch (the scalar all-zero fast path).
        const double *ring = group.ring.data() + lane * w;
        const std::uint32_t head = group.head[lane];
        double *dst = scratch.block.window.data();
        bool all_zero = true;
        for (std::size_t i = 0; i < w; ++i) {
            std::size_t pos = head + i;
            if (pos >= w)
                pos -= w;
            const double v = ring[pos];
            if (v != 0.0)
                all_zero = false;
            dst[i * L + l] = v;
        }
        if (all_zero)
            continue;
        active[l] = true;
        any_active = true;
    }
    if (!any_active)
        return;

    // Zero inactive columns so stale scratch never feeds the lanes'
    // shared (but lane-wise independent) arithmetic.
    double *dst = scratch.block.window.data();
    for (std::size_t l = 0; l < L; ++l) {
        if (active[l])
            continue;
        for (std::size_t i = 0; i < w; ++i)
            dst[i * L + l] = 0.0;
    }

    const kernels::BlockContext ctx{
        group.plan.get(), w, cfg.poly_degree, cfg.harmonics,
        &group.powers, &group.trend_system, options_.fast_path};
    scratch.horizon_tmp.resize(horizon_ * L);
    kernels::forecastBlock(ctx, active, horizon_, scratch.block,
                           scratch.horizon_tmp.data());
    for (std::size_t lane = task.first_lane; lane < lane_end; ++lane) {
        const std::size_t l = lane - task.first_lane;
        if (!active[l])
            continue;
        const std::uint32_t slot = group.slot_of_lane[lane];
        double *out = forecasts_.data() + slot * horizon_;
        for (std::size_t step = 0; step < horizon_; ++step)
            out[step] = scratch.horizon_tmp[step * L + l];
    }
}

void
ForecastPool::forecastLaneScalar(const Group &group, std::uint32_t lane,
                                 WorkerScratch &scratch,
                                 double *out) const
{
    // Line-for-line mirror of FftPredictor::forecastHorizon (the
    // caller already zeroed the output row).
    const FftPredictorConfig &cfg = group.cfg;
    const std::size_t w = cfg.window;
    const std::size_t size = group.count[lane];
    if (size == 0)
        return;
    const double *ring = group.ring.data() + lane * w;
    bool all_zero = true;
    for (std::size_t i = 0; i < size; ++i) {
        if (ring[i] != 0.0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero)
        return;

    scratch.window.resize(size);
    const std::uint32_t head = group.head[lane];
    if (size < w || head == 0) {
        std::copy(ring, ring + size, scratch.window.begin());
    } else {
        const std::size_t tail = w - head;
        std::copy(ring + head, ring + w, scratch.window.begin());
        std::copy(ring, ring + head, scratch.window.begin() + tail);
    }
    if (size < cfg.min_samples) {
        std::fill(out, out + horizon_,
                  std::max(0.0, math::mean(scratch.window)));
        return;
    }

    const std::size_t n = size;
    math::polyfitSeries(scratch.window.data(), n, cfg.poly_degree,
                        scratch.trend, scratch.poly_ws);
    math::detrendInto(scratch.window.data(), n, scratch.trend,
                      scratch.residual);
    math::decomposeForExtrapolation(scratch.residual.data(), n,
                                    cfg.harmonics, scratch.harmonics,
                                    scratch.harm_ws);
    for (std::size_t step = 0; step < horizon_; ++step) {
        const double t = static_cast<double>(n + step);
        const double forecast = scratch.trend.evaluate(t) +
            math::evaluateHarmonics(scratch.harmonics, t);
        out[step] = std::max(0.0, forecast);
    }
}

} // namespace iceb::predictors
