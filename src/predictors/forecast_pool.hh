/**
 * @file
 * Batched structure-of-arrays forecasting engine for the FIP.
 *
 * A ForecastPool owns the invocation history of every registered
 * function as contiguous per-lane ring buffers, grouped by predictor
 * configuration so one cached FftPlan (and one factored trend system)
 * drives block transforms over many functions at once. forecastAll()
 * forecasts kLanes functions per block through the SoA kernels in
 * forecast_kernels.cc, optionally thread-parallel: blocks are
 * assigned to workers by a fixed interleaving of a deterministic task
 * list and every lane's arithmetic is lane-local, so results are
 * byte-identical for any --threads value.
 *
 * Equivalence contract (enforced by tests):
 *
 *  - default (exact) mode reproduces FftPredictor::forecastHorizon
 *    bit for bit: full-window lanes run the batched pipeline whose
 *    every stage replays the scalar operation sequence, and all other
 *    lanes (warm-up, short windows, silent windows,
 *    incremental-spectrum configs) take a scalar path that mirrors
 *    the predictor directly;
 *  - fast mode (ForecastPoolOptions::fast_path) swaps the harmonic
 *    fit and horizon trig for rotation recurrences, staying within
 *    1e-9 of the scalar forecast while roughly halving its cost.
 *
 * Steady-state forecasting performs no heap allocations; the pool
 * allocates only when functions are added or a longer horizon is
 * first requested.
 */

#ifndef ICEB_PREDICTORS_FORECAST_POOL_HH
#define ICEB_PREDICTORS_FORECAST_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "predictors/fft_predictor.hh"
#include "predictors/forecast_kernels.hh"

namespace iceb::predictors
{

/** Pool-wide knobs (per-function knobs ride in FftPredictorConfig). */
struct ForecastPoolOptions
{
    /**
     * Opt-in fast arithmetic: rotation-recurrence trig in the
     * harmonic fit and horizon evaluation. Diverges from the scalar
     * path by <= 1e-9 per forecast value; the default false is
     * bit-identical.
     */
    bool fast_path = false;

    /** Worker threads for forecastAll (1 = inline, deterministic). */
    std::size_t threads = 1;
};

/**
 * The batched forecaster. Functions are addressed by the dense slot
 * id addFunction returns; slots are reused after removeFunction.
 */
class ForecastPool
{
  public:
    explicit ForecastPool(ForecastPoolOptions options = {});

    /** Register a function; returns its slot id. */
    std::size_t addFunction(const FftPredictorConfig &config);

    /** Retire a slot (its lane and id are recycled). */
    void removeFunction(std::size_t slot);

    /** Append one interval's observation (FftPredictor::observe). */
    void observe(std::size_t slot, double concurrency);

    /** Clear a slot's history (FftPredictor::reset). */
    void reset(std::size_t slot);

    /** Samples currently held in the slot's window. */
    std::size_t sampleCount(std::size_t slot) const;

    /** Live (non-retired) function count. */
    std::size_t size() const { return live_count_; }

    /** Horizon of the most recent forecastAll (0 before the first). */
    std::size_t horizon() const { return horizon_; }

    const ForecastPoolOptions &options() const { return options_; }

    /**
     * Forecast the next @p horizon intervals for every live slot.
     * Results are read back per slot via forecast(); retired slots
     * keep zeros.
     */
    void forecastAll(std::size_t horizon);

    /**
     * The @p horizon values of @p slot from the last forecastAll
     * (element 0 is the next interval's prediction).
     */
    const double *forecast(std::size_t slot) const;

  private:
    struct Group
    {
        FftPredictorConfig cfg;
        std::size_t lanes = 0; //!< allocated lanes (incl. free)
        /** Lane-major ring storage: ring[lane * window + pos]. */
        std::vector<double> ring;
        std::vector<std::uint32_t> head;
        std::vector<std::uint32_t> count;
        std::vector<std::uint32_t> slot_of_lane;
        std::vector<std::uint32_t> free_lanes;

        // Shared per-group caches, built lazily before forecasting.
        std::shared_ptr<const math::FftPlan> plan;
        math::SeriesPowerTable powers;
        math::FactoredSystem trend_system;
        bool caches_ready = false;

        /**
         * incremental_spectrum configs keep per-lane scalar
         * predictors: the sliding-DFT state is inherently
         * per-function, so the pool delegates instead of batching.
         */
        std::vector<std::unique_ptr<FftPredictor>> scalar;
    };

    struct SlotRef
    {
        std::uint32_t group = 0;
        std::uint32_t lane = 0;
    };

    /** Per-worker scratch: block buffers + scalar-path workspaces. */
    struct WorkerScratch
    {
        kernels::BlockScratch block;
        std::vector<double> window; //!< linearized scalar window
        std::vector<double> residual;
        std::vector<double> horizon_tmp;
        math::Polynomial trend;
        math::PolyfitWorkspace poly_ws;
        math::HarmonicsWorkspace harm_ws;
        std::vector<math::Harmonic> harmonics;
    };

    struct BlockTask
    {
        std::uint32_t group = 0;
        std::uint32_t first_lane = 0;
    };

    std::size_t groupFor(const FftPredictorConfig &config);
    void ensureGroupCaches(Group &group);
    void runBlock(const Group &group, const BlockTask &task,
                  WorkerScratch &scratch);
    /** Mirror of FftPredictor::forecastHorizon over one lane's ring. */
    void forecastLaneScalar(const Group &group, std::uint32_t lane,
                            WorkerScratch &scratch, double *out) const;

    ForecastPoolOptions options_;
    std::vector<Group> groups_;
    std::vector<SlotRef> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::size_t live_count_ = 0;

    std::size_t horizon_ = 0;
    /** Slot-major results: forecasts_[slot * horizon_ + step]. */
    std::vector<double> forecasts_;
    std::vector<BlockTask> tasks_;
    std::vector<WorkerScratch> workers_;
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_FORECAST_POOL_HH
