/**
 * @file
 * From-scratch single-layer LSTM predictor.
 *
 * Exists to reproduce the paper's Fig. 11: a "complex learning-based
 * prediction mechanism" that yields marginally better forecasts than
 * the FFT-based FIP but at a prohibitive (hundreds of times larger)
 * per-interval overhead. Trains online with truncated backpropagation
 * through time over the local window on every observation.
 */

#ifndef ICEB_PREDICTORS_LSTM_HH
#define ICEB_PREDICTORS_LSTM_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"

namespace iceb::predictors
{

/** LSTM architecture and training configuration. */
struct LstmConfig
{
    std::size_t hidden = 16;           //!< hidden/cell width
    std::size_t window = 60;           //!< BPTT window (intervals)
    std::size_t epochs_per_observe = 4; //!< online training intensity
    double learning_rate = 0.05;
    double grad_clip = 1.0;
    std::uint64_t seed = 0x15D7'0001ull;
};

/**
 * One-step-ahead LSTM forecaster.
 */
class LstmPredictor : public Predictor
{
  public:
    explicit LstmPredictor(LstmConfig config = {});

    const char *name() const override { return "lstm"; }
    void observe(double concurrency) override;
    double predictNext() override;
    void reset() override;

    const LstmConfig &config() const { return config_; }

  private:
    struct StepCache
    {
        std::vector<double> x_h; //!< [x, h_prev] concatenated
        std::vector<double> i, f, o, g, c, h, tanh_c;
    };

    void initWeights();
    /** Forward over the window; fills caches when training. */
    double forward(const std::vector<double> &inputs,
                   std::vector<StepCache> *caches) const;
    void trainOneEpoch();
    double normalize(double value) const;
    double denormalize(double value) const;

    LstmConfig config_;
    std::vector<double> window_;
    double scale_ = 1.0; //!< running max for normalisation

    // Gate weights: each gate has a (hidden x (1 + hidden)) input
    // matrix and a bias vector; output layer is (1 x hidden) + bias.
    std::vector<double> w_i_, w_f_, w_o_, w_g_;
    std::vector<double> b_i_, b_f_, b_o_, b_g_;
    std::vector<double> w_y_;
    double b_y_ = 0.0;
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_LSTM_HH
