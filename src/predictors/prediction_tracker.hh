/**
 * @file
 * Sliding-window prediction-quality tracker.
 *
 * Feeds the PDM's utility score: the true-negative rate T_n (observed
 * cold starts over invocations in the local window -- the FIP warmed
 * too few instances) and the false-positive rate F_p (instances
 * warmed but never invoked over invocations in the window -- the FIP
 * warmed too many). Definitions follow Sec. 3.2 of the paper.
 */

#ifndef ICEB_PREDICTORS_PREDICTION_TRACKER_HH
#define ICEB_PREDICTORS_PREDICTION_TRACKER_HH

#include <cstdint>
#include <deque>

namespace iceb::predictors
{

/**
 * Per-function window of prediction outcomes.
 */
class PredictionTracker
{
  public:
    /** @param window Local window length in intervals (1 hour). */
    explicit PredictionTracker(std::size_t window = 60);

    /**
     * Close out one interval with its totals.
     *
     * @param invoked Invocations that arrived in the interval.
     * @param cold_starts Of those, how many were cold.
     * @param wasted_warmups Instances warmed in the interval that
     *                       were destroyed without serving anyone.
     * @param predicted The FIP's forecast for the interval, and
     * @param actual the load actually observed — both optional; they
     *               feed the windowed forecast-error probe only and
     *               never affect T_n / F_p.
     */
    void recordInterval(std::uint32_t invoked, std::uint32_t cold_starts,
                        std::uint32_t wasted_warmups,
                        double predicted = 0.0, double actual = 0.0);

    /** T_n: cold starts / invocations over the window, in [0, 1]. */
    double trueNegativeRate() const;

    /**
     * F_p: wasted warm-ups / invocations over the window. Can exceed
     * 1 when far more instances were warmed than invoked; the utility
     * score's min-max normalisation handles the range.
     */
    double falsePositiveRate() const;

    /** Invocations currently inside the window. */
    std::uint64_t windowInvocations() const { return sum_invoked_; }

    /**
     * Mean |predicted - actual| over the window (0 with no records).
     * Purely observational — exported by the probe layer.
     */
    double meanAbsForecastError() const;

    /** Drop all state. */
    void reset();

  private:
    struct Record
    {
        std::uint32_t invoked = 0;
        std::uint32_t cold = 0;
        std::uint32_t wasted = 0;
        double abs_forecast_error = 0.0;
    };

    std::size_t window_;
    std::deque<Record> records_;
    std::uint64_t sum_invoked_ = 0;
    std::uint64_t sum_cold_ = 0;
    std::uint64_t sum_wasted_ = 0;
    double sum_abs_error_ = 0.0;
};

} // namespace iceb::predictors

#endif // ICEB_PREDICTORS_PREDICTION_TRACKER_HH
