#include "predictors/prediction_tracker.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace iceb::predictors
{

PredictionTracker::PredictionTracker(std::size_t window)
    : window_(window)
{
    ICEB_ASSERT(window_ >= 1, "tracker window must be positive");
}

void
PredictionTracker::recordInterval(std::uint32_t invoked,
                                  std::uint32_t cold_starts,
                                  std::uint32_t wasted_warmups,
                                  double predicted, double actual)
{
    ICEB_ASSERT(cold_starts <= invoked,
                "more cold starts than invocations");
    if (records_.size() == window_) {
        const Record &old = records_.front();
        sum_invoked_ -= old.invoked;
        sum_cold_ -= old.cold;
        sum_wasted_ -= old.wasted;
        sum_abs_error_ -= old.abs_forecast_error;
        records_.pop_front();
    }
    const double abs_error = std::abs(predicted - actual);
    records_.push_back(
        Record{invoked, cold_starts, wasted_warmups, abs_error});
    sum_invoked_ += invoked;
    sum_cold_ += cold_starts;
    sum_wasted_ += wasted_warmups;
    sum_abs_error_ += abs_error;
}

double
PredictionTracker::trueNegativeRate() const
{
    if (sum_invoked_ == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(sum_cold_) /
                             static_cast<double>(sum_invoked_));
}

double
PredictionTracker::falsePositiveRate() const
{
    if (sum_invoked_ == 0) {
        // Warming with zero invocations is pure waste.
        return sum_wasted_ > 0 ? 1.0 : 0.0;
    }
    return static_cast<double>(sum_wasted_) /
        static_cast<double>(sum_invoked_);
}

double
PredictionTracker::meanAbsForecastError() const
{
    if (records_.empty())
        return 0.0;
    return sum_abs_error_ / static_cast<double>(records_.size());
}

void
PredictionTracker::reset()
{
    records_.clear();
    sum_invoked_ = 0;
    sum_cold_ = 0;
    sum_wasted_ = 0;
    sum_abs_error_ = 0.0;
}

} // namespace iceb::predictors
