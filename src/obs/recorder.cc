#include "obs/recorder.hh"

namespace iceb::obs
{

RunRecorder::RunRecorder(const ObsConfig &config)
    : trace_(config.trace), probes_(config.probes),
      trace_sink_(config.trace ? config.trace_capacity : 2)
{
}

} // namespace iceb::obs
