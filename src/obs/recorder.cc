#include "obs/recorder.hh"

#include "common/logging.hh"

namespace iceb::obs
{

RunRecorder::RunRecorder(const ObsConfig &config)
    : trace_(config.trace), probes_(config.probes),
      histograms_(config.histograms),
      trace_capacity_(config.trace_capacity),
      trace_sink_(config.trace ? config.trace_capacity : 2)
{
    histogram_set_.wall_timing =
        config.histograms && config.wall_timing;
}

TraceSink *
RunRecorder::cellTraceSink(std::size_t cell, std::size_t num_cells)
{
    if (!trace_)
        return nullptr;
    ICEB_ASSERT(num_cells > 0 && cell < num_cells,
                "cell index out of range");
    if (cell_sinks_.empty()) {
        std::size_t per_cell = trace_capacity_ / num_cells;
        if (per_cell < 4096)
            per_cell = 4096;
        cell_sinks_.reserve(num_cells);
        for (std::size_t i = 0; i < num_cells; ++i)
            cell_sinks_.push_back(
                std::make_unique<TraceSink>(per_cell));
    }
    ICEB_ASSERT(cell_sinks_.size() == num_cells,
                "cell count changed between cellTraceSink calls");
    return cell_sinks_[cell].get();
}

} // namespace iceb::obs
