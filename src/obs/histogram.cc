#include "obs/histogram.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace iceb::obs
{

std::uint64_t
LatencyHistogram::quantile(double q) const noexcept
{
    if (count_ == 0)
        return 0;
    // Rank of the q-quantile, 1-based; q <= 0 degenerates to rank 1.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_))
        ++rank; // ceiling
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        cum += counts_[i];
        if (cum >= rank) {
            const std::uint64_t hi = bucketUpperBound(i);
            return hi < max_ ? hi : max_;
        }
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other) noexcept
{
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_)
        max_ = other.max_;
}

void
HistogramSet::merge(const HistogramSet &other) noexcept
{
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        cold_start_ms[t].merge(other.cold_start_ms[t]);
        setup_attach_ms[t].merge(other.setup_attach_ms[t]);
        wait_queue_ms[t].merge(other.wait_queue_ms[t]);
    }
    decision_wall_us.merge(other.decision_wall_us);
    forecast_wall_us.merge(other.forecast_wall_us);
}

bool
HistogramSet::empty() const noexcept
{
    for (const NamedHistogram &named : namedHistograms(*this)) {
        if (named.hist->count() > 0)
            return false;
    }
    return true;
}

std::vector<NamedHistogram>
namedHistograms(const HistogramSet &set)
{
    std::vector<NamedHistogram> out;
    out.reserve(3 * kNumTiers + 2);
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        const char *tier = tierName(static_cast<Tier>(t));
        out.push_back({"cold_start_ms", tier, &set.cold_start_ms[t]});
        out.push_back(
            {"setup_attach_ms", tier, &set.setup_attach_ms[t]});
        out.push_back({"wait_queue_ms", tier, &set.wait_queue_ms[t]});
    }
    out.push_back({"decision_wall_us", "", &set.decision_wall_us});
    out.push_back({"forecast_wall_us", "", &set.forecast_wall_us});
    return out;
}

void
writeHistogramCsv(std::ostream &out,
                  const std::vector<HistogramRun> &runs)
{
    out << "run,series,tier,bucket_lo,bucket_hi,count\n";
    char buf[192];
    for (const HistogramRun &run : runs) {
        if (run.set == nullptr)
            continue;
        for (const NamedHistogram &named : namedHistograms(*run.set)) {
            const LatencyHistogram &hist = *named.hist;
            if (hist.count() == 0)
                continue;
            for (std::size_t i = 0;
                 i < LatencyHistogram::kNumBuckets; ++i) {
                const std::uint64_t n = hist.bucketCount(i);
                if (n == 0)
                    continue;
                std::snprintf(
                    buf, sizeof(buf),
                    "%s,%s,%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                    run.run.c_str(), named.series, named.tier,
                    LatencyHistogram::bucketLowerBound(i),
                    LatencyHistogram::bucketUpperBound(i), n);
                out << buf;
            }
        }
    }
}

} // namespace iceb::obs
