/**
 * @file
 * Structured event tracing: a per-run binary ring buffer of
 * fixed-size lifecycle records, exportable as Chrome `trace_event`
 * JSON (loadable in Perfetto or chrome://tracing).
 *
 * Design constraints (see DESIGN.md section 10):
 *
 *  - The record path is branch-plus-store cheap: one bounds-free
 *    masked index into a preallocated ring, no allocation, no
 *    formatting. All formatting happens at export time.
 *  - The ring keeps the NEWEST records: when a run produces more
 *    events than the ring holds, the oldest are overwritten and
 *    counted in dropped(). Capacity is fixed at construction, so a
 *    traced run still performs zero steady-state allocations.
 *  - Instrumentation sites use the ICEB_TRACE macro, which compiles
 *    to nothing when ICEB_OBS_TRACING is 0 (CMake option
 *    ICEBREAKER_OBS_TRACING=OFF) and to a single predictable
 *    null-pointer test when no sink is attached.
 *
 * Timestamps are simulated milliseconds (the simulator's clock), not
 * wall time; the Chrome exporter scales them to microseconds, the
 * unit trace_event requires.
 */

#ifndef ICEB_OBS_TRACE_SINK_HH
#define ICEB_OBS_TRACE_SINK_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

/**
 * Compile-time master switch for the tracing macro. Defined (0/1) on
 * the command line by CMake; defaults to "compiled in" so non-CMake
 * consumers of the headers get working tracing.
 */
#ifndef ICEB_OBS_TRACING
#define ICEB_OBS_TRACING 1
#endif

namespace iceb::obs
{

/** What happened. One enumerator per instrumented lifecycle edge. */
enum class TraceKind : std::uint8_t
{
    IntervalStart = 0, //!< decision-interval boundary (arg = interval)
    Arrival,           //!< invocation arrived (fn)
    WarmStart,         //!< served from the warm pool (arg = exec ms)
    ColdStart,         //!< cold start with cause (arg = cold-start ms)
    Enqueued,          //!< no capacity; joined wait queue (arg = depth)
    WarmupIssued,      //!< policy created warm-up(s) (arg = count)
    WarmupConsumed,    //!< a prewarmed instance served an invocation
    WarmupWasted,      //!< prewarmed instance destroyed unused
    Eviction,          //!< idle container evicted under pressure
    Expiry,            //!< keep-alive lapsed (arg = idle ms)

    // Barrier phases of a sharded run, recorded by the coordinator
    // into the run's own sink (cells record lifecycle events into
    // their per-cell rings). Exported as duration spans on a
    // dedicated "barrier" track; arg = span duration in ms.
    PhaseSerialBarrier, //!< serial policy hooks at the barrier
    PhaseProbeSample,   //!< aggregate probe sampling at the barrier
    PhaseParallelCells, //!< parallel per-cell body phase (arg = ms)
};

/** Number of TraceKind enumerators (for per-kind counters). */
inline constexpr std::size_t kNumTraceKinds = 13;

/** Why an invocation cold-started (mirrors the metrics split). */
enum class ColdCause : std::uint8_t
{
    None = 0,    //!< not a cold start
    NoContainer, //!< nothing live existed for the function
    AllBusy,     //!< live instances exist but all are busy
    SetupAttach, //!< attached to an in-setup container (warmed late)
};

/** One fixed-size binary trace record. */
struct TraceRecord
{
    TimeMs time = 0;        //!< simulated ms
    std::uint64_t arg = 0;  //!< kind-dependent (duration, count, ...)
    FunctionId fn = kInvalidFunction;
    std::uint8_t kind = 0;  //!< TraceKind
    std::uint8_t tier = 0;  //!< Tier
    std::uint8_t cause = 0; //!< ColdCause (ColdStart only)
    std::uint8_t pad = 0;
};

static_assert(sizeof(TraceRecord) == 24, "trace records are 24 bytes");

/**
 * Per-run ring buffer of TraceRecords. Not thread-safe by design:
 * every simulation run owns exactly one sink (that is what keeps
 * multi-threaded grids deterministic — see harness/observe.hh).
 */
class TraceSink
{
  public:
    /** Default ring capacity (records; 24 B each => 6 MiB). */
    static constexpr std::size_t kDefaultCapacity = 1u << 18;

    /** @param capacity Ring size; rounded up to a power of two. */
    explicit TraceSink(std::size_t capacity = kDefaultCapacity);

    /** Append one record (overwrites the oldest when full). */
    void record(TraceKind kind, TimeMs time, FunctionId fn, Tier tier,
                ColdCause cause, std::uint64_t arg) noexcept
    {
        TraceRecord &r = ring_[static_cast<std::size_t>(head_) & mask_];
        ++head_;
        r.time = time;
        r.arg = arg;
        r.fn = fn;
        r.kind = static_cast<std::uint8_t>(kind);
        r.tier = static_cast<std::uint8_t>(tier);
        r.cause = static_cast<std::uint8_t>(cause);
        ++counts_[static_cast<std::size_t>(kind)];
    }

    /** Records ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return head_; }

    /** Records lost to ring wrap-around. */
    std::uint64_t dropped() const
    {
        return head_ > ring_.size() ? head_ - ring_.size() : 0;
    }

    /** Records currently retained. */
    std::size_t size() const
    {
        return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                    : ring_.size();
    }

    /** Ring capacity in records. */
    std::size_t capacity() const { return ring_.size(); }

    /** Retained record @p i, oldest first (0 <= i < size()). */
    const TraceRecord &at(std::size_t i) const
    {
        const std::uint64_t base = head_ - size();
        return ring_[static_cast<std::size_t>(base + i) & mask_];
    }

    /** Records ever recorded of one kind. */
    std::uint64_t count(TraceKind kind) const
    {
        return counts_[static_cast<std::size_t>(kind)];
    }

  private:
    std::vector<TraceRecord> ring_;
    std::size_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::array<std::uint64_t, kNumTraceKinds> counts_{};
};

/** Display name of a trace kind (used by the Chrome exporter). */
const char *traceKindName(TraceKind kind);

/** Display name of a cold-start cause. */
const char *coldCauseName(ColdCause cause);

class ProbeTable; // probes.hh

/** One run's observations, labelled for export. */
struct TraceRun
{
    std::string name;                    //!< Chrome process name
    const TraceSink *trace = nullptr;    //!< may be null (probes only)
    const ProbeTable *probes = nullptr;  //!< emitted as counter events
    /**
     * Per-cell rings of a sharded run, in cell order (empty for
     * classic runs). Cell c's records are emitted on one dedicated
     * tid track named "cellC"; the run's own `trace` then carries the
     * coordinator's barrier-phase spans on the "barrier" track.
     */
    std::vector<const TraceSink *> cells;
};

/**
 * Write runs as one Chrome trace_event JSON document: each run
 * becomes a process (pid = position + 1) with named threads per
 * record family, cold/warm starts as duration events, the remaining
 * records as instants, and probe samples as counter tracks. Sharded
 * runs additionally get a "barrier" track of phase spans and one
 * "cellC" track per cell (see TraceRun::cells). Output bytes depend
 * only on @p runs (deterministic formatting).
 */
void writeChromeTrace(std::ostream &out,
                      const std::vector<TraceRun> &runs);

} // namespace iceb::obs

/**
 * Record a trace event through a TraceSink pointer (null = tracing
 * off for this run). Compiles to nothing — argument expressions are
 * type-checked but never evaluated — when ICEB_OBS_TRACING is 0.
 */
#if ICEB_OBS_TRACING
#define ICEB_TRACE(sink, kind, time, fn, tier, cause, arg)              \
    do {                                                                \
        if (sink) {                                                     \
            (sink)->record((kind), (time), (fn), (tier), (cause),       \
                           (arg));                                      \
        }                                                               \
    } while (0)
#else
#define ICEB_TRACE(sink, kind, time, fn, tier, cause, arg)              \
    do {                                                                \
        if (false) {                                                    \
            (sink)->record((kind), (time), (fn), (tier), (cause),       \
                           (arg));                                      \
        }                                                               \
    } while (0)
#endif

#endif // ICEB_OBS_TRACE_SINK_HH
