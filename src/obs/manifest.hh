/**
 * @file
 * Run manifests: one JSON-lines record per simulation run making a
 * grid self-describing — which scheme ran, against which workload and
 * cluster (by digest), from which seed, under which build, and what
 * it produced (headline metrics + a metrics digest for byte-level
 * regression checks).
 *
 * The obs library knows nothing about sim types; the harness fills a
 * plain RunManifest from its RunSpec/RunResult and this module only
 * formats it. 64-bit digests and seeds are emitted as fixed-width hex
 * strings because JSON numbers are IEEE doubles and would silently
 * lose low bits.
 */

#ifndef ICEB_OBS_MANIFEST_HH
#define ICEB_OBS_MANIFEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace iceb::obs
{

/** Incremental FNV-1a 64-bit digest. */
class Digest
{
  public:
    Digest &addU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            addByte(static_cast<std::uint8_t>(v >> (i * 8)));
        }
        return *this;
    }

    Digest &addI64(std::int64_t v)
    {
        return addU64(static_cast<std::uint64_t>(v));
    }

    /** Hashes the bit pattern (normalizing -0.0 to +0.0). */
    Digest &addDouble(double v);

    Digest &addString(const std::string &s)
    {
        for (char c : s) {
            addByte(static_cast<std::uint8_t>(c));
        }
        addByte(0); // terminator => ("ab","c") != ("a","bc")
        return *this;
    }

    std::uint64_t value() const { return state_; }

    /** value() as a fixed-width lowercase hex string. */
    std::string hex() const;

  private:
    void addByte(std::uint8_t b)
    {
        state_ ^= b;
        state_ *= 0x100000001b3ull;
    }

    std::uint64_t state_ = 0xcbf29ce484222325ull;
};

/** @return @p v as a fixed-width 16-digit lowercase hex string. */
std::string toHex(std::uint64_t v);

/** @return @p s with JSON string escapes applied (no quotes added). */
std::string jsonEscaped(const std::string &s);

/** Compiler / configuration facts baked into the binary. */
struct BuildInfo
{
    std::string compiler;    //!< __VERSION__
    bool optimized = false;  //!< NDEBUG set
    bool tracing = false;    //!< ICEB_OBS_TRACING compiled in
};

/** Build info of the current binary. */
BuildInfo currentBuildInfo();

/**
 * Quantile digest of one latency-histogram series, folded into the
 * manifest line ("series" or "series/tier" keyed; see
 * obs/histogram.hh). Only non-empty series appear, so deterministic
 * runs keep byte-identical manifests regardless of wall-timing.
 */
struct HistogramDigest
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
};

/** Everything the manifest records about one run. */
struct RunManifest
{
    std::uint32_t run_index = 0;    //!< position in the grid
    std::string scheme;             //!< policy scheme key
    std::string label;              //!< sweep-point label ("" if none)
    std::uint32_t replicate = 0;    //!< seed replicate index
    std::uint64_t base_seed = 0;
    std::uint64_t derived_seed = 0; //!< per-run RNG seed
    std::string cluster;            //!< cluster config name
    std::uint64_t config_digest = 0;
    std::uint64_t workload_functions = 0;
    std::uint64_t workload_intervals = 0;
    std::uint64_t workload_invocations = 0;
    /** Headline metrics, in a fixed order chosen by the producer. */
    std::vector<std::pair<std::string, double>> metrics;
    std::uint64_t metrics_digest = 0;
    std::uint64_t trace_recorded = 0; //!< 0 when tracing off
    std::uint64_t trace_dropped = 0;
    std::uint64_t probe_samples = 0;  //!< interval + forecast rows
    /** Histogram quantile digests (empty = pillar off / no values);
     * when empty the manifest line's bytes match the pre-histogram
     * format exactly. */
    std::vector<HistogramDigest> histograms;
};

/** Append @p m to @p out as a single JSON line. */
void writeManifestLine(std::ostream &out, const RunManifest &m);

} // namespace iceb::obs

#endif // ICEB_OBS_MANIFEST_HH
