#include "obs/trace_sink.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/probes.hh"

namespace iceb::obs
{

namespace
{

std::size_t roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v) {
        p <<= 1;
    }
    return p;
}

} // namespace

TraceSink::TraceSink(std::size_t capacity)
    : ring_(roundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(ring_.size() - 1)
{
}

const char *traceKindName(TraceKind kind)
{
    switch (kind) {
    case TraceKind::IntervalStart: return "interval_start";
    case TraceKind::Arrival: return "arrival";
    case TraceKind::WarmStart: return "warm_start";
    case TraceKind::ColdStart: return "cold_start";
    case TraceKind::Enqueued: return "enqueued";
    case TraceKind::WarmupIssued: return "warmup_issued";
    case TraceKind::WarmupConsumed: return "warmup_consumed";
    case TraceKind::WarmupWasted: return "warmup_wasted";
    case TraceKind::Eviction: return "eviction";
    case TraceKind::Expiry: return "expiry";
    case TraceKind::PhaseSerialBarrier: return "serial-barrier";
    case TraceKind::PhaseProbeSample: return "probe-sample";
    case TraceKind::PhaseParallelCells: return "parallel-cells";
    }
    return "unknown";
}

const char *coldCauseName(ColdCause cause)
{
    switch (cause) {
    case ColdCause::None: return "none";
    case ColdCause::NoContainer: return "no_container";
    case ColdCause::AllBusy: return "all_busy";
    case ColdCause::SetupAttach: return "setup_attach";
    }
    return "unknown";
}

namespace
{

/**
 * Chrome trace_event thread ids, one virtual thread per record
 * family so Perfetto lays related events out on shared tracks.
 */
enum ChromeTid : int
{
    kTidIntervals = 0,
    kTidInvocations = 1,
    kTidWarmup = 2,
    kTidReclaim = 3,
    /** The sharded coordinator's barrier-phase span track. */
    kTidBarrier = 4,
    /** Cell c of a sharded run gets the single tid kTidCellBase + c. */
    kTidCellBase = 16,
};

int chromeTid(TraceKind kind)
{
    switch (kind) {
    case TraceKind::IntervalStart:
        return kTidIntervals;
    case TraceKind::Arrival:
    case TraceKind::WarmStart:
    case TraceKind::ColdStart:
    case TraceKind::Enqueued:
        return kTidInvocations;
    case TraceKind::WarmupIssued:
    case TraceKind::WarmupConsumed:
    case TraceKind::WarmupWasted:
        return kTidWarmup;
    case TraceKind::Eviction:
    case TraceKind::Expiry:
        return kTidReclaim;
    case TraceKind::PhaseSerialBarrier:
    case TraceKind::PhaseProbeSample:
    case TraceKind::PhaseParallelCells:
        return kTidBarrier;
    }
    return kTidInvocations;
}

bool isBarrierPhase(TraceKind kind)
{
    return kind == TraceKind::PhaseSerialBarrier ||
        kind == TraceKind::PhaseProbeSample ||
        kind == TraceKind::PhaseParallelCells;
}

const char *chromeTidName(int tid)
{
    switch (tid) {
    case kTidIntervals: return "intervals";
    case kTidInvocations: return "invocations";
    case kTidWarmup: return "warmup";
    case kTidReclaim: return "reclaim";
    }
    return "other";
}

/** Small fixed-buffer line formatter (snprintf => locale-immune). */
class LineWriter
{
  public:
    explicit LineWriter(std::ostream &out) : out_(out) {}

    /** Emit one JSON event object; handles the comma separation. */
    template <typename... Args>
    void event(const char *fmt, Args... args)
    {
        char buf[512];
        const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
        if (n <= 0 || static_cast<std::size_t>(n) >= sizeof(buf)) {
            return; // never expected; skip rather than truncate
        }
        if (!first_) {
            out_ << ",\n";
        }
        first_ = false;
        out_ << buf;
    }

  private:
    std::ostream &out_;
    bool first_ = true;
};

/** Simulated ms -> trace_event µs. */
long long toUs(TimeMs ms) { return static_cast<long long>(ms) * 1000; }

void writeRunMetadata(LineWriter &w, int pid, const std::string &name,
                      std::size_t num_cells)
{
    w.event("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
            "\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}",
            pid, name.c_str());
    for (int tid = kTidIntervals; tid <= kTidReclaim; ++tid) {
        w.event("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                pid, tid, chromeTidName(tid));
    }
    if (num_cells > 0) {
        w.event("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                "\"name\":\"thread_name\",\"args\":{\"name\":"
                "\"barrier\"}}",
                pid, kTidBarrier);
        for (std::size_t c = 0; c < num_cells; ++c) {
            w.event("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":"
                    "\"cell%zu\"}}",
                    pid, kTidCellBase + static_cast<int>(c), c);
        }
    }
}

/**
 * Emit one record. @p tid_override >= 0 routes the event onto that
 * track (per-cell emission) instead of the record family's track.
 */
void writeRecord(LineWriter &w, int pid, const TraceRecord &r,
                 int tid_override = -1)
{
    const auto kind = static_cast<TraceKind>(r.kind);
    const int tid = tid_override >= 0 ? tid_override : chromeTid(kind);
    const long long ts = toUs(r.time);
    if (isBarrierPhase(kind)) {
        // Phase span: arg carries the span's duration in ms. The
        // serial phases are zero-length in simulated time and nest
        // inside the interval-long parallel-cells span.
        w.event("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,"
                "\"dur\":%lld,\"name\":\"%s\",\"cat\":\"barrier\","
                "\"args\":{\"interval\":%u}}",
                pid, tid, ts, toUs(static_cast<TimeMs>(r.arg)),
                traceKindName(kind), static_cast<unsigned>(r.fn));
        return;
    }
    switch (kind) {
    case TraceKind::WarmStart:
        // Duration event: arg carries the execution time in ms.
        w.event("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,"
                "\"dur\":%lld,\"name\":\"warm fn%u\",\"cat\":\"invoke\","
                "\"args\":{\"fn\":%u,\"tier\":\"%s\"}}",
                pid, tid, ts, toUs(static_cast<TimeMs>(r.arg)),
                static_cast<unsigned>(r.fn), static_cast<unsigned>(r.fn),
                tierName(static_cast<Tier>(r.tier)));
        break;
    case TraceKind::ColdStart:
        // Duration event: arg carries the cold-start penalty in ms.
        w.event("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,"
                "\"dur\":%lld,\"name\":\"cold fn%u\",\"cat\":\"invoke\","
                "\"args\":{\"fn\":%u,\"tier\":\"%s\",\"cause\":\"%s\"}}",
                pid, tid, ts, toUs(static_cast<TimeMs>(r.arg)),
                static_cast<unsigned>(r.fn), static_cast<unsigned>(r.fn),
                tierName(static_cast<Tier>(r.tier)),
                coldCauseName(static_cast<ColdCause>(r.cause)));
        break;
    default:
        w.event("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,"
                "\"s\":\"t\",\"name\":\"%s\",\"cat\":\"lifecycle\","
                "\"args\":{\"fn\":%u,\"tier\":\"%s\",\"arg\":%" PRIu64
                "}}",
                pid, tid, ts, traceKindName(kind),
                static_cast<unsigned>(r.fn),
                tierName(static_cast<Tier>(r.tier)), r.arg);
        break;
    }
}

void writeCounterSamples(LineWriter &w, int pid, const ProbeTable &probes)
{
    // Counter events render as stacked area tracks in the viewer.
    for (std::size_t i = 0; i < probes.intervalSampleCount(); ++i) {
        const IntervalSample &s = probes.intervalSample(i);
        const long long ts = toUs(s.time);
        w.event("{\"ph\":\"C\",\"pid\":%d,\"ts\":%lld,"
                "\"name\":\"warm pool\",\"args\":{\"high\":%" PRId64
                ",\"low\":%" PRId64 "}}",
                pid, ts, s.idle_warm[0], s.idle_warm[1]);
        w.event("{\"ph\":\"C\",\"pid\":%d,\"ts\":%lld,"
                "\"name\":\"memory mb\",\"args\":{\"high\":%" PRId64
                ",\"low\":%" PRId64 "}}",
                pid, ts, s.used_mb[0], s.used_mb[1]);
        w.event("{\"ph\":\"C\",\"pid\":%d,\"ts\":%lld,"
                "\"name\":\"wait queue\",\"args\":{\"depth\":%" PRId64
                "}}",
                pid, ts, s.wait_queue);
    }
}

} // namespace

void writeChromeTrace(std::ostream &out, const std::vector<TraceRun> &runs)
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    LineWriter w(out);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const TraceRun &run = runs[i];
        const int pid = static_cast<int>(i) + 1;
        writeRunMetadata(w, pid, run.name, run.cells.size());
        if (run.trace != nullptr) {
            for (std::size_t j = 0; j < run.trace->size(); ++j) {
                writeRecord(w, pid, run.trace->at(j));
            }
        }
        // Per-cell rings of a sharded run, merged in cell order: one
        // tid track per cell. The cell order (not the worker count)
        // fixes the output bytes.
        for (std::size_t c = 0; c < run.cells.size(); ++c) {
            const TraceSink *cell = run.cells[c];
            if (cell == nullptr)
                continue;
            const int tid = kTidCellBase + static_cast<int>(c);
            for (std::size_t j = 0; j < cell->size(); ++j) {
                writeRecord(w, pid, cell->at(j), tid);
            }
        }
        if (run.probes != nullptr) {
            writeCounterSamples(w, pid, *run.probes);
        }
    }
    out << "\n]}\n";
}

} // namespace iceb::obs
