/**
 * @file
 * Time-series probes: columnar per-interval samples of cluster state
 * (warm-pool occupancy, memory utilization, wait-queue depth,
 * keep-alive cost accrual) plus per-function forecast-vs-actual
 * error, exported as tidy CSV (one `(series, value)` row per sample).
 *
 * A ProbeTable belongs to exactly one simulation run (like a
 * TraceSink) and is sampled at decision-interval boundaries, before
 * the policy acts — so a sample shows the state the policy saw, not
 * the state it produced.
 */

#ifndef ICEB_OBS_PROBES_HH
#define ICEB_OBS_PROBES_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace iceb::obs
{

/** Cluster-wide state sampled at one decision-interval boundary. */
struct IntervalSample
{
    std::uint32_t interval = 0; //!< decision-interval index
    TimeMs time = 0;            //!< boundary time (simulated ms)
    std::array<std::int64_t, kNumTiers> idle_warm{};  //!< idle-warm pool size
    std::array<std::int64_t, kNumTiers> in_setup{};   //!< containers in setup
    std::array<MemoryMb, kNumTiers> used_mb{};        //!< memory in use
    std::array<MemoryMb, kNumTiers> total_mb{};       //!< tier capacity
    std::int64_t wait_queue = 0;                      //!< queued invocations
    std::array<double, kNumTiers> keep_alive_cost{};  //!< cumulative $
};

/** One function's forecast vs. outcome for one closed interval. */
struct ForecastSample
{
    std::uint32_t interval = 0; //!< interval the forecast was FOR
    FunctionId fn = kInvalidFunction;
    double predicted = 0.0;     //!< invocations forecast last interval
    double actual = 0.0;        //!< invocations observed
    double window_mae = 0.0;    //!< windowed mean absolute error
};

/** Columnar store for one run's probe samples. */
class ProbeTable
{
  public:
    ProbeTable();

    /** Preallocate for @p intervals boundaries (x @p fns forecasts). */
    void reserve(std::size_t intervals, std::size_t fns);

    void addIntervalSample(const IntervalSample &sample)
    {
        interval_samples_.push_back(sample);
    }

    void addForecastSample(const ForecastSample &sample)
    {
        forecast_samples_.push_back(sample);
    }

    std::size_t intervalSampleCount() const
    {
        return interval_samples_.size();
    }

    std::size_t forecastSampleCount() const
    {
        return forecast_samples_.size();
    }

    const IntervalSample &intervalSample(std::size_t i) const
    {
        return interval_samples_[i];
    }

    const ForecastSample &forecastSample(std::size_t i) const
    {
        return forecast_samples_[i];
    }

  private:
    std::vector<IntervalSample> interval_samples_;
    std::vector<ForecastSample> forecast_samples_;
};

/** One run's probes, labelled for CSV export. */
struct ProbeRun
{
    std::string run;                    //!< run label (scheme / point)
    const ProbeTable *probes = nullptr;
};

/**
 * Write runs as tidy CSV with header
 * `run,interval,time_ms,series,tier,fn,value`: cluster series carry a
 * tier (or blank for scalars like wait_queue) and a blank fn;
 * forecast series carry a fn and blank tier. Formatting is
 * locale-independent and deterministic.
 */
void writeProbeCsv(std::ostream &out, const std::vector<ProbeRun> &runs);

/**
 * Low-level tidy-CSV row emitter shared by the batch exporter
 * (writeProbeCsv) and the live streamer. Writes the header on
 * construction; sample-to-rows expansion and value formatting are
 * identical in both paths, so batch output is unaffected by having a
 * streaming consumer.
 */
class ProbeCsvWriter
{
  public:
    explicit ProbeCsvWriter(std::ostream &out);

    /** Emit every row of one cluster-state sample. */
    void writeIntervalSample(const std::string &run,
                             const IntervalSample &s);

    /** Emit every row of one forecast-vs-actual sample. */
    void writeForecastSample(const std::string &run,
                             const ForecastSample &s);

  private:
    std::ostream &out_;
};

/**
 * Incremental probe export for a live (serving-mode) run: cursors over
 * a growing ProbeTable and appends only the not-yet-written samples on
 * each flush(), so a consumer tailing the stream sees an interval's
 * rows as soon as the driver closes it. Row ORDER differs from the
 * batch file — flush interleaves interval and forecast rows by arrival
 * instead of writeProbeCsv's all-interval-then-all-forecast layout —
 * but the row SET for a completed run is identical (tidy CSV carries
 * no meaning in row order).
 */
class ProbeCsvStreamer
{
  public:
    /** @p table is borrowed and must outlive the streamer. */
    ProbeCsvStreamer(std::ostream &out, std::string run,
                     const ProbeTable &table);

    /** Append all samples added since the previous flush. */
    void flush();

  private:
    ProbeCsvWriter writer_;
    std::string run_;
    const ProbeTable *table_;
    std::size_t next_interval_ = 0;
    std::size_t next_forecast_ = 0;
};

} // namespace iceb::obs

#endif // ICEB_OBS_PROBES_HH
