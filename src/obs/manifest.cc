#include "obs/manifest.hh"

#include <cstdio>
#include <cstring>
#include <ostream>

#include "obs/trace_sink.hh" // ICEB_OBS_TRACING

namespace iceb::obs
{

Digest &Digest::addDouble(double v)
{
    if (v == 0.0) {
        v = 0.0; // collapse -0.0
    }
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return addU64(bits);
}

std::string toHex(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string Digest::hex() const { return toHex(state_); }

std::string jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

BuildInfo currentBuildInfo()
{
    BuildInfo info;
#ifdef __VERSION__
    info.compiler = __VERSION__;
#else
    info.compiler = "unknown";
#endif
#ifdef NDEBUG
    info.optimized = true;
#endif
    info.tracing = ICEB_OBS_TRACING != 0;
    return info;
}

namespace
{

void appendMetric(std::string &line, const std::string &name, double v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g",
                  jsonEscaped(name).c_str(), v);
    line += buf;
}

} // namespace

void writeManifestLine(std::ostream &out, const RunManifest &m)
{
    const BuildInfo build = currentBuildInfo();
    std::string line;
    line.reserve(768);
    char buf[256];

    std::snprintf(buf, sizeof(buf),
                  "{\"run_index\":%u,\"scheme\":\"%s\",", m.run_index,
                  jsonEscaped(m.scheme).c_str());
    line += buf;
    std::snprintf(buf, sizeof(buf), "\"label\":\"%s\",\"replicate\":%u,",
                  jsonEscaped(m.label).c_str(), m.replicate);
    line += buf;
    line += "\"base_seed\":\"" + toHex(m.base_seed) + "\",";
    line += "\"derived_seed\":\"" + toHex(m.derived_seed) + "\",";
    line += "\"cluster\":\"" + jsonEscaped(m.cluster) + "\",";
    line += "\"config_digest\":\"" + toHex(m.config_digest) + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"workload\":{\"functions\":%llu,\"intervals\":%llu,"
                  "\"invocations\":%llu},",
                  static_cast<unsigned long long>(m.workload_functions),
                  static_cast<unsigned long long>(m.workload_intervals),
                  static_cast<unsigned long long>(
                      m.workload_invocations));
    line += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"build\":{\"compiler\":\"%s\",\"optimized\":%s,"
                  "\"tracing\":%s},",
                  jsonEscaped(build.compiler).c_str(),
                  build.optimized ? "true" : "false",
                  build.tracing ? "true" : "false");
    line += buf;
    line += "\"metrics\":{";
    for (std::size_t i = 0; i < m.metrics.size(); ++i) {
        if (i != 0) {
            line += ',';
        }
        appendMetric(line, m.metrics[i].first, m.metrics[i].second);
    }
    line += "},";
    line += "\"metrics_digest\":\"" + toHex(m.metrics_digest) + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"trace\":{\"recorded\":%llu,\"dropped\":%llu},"
                  "\"probe_samples\":%llu",
                  static_cast<unsigned long long>(m.trace_recorded),
                  static_cast<unsigned long long>(m.trace_dropped),
                  static_cast<unsigned long long>(m.probe_samples));
    line += buf;
    if (!m.histograms.empty()) {
        line += ",\"histograms\":{";
        for (std::size_t i = 0; i < m.histograms.size(); ++i) {
            const HistogramDigest &h = m.histograms[i];
            if (i != 0)
                line += ',';
            std::snprintf(
                buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"p50\":%llu,\"p95\":%llu,"
                "\"p99\":%llu,\"max\":%llu}",
                jsonEscaped(h.name).c_str(),
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.p50),
                static_cast<unsigned long long>(h.p95),
                static_cast<unsigned long long>(h.p99),
                static_cast<unsigned long long>(h.max));
            line += buf;
        }
        line += '}';
    }
    line += '}';

    out << line << '\n';
}

} // namespace iceb::obs
