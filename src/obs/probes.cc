#include "obs/probes.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace iceb::obs
{

ProbeTable::ProbeTable() = default;

void ProbeTable::reserve(std::size_t intervals, std::size_t fns)
{
    interval_samples_.reserve(intervals);
    forecast_samples_.reserve(intervals * fns);
}

namespace
{

/** Shortest round-trippable double, fixed "C"-style formatting. */
void formatValue(char *buf, std::size_t n, double v)
{
    std::snprintf(buf, n, "%.17g", v);
    // Prefer the shorter %.15g form when it round-trips exactly.
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
        std::snprintf(buf, n, "%s", shorter);
    }
}

class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &out) : out_(out)
    {
        out_ << "run,interval,time_ms,series,tier,fn,value\n";
    }

    void clusterRow(const std::string &run, std::uint32_t interval,
                    TimeMs time, const char *series, const char *tier,
                    std::int64_t value)
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      ",%u,%" PRId64 ",%s,%s,,%" PRId64 "\n", interval,
                      time, series, tier, value);
        out_ << run << buf;
    }

    void clusterRowF(const std::string &run, std::uint32_t interval,
                     TimeMs time, const char *series, const char *tier,
                     double value)
    {
        char val[64];
        formatValue(val, sizeof(val), value);
        char buf[200];
        std::snprintf(buf, sizeof(buf), ",%u,%" PRId64 ",%s,%s,,%s\n",
                      interval, time, series, tier, val);
        out_ << run << buf;
    }

    void forecastRow(const std::string &run, std::uint32_t interval,
                     const char *series, FunctionId fn, double value)
    {
        char val[64];
        formatValue(val, sizeof(val), value);
        char buf[200];
        std::snprintf(buf, sizeof(buf), ",%u,,%s,,%u,%s\n", interval,
                      series, static_cast<unsigned>(fn), val);
        out_ << run << buf;
    }

  private:
    std::ostream &out_;
};

} // namespace

void writeProbeCsv(std::ostream &out, const std::vector<ProbeRun> &runs)
{
    CsvWriter w(out);
    for (const ProbeRun &run : runs) {
        if (run.probes == nullptr) {
            continue;
        }
        const ProbeTable &t = *run.probes;
        for (std::size_t i = 0; i < t.intervalSampleCount(); ++i) {
            const IntervalSample &s = t.intervalSample(i);
            for (std::size_t ti = 0; ti < kNumTiers; ++ti) {
                const char *tier =
                    tierName(static_cast<Tier>(ti));
                w.clusterRow(run.run, s.interval, s.time, "idle_warm",
                             tier, s.idle_warm[ti]);
                w.clusterRow(run.run, s.interval, s.time, "in_setup",
                             tier, s.in_setup[ti]);
                w.clusterRow(run.run, s.interval, s.time, "used_mb",
                             tier, s.used_mb[ti]);
                w.clusterRow(run.run, s.interval, s.time, "total_mb",
                             tier, s.total_mb[ti]);
                w.clusterRowF(run.run, s.interval, s.time,
                              "keep_alive_cost", tier,
                              s.keep_alive_cost[ti]);
            }
            w.clusterRow(run.run, s.interval, s.time, "wait_queue", "",
                         s.wait_queue);
        }
        for (std::size_t i = 0; i < t.forecastSampleCount(); ++i) {
            const ForecastSample &s = t.forecastSample(i);
            w.forecastRow(run.run, s.interval, "forecast_predicted",
                          s.fn, s.predicted);
            w.forecastRow(run.run, s.interval, "forecast_actual", s.fn,
                          s.actual);
            w.forecastRow(run.run, s.interval, "forecast_window_mae",
                          s.fn, s.window_mae);
        }
    }
}

} // namespace iceb::obs
