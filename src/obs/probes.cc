#include "obs/probes.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <utility>

namespace iceb::obs
{

ProbeTable::ProbeTable() = default;

void ProbeTable::reserve(std::size_t intervals, std::size_t fns)
{
    interval_samples_.reserve(intervals);
    forecast_samples_.reserve(intervals * fns);
}

namespace
{

/** Shortest round-trippable double, fixed "C"-style formatting. */
void formatValue(char *buf, std::size_t n, double v)
{
    std::snprintf(buf, n, "%.17g", v);
    // Prefer the shorter %.15g form when it round-trips exactly.
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
        std::snprintf(buf, n, "%s", shorter);
    }
}

void clusterRow(std::ostream &out, const std::string &run,
                std::uint32_t interval, TimeMs time, const char *series,
                const char *tier, std::int64_t value)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",%u,%" PRId64 ",%s,%s,,%" PRId64 "\n", interval,
                  time, series, tier, value);
    out << run << buf;
}

void clusterRowF(std::ostream &out, const std::string &run,
                 std::uint32_t interval, TimeMs time, const char *series,
                 const char *tier, double value)
{
    char val[64];
    formatValue(val, sizeof(val), value);
    char buf[200];
    std::snprintf(buf, sizeof(buf), ",%u,%" PRId64 ",%s,%s,,%s\n",
                  interval, time, series, tier, val);
    out << run << buf;
}

void forecastRow(std::ostream &out, const std::string &run,
                 std::uint32_t interval, const char *series,
                 FunctionId fn, double value)
{
    char val[64];
    formatValue(val, sizeof(val), value);
    char buf[200];
    std::snprintf(buf, sizeof(buf), ",%u,,%s,,%u,%s\n", interval,
                  series, static_cast<unsigned>(fn), val);
    out << run << buf;
}

} // namespace

ProbeCsvWriter::ProbeCsvWriter(std::ostream &out) : out_(out)
{
    out_ << "run,interval,time_ms,series,tier,fn,value\n";
}

void
ProbeCsvWriter::writeIntervalSample(const std::string &run,
                                    const IntervalSample &s)
{
    for (std::size_t ti = 0; ti < kNumTiers; ++ti) {
        const char *tier = tierName(static_cast<Tier>(ti));
        clusterRow(out_, run, s.interval, s.time, "idle_warm", tier,
                   s.idle_warm[ti]);
        clusterRow(out_, run, s.interval, s.time, "in_setup", tier,
                   s.in_setup[ti]);
        clusterRow(out_, run, s.interval, s.time, "used_mb", tier,
                   s.used_mb[ti]);
        clusterRow(out_, run, s.interval, s.time, "total_mb", tier,
                   s.total_mb[ti]);
        clusterRowF(out_, run, s.interval, s.time, "keep_alive_cost",
                    tier, s.keep_alive_cost[ti]);
    }
    clusterRow(out_, run, s.interval, s.time, "wait_queue", "",
               s.wait_queue);
}

void
ProbeCsvWriter::writeForecastSample(const std::string &run,
                                    const ForecastSample &s)
{
    forecastRow(out_, run, s.interval, "forecast_predicted", s.fn,
                s.predicted);
    forecastRow(out_, run, s.interval, "forecast_actual", s.fn,
                s.actual);
    forecastRow(out_, run, s.interval, "forecast_window_mae", s.fn,
                s.window_mae);
}

void writeProbeCsv(std::ostream &out, const std::vector<ProbeRun> &runs)
{
    ProbeCsvWriter w(out);
    for (const ProbeRun &run : runs) {
        if (run.probes == nullptr) {
            continue;
        }
        const ProbeTable &t = *run.probes;
        for (std::size_t i = 0; i < t.intervalSampleCount(); ++i) {
            w.writeIntervalSample(run.run, t.intervalSample(i));
        }
        for (std::size_t i = 0; i < t.forecastSampleCount(); ++i) {
            w.writeForecastSample(run.run, t.forecastSample(i));
        }
    }
}

ProbeCsvStreamer::ProbeCsvStreamer(std::ostream &out, std::string run,
                                   const ProbeTable &table)
    : writer_(out), run_(std::move(run)), table_(&table)
{
}

void
ProbeCsvStreamer::flush()
{
    while (next_interval_ < table_->intervalSampleCount()) {
        writer_.writeIntervalSample(
            run_, table_->intervalSample(next_interval_));
        ++next_interval_;
    }
    while (next_forecast_ < table_->forecastSampleCount()) {
        writer_.writeForecastSample(
            run_, table_->forecastSample(next_forecast_));
        ++next_forecast_;
    }
}

} // namespace iceb::obs
