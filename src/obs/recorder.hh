/**
 * @file
 * RunRecorder: the per-run bundle of observability sinks handed to a
 * Simulator. One recorder per run, owned by whoever launches the run
 * (ExperimentRunner for grids, main() for single runs); the simulator
 * only borrows it. Single ownership is the determinism story: worker
 * threads never share a sink, so `--threads N` observes exactly what
 * `--threads 1` observes, and export happens after the grid completes
 * in grid order.
 *
 * Sharded runs add one wrinkle: the cells of a ShardedSimulator run
 * concurrently between barriers, so they cannot share the run's
 * TraceSink. The recorder instead hands each cell its own ring
 * (cellTraceSink), created once in cell order at setup time; the
 * Chrome exporter merges them into per-cell tid tracks. Cell rings
 * are filled by the cells' own single-threaded event loops, so their
 * contents are independent of the worker count.
 */

#ifndef ICEB_OBS_RECORDER_HH
#define ICEB_OBS_RECORDER_HH

#include <memory>
#include <vector>

#include "obs/histogram.hh"
#include "obs/probes.hh"
#include "obs/trace_sink.hh"

namespace iceb::obs
{

/** Which pillars to collect, and how much tracing memory to commit. */
struct ObsConfig
{
    bool trace = false;
    bool probes = false;
    bool histograms = false;
    /** Measure wall time around policy interval hooks (see
     * HistogramSet::wall_timing; non-deterministic, off by default). */
    bool wall_timing = false;
    std::size_t trace_capacity = TraceSink::kDefaultCapacity;

    bool any() const { return trace || probes || histograms; }
};

/** One run's observability state. */
class RunRecorder
{
  public:
    explicit RunRecorder(const ObsConfig &config);

    /** Trace sink for ICEB_TRACE sites, or null when tracing is off. */
    TraceSink *traceSink() { return trace_ ? &trace_sink_ : nullptr; }
    const TraceSink *traceSinkIfEnabled() const
    {
        return trace_ ? &trace_sink_ : nullptr;
    }

    /** Probe table, or null when probes are off. */
    ProbeTable *probeTable() { return probes_ ? &probe_table_ : nullptr; }
    const ProbeTable *probeTableIfEnabled() const
    {
        return probes_ ? &probe_table_ : nullptr;
    }

    /** Latency histograms, or null when the pillar is off. */
    HistogramSet *histograms()
    {
        return histograms_ ? &histogram_set_ : nullptr;
    }
    const HistogramSet *histogramsIfEnabled() const
    {
        return histograms_ ? &histogram_set_ : nullptr;
    }

    /**
     * Per-cell trace ring for cell @p cell of a @p num_cells sharded
     * run (null when tracing is off). All rings are created on the
     * first call — in cell order, before any cell runs — each with
     * capacity trace_capacity / num_cells (floor 4096), so the memory
     * commitment matches a classic traced run's.
     */
    TraceSink *cellTraceSink(std::size_t cell, std::size_t num_cells);

    /** The per-cell rings (empty unless cellTraceSink was used). */
    const std::vector<std::unique_ptr<TraceSink>> &cellTraceSinks() const
    {
        return cell_sinks_;
    }

  private:
    bool trace_;
    bool probes_;
    bool histograms_;
    std::size_t trace_capacity_;
    TraceSink trace_sink_;
    ProbeTable probe_table_;
    HistogramSet histogram_set_;
    std::vector<std::unique_ptr<TraceSink>> cell_sinks_;
};

} // namespace iceb::obs

#endif // ICEB_OBS_RECORDER_HH
