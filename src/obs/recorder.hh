/**
 * @file
 * RunRecorder: the per-run bundle of observability sinks handed to a
 * Simulator. One recorder per run, owned by whoever launches the run
 * (ExperimentRunner for grids, main() for single runs); the simulator
 * only borrows it. Single ownership is the determinism story: worker
 * threads never share a sink, so `--threads N` observes exactly what
 * `--threads 1` observes, and export happens after the grid completes
 * in grid order.
 */

#ifndef ICEB_OBS_RECORDER_HH
#define ICEB_OBS_RECORDER_HH

#include "obs/probes.hh"
#include "obs/trace_sink.hh"

namespace iceb::obs
{

/** Which pillars to collect, and how much tracing memory to commit. */
struct ObsConfig
{
    bool trace = false;
    bool probes = false;
    std::size_t trace_capacity = TraceSink::kDefaultCapacity;

    bool any() const { return trace || probes; }
};

/** One run's observability state. */
class RunRecorder
{
  public:
    explicit RunRecorder(const ObsConfig &config);

    /** Trace sink for ICEB_TRACE sites, or null when tracing is off. */
    TraceSink *traceSink() { return trace_ ? &trace_sink_ : nullptr; }
    const TraceSink *traceSinkIfEnabled() const
    {
        return trace_ ? &trace_sink_ : nullptr;
    }

    /** Probe table, or null when probes are off. */
    ProbeTable *probeTable() { return probes_ ? &probe_table_ : nullptr; }
    const ProbeTable *probeTableIfEnabled() const
    {
        return probes_ ? &probe_table_ : nullptr;
    }

  private:
    bool trace_;
    bool probes_;
    TraceSink trace_sink_;
    ProbeTable probe_table_;
};

} // namespace iceb::obs

#endif // ICEB_OBS_RECORDER_HH
