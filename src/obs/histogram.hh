/**
 * @file
 * Log-bucketed latency histograms: the distributional pillar of the
 * obs layer. IceBreaker's claims are distributional (cold-start
 * ratios, tail service times, keep-alive cost), so scalar probe rows
 * are not enough — this module records full latency distributions at
 * fixed memory cost.
 *
 * Design constraints (mirroring the trace/probe pillars):
 *
 *  - record() is allocation-free and branch-cheap: HDR-style
 *    log-linear bucketing (kSubBits sub-buckets per power of two)
 *    into a fixed std::array, so a hinted run with histograms enabled
 *    still performs zero steady-state allocations.
 *  - merge() is plain integer bucket addition — associative and
 *    commutative exactly, the same discipline as
 *    SimulationMetrics::merge() — so seed replicates and shard cells
 *    pool deterministically regardless of merge order.
 *  - Values are unsigned integers in a caller-chosen unit (simulated
 *    ms for latency series, wall-clock µs for the decision/forecast
 *    timers). Values 0..2^kSubBits-1 land in exact singleton buckets;
 *    above that the relative bucket width is 2^-kSubBits.
 */

#ifndef ICEB_OBS_HISTOGRAM_HH
#define ICEB_OBS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace iceb::obs
{

/** Fixed-footprint log-linear histogram of unsigned integer values. */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits buckets per octave. */
    static constexpr unsigned kSubBits = 3;
    static constexpr std::uint64_t kSubMask = (1ull << kSubBits) - 1;

    /**
     * Bucket count covering the full uint64 range: the top index is
     * bucketIndex(UINT64_MAX) = ((63 - kSubBits + 1) << kSubBits) +
     * kSubMask, so one past it is:
     */
    static constexpr std::size_t kNumBuckets =
        ((64 - kSubBits) << kSubBits) + (1u << kSubBits); // 496

    /** Bucket index of @p v (total order, no gaps, no overlaps). */
    static std::size_t bucketIndex(std::uint64_t v) noexcept
    {
        if (v < (1ull << kSubBits))
            return static_cast<std::size_t>(v);
        const unsigned e = 63u - countLeadingZeros(v);
        const std::uint64_t sub = (v >> (e - kSubBits)) & kSubMask;
        return ((static_cast<std::size_t>(e) - kSubBits + 1)
                << kSubBits) +
            static_cast<std::size_t>(sub);
    }

    /** Smallest value mapping to bucket @p i. */
    static std::uint64_t bucketLowerBound(std::size_t i) noexcept
    {
        if (i < (1u << kSubBits))
            return i;
        const std::size_t block = i >> kSubBits; // >= 1
        const std::uint64_t sub = i & kSubMask;
        return ((1ull << kSubBits) + sub)
            << (block - 1); // e = block + kSubBits - 1
    }

    /** Largest value mapping to bucket @p i. */
    static std::uint64_t bucketUpperBound(std::size_t i) noexcept
    {
        if (i < (1u << kSubBits))
            return i;
        const std::size_t block = i >> kSubBits;
        return bucketLowerBound(i) + (1ull << (block - 1)) - 1;
    }

    /** Record one value. Never allocates. */
    void record(std::uint64_t v) noexcept
    {
        ++counts_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    /** Values recorded. */
    std::uint64_t count() const noexcept { return count_; }

    /** Sum of recorded values (overflow-unchecked, like metrics). */
    std::uint64_t sum() const noexcept { return sum_; }

    /** Exact maximum recorded value (0 when empty). */
    std::uint64_t max() const noexcept { return max_; }

    /** Occupancy of bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const noexcept
    {
        return counts_[i];
    }

    /**
     * Upper bound of the bucket holding the q-quantile (0 < q <= 1),
     * clamped to max() so quantile(1.0) is exact. 0 when empty.
     */
    std::uint64_t quantile(double q) const noexcept;

    /** Pool @p other in: exact integer addition, order-independent. */
    void merge(const LatencyHistogram &other) noexcept;

  private:
    static unsigned countLeadingZeros(std::uint64_t v) noexcept
    {
#if defined(__GNUC__) || defined(__clang__)
        return static_cast<unsigned>(__builtin_clzll(v));
#else
        unsigned n = 0;
        for (std::uint64_t bit = 1ull << 63; bit != 0 && !(v & bit);
             bit >>= 1)
            ++n;
        return n;
#endif
    }

    std::array<std::uint64_t, kNumBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * The fixed family of per-run histograms. Latency series are per tier
 * in simulated milliseconds; the decision/forecast timers are
 * wall-clock microseconds around the policy's interval hooks and are
 * only populated when `wall_timing` is on (wall time is inherently
 * non-deterministic, so deterministic exports keep it off — the
 * exporters skip empty histograms, preserving byte-identity).
 */
struct HistogramSet
{
    std::array<LatencyHistogram, kNumTiers> cold_start_ms;
    std::array<LatencyHistogram, kNumTiers> setup_attach_ms;
    std::array<LatencyHistogram, kNumTiers> wait_queue_ms;
    LatencyHistogram decision_wall_us;
    LatencyHistogram forecast_wall_us;

    /** Measure wall time around interval hooks (non-deterministic). */
    bool wall_timing = false;

    /** Pool @p other in (bucket addition; wall_timing untouched). */
    void merge(const HistogramSet &other) noexcept;

    /** Any values recorded at all? */
    bool empty() const noexcept;
};

/** One named member of a HistogramSet (export enumeration order). */
struct NamedHistogram
{
    const char *series = "";          //!< e.g. "cold_start_ms"
    const char *tier = "";            //!< tier name, "" for wall timers
    const LatencyHistogram *hist = nullptr;
};

/** Fixed-order view of every histogram in @p set. */
std::vector<NamedHistogram> namedHistograms(const HistogramSet &set);

/** One run's histograms, labelled for export. */
struct HistogramRun
{
    std::string run;                        //!< display name
    const HistogramSet *set = nullptr;      //!< may be null
};

/**
 * Tidy CSV: header `run,series,tier,bucket_lo,bucket_hi,count`, one
 * row per occupied bucket, runs in order, series in namedHistograms
 * order. Empty histograms contribute no rows, so default
 * (deterministic) runs produce byte-identical files for every
 * shards × threads combination.
 */
void writeHistogramCsv(std::ostream &out,
                       const std::vector<HistogramRun> &runs);

} // namespace iceb::obs

#endif // ICEB_OBS_HISTOGRAM_HH
