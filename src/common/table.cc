#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace iceb
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{std::move(row), false});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << "%";
    return oss.str();
}

void
TextTable::print(std::ostream &out) const
{
    std::size_t columns = header_.size();
    for (const auto &row : rows_)
        columns = std::max(columns, row.cells.size());
    if (columns == 0)
        return;

    std::vector<std::size_t> widths(columns, 0);
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = std::max(widths[i], header_[i].size());
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.cells.size(); ++i)
            widths[i] = std::max(widths[i], row.cells[i].size());

    auto print_cells = [&](const std::vector<std::string> &cells) {
        out << "|";
        for (std::size_t i = 0; i < columns; ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : std::string();
            out << ' ' << cell
                << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        out << '\n';
    };
    auto print_rule = [&]() {
        out << "+";
        for (std::size_t i = 0; i < columns; ++i)
            out << std::string(widths[i] + 2, '-') << "+";
        out << '\n';
    };

    if (!title_.empty())
        out << title_ << '\n';
    print_rule();
    if (!header_.empty()) {
        print_cells(header_);
        print_rule();
    }
    for (const auto &row : rows_) {
        if (row.is_rule)
            print_rule();
        else
            print_cells(row.cells);
    }
    print_rule();
}

} // namespace iceb
