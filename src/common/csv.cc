#include "common/csv.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace iceb
{

CsvReader::CsvReader(std::istream &in, char delimiter)
    : in_(in), delimiter_(delimiter)
{
}

std::optional<CsvRow>
CsvReader::nextRow()
{
    std::string line;
    if (!std::getline(in_, line))
        return std::nullopt;
    // Tolerate CRLF input.
    if (!line.empty() && line.back() == '\r')
        line.pop_back();

    CsvRow row;
    std::string field;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == delimiter_) {
            row.push_back(std::move(field));
            field.clear();
        } else {
            field.push_back(c);
        }
    }
    row.push_back(std::move(field));
    ++rows_read_;
    return row;
}

CsvWriter::CsvWriter(std::ostream &out, char delimiter)
    : out_(out), delimiter_(delimiter)
{
}

std::string
CsvWriter::escape(const std::string &field) const
{
    const bool needs_quotes =
        field.find(delimiter_) != std::string::npos ||
        field.find('"') != std::string::npos ||
        field.find('\n') != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
CsvWriter::writeRow(const CsvRow &row)
{
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0)
            out_ << delimiter_;
        out_ << escape(row[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &row)
{
    CsvRow text;
    text.reserve(row.size());
    for (double value : row) {
        std::ostringstream oss;
        oss.precision(17);
        oss << value;
        text.push_back(oss.str());
    }
    writeRow(text);
}

double
csvToDouble(const std::string &field, const char *context)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || errno == ERANGE)
        fatal("malformed numeric CSV field '", field, "' in ", context);
    return value;
}

std::int64_t
csvToInt(const std::string &field, const char *context)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str() || errno == ERANGE)
        fatal("malformed integer CSV field '", field, "' in ", context);
    return static_cast<std::int64_t>(value);
}

} // namespace iceb
