#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace iceb
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // Two SplitMix64 rounds over a golden-ratio-spread combination;
    // adjacent streams land in unrelated regions of the seed space.
    std::uint64_t mixer = base ^ (0x9E3779B97F4A7C15ull * (stream + 1));
    splitMix64(mixer);
    return splitMix64(mixer);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    ICEB_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::int64_t
Rng::poisson(double mean)
{
    ICEB_ASSERT(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        const double threshold = std::exp(-mean);
        std::int64_t count = 0;
        double product = uniform();
        while (product > threshold) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Gaussian approximation with continuity correction for large means.
    const double draw = gaussian(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

double
Rng::exponential(double lambda)
{
    ICEB_ASSERT(lambda > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream_id)
{
    // Mix the parent's stream with the child id through SplitMix64 so
    // child streams are decorrelated from the parent and each other.
    std::uint64_t mixer = next() ^ (0x9E3779B97F4A7C15ull * (stream_id + 1));
    return Rng(splitMix64(mixer));
}

} // namespace iceb
