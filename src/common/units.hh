/**
 * @file
 * Unit conversion helpers and the cost model used for keep-alive
 * accounting.
 *
 * The paper quotes tier prices in $/GB/hour (AWS m5n vs t4g). The
 * simulator integrates keep-alive cost as memory-megabytes multiplied
 * by idle-warm milliseconds, so the canonical internal rate unit is
 * $/(MB*ms).
 */

#ifndef ICEB_COMMON_UNITS_HH
#define ICEB_COMMON_UNITS_HH

#include "common/types.hh"

namespace iceb
{

/** Milliseconds per second. */
inline constexpr TimeMs kMsPerSecond = 1000;

/** Milliseconds per minute. */
inline constexpr TimeMs kMsPerMinute = 60 * kMsPerSecond;

/** Milliseconds per hour. */
inline constexpr TimeMs kMsPerHour = 60 * kMsPerMinute;

/** Megabytes per gigabyte. */
inline constexpr MemoryMb kMbPerGb = 1024;

/** Convert seconds (possibly fractional) to integer milliseconds. */
inline constexpr TimeMs
secondsToMs(double seconds)
{
    return static_cast<TimeMs>(seconds * kMsPerSecond + 0.5);
}

/** Convert integer milliseconds to fractional seconds. */
inline constexpr double
msToSeconds(TimeMs ms)
{
    return static_cast<double>(ms) / kMsPerSecond;
}

/** Convert minutes to milliseconds. */
inline constexpr TimeMs
minutesToMs(double minutes)
{
    return static_cast<TimeMs>(minutes * kMsPerMinute + 0.5);
}

/** Convert gigabytes to megabytes. */
inline constexpr MemoryMb
gbToMb(double gb)
{
    return static_cast<MemoryMb>(gb * kMbPerGb + 0.5);
}

/**
 * Convert a $/GB/hour price (how AWS quotes memory cost) into the
 * internal $/(MB*ms) rate used by the keep-alive cost integrator.
 */
inline constexpr double
dollarsPerGbHourToMbMs(double dollars_per_gb_hour)
{
    return dollars_per_gb_hour / kMbPerGb /
        static_cast<double>(kMsPerHour);
}

/**
 * Keep-alive cost of holding @p mb megabytes warm for @p ms
 * milliseconds at @p rate_mb_ms dollars per MB-millisecond.
 */
inline constexpr Dollars
keepAliveCost(MemoryMb mb, TimeMs ms, double rate_mb_ms)
{
    return static_cast<double>(mb) * static_cast<double>(ms) * rate_mb_ms;
}

} // namespace iceb

#endif // ICEB_COMMON_UNITS_HH
