#include "common/logging.hh"

#include <atomic>

namespace iceb
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Warn};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail
{

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::cout << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace iceb
