#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <cstring>
#include <mutex>

namespace iceb
{

namespace
{

/**
 * Parse ICEB_LOG_LEVEL: symbolic names (silent / warn / inform or
 * info / debug, case-insensitive) or the numeric levels 0-3. Returns
 * the default on unset or unparsable values -- a bad env var must
 * never abort a run, it just logs at the default level.
 */
LogLevel
levelFromEnv(LogLevel fallback)
{
    const char *text = std::getenv("ICEB_LOG_LEVEL");
    if (text == nullptr || *text == '\0')
        return fallback;

    std::string name(text);
    for (char &c : name)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    if (name == "silent" || name == "0")
        return LogLevel::Silent;
    if (name == "warn" || name == "warning" || name == "1")
        return LogLevel::Warn;
    if (name == "inform" || name == "info" || name == "2")
        return LogLevel::Inform;
    if (name == "debug" || name == "3")
        return LogLevel::Debug;
    return fallback;
}

std::atomic<LogLevel> g_level{levelFromEnv(LogLevel::Warn)};

/**
 * Serialises emission so concurrent runner workers never interleave
 * characters of two messages. Each *Impl composes the full line first
 * and performs a single guarded ostream write.
 */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

void
emit(std::ostream &os, const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 1);
    line += prefix;
    line += msg;
    line += '\n';
    const std::lock_guard<std::mutex> lock(emitMutex());
    os << line << std::flush;
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail
{

void
fatalImpl(const std::string &msg)
{
    emit(std::cerr, "fatal: ", msg);
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    emit(std::cerr, "panic: ", msg);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emit(std::cerr, "warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        emit(std::cout, "info: ", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        emit(std::cout, "debug: ", msg);
}

} // namespace detail

} // namespace iceb
