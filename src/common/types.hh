/**
 * @file
 * Fundamental scalar types shared by every IceBreaker subsystem.
 *
 * The simulator advances in integer milliseconds; policy decisions are
 * taken on fixed one-minute interval boundaries. Both clocks are given
 * distinct types so the compiler catches unit confusion.
 */

#ifndef ICEB_COMMON_TYPES_HH
#define ICEB_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace iceb
{

/** Simulation wall-clock time in milliseconds since simulation start. */
using TimeMs = std::int64_t;

/** Index of a fixed-width decision interval (one minute by default). */
using IntervalIndex = std::int64_t;

/** Dense identifier of a serverless function within a trace. */
using FunctionId = std::uint32_t;

/** Dense identifier of a server node within a cluster. */
using ServerId = std::uint32_t;

/** Dense identifier of a container instance within the simulation. */
using ContainerId = std::uint64_t;

/** Memory sizes are tracked in whole megabytes. */
using MemoryMb = std::int64_t;

/** Monetary cost in dollars. */
using Dollars = double;

/** Sentinel for "no such function". */
inline constexpr FunctionId kInvalidFunction =
    std::numeric_limits<FunctionId>::max();

/** Sentinel for "no such server". */
inline constexpr ServerId kInvalidServer =
    std::numeric_limits<ServerId>::max();

/** Sentinel for "never" / unset timestamps. */
inline constexpr TimeMs kTimeNever = std::numeric_limits<TimeMs>::max();

/**
 * Server performance tier. The paper's heterogeneity is exactly two
 * tiers: high-end (fast, expensive) and low-end (slow, cheap).
 */
enum class Tier : std::uint8_t
{
    HighEnd = 0,
    LowEnd = 1,
};

/** Number of distinct tiers (used for per-tier metric arrays). */
inline constexpr int kNumTiers = 2;

/** Map a tier to a compact array index. */
inline constexpr int
tierIndex(Tier tier)
{
    return static_cast<int>(tier);
}

/** Opposite tier (used by the PDM spill-over search). */
inline constexpr Tier
otherTier(Tier tier)
{
    return tier == Tier::HighEnd ? Tier::LowEnd : Tier::HighEnd;
}

/** Human-readable tier name for reports. */
inline constexpr const char *
tierName(Tier tier)
{
    return tier == Tier::HighEnd ? "high-end" : "low-end";
}

} // namespace iceb

#endif // ICEB_COMMON_TYPES_HH
