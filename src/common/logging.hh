/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * fatal() terminates on user error (bad configuration, invalid
 * arguments); panic() aborts on internal invariant violations;
 * inform()/warn() report status without stopping.
 */

#ifndef ICEB_COMMON_LOGGING_HH
#define ICEB_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace iceb
{

/** Verbosity threshold; messages below it are suppressed. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Process-wide log level (defaults to Warn to keep bench output clean). */
LogLevel logLevel();

/** Change the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail
{

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Terminate because of a user-correctable error (bad config, bad
 * arguments). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort because an internal invariant was violated -- a bug in this
 * library, never the user's fault.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Verbose diagnostic output, off by default. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define ICEB_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::iceb::panic("assertion failed: ", #cond, " ",             \
                          ##__VA_ARGS__);                               \
        }                                                               \
    } while (0)

} // namespace iceb

#endif // ICEB_COMMON_LOGGING_HH
