/**
 * @file
 * Minimal CSV reading/writing used by the Azure trace loader and by
 * bench binaries that dump series for external plotting.
 *
 * Supports RFC-4180-style quoting on read (quoted fields, escaped
 * quotes) which is sufficient for the Azure Functions trace schema.
 */

#ifndef ICEB_COMMON_CSV_HH
#define ICEB_COMMON_CSV_HH

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace iceb
{

/** One parsed CSV record. */
using CsvRow = std::vector<std::string>;

/**
 * Incremental CSV reader over any std::istream.
 */
class CsvReader
{
  public:
    /** Wrap a stream; the stream must outlive the reader. */
    explicit CsvReader(std::istream &in, char delimiter = ',');

    /** Read the next record, or nullopt at end of input. */
    std::optional<CsvRow> nextRow();

    /** Number of records returned so far. */
    std::size_t rowsRead() const { return rows_read_; }

  private:
    std::istream &in_;
    char delimiter_;
    std::size_t rows_read_ = 0;
};

/**
 * CSV writer that quotes fields only when necessary.
 */
class CsvWriter
{
  public:
    /** Wrap a stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out, char delimiter = ',');

    /** Write one record. */
    void writeRow(const CsvRow &row);

    /** Convenience: write a row of doubles with full precision. */
    void writeNumericRow(const std::vector<double> &row);

  private:
    std::string escape(const std::string &field) const;

    std::ostream &out_;
    char delimiter_;
};

/** Parse a CSV field as double; fatal() on malformed input. */
double csvToDouble(const std::string &field, const char *context);

/** Parse a CSV field as int64; fatal() on malformed input. */
std::int64_t csvToInt(const std::string &field, const char *context);

} // namespace iceb

#endif // ICEB_COMMON_CSV_HH
