/**
 * @file
 * Aligned ASCII table printer.
 *
 * Every bench binary reports its reproduced paper table/figure through
 * this printer so all outputs share one format.
 */

#ifndef ICEB_COMMON_TABLE_HH
#define ICEB_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace iceb
{

/**
 * Collects rows of string cells and renders them with per-column
 * alignment and a header rule.
 */
class TextTable
{
  public:
    /** Construct with an optional title printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addRule();

    /** Format a double with the given precision (helper for callers). */
    static std::string num(double value, int precision = 2);

    /** Format a percentage such as "45.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table. */
    void print(std::ostream &out) const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_rule = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace iceb

#endif // ICEB_COMMON_TABLE_HH
