/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every experiment takes an explicit 64-bit seed so each table and
 * figure regenerates bit-identically. The core generator is
 * xoshiro256** seeded through SplitMix64, both implemented here so the
 * library has no dependence on the (implementation-defined)
 * distributions of <random>.
 */

#ifndef ICEB_COMMON_RNG_HH
#define ICEB_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace iceb
{

/**
 * SplitMix64 step; used to expand a single seed into the xoshiro state
 * and to derive independent child seeds.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Derive an independent 64-bit seed from a (base, stream) pair.
 *
 * Used to give every run of an experiment grid its own decorrelated
 * RNG stream from one user-facing base seed: run i of a repeated
 * experiment seeds its simulator with deriveSeed(base, i). The
 * mapping is pure, so a run's stream depends only on (base, stream)
 * and never on which thread executes it or in what order.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/**
 * xoshiro256** generator with convenience distributions. All
 * distributions are implemented from first principles so results are
 * stable across standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x1CEB0001u);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second variate). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Poisson-distributed count with the given mean (Knuth / PTRS). */
    std::int64_t poisson(double mean);

    /** Exponential with the given rate parameter lambda (> 0). */
    double exponential(double lambda);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator; children with different
     * stream ids never correlate with the parent or each other.
     */
    Rng fork(std::uint64_t stream_id);

  private:
    std::array<std::uint64_t, 4> state_;
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace iceb

#endif // ICEB_COMMON_RNG_HH
