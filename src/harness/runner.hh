/**
 * @file
 * The parallel experiment engine.
 *
 * An ExperimentRunner executes a declarative grid of RunSpecs —
 * (scheme × seed replicate × sweep point) — on a fixed-size thread
 * pool and returns results in grid order regardless of completion
 * order.
 *
 * Determinism contract: a run's output depends only on its RunSpec.
 * Each run owns its entire mutable state (Simulator, ClusterState,
 * MetricsCollector, a fresh registry-built policy) and seeds its RNG
 * stream purely from (base_seed, run_index) via
 * SimulatorOptions::forRun, so `threads = 1` and `threads = N`
 * produce bit-identical result vectors. Shared inputs (the Workload,
 * cluster configs) are read-only during execution.
 */

#ifndef ICEB_HARNESS_RUNNER_HH
#define ICEB_HARNESS_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sim/metrics_summary.hh"

namespace iceb::harness
{

struct ObservationOptions; // harness/observe.hh

/** Default base seed for repeated-seed experiment grids. */
inline constexpr std::uint64_t kDefaultBaseSeed = 0x51AB'1CEBull;

/** One cell-run of an experiment grid; fully describes one simulation. */
struct RunSpec
{
    std::string scheme;                //!< registry name
    const Workload *workload = nullptr;//!< shared, read-only input
    sim::ClusterConfig cluster;
    std::uint64_t base_seed = kDefaultBaseSeed;
    std::uint32_t run_index = 0;       //!< seed-replicate index
    std::string label;                 //!< sweep-point tag for grouping

    /**
     * Worker threads inside each simulation (SimulatorOptions::shards):
     * 0 = classic single-shard engine, >= 1 = sharded engine. Results
     * of the sharded engine are identical for every value >= 1.
     */
    std::size_t shards = 0;

    /** Auto cell-count ceiling for the sharded engine
     * (SimulatorOptions::max_cells; 0 = built-in default). */
    std::size_t max_cells = 0;
};

/** One run's outcome, paired with the spec that produced it. */
struct RunResult
{
    RunSpec spec;
    sim::SimulationMetrics metrics;
};

/**
 * Fixed-size thread-pool executor for RunSpec grids.
 */
class ExperimentRunner
{
  public:
    /** @param threads Worker count; 0 means hardware concurrency. */
    explicit ExperimentRunner(std::size_t threads = 0);
    ~ExperimentRunner();

    ExperimentRunner(ExperimentRunner &&) noexcept;
    ExperimentRunner &operator=(ExperimentRunner &&) noexcept;

    /** Resolved worker count. */
    std::size_t threads() const { return threads_; }

    /**
     * Collect and export observability output (traces / probes /
     * manifests) for every subsequent run() call. Each run gets its
     * own RunRecorder and files are written in grid order after the
     * pool joins, so output is byte-identical across thread counts.
     */
    void setObservation(const ObservationOptions &options);

    /**
     * Execute every spec (concurrently up to threads()) and return
     * results in grid order. Specs are validated (known scheme,
     * non-null workload) before any thread starts.
     */
    std::vector<RunResult> run(const std::vector<RunSpec> &grid) const;

  private:
    std::size_t threads_ = 1;
    std::unique_ptr<ObservationOptions> observation_;
};

/** One sweep point: a labelled cluster configuration. */
struct SweepPoint
{
    std::string label;
    sim::ClusterConfig cluster;
};

/**
 * Build the standard cartesian grid in deterministic order:
 * sweep-point-major, then scheme, then seed replicate. Replicate r of
 * every cell uses run_index r, so adding repeats refines — never
 * reshuffles — the seeds of existing runs.
 */
std::vector<RunSpec>
buildGrid(const std::vector<std::string> &schemes,
          const Workload &workload,
          const std::vector<SweepPoint> &points,
          std::uint64_t base_seed = kDefaultBaseSeed,
          std::size_t repeats = 1);

/** One (sweep point, scheme) cell folded over its seed replicates. */
struct CellSummary
{
    std::string label;
    std::string scheme;
    sim::MetricsSummary summary;
};

/**
 * Group grid-ordered results back into (label, scheme) cells,
 * aggregating seed replicates via summarizeRuns. Consecutive results
 * with equal (label, scheme) form one cell, matching buildGrid's
 * layout.
 */
std::vector<CellSummary>
summarizeGrid(const std::vector<RunResult> &results);

/** Options for the scheme-comparison convenience entry point. */
struct RunnerOptions
{
    std::size_t threads = 0; //!< 0 = hardware concurrency
    std::size_t repeats = 1; //!< seed replicates per cell
    std::uint64_t base_seed = kDefaultBaseSeed;

    /** Intra-run worker threads (RunSpec::shards; 0 = classic engine). */
    std::size_t shards = 0;

    /** Auto cell-count ceiling (RunSpec::max_cells; 0 = default). */
    std::size_t max_cells = 0;

    /** Observability destinations (borrowed; null = off). */
    const ObservationOptions *observation = nullptr;
};

/** One scheme's replicate-aggregated result. */
struct SchemeSummary
{
    Scheme scheme = Scheme::OpenWhisk;
    sim::MetricsSummary summary;
};

/**
 * The five-scheme comparison (the Fig. 6 setup) through the parallel
 * runner: every scheme on the same workload/cluster, repeats-many
 * seed replicates each, ordered as allSchemes().
 */
std::vector<SchemeSummary>
runAllSchemesParallel(const Workload &workload,
                      const sim::ClusterConfig &cluster,
                      const RunnerOptions &options = {});

} // namespace iceb::harness

#endif // ICEB_HARNESS_RUNNER_HH
