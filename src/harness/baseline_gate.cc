#include "harness/baseline_gate.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace iceb::harness
{

namespace
{

std::string
formatted(const char *format, double a, double b, double c)
{
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), format, a, b, c);
    return buffer;
}

} // namespace

GateResult
gateRatio(const std::string &metric, double measured, double baseline,
          double tolerance)
{
    const double floor = baseline * (1.0 - tolerance);
    GateResult result;
    result.ok = measured >= floor;
    result.message = "[" + metric + "] " +
        (result.ok
             ? formatted("measured %.5f meets floor %.5f "
                         "(baseline %.5f)",
                         measured, floor, baseline)
             : formatted("measured %.5f fell below floor %.5f "
                         "(baseline %.5f)",
                         measured, floor, baseline));
    return result;
}

GateResult
gateDigest(const std::string &metric, const std::string &measured,
           const std::string &committed)
{
    GateResult result;
    result.ok = measured == committed;
    result.message = "[" + metric + "] " +
        (result.ok ? "digest " + measured + " matches the baseline"
                   : "measured " + measured +
               " != committed " + committed);
    return result;
}

namespace
{

/** Position just past `"key":` (skipping whitespace), or npos. */
std::size_t
valueStart(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    std::size_t pos = text.find(quoted);
    if (pos == std::string::npos)
        return std::string::npos;
    pos += quoted.size();
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == ':')) {
        ++pos;
    }
    return pos;
}

} // namespace

std::optional<double>
findJsonNumber(const std::string &text, const std::string &key)
{
    const std::size_t pos = valueStart(text, key);
    if (pos == std::string::npos || pos >= text.size())
        return std::nullopt;
    char *end = nullptr;
    const double value = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos)
        return std::nullopt;
    return value;
}

std::optional<std::string>
findJsonString(const std::string &text, const std::string &key)
{
    const std::size_t pos = valueStart(text, key);
    if (pos == std::string::npos || pos >= text.size() ||
        text[pos] != '"') {
        return std::nullopt;
    }
    const std::size_t close = text.find('"', pos + 1);
    if (close == std::string::npos)
        return std::nullopt;
    return text.substr(pos + 1, close - pos - 1);
}

} // namespace iceb::harness
