#include "harness/report.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace iceb::harness
{

double
improvementOver(double baseline, double value)
{
    if (baseline == 0.0)
        return 0.0;
    return (baseline - value) / baseline;
}

ServiceSummary
summarizeService(const std::vector<float> &samples_ms)
{
    ServiceSummary out;
    if (samples_ms.empty())
        return out;
    std::vector<double> samples(samples_ms.begin(), samples_ms.end());
    out.mean_ms = math::mean(samples);
    out.median_ms = math::median(samples);
    out.p95_ms = math::percentile(samples, 0.95);
    return out;
}

ServiceSummary
summarizeService(const sim::SimulationMetrics &metrics)
{
    return summarizeService(metrics.service_times_ms);
}

std::vector<double>
perFunctionServiceImprovement(const sim::SimulationMetrics &baseline,
                              const sim::SimulationMetrics &test)
{
    ICEB_ASSERT(baseline.per_function.size() == test.per_function.size(),
                "runs cover different function sets");
    std::vector<double> out;
    out.reserve(baseline.per_function.size());
    for (std::size_t fn = 0; fn < baseline.per_function.size(); ++fn) {
        const auto &b = baseline.per_function[fn];
        const auto &t = test.per_function[fn];
        if (b.invocations == 0 || t.invocations == 0)
            continue;
        out.push_back(
            improvementOver(b.meanServiceMs(), t.meanServiceMs()));
    }
    return out;
}

std::vector<double>
perFunctionKeepAliveImprovement(const sim::SimulationMetrics &baseline,
                                const sim::SimulationMetrics &test)
{
    ICEB_ASSERT(baseline.per_function.size() == test.per_function.size(),
                "runs cover different function sets");
    std::vector<double> out;
    out.reserve(baseline.per_function.size());
    for (std::size_t fn = 0; fn < baseline.per_function.size(); ++fn) {
        const auto &b = baseline.per_function[fn];
        const auto &t = test.per_function[fn];
        if (b.keep_alive_cost <= 0.0)
            continue;
        out.push_back(
            improvementOver(b.keep_alive_cost, t.keep_alive_cost));
    }
    return out;
}

std::vector<double>
cohortImprovement(const sim::SimulationMetrics &baseline,
                  const sim::SimulationMetrics &test,
                  const std::vector<FunctionId> &cohort)
{
    std::vector<double> out;
    out.reserve(cohort.size());
    for (FunctionId fn : cohort) {
        const auto &b = baseline.per_function[fn];
        const auto &t = test.per_function[fn];
        if (b.invocations == 0 || t.invocations == 0)
            continue;
        out.push_back(
            improvementOver(b.meanServiceMs(), t.meanServiceMs()));
    }
    return out;
}

namespace
{

/**
 * Ids of the top @p fraction of functions ranked descending by
 * @p key (only functions with invocations participate).
 */
std::vector<FunctionId>
topFraction(const std::vector<std::pair<double, FunctionId>> &ranked,
            double fraction)
{
    const auto take = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(ranked.size())));
    std::vector<FunctionId> out;
    out.reserve(take);
    for (std::size_t i = 0; i < take && i < ranked.size(); ++i)
        out.push_back(ranked[i].second);
    return out;
}

} // namespace

Cohorts
buildCohorts(const trace::Trace &trace,
             const sim::SimulationMetrics &baseline, double fraction)
{
    Cohorts cohorts;
    std::vector<std::pair<double, FunctionId>> by_cold;
    std::vector<std::pair<double, FunctionId>> by_count;
    std::vector<std::pair<double, FunctionId>> by_spike;

    for (FunctionId fn = 0; fn < trace.numFunctions(); ++fn) {
        const auto &fm = baseline.per_function[fn];
        if (fm.invocations == 0)
            continue;
        const double mean_cold = fm.sum_cold_ms /
            static_cast<double>(fm.invocations);
        by_cold.emplace_back(mean_cold, fn);
        by_count.emplace_back(static_cast<double>(fm.invocations), fn);

        const auto &series = trace.function(fn).concurrency;
        double mean = 0.0;
        double peak = 0.0;
        for (std::uint32_t c : series) {
            mean += c;
            peak = std::max(peak, static_cast<double>(c));
        }
        mean /= static_cast<double>(series.size());
        by_spike.emplace_back(mean > 0.0 ? peak / mean : 0.0, fn);
    }

    auto desc = [](auto &v) {
        std::sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        });
    };
    desc(by_cold);
    desc(by_spike);
    desc(by_count);

    cohorts.hard_to_predict = topFraction(by_cold, fraction);
    cohorts.frequent = topFraction(by_count, fraction);
    cohorts.spiky = topFraction(by_spike, fraction);

    std::reverse(by_count.begin(), by_count.end());
    cohorts.infrequent = topFraction(by_count, fraction);
    return cohorts;
}

} // namespace iceb::harness
