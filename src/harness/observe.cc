#include "harness/observe.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/histogram.hh"
#include "obs/manifest.hh"
#include "obs/probes.hh"
#include "obs/trace_sink.hh"

namespace iceb::harness
{

std::string
runDisplayName(const RunSpec &spec)
{
    std::string name = spec.scheme;
    if (!spec.label.empty()) {
        name += ':';
        name += spec.label;
    }
    if (spec.run_index != 0) {
        name += '#';
        name += std::to_string(spec.run_index);
    }
    return name;
}

std::uint64_t
digestClusterConfig(const sim::ClusterConfig &config)
{
    obs::Digest digest;
    digest.addString(config.name);
    for (const sim::TierSpec &tier : config.tiers) {
        digest.addU64(static_cast<std::uint64_t>(tier.tier));
        digest.addU64(tier.server_count);
        digest.addI64(tier.memory_per_server_mb);
        digest.addDouble(tier.dollars_per_gb_hour);
        digest.addDouble(tier.capital_cost);
    }
    return digest.value();
}

std::uint64_t
digestMetrics(const sim::SimulationMetrics &m)
{
    obs::Digest digest;
    digest.addU64(m.invocations);
    digest.addU64(m.cold_starts);
    digest.addU64(m.warm_starts);
    digest.addU64(m.cold_no_container);
    digest.addU64(m.cold_all_busy);
    digest.addU64(m.cold_setup_attach);
    digest.addDouble(m.sum_service_ms);
    digest.addDouble(m.sum_wait_ms);
    digest.addDouble(m.sum_cold_ms);
    digest.addDouble(m.sum_exec_ms);
    digest.addDouble(m.sum_overhead_ms);
    for (const auto *samples :
         {&m.service_times_ms, &m.service_times_high_ms,
          &m.service_times_low_ms}) {
        digest.addU64(samples->size());
        for (float sample : *samples)
            digest.addDouble(static_cast<double>(sample));
    }
    for (const sim::FunctionMetrics &fm : m.per_function) {
        digest.addU64(fm.invocations);
        digest.addU64(fm.cold_starts);
        digest.addU64(fm.warm_starts);
        digest.addDouble(fm.sum_service_ms);
        digest.addDouble(fm.sum_wait_ms);
        digest.addDouble(fm.sum_cold_ms);
        digest.addDouble(fm.sum_exec_ms);
        digest.addDouble(fm.keep_alive_cost);
    }
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        digest.addDouble(m.keep_alive[t].successful_cost);
        digest.addDouble(m.keep_alive[t].wasteful_cost);
        digest.addDouble(m.keep_alive[t].wasted_mb_ms);
    }
    return digest.value();
}

namespace
{

std::ofstream
openOrDie(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open observability output '", path, "'");
    return out;
}

obs::RunManifest
buildManifest(std::size_t index, const RunResult &result,
              const obs::RunRecorder *recorder)
{
    const RunSpec &spec = result.spec;
    const sim::SimulationMetrics &m = result.metrics;

    obs::RunManifest manifest;
    manifest.run_index = static_cast<std::uint32_t>(index);
    manifest.scheme = spec.scheme;
    manifest.label = spec.label;
    manifest.replicate = spec.run_index;
    manifest.base_seed = spec.base_seed;
    manifest.derived_seed = deriveSeed(spec.base_seed, spec.run_index);
    manifest.cluster = spec.cluster.name;
    manifest.config_digest = digestClusterConfig(spec.cluster);

    const trace::Trace &tr = spec.workload->trace;
    manifest.workload_functions = tr.numFunctions();
    manifest.workload_intervals = tr.numIntervals();
    std::uint64_t invocations = 0;
    for (FunctionId fn = 0; fn < tr.numFunctions(); ++fn)
        invocations += tr.function(fn).totalInvocations();
    manifest.workload_invocations = invocations;

    manifest.metrics = {
        {"invocations", static_cast<double>(m.invocations)},
        {"cold_starts", static_cast<double>(m.cold_starts)},
        {"warm_starts", static_cast<double>(m.warm_starts)},
        {"cold_no_container", static_cast<double>(m.cold_no_container)},
        {"cold_all_busy", static_cast<double>(m.cold_all_busy)},
        {"cold_setup_attach",
         static_cast<double>(m.cold_setup_attach)},
        {"mean_service_ms", m.meanServiceMs()},
        {"mean_cold_ms", m.meanColdMs()},
        {"warm_start_fraction", m.warmStartFraction()},
        {"keep_alive_cost_high",
         m.tierKeepAlive(Tier::HighEnd).totalCost()},
        {"keep_alive_cost_low",
         m.tierKeepAlive(Tier::LowEnd).totalCost()},
        {"total_keep_alive_cost", m.totalKeepAliveCost()},
    };
    manifest.metrics_digest = digestMetrics(m);

    if (recorder != nullptr) {
        if (const obs::TraceSink *sink = recorder->traceSinkIfEnabled()) {
            manifest.trace_recorded = sink->recorded();
            manifest.trace_dropped = sink->dropped();
            for (const auto &cell : recorder->cellTraceSinks()) {
                manifest.trace_recorded += cell->recorded();
                manifest.trace_dropped += cell->dropped();
            }
        }
        if (const obs::ProbeTable *probes =
                recorder->probeTableIfEnabled()) {
            manifest.probe_samples = probes->intervalSampleCount() +
                probes->forecastSampleCount();
        }
        if (const obs::HistogramSet *hists =
                recorder->histogramsIfEnabled()) {
            // Non-empty series only: wall timers stay out of
            // deterministic manifests unless wall timing was on.
            for (const obs::NamedHistogram &named :
                 obs::namedHistograms(*hists)) {
                const obs::LatencyHistogram &h = *named.hist;
                if (h.count() == 0)
                    continue;
                obs::HistogramDigest digest;
                digest.name = named.series;
                if (named.tier[0] != '\0') {
                    digest.name += '/';
                    digest.name += named.tier;
                }
                digest.count = h.count();
                digest.p50 = h.quantile(0.5);
                digest.p95 = h.quantile(0.95);
                digest.p99 = h.quantile(0.99);
                digest.max = h.max();
                manifest.histograms.push_back(std::move(digest));
            }
        }
    }
    return manifest;
}

} // namespace

void
writeObservations(
    const ObservationOptions &options,
    const std::vector<RunResult> &results,
    const std::vector<std::unique_ptr<obs::RunRecorder>> &recorders)
{
    ICEB_ASSERT(recorders.size() == results.size(),
                "recorder/result vectors must be parallel");

    if (!options.trace_path.empty()) {
        std::vector<obs::TraceRun> runs;
        runs.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            obs::TraceRun run;
            run.name = runDisplayName(results[i].spec);
            if (recorders[i] != nullptr) {
                run.trace = recorders[i]->traceSinkIfEnabled();
                run.probes = recorders[i]->probeTableIfEnabled();
                for (const auto &cell : recorders[i]->cellTraceSinks())
                    run.cells.push_back(cell.get());
            }
            runs.push_back(std::move(run));
        }
        std::ofstream out = openOrDie(options.trace_path);
        obs::writeChromeTrace(out, runs);
    }

    if (!options.probe_path.empty()) {
        std::vector<obs::ProbeRun> runs;
        runs.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            obs::ProbeRun run;
            run.run = runDisplayName(results[i].spec);
            if (recorders[i] != nullptr)
                run.probes = recorders[i]->probeTableIfEnabled();
            runs.push_back(std::move(run));
        }
        std::ofstream out = openOrDie(options.probe_path);
        obs::writeProbeCsv(out, runs);
    }

    if (!options.hist_path.empty()) {
        std::vector<obs::HistogramRun> runs;
        runs.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            obs::HistogramRun run;
            run.run = runDisplayName(results[i].spec);
            if (recorders[i] != nullptr)
                run.set = recorders[i]->histogramsIfEnabled();
            runs.push_back(std::move(run));
        }
        std::ofstream out = openOrDie(options.hist_path);
        obs::writeHistogramCsv(out, runs);
    }

    if (!options.manifest_path.empty()) {
        std::ofstream out = openOrDie(options.manifest_path);
        for (std::size_t i = 0; i < results.size(); ++i) {
            obs::writeManifestLine(
                out, buildManifest(i, results[i], recorders[i].get()));
        }
    }
}

} // namespace iceb::harness
