/**
 * @file
 * Scheme-name -> policy-factory registry.
 *
 * Replaces the old hard-coded makePolicy switch: every warm-up scheme
 * (built-in or user-defined) registers a factory under a stable
 * string key, and the experiment runner instantiates a fresh policy
 * per run through it. Factories capture their configuration by value,
 * so one registered name always produces identically-configured
 * policies — the property the determinism contract relies on — and
 * may be invoked concurrently from runner worker threads.
 *
 * The five paper schemes are registered up front ("openwhisk",
 * "wild", "faascache", "icebreaker", "oracle"); ablation variants and
 * example policies add themselves at startup, usually through a
 * ScopedPolicyRegistration.
 */

#ifndef ICEB_HARNESS_REGISTRY_HH
#define ICEB_HARNESS_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/policy.hh"

namespace iceb::serve
{
class DecisionEngine;
} // namespace iceb::serve

namespace iceb::harness
{

/** Creates one fresh, identically-configured policy per call. */
using PolicyFactory = std::function<std::unique_ptr<sim::Policy>()>;

/**
 * Process-wide policy registry. All operations are thread-safe;
 * make() may be called concurrently from runner workers.
 */
class PolicyRegistry
{
  public:
    /** The process-wide instance, with built-ins pre-registered. */
    static PolicyRegistry &instance();

    /**
     * Register @p factory under @p name. Registering an existing name
     * is a user error unless @p replace is set.
     */
    void add(const std::string &name, PolicyFactory factory,
             bool replace = false);

    /** Remove a registered name (no-op for unknown names). */
    void remove(const std::string &name);

    /** Whether a name is registered. */
    bool contains(const std::string &name) const;

    /** Instantiate a fresh policy; fatal() on unknown names. */
    std::unique_ptr<sim::Policy> make(const std::string &name) const;

    /** All registered names in sorted order. */
    std::vector<std::string> names() const;

  private:
    PolicyRegistry(); //!< registers the built-in schemes

    mutable std::mutex mutex_;
    std::map<std::string, PolicyFactory> factories_;
};

/** Shorthand for PolicyRegistry::instance().make(name). */
std::unique_ptr<sim::Policy> makePolicyByName(const std::string &name);

/**
 * Instantiate a fresh scheme by name and wrap it in a serving-mode
 * DecisionEngine. The engine is itself a Policy, so the result can be
 * handed to a Simulator, registered as a scheme of its own (the
 * engine-wrapped runner-grid idiom), or driven standalone through the
 * serving façade. fatal()s on unknown names and on offline schemes
 * ("oracle"), which cannot cross the serving boundary.
 */
std::unique_ptr<serve::DecisionEngine>
makeDecisionEngineByName(const std::string &name);

/**
 * RAII registration: adds a scheme on construction, removes it on
 * destruction. The idiom for bench-local variants and examples.
 */
class ScopedPolicyRegistration
{
  public:
    ScopedPolicyRegistration(std::string name, PolicyFactory factory,
                             bool replace = false);
    ~ScopedPolicyRegistration();

    ScopedPolicyRegistration(const ScopedPolicyRegistration &) = delete;
    ScopedPolicyRegistration &
    operator=(const ScopedPolicyRegistration &) = delete;

  private:
    std::string name_;
};

} // namespace iceb::harness

#endif // ICEB_HARNESS_REGISTRY_HH
