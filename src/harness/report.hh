/**
 * @file
 * Reporting helpers shared by the bench binaries: improvement-over-
 * baseline math, service-time summaries, per-function improvement
 * CDFs and the paper's function cohorts (hard-to-predict, infrequent,
 * frequent, spiky).
 */

#ifndef ICEB_HARNESS_REPORT_HH
#define ICEB_HARNESS_REPORT_HH

#include <vector>

#include "math/stats.hh"
#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace iceb::harness
{

/**
 * Fractional improvement of @p value over @p baseline (0.40 = "40%
 * better than baseline"). Negative values mean degradation. Zero
 * baseline yields zero.
 */
double improvementOver(double baseline, double value);

/** Mean / median / 95th-percentile of a run's service times (ms). */
struct ServiceSummary
{
    double mean_ms = 0.0;
    double median_ms = 0.0;
    double p95_ms = 0.0;
};

/** Summarise all (or one tier's) service times of a run. */
ServiceSummary summarizeService(const std::vector<float> &samples_ms);

/** Summary over the run's full service-time sample. */
ServiceSummary summarizeService(const sim::SimulationMetrics &metrics);

/**
 * Per-function mean-service-time improvement of @p test over
 * @p baseline, for functions with invocations in both (Fig. 7/14).
 */
std::vector<double>
perFunctionServiceImprovement(const sim::SimulationMetrics &baseline,
                              const sim::SimulationMetrics &test);

/**
 * Per-function keep-alive cost improvement of @p test over
 * @p baseline (functions with nonzero baseline cost).
 */
std::vector<double>
perFunctionKeepAliveImprovement(const sim::SimulationMetrics &baseline,
                                const sim::SimulationMetrics &test);

/** Restrict a per-function improvement to a cohort of ids. */
std::vector<double>
cohortImprovement(const sim::SimulationMetrics &baseline,
                  const sim::SimulationMetrics &test,
                  const std::vector<FunctionId> &cohort);

/** The paper's evaluation cohorts (Sec. 5). */
struct Cohorts
{
    std::vector<FunctionId> hard_to_predict; //!< top 15% mean cold time
    std::vector<FunctionId> infrequent;      //!< bottom 15% invocations
    std::vector<FunctionId> frequent;        //!< top 15% invocations
    std::vector<FunctionId> spiky;           //!< top 15% concurrency spike
};

/**
 * Build the cohorts from the baseline run (hard-to-predict = highest
 * average cold-start time under the baseline, per the paper) and the
 * trace (invocation counts, spike ratios).
 */
Cohorts buildCohorts(const trace::Trace &trace,
                     const sim::SimulationMetrics &baseline,
                     double fraction = 0.15);

} // namespace iceb::harness

#endif // ICEB_HARNESS_REPORT_HH
