/**
 * @file
 * Named baseline gates for the bench binaries.
 *
 * A bench that gates against a committed baseline file has several
 * independent things to check (a speedup ratio, a determinism
 * digest, ...). A bare nonzero exit hides WHICH check tripped; these
 * helpers produce one GateResult per check whose message always leads
 * with the metric's name in brackets — "[speedup ratio]", "[metrics
 * digest]" — so a CI log names the failing metric on its FAIL line.
 *
 * Also here: the flat JSON scrapers the benches use to read fields
 * back out of the baseline files they themselves wrote. They perform
 * a plain string scan, which is exactly enough for that self-written,
 * non-nested-key format — not a general JSON parser.
 */

#ifndef ICEB_HARNESS_BASELINE_GATE_HH
#define ICEB_HARNESS_BASELINE_GATE_HH

#include <optional>
#include <string>

namespace iceb::harness
{

/** One named baseline check's outcome. */
struct GateResult
{
    bool ok = false;
    /** Human-readable verdict, leading with "[<metric>]". */
    std::string message;
};

/**
 * Gate a measured rate ratio against a committed baseline value:
 * passes while measured >= baseline * (1 - tolerance). The message
 * names the metric, the floor, and both values either way.
 */
GateResult gateRatio(const std::string &metric, double measured,
                     double baseline, double tolerance);

/**
 * Gate a determinism digest against the committed one: passes only on
 * exact string equality. The message names the metric and shows both
 * digests on mismatch.
 */
GateResult gateDigest(const std::string &metric,
                      const std::string &measured,
                      const std::string &committed);

/**
 * First number following `"key":` in @p text, or nullopt if the key
 * is absent or not followed by a number.
 */
std::optional<double> findJsonNumber(const std::string &text,
                                     const std::string &key);

/**
 * First string literal following `"key":` in @p text, or nullopt if
 * the key is absent or not followed by a quoted string. No escape
 * handling: the benches only write plain identifiers.
 */
std::optional<std::string> findJsonString(const std::string &text,
                                          const std::string &key);

} // namespace iceb::harness

#endif // ICEB_HARNESS_BASELINE_GATE_HH
