/**
 * @file
 * Grid-level observability: where trace/probe/manifest output goes,
 * and the export step that turns per-run recorders into files.
 *
 * Ownership/determinism contract: the ExperimentRunner creates one
 * RunRecorder per RunSpec before any worker starts; each worker only
 * touches its own run's recorder; export happens after the pool joins,
 * iterating the grid in spec order. Output files are therefore
 * byte-identical for `--threads 1` and `--threads N`.
 */

#ifndef ICEB_HARNESS_OBSERVE_HH
#define ICEB_HARNESS_OBSERVE_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "obs/recorder.hh"

namespace iceb::harness
{

/** Output destinations ("" = that pillar is off). */
struct ObservationOptions
{
    std::string trace_path;    //!< Chrome trace_event JSON
    std::string probe_path;    //!< tidy CSV time series
    std::string hist_path;     //!< tidy CSV latency histograms
    std::string manifest_path; //!< JSON-lines run manifests
    std::size_t trace_capacity = obs::TraceSink::kDefaultCapacity;

    bool enabled() const
    {
        return !trace_path.empty() || !probe_path.empty() ||
            !hist_path.empty() || !manifest_path.empty();
    }

    /** Per-run collection config implied by the destinations. */
    obs::ObsConfig runConfig() const
    {
        obs::ObsConfig config;
        config.trace = !trace_path.empty();
        // The Chrome export renders probe samples as counter tracks,
        // so a trace request implies probe collection too.
        config.probes = !probe_path.empty() || !trace_path.empty();
        // Manifests fold histogram digests in, so either destination
        // wants the pillar collected.
        config.histograms =
            !hist_path.empty() || !manifest_path.empty();
        config.trace_capacity = trace_capacity;
        return config;
    }
};

/** Display name of one run, used as trace process / probe run label. */
std::string runDisplayName(const RunSpec &spec);

/** FNV-1a digest over a cluster composition. */
std::uint64_t digestClusterConfig(const sim::ClusterConfig &config);

/** FNV-1a digest over every figure-visible metrics field. */
std::uint64_t digestMetrics(const sim::SimulationMetrics &metrics);

/**
 * Write the requested trace / probe / manifest files for a completed
 * grid. @p recorders is parallel to @p results (entries may be null
 * when observation was off for that run). fatal()s if a file cannot
 * be opened.
 */
void writeObservations(
    const ObservationOptions &options,
    const std::vector<RunResult> &results,
    const std::vector<std::unique_ptr<obs::RunRecorder>> &recorders);

} // namespace iceb::harness

#endif // ICEB_HARNESS_OBSERVE_HH
