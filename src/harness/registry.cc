#include "harness/registry.hh"

#include "common/logging.hh"
#include "core/icebreaker.hh"
#include "policies/faascache_policy.hh"
#include "policies/openwhisk_policy.hh"
#include "policies/oracle_policy.hh"
#include "policies/wild_policy.hh"
#include "serve/decision_engine.hh"

namespace iceb::harness
{

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

PolicyRegistry::PolicyRegistry()
{
    factories_["openwhisk"] = [] {
        return std::make_unique<policies::OpenWhiskPolicy>();
    };
    factories_["wild"] = [] {
        return std::make_unique<policies::WildPolicy>();
    };
    factories_["faascache"] = [] {
        return std::make_unique<policies::FaasCachePolicy>();
    };
    factories_["icebreaker"] = [] {
        return std::make_unique<core::IceBreakerPolicy>();
    };
    // IceBreaker with the batched FIP's fast arithmetic: forecasts
    // agree with "icebreaker" to <= 1e-9 but the forecasting pass
    // runs roughly 2x cheaper (see bench_fip --batch-functions).
    factories_["icebreaker-fastfip"] = [] {
        core::IceBreakerConfig config;
        config.fip_fast_batch = true;
        return std::make_unique<core::IceBreakerPolicy>(config);
    };
    factories_["oracle"] = [] {
        return std::make_unique<policies::OraclePolicy>();
    };
}

void
PolicyRegistry::add(const std::string &name, PolicyFactory factory,
                    bool replace)
{
    ICEB_ASSERT(factory != nullptr, "null policy factory");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!replace && factories_.count(name) != 0)
        fatal("policy '", name, "' is already registered");
    factories_[name] = std::move(factory);
}

void
PolicyRegistry::remove(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    factories_.erase(name);
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
}

std::unique_ptr<sim::Policy>
PolicyRegistry::make(const std::string &name) const
{
    PolicyFactory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = factories_.find(name);
        if (it == factories_.end())
            fatal("unknown policy '", name,
                  "' (register it with PolicyRegistry::add)");
        factory = it->second;
    }
    // Invoke outside the lock: factories may be arbitrarily expensive
    // and make() runs concurrently on runner workers.
    std::unique_ptr<sim::Policy> policy = factory();
    ICEB_ASSERT(policy != nullptr, "factory for '", name,
                "' returned null");
    return policy;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        names.push_back(name);
    return names;
}

std::unique_ptr<sim::Policy>
makePolicyByName(const std::string &name)
{
    return PolicyRegistry::instance().make(name);
}

std::unique_ptr<serve::DecisionEngine>
makeDecisionEngineByName(const std::string &name)
{
    return std::make_unique<serve::DecisionEngine>(
        makePolicyByName(name));
}

ScopedPolicyRegistration::ScopedPolicyRegistration(std::string name,
                                                   PolicyFactory factory,
                                                   bool replace)
    : name_(std::move(name))
{
    PolicyRegistry::instance().add(name_, std::move(factory), replace);
}

ScopedPolicyRegistration::~ScopedPolicyRegistration()
{
    PolicyRegistry::instance().remove(name_);
}

} // namespace iceb::harness
