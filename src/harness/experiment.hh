/**
 * @file
 * Experiment harness: binds a trace, profile set, cluster and policy
 * into one run and provides the standard five-scheme comparison that
 * most of the paper's figures are built from.
 */

#ifndef ICEB_HARNESS_EXPERIMENT_HH
#define ICEB_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/cluster_config.hh"
#include "sim/simulator.hh"
#include "trace/synthetic.hh"
#include "workload/profile_matcher.hh"

namespace iceb::harness
{

/** The five schemes evaluated throughout the paper. */
enum class Scheme
{
    OpenWhisk = 0, //!< baseline: static 10-minute keep-alive
    Wild,          //!< hybrid histogram (ATC'20)
    FaasCache,     //!< greedy-dual caching (ASPLOS'21)
    IceBreaker,    //!< this paper
    Oracle,        //!< offline upper bound
};

/** All schemes in report order. */
std::vector<Scheme> allSchemes();

/** Scheme display name. */
const char *schemeName(Scheme scheme);

/** Registry key of a built-in scheme ("openwhisk", "wild", ...). */
const char *schemeKey(Scheme scheme);

/**
 * Instantiate a fresh policy object for a scheme (through the
 * PolicyRegistry; see harness/registry.hh for custom schemes).
 */
std::unique_ptr<sim::Policy> makePolicy(Scheme scheme);

/** A reusable experiment input: trace + matched profiles. */
struct Workload
{
    trace::Trace trace;
    std::vector<workload::FunctionProfile> profiles;
};

/**
 * Generate the default synthetic workload and match benchmark
 * profiles to it (the Azure-trace + ServerlessBench substitution).
 */
Workload makeWorkload(const trace::SyntheticConfig &config = {});

/** One scheme's results. */
struct SchemeResult
{
    Scheme scheme = Scheme::OpenWhisk;
    sim::SimulationMetrics metrics;
};

/** Run a single scheme on a workload and cluster. */
SchemeResult runScheme(Scheme scheme, const Workload &workload,
                       const sim::ClusterConfig &cluster,
                       sim::SimulatorOptions options = {});

/**
 * Run every scheme on the same workload/cluster (the Fig. 6 setup).
 * Results are ordered as allSchemes().
 */
std::vector<SchemeResult>
runAllSchemes(const Workload &workload,
              const sim::ClusterConfig &cluster,
              sim::SimulatorOptions options = {});

} // namespace iceb::harness

#endif // ICEB_HARNESS_EXPERIMENT_HH
