#include "harness/experiment.hh"

#include "common/logging.hh"
#include "harness/registry.hh"

namespace iceb::harness
{

std::vector<Scheme>
allSchemes()
{
    return {Scheme::OpenWhisk, Scheme::Wild, Scheme::FaasCache,
            Scheme::IceBreaker, Scheme::Oracle};
}

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::OpenWhisk:
        return "OpenWhisk";
      case Scheme::Wild:
        return "Wild";
      case Scheme::FaasCache:
        return "FaasCache";
      case Scheme::IceBreaker:
        return "IceBreaker";
      case Scheme::Oracle:
        return "Oracle";
    }
    return "invalid";
}

const char *
schemeKey(Scheme scheme)
{
    switch (scheme) {
      case Scheme::OpenWhisk:
        return "openwhisk";
      case Scheme::Wild:
        return "wild";
      case Scheme::FaasCache:
        return "faascache";
      case Scheme::IceBreaker:
        return "icebreaker";
      case Scheme::Oracle:
        return "oracle";
    }
    panic("unknown scheme");
}

std::unique_ptr<sim::Policy>
makePolicy(Scheme scheme)
{
    return makePolicyByName(schemeKey(scheme));
}

Workload
makeWorkload(const trace::SyntheticConfig &config)
{
    Workload workload{trace::SyntheticTraceGenerator(config).generate(),
                      {}};
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::standard();
    const workload::ProfileMatcher matcher(suite);
    workload.profiles = matcher.profilesFor(workload.trace);
    return workload;
}

SchemeResult
runScheme(Scheme scheme, const Workload &workload,
          const sim::ClusterConfig &cluster, sim::SimulatorOptions options)
{
    std::unique_ptr<sim::Policy> policy = makePolicy(scheme);
    SchemeResult result;
    result.scheme = scheme;
    result.metrics = sim::runSimulation(workload.trace,
                                        workload.profiles, cluster,
                                        *policy, options);
    return result;
}

std::vector<SchemeResult>
runAllSchemes(const Workload &workload, const sim::ClusterConfig &cluster,
              sim::SimulatorOptions options)
{
    std::vector<SchemeResult> results;
    for (Scheme scheme : allSchemes())
        results.push_back(runScheme(scheme, workload, cluster, options));
    return results;
}

} // namespace iceb::harness
