#include "harness/runner.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"
#include "harness/observe.hh"
#include "harness/registry.hh"

namespace iceb::harness
{

ExperimentRunner::ExperimentRunner(std::size_t threads)
    : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

ExperimentRunner::~ExperimentRunner() = default;
ExperimentRunner::ExperimentRunner(ExperimentRunner &&) noexcept = default;
ExperimentRunner &
ExperimentRunner::operator=(ExperimentRunner &&) noexcept = default;

void
ExperimentRunner::setObservation(const ObservationOptions &options)
{
    observation_ = std::make_unique<ObservationOptions>(options);
}

std::vector<RunResult>
ExperimentRunner::run(const std::vector<RunSpec> &grid) const
{
    // Fail on malformed specs before any worker starts, so errors
    // surface as a clean fatal() on the calling thread.
    const PolicyRegistry &registry = PolicyRegistry::instance();
    for (const RunSpec &spec : grid) {
        if (spec.workload == nullptr)
            fatal("RunSpec '", spec.scheme, "' has no workload");
        if (!registry.contains(spec.scheme))
            fatal("RunSpec names unknown policy '", spec.scheme, "'");
    }

    std::vector<RunResult> results(grid.size());

    // One recorder slot per run. Workers only ever touch their own
    // run's slot, so recording needs no synchronisation and the
    // observed stream per run is independent of thread count.
    const bool observe =
        observation_ != nullptr && observation_->enabled();
    std::vector<std::unique_ptr<obs::RunRecorder>> recorders(
        grid.size());
    const obs::ObsConfig obs_config =
        observe ? observation_->runConfig() : obs::ObsConfig{};

    std::atomic<std::size_t> next{0};

    const auto worker = [&grid, &results, &next, &registry, &recorders,
                         &obs_config, observe] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= grid.size())
                return;
            const RunSpec &spec = grid[i];
            const std::unique_ptr<sim::Policy> policy =
                registry.make(spec.scheme);
            sim::SimulatorOptions options = sim::SimulatorOptions::forRun(
                spec.base_seed, spec.run_index);
            options.shards = spec.shards;
            options.max_cells = spec.max_cells;
            if (observe) {
                recorders[i] =
                    std::make_unique<obs::RunRecorder>(obs_config);
                options.recorder = recorders[i].get();
            }
            results[i].spec = spec;
            results[i].metrics = sim::runSimulation(
                spec.workload->trace, spec.workload->profiles,
                spec.cluster, *policy, options);
        }
    };

    const std::size_t workers = std::min(threads_, grid.size());
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (observe)
        writeObservations(*observation_, results, recorders);
    return results;
}

std::vector<RunSpec>
buildGrid(const std::vector<std::string> &schemes,
          const Workload &workload, const std::vector<SweepPoint> &points,
          std::uint64_t base_seed, std::size_t repeats)
{
    ICEB_ASSERT(repeats > 0, "a grid needs at least one replicate");
    std::vector<RunSpec> grid;
    grid.reserve(points.size() * schemes.size() * repeats);
    for (const SweepPoint &point : points) {
        for (const std::string &scheme : schemes) {
            for (std::size_t r = 0; r < repeats; ++r) {
                RunSpec spec;
                spec.scheme = scheme;
                spec.workload = &workload;
                spec.cluster = point.cluster;
                spec.base_seed = base_seed;
                spec.run_index = static_cast<std::uint32_t>(r);
                spec.label = point.label;
                grid.push_back(std::move(spec));
            }
        }
    }
    return grid;
}

std::vector<CellSummary>
summarizeGrid(const std::vector<RunResult> &results)
{
    std::vector<CellSummary> cells;
    std::size_t i = 0;
    while (i < results.size()) {
        const RunSpec &head = results[i].spec;
        std::vector<sim::SimulationMetrics> replicates;
        while (i < results.size() &&
               results[i].spec.label == head.label &&
               results[i].spec.scheme == head.scheme) {
            replicates.push_back(results[i].metrics);
            ++i;
        }
        CellSummary cell;
        cell.label = head.label;
        cell.scheme = head.scheme;
        cell.summary = sim::summarizeRuns(replicates);
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::vector<SchemeSummary>
runAllSchemesParallel(const Workload &workload,
                      const sim::ClusterConfig &cluster,
                      const RunnerOptions &options)
{
    std::vector<std::string> schemes;
    for (Scheme scheme : allSchemes())
        schemes.push_back(schemeKey(scheme));

    const std::vector<SweepPoint> points = {{"", cluster}};
    std::vector<RunSpec> grid = buildGrid(
        schemes, workload, points, options.base_seed, options.repeats);
    for (RunSpec &spec : grid) {
        spec.shards = options.shards;
        spec.max_cells = options.max_cells;
    }
    ExperimentRunner runner(options.threads);
    if (options.observation != nullptr)
        runner.setObservation(*options.observation);
    const std::vector<RunResult> results = runner.run(grid);
    const std::vector<CellSummary> cells = summarizeGrid(results);
    ICEB_ASSERT(cells.size() == schemes.size(),
                "scheme comparison produced an unexpected cell count");

    std::vector<SchemeSummary> summaries;
    summaries.reserve(cells.size());
    const std::vector<Scheme> order = allSchemes();
    for (std::size_t i = 0; i < cells.size(); ++i)
        summaries.push_back(SchemeSummary{order[i], cells[i].summary});
    return summaries;
}

} // namespace iceb::harness
