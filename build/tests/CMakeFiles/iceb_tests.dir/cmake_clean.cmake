file(REMOVE_RECURSE
  "CMakeFiles/iceb_tests.dir/test_cluster.cc.o"
  "CMakeFiles/iceb_tests.dir/test_cluster.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_common.cc.o"
  "CMakeFiles/iceb_tests.dir/test_common.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_core.cc.o"
  "CMakeFiles/iceb_tests.dir/test_core.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_fft.cc.o"
  "CMakeFiles/iceb_tests.dir/test_fft.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_integration.cc.o"
  "CMakeFiles/iceb_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_math.cc.o"
  "CMakeFiles/iceb_tests.dir/test_math.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_policies.cc.o"
  "CMakeFiles/iceb_tests.dir/test_policies.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_predictors.cc.o"
  "CMakeFiles/iceb_tests.dir/test_predictors.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_rng.cc.o"
  "CMakeFiles/iceb_tests.dir/test_rng.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_sim_core.cc.o"
  "CMakeFiles/iceb_tests.dir/test_sim_core.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_simulator.cc.o"
  "CMakeFiles/iceb_tests.dir/test_simulator.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_trace.cc.o"
  "CMakeFiles/iceb_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/iceb_tests.dir/test_workload.cc.o"
  "CMakeFiles/iceb_tests.dir/test_workload.cc.o.d"
  "iceb_tests"
  "iceb_tests.pdb"
  "iceb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
