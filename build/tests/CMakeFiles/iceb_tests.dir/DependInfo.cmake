
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/iceb_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/iceb_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/iceb_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_fft.cc" "tests/CMakeFiles/iceb_tests.dir/test_fft.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_fft.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/iceb_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_math.cc" "tests/CMakeFiles/iceb_tests.dir/test_math.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_math.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/iceb_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_predictors.cc" "tests/CMakeFiles/iceb_tests.dir/test_predictors.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_predictors.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/iceb_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sim_core.cc" "tests/CMakeFiles/iceb_tests.dir/test_sim_core.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_sim_core.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/iceb_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/iceb_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/iceb_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/iceb_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/iceb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iceb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/iceb_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/iceb_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iceb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iceb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iceb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/iceb_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iceb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
