# Empty dependencies file for iceb_tests.
# This may be replaced when dependencies are built.
