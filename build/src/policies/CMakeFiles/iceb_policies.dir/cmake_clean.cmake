file(REMOVE_RECURSE
  "CMakeFiles/iceb_policies.dir/faascache_policy.cc.o"
  "CMakeFiles/iceb_policies.dir/faascache_policy.cc.o.d"
  "CMakeFiles/iceb_policies.dir/oracle_policy.cc.o"
  "CMakeFiles/iceb_policies.dir/oracle_policy.cc.o.d"
  "CMakeFiles/iceb_policies.dir/policy_util.cc.o"
  "CMakeFiles/iceb_policies.dir/policy_util.cc.o.d"
  "CMakeFiles/iceb_policies.dir/wild_policy.cc.o"
  "CMakeFiles/iceb_policies.dir/wild_policy.cc.o.d"
  "libiceb_policies.a"
  "libiceb_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
