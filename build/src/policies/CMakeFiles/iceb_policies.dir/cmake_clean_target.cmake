file(REMOVE_RECURSE
  "libiceb_policies.a"
)
