# Empty dependencies file for iceb_policies.
# This may be replaced when dependencies are built.
