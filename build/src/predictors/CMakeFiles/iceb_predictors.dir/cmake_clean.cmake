file(REMOVE_RECURSE
  "CMakeFiles/iceb_predictors.dir/arima.cc.o"
  "CMakeFiles/iceb_predictors.dir/arima.cc.o.d"
  "CMakeFiles/iceb_predictors.dir/fft_predictor.cc.o"
  "CMakeFiles/iceb_predictors.dir/fft_predictor.cc.o.d"
  "CMakeFiles/iceb_predictors.dir/hybrid_histogram.cc.o"
  "CMakeFiles/iceb_predictors.dir/hybrid_histogram.cc.o.d"
  "CMakeFiles/iceb_predictors.dir/lstm.cc.o"
  "CMakeFiles/iceb_predictors.dir/lstm.cc.o.d"
  "CMakeFiles/iceb_predictors.dir/prediction_tracker.cc.o"
  "CMakeFiles/iceb_predictors.dir/prediction_tracker.cc.o.d"
  "libiceb_predictors.a"
  "libiceb_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
