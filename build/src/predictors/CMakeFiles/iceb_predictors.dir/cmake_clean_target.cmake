file(REMOVE_RECURSE
  "libiceb_predictors.a"
)
