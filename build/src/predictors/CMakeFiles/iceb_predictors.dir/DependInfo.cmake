
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictors/arima.cc" "src/predictors/CMakeFiles/iceb_predictors.dir/arima.cc.o" "gcc" "src/predictors/CMakeFiles/iceb_predictors.dir/arima.cc.o.d"
  "/root/repo/src/predictors/fft_predictor.cc" "src/predictors/CMakeFiles/iceb_predictors.dir/fft_predictor.cc.o" "gcc" "src/predictors/CMakeFiles/iceb_predictors.dir/fft_predictor.cc.o.d"
  "/root/repo/src/predictors/hybrid_histogram.cc" "src/predictors/CMakeFiles/iceb_predictors.dir/hybrid_histogram.cc.o" "gcc" "src/predictors/CMakeFiles/iceb_predictors.dir/hybrid_histogram.cc.o.d"
  "/root/repo/src/predictors/lstm.cc" "src/predictors/CMakeFiles/iceb_predictors.dir/lstm.cc.o" "gcc" "src/predictors/CMakeFiles/iceb_predictors.dir/lstm.cc.o.d"
  "/root/repo/src/predictors/prediction_tracker.cc" "src/predictors/CMakeFiles/iceb_predictors.dir/prediction_tracker.cc.o" "gcc" "src/predictors/CMakeFiles/iceb_predictors.dir/prediction_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iceb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/iceb_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
