# Empty dependencies file for iceb_predictors.
# This may be replaced when dependencies are built.
