# Empty compiler generated dependencies file for iceb_core.
# This may be replaced when dependencies are built.
