file(REMOVE_RECURSE
  "libiceb_core.a"
)
