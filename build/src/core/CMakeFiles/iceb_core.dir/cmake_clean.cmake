file(REMOVE_RECURSE
  "CMakeFiles/iceb_core.dir/icebreaker.cc.o"
  "CMakeFiles/iceb_core.dir/icebreaker.cc.o.d"
  "CMakeFiles/iceb_core.dir/pdm.cc.o"
  "CMakeFiles/iceb_core.dir/pdm.cc.o.d"
  "CMakeFiles/iceb_core.dir/utility_score.cc.o"
  "CMakeFiles/iceb_core.dir/utility_score.cc.o.d"
  "libiceb_core.a"
  "libiceb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
