file(REMOVE_RECURSE
  "CMakeFiles/iceb_common.dir/csv.cc.o"
  "CMakeFiles/iceb_common.dir/csv.cc.o.d"
  "CMakeFiles/iceb_common.dir/logging.cc.o"
  "CMakeFiles/iceb_common.dir/logging.cc.o.d"
  "CMakeFiles/iceb_common.dir/rng.cc.o"
  "CMakeFiles/iceb_common.dir/rng.cc.o.d"
  "CMakeFiles/iceb_common.dir/table.cc.o"
  "CMakeFiles/iceb_common.dir/table.cc.o.d"
  "libiceb_common.a"
  "libiceb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
