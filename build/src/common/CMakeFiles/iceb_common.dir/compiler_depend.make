# Empty compiler generated dependencies file for iceb_common.
# This may be replaced when dependencies are built.
