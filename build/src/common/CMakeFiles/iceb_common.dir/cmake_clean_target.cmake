file(REMOVE_RECURSE
  "libiceb_common.a"
)
