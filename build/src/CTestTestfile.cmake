# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("math")
subdirs("trace")
subdirs("workload")
subdirs("sim")
subdirs("predictors")
subdirs("policies")
subdirs("core")
subdirs("harness")
