file(REMOVE_RECURSE
  "libiceb_trace.a"
)
