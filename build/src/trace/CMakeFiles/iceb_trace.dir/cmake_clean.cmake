file(REMOVE_RECURSE
  "CMakeFiles/iceb_trace.dir/azure_loader.cc.o"
  "CMakeFiles/iceb_trace.dir/azure_loader.cc.o.d"
  "CMakeFiles/iceb_trace.dir/synthetic.cc.o"
  "CMakeFiles/iceb_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/iceb_trace.dir/trace.cc.o"
  "CMakeFiles/iceb_trace.dir/trace.cc.o.d"
  "CMakeFiles/iceb_trace.dir/trace_stats.cc.o"
  "CMakeFiles/iceb_trace.dir/trace_stats.cc.o.d"
  "libiceb_trace.a"
  "libiceb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
