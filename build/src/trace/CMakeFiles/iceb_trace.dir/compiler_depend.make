# Empty compiler generated dependencies file for iceb_trace.
# This may be replaced when dependencies are built.
