# Empty dependencies file for iceb_harness.
# This may be replaced when dependencies are built.
