file(REMOVE_RECURSE
  "CMakeFiles/iceb_harness.dir/experiment.cc.o"
  "CMakeFiles/iceb_harness.dir/experiment.cc.o.d"
  "CMakeFiles/iceb_harness.dir/report.cc.o"
  "CMakeFiles/iceb_harness.dir/report.cc.o.d"
  "libiceb_harness.a"
  "libiceb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
