file(REMOVE_RECURSE
  "libiceb_harness.a"
)
