# Empty dependencies file for iceb_math.
# This may be replaced when dependencies are built.
