file(REMOVE_RECURSE
  "CMakeFiles/iceb_math.dir/chi2.cc.o"
  "CMakeFiles/iceb_math.dir/chi2.cc.o.d"
  "CMakeFiles/iceb_math.dir/fft.cc.o"
  "CMakeFiles/iceb_math.dir/fft.cc.o.d"
  "CMakeFiles/iceb_math.dir/harmonics.cc.o"
  "CMakeFiles/iceb_math.dir/harmonics.cc.o.d"
  "CMakeFiles/iceb_math.dir/matrix.cc.o"
  "CMakeFiles/iceb_math.dir/matrix.cc.o.d"
  "CMakeFiles/iceb_math.dir/polyfit.cc.o"
  "CMakeFiles/iceb_math.dir/polyfit.cc.o.d"
  "CMakeFiles/iceb_math.dir/stats.cc.o"
  "CMakeFiles/iceb_math.dir/stats.cc.o.d"
  "libiceb_math.a"
  "libiceb_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
