file(REMOVE_RECURSE
  "libiceb_math.a"
)
