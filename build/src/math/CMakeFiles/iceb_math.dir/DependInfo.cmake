
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/chi2.cc" "src/math/CMakeFiles/iceb_math.dir/chi2.cc.o" "gcc" "src/math/CMakeFiles/iceb_math.dir/chi2.cc.o.d"
  "/root/repo/src/math/fft.cc" "src/math/CMakeFiles/iceb_math.dir/fft.cc.o" "gcc" "src/math/CMakeFiles/iceb_math.dir/fft.cc.o.d"
  "/root/repo/src/math/harmonics.cc" "src/math/CMakeFiles/iceb_math.dir/harmonics.cc.o" "gcc" "src/math/CMakeFiles/iceb_math.dir/harmonics.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/math/CMakeFiles/iceb_math.dir/matrix.cc.o" "gcc" "src/math/CMakeFiles/iceb_math.dir/matrix.cc.o.d"
  "/root/repo/src/math/polyfit.cc" "src/math/CMakeFiles/iceb_math.dir/polyfit.cc.o" "gcc" "src/math/CMakeFiles/iceb_math.dir/polyfit.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/math/CMakeFiles/iceb_math.dir/stats.cc.o" "gcc" "src/math/CMakeFiles/iceb_math.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iceb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
