file(REMOVE_RECURSE
  "libiceb_workload.a"
)
