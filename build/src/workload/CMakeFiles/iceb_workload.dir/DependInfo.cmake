
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark_suite.cc" "src/workload/CMakeFiles/iceb_workload.dir/benchmark_suite.cc.o" "gcc" "src/workload/CMakeFiles/iceb_workload.dir/benchmark_suite.cc.o.d"
  "/root/repo/src/workload/function_profile.cc" "src/workload/CMakeFiles/iceb_workload.dir/function_profile.cc.o" "gcc" "src/workload/CMakeFiles/iceb_workload.dir/function_profile.cc.o.d"
  "/root/repo/src/workload/profile_matcher.cc" "src/workload/CMakeFiles/iceb_workload.dir/profile_matcher.cc.o" "gcc" "src/workload/CMakeFiles/iceb_workload.dir/profile_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iceb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iceb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/iceb_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
