file(REMOVE_RECURSE
  "CMakeFiles/iceb_workload.dir/benchmark_suite.cc.o"
  "CMakeFiles/iceb_workload.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/iceb_workload.dir/function_profile.cc.o"
  "CMakeFiles/iceb_workload.dir/function_profile.cc.o.d"
  "CMakeFiles/iceb_workload.dir/profile_matcher.cc.o"
  "CMakeFiles/iceb_workload.dir/profile_matcher.cc.o.d"
  "libiceb_workload.a"
  "libiceb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
