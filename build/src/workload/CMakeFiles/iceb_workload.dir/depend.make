# Empty dependencies file for iceb_workload.
# This may be replaced when dependencies are built.
