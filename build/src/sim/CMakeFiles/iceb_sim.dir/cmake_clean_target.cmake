file(REMOVE_RECURSE
  "libiceb_sim.a"
)
