
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/iceb_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/iceb_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/cluster_config.cc" "src/sim/CMakeFiles/iceb_sim.dir/cluster_config.cc.o" "gcc" "src/sim/CMakeFiles/iceb_sim.dir/cluster_config.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/iceb_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/iceb_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/iceb_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/iceb_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/iceb_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/iceb_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iceb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iceb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iceb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/iceb_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
