file(REMOVE_RECURSE
  "CMakeFiles/iceb_sim.dir/cluster.cc.o"
  "CMakeFiles/iceb_sim.dir/cluster.cc.o.d"
  "CMakeFiles/iceb_sim.dir/cluster_config.cc.o"
  "CMakeFiles/iceb_sim.dir/cluster_config.cc.o.d"
  "CMakeFiles/iceb_sim.dir/event_queue.cc.o"
  "CMakeFiles/iceb_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/iceb_sim.dir/metrics.cc.o"
  "CMakeFiles/iceb_sim.dir/metrics.cc.o.d"
  "CMakeFiles/iceb_sim.dir/simulator.cc.o"
  "CMakeFiles/iceb_sim.dir/simulator.cc.o.d"
  "libiceb_sim.a"
  "libiceb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
