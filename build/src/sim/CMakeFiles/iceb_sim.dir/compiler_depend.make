# Empty compiler generated dependencies file for iceb_sim.
# This may be replaced when dependencies are built.
