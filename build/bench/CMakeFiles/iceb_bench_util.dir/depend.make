# Empty dependencies file for iceb_bench_util.
# This may be replaced when dependencies are built.
