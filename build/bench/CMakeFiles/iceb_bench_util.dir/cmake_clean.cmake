file(REMOVE_RECURSE
  "CMakeFiles/iceb_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/iceb_bench_util.dir/bench_util.cc.o.d"
  "libiceb_bench_util.a"
  "libiceb_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
