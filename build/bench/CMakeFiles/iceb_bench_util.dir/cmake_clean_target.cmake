file(REMOVE_RECURSE
  "libiceb_bench_util.a"
)
