
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10.cc" "bench/CMakeFiles/bench_fig10.dir/bench_fig10.cc.o" "gcc" "bench/CMakeFiles/bench_fig10.dir/bench_fig10.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/iceb_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/iceb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iceb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/iceb_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/iceb_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iceb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iceb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iceb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/iceb_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iceb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
