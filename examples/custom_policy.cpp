/**
 * @file
 * Writing your own warm-up policy against the public Policy
 * interface, registering it as a scheme, and racing it against
 * IceBreaker and the baselines through the parallel runner.
 *
 * The example policy is deliberately simple -- "warm a function for
 * the next interval whenever it was invoked in the previous one,
 * high-end first" -- and is a useful template: override a handful of
 * virtuals, register a factory, and the simulator handles containers,
 * memory, eviction and accounting while the ExperimentRunner handles
 * scheduling and seeding.
 */

#include <iostream>
#include <memory>

#include "common/table.hh"
#include "common/units.hh"
#include "harness/experiment.hh"
#include "harness/registry.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "policies/policy_util.hh"
#include "sim/simulator.hh"

namespace
{

using namespace iceb;

/**
 * Last-interval echo policy: assume the next interval repeats the
 * previous one (the naive version of concurrency prediction the
 * paper's Sec. 3.1 critiques).
 */
class EchoPolicy : public sim::Policy
{
  public:
    const char *name() const override { return "echo"; }

    void
    initialize(const sim::SimContext &ctx) override
    {
        Policy::initialize(ctx);
        previous_.assign(ctx.num_functions, 0);
    }

    void
    onIntervalObserved(const sim::IntervalObservation &closed) override
    {
        // The policy's entire history state: last interval's counts,
        // copied out of the pushed observation batch.
        for (FunctionId fn = 0; fn < previous_.size(); ++fn)
            previous_[fn] = closed.arrivalsFor(fn);
    }

    void
    onIntervalStart(IntervalIndex interval,
                    sim::WarmupInterface &cluster) override
    {
        if (interval == 0)
            return;
        const TimeMs expiry = cluster.now() + ctx_->interval_ms +
            policies::kRenewalGraceMs;
        for (FunctionId fn = 0; fn < previous_.size(); ++fn) {
            if (previous_[fn] > 0) {
                policies::warmWithSpill(cluster, fn, Tier::HighEnd,
                                        previous_[fn], expiry, *this);
            }
        }
    }

    TimeMs
    keepAliveAfterExecutionMs(FunctionId fn, Tier tier, TimeMs now)
        override
    {
        (void)fn;
        (void)tier;
        // Ride to the next decision boundary only.
        const TimeMs interval = ctx_->interval_ms;
        return (now / interval + 1) * interval - now +
            policies::kRenewalGraceMs;
    }

  private:
    std::vector<std::uint32_t> previous_;
};

} // namespace

int
main()
{
    trace::SyntheticConfig config;
    config.num_functions = 150;
    config.num_intervals = 480;
    config.min_memory_mb = 256;
    const harness::Workload workload = harness::makeWorkload(config);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // Register the custom scheme: from here on "echo" is a first-class
    // citizen of the registry, usable in any runner grid.
    const harness::ScopedPolicyRegistration echo_registration(
        "echo", [] { return std::make_unique<EchoPolicy>(); });

    // The standard five schemes plus ours, as one grid through the
    // parallel runner (one thread per scheme, hardware permitting).
    std::vector<std::string> keys;
    std::vector<std::string> labels;
    for (harness::Scheme scheme : harness::allSchemes()) {
        keys.push_back(harness::schemeKey(scheme));
        labels.push_back(harness::schemeName(scheme));
    }
    keys.push_back("echo");
    labels.push_back("echo (this example)");

    const std::vector<harness::SweepPoint> points = {{"", cluster}};
    const std::vector<harness::RunResult> results =
        harness::ExperimentRunner().run(
            harness::buildGrid(keys, workload, points));

    const sim::SimulationMetrics &baseline = results.front().metrics;
    TextTable table("Custom policy vs the standard schemes");
    table.setHeader({"scheme", "keep-alive $", "ka impr.",
                     "svc (ms)", "svc impr.", "warm"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const sim::SimulationMetrics &m = results[i].metrics;
        table.addRow({
            labels[i],
            TextTable::num(m.totalKeepAliveCost(), 3),
            TextTable::pct(harness::improvementOver(
                baseline.totalKeepAliveCost(),
                m.totalKeepAliveCost())),
            TextTable::num(m.meanServiceMs(), 0),
            TextTable::pct(harness::improvementOver(
                baseline.meanServiceMs(), m.meanServiceMs())),
            TextTable::pct(m.warmStartFraction()),
        });
    }
    table.print(std::cout);

    std::cout << "\nThe echo policy warms whatever just ran -- decent "
                 "warm rates, but it\npays for every quiet interval "
                 "and misses every burst onset; compare its\nrows "
                 "with IceBreaker's prediction-driven numbers.\n";
    return 0;
}
