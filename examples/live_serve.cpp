/**
 * @file
 * Serving-mode quickstart: the same IceBreaker decision engine, first
 * batch (SimDriver), then streamed event-by-event (ReplayDriver) with
 * optional wall-clock pacing and live probe export — and a check that
 * both paths produce identical results.
 *
 * The point of the exercise: the engine never sees the trace. It is
 * fed per-interval arrival observations and execution outcomes as
 * they happen, exactly the information a real serving front end has,
 * and its warm-up actions come back out as typed Decision records a
 * deployer could apply to a real cluster.
 *
 * Flags:
 *   --pace X          replay X simulated ms per wall ms (e.g. 60000
 *                     replays a minute per wall millisecond; default
 *                     0 = as fast as possible)
 *   --probe-out FILE  stream per-interval probe CSV (tail -f friendly)
 *   --trace-out FILE  write a Chrome trace of the replay
 *   --stats-json FILE rewrite a JSON stats snapshot every interval
 *                     (counters + histogram digests; CI-friendly)
 *   --stats-port N    serve Prometheus text on localhost:N while the
 *                     replay runs (0 = pick an ephemeral port)
 *   --intervals N     workload length in decision intervals (def. 240)
 *   --functions N     workload size in functions (default 100)
 *   --smoke           small workload (48 fns x 60 intervals) for CI
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/registry.hh"
#include "serve/drivers.hh"
#include "serve/stats_exporter.hh"

namespace
{

using namespace iceb;

struct Cli
{
    double pace = 0.0;
    std::string probe_out;
    std::string trace_out;
    std::string stats_json;
    int stats_port = -1;
    std::size_t intervals = 240;
    std::size_t functions = 100;
};

Cli
parseCli(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        const auto number = [&](auto parse) {
            const std::string text = value();
            try {
                std::size_t used = 0;
                const auto parsed = parse(text, &used);
                if (used != text.size())
                    throw std::invalid_argument(text);
                return parsed;
            } catch (const std::exception &) {
                std::cerr << "bad value for " << arg << ": " << text
                          << "\n";
                std::exit(2);
            }
        };
        if (arg == "--pace") {
            cli.pace = number([](const std::string &s, std::size_t *n) {
                return std::stod(s, n);
            });
        } else if (arg == "--probe-out") {
            cli.probe_out = value();
        } else if (arg == "--trace-out") {
            cli.trace_out = value();
        } else if (arg == "--stats-json") {
            cli.stats_json = value();
        } else if (arg == "--stats-port") {
            cli.stats_port = static_cast<int>(
                number([](const std::string &s, std::size_t *n) {
                    return std::stoul(s, n);
                }));
        } else if (arg == "--smoke") {
            cli.intervals = 60;
            cli.functions = 48;
        } else if (arg == "--intervals") {
            cli.intervals =
                number([](const std::string &s, std::size_t *n) {
                    return std::stoul(s, n);
                });
        } else if (arg == "--functions") {
            cli.functions =
                number([](const std::string &s, std::size_t *n) {
                    return std::stoul(s, n);
                });
        } else {
            std::cerr << "unknown flag " << arg << "\n";
            std::exit(2);
        }
    }
    return cli;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli = parseCli(argc, argv);

    trace::SyntheticConfig config;
    config.num_functions = cli.functions;
    config.num_intervals = cli.intervals;
    const harness::Workload workload = harness::makeWorkload(config);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // ------------------------------------------------ batch anchor
    const std::unique_ptr<serve::DecisionEngine> batch_engine =
        harness::makeDecisionEngineByName("icebreaker");
    serve::SimDriver batch(workload.trace, workload.profiles, cluster,
                           *batch_engine);
    const sim::SimulationMetrics batch_metrics = batch.run();

    // -------------------------------------------- streaming replay
    // A fresh engine: the replay must rebuild all history state from
    // the streamed observations alone.
    const std::unique_ptr<serve::DecisionEngine> engine =
        harness::makeDecisionEngineByName("icebreaker");

    std::ofstream probe_file;
    std::ofstream trace_file;
    serve::ReplayOptions options;
    options.acceleration = cli.pace;
    options.run_label = "icebreaker-replay";
    if (!cli.probe_out.empty()) {
        probe_file.open(cli.probe_out);
        options.probe_csv = &probe_file;
    }
    if (!cli.trace_out.empty()) {
        trace_file.open(cli.trace_out);
        options.chrome_trace = &trace_file;
    }
    std::unique_ptr<serve::StatsExporter> stats;
    if (!cli.stats_json.empty() || cli.stats_port >= 0) {
        serve::StatsExporterOptions stats_options;
        stats_options.json_path = cli.stats_json;
        stats_options.http_port = cli.stats_port;
        stats = std::make_unique<serve::StatsExporter>(stats_options);
        options.stats = stats.get();
        if (stats->port() >= 0) {
            std::cout << "serving Prometheus text on "
                      << "http://localhost:" << stats->port()
                      << "/metrics\n";
        }
    }
    const std::size_t report_every =
        cli.intervals >= 8 ? cli.intervals / 8 : 1;
    options.on_interval =
        [&](const serve::ReplayProgress &progress) {
            if (static_cast<std::size_t>(progress.interval) %
                    report_every ==
                0) {
                std::cout << "interval " << progress.interval
                          << "  t=" << progress.sim_time_ms / 1000
                          << "s  decisions=" << progress.decisions
                          << "\n";
            }
        };

    serve::ReplayDriver replay(workload.trace, workload.profiles,
                               cluster, *engine, options);
    const sim::SimulationMetrics replay_metrics = replay.run();

    // A peek at what the engine actually decided.
    const std::vector<serve::Decision> decisions =
        engine->drainDecisions();
    std::cout << "\nengine issued " << decisions.size()
              << " warm-up decisions; last few:\n";
    const std::size_t show = decisions.size() < 5 ? decisions.size() : 5;
    for (std::size_t i = decisions.size() - show;
         i < decisions.size(); ++i) {
        const serve::Decision &d = decisions[i];
        std::cout << "  interval " << d.interval << ": "
                  << serve::decisionKindName(d.kind) << " fn=" << d.fn
                  << " tier=" << tierName(d.tier) << " count=" << d.count
                  << " granted=" << d.provisioned << "\n";
    }

    TextTable table("Batch vs streamed replay (must agree exactly)");
    table.setHeader({"path", "keep-alive $", "svc (ms)", "warm"});
    table.addRow({"SimDriver (batch)",
                  TextTable::num(batch_metrics.totalKeepAliveCost(), 4),
                  TextTable::num(batch_metrics.meanServiceMs(), 2),
                  TextTable::pct(batch_metrics.warmStartFraction())});
    table.addRow({"ReplayDriver (streamed)",
                  TextTable::num(replay_metrics.totalKeepAliveCost(), 4),
                  TextTable::num(replay_metrics.meanServiceMs(), 2),
                  TextTable::pct(replay_metrics.warmStartFraction())});
    table.print(std::cout);

    const bool identical =
        batch_metrics.totalKeepAliveCost() ==
            replay_metrics.totalKeepAliveCost() &&
        batch_metrics.meanServiceMs() ==
            replay_metrics.meanServiceMs() &&
        batch_metrics.warmStartFraction() ==
            replay_metrics.warmStartFraction();
    std::cout << (identical
                      ? "\nOK: the streamed replay reproduced the "
                        "batch run exactly.\n"
                      : "\nMISMATCH: replay diverged from batch!\n");
    return identical ? 0 : 1;
}
